//! Self-healing engine: engine-native recovery across every protocol
//! family, sender-crash garbage collection, and the composed-fault
//! chaos matrix.
//!
//! * **Engine-native recovery**: an operation submitted with a
//!   `RecoveryPolicy` that settles with a retryable error
//!   (`SessionReset`, `Timeout`, `DeadlineExceeded`) is parked by the
//!   scheduler for the backoff window and re-executed under a fresh
//!   session epoch — same `OpId`, no caller-side loop. Run-after
//!   dependents stay held across re-executions and release when the
//!   recovered predecessor finally completes, instead of cascading
//!   `DependencyFailed`.
//! * **Zero-cost-when-clean**: every recovering submission is
//!   instruction-identical, feature by feature, to its non-recovering
//!   counterpart on a fault-free run.
//! * **Receiver-side GC**: repeated sender crashes mid-transfer leave
//!   no half-filled segments and no unbounded session/reply-cache
//!   growth — dead sessions are replaced on the next epoch's handshake
//!   or reclaimed by the epoch-TTL sweep, and both reclaims bill
//!   `Feature::FaultTol` at the node holding the state.
//! * **Composed faults**: `CrashWindow` × {dup+jitter, drop-heavy,
//!   outage} × {switched, wormhole, dual} stays exactly-once,
//!   byte-exact, and bounded-memory.

use std::cell::RefCell;
use std::rc::Rc;

use timego_am::{
    CmamConfig, Engine, EngineEvent, Machine, OpOutcome, ProtocolError, RecoveryPolicy,
    RetryPolicy, StreamConfig, Tags,
};
use timego_cost::Feature;
use timego_netsim::{
    CrashWindow, DualNetwork, FaultConfig, NodeId, OutageWindow, Torus2D, VcDiscipline,
    WormholeConfig, WormholeNetwork,
};
use timego_ni::share;
use timego_workloads::apps::collectives;
use timego_workloads::{payloads, scenarios};

const NODES: usize = 16;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn machine_cfg(sub: &str, fault: &FaultConfig, seed: u64, cfg: CmamConfig) -> Machine {
    match sub {
        "switched" => {
            Machine::new(share(scenarios::cm5_chaos(NODES, fault.clone(), seed)), NODES, cfg)
        }
        "wormhole" => Machine::new(
            share(WormholeNetwork::new(
                Torus2D::new(4, 4),
                WormholeConfig {
                    virtual_channels: 2,
                    discipline: VcDiscipline::Dateline,
                    fault: fault.clone(),
                    seed,
                    ..WormholeConfig::default()
                },
            )),
            NODES,
            cfg,
        ),
        "dual" => Machine::new(
            share(DualNetwork::new(
                scenarios::cm5_chaos(NODES, fault.clone(), seed),
                scenarios::cm5_chaos(NODES, fault.clone(), seed ^ 0x9e37),
                Tags::RPC_REPLY,
            )),
            NODES,
            cfg,
        ),
        other => panic!("unknown substrate {other}"),
    }
}

fn machine(sub: &str, fault: &FaultConfig, seed: u64) -> Machine {
    machine_cfg(sub, fault, seed, CmamConfig::default())
}

fn crash(node: NodeId, start: u64, end: u64) -> FaultConfig {
    FaultConfig {
        crashes: vec![CrashWindow { node, start, end }],
        ..FaultConfig::default()
    }
}

fn fault_tol(m: &Machine, node: NodeId) -> u64 {
    m.cpu(node).snapshot().feature_total(Feature::FaultTol)
}

// ---------------------------------------------------------------------
// Engine-level recovery: the ROADMAP remnant, closed.
// ---------------------------------------------------------------------

/// A `SessionReset` is recovered *inside* the engine: one submission,
/// no caller-side loop. The trace shows the `Recovering` parking event,
/// delivery is exactly-once and byte-exact, and the re-establishment
/// instructions land in `Feature::FaultTol`.
#[test]
fn session_reset_recovers_inside_the_engine() {
    let data = payloads::mixed(256, 42);
    let mut recovered = 0;
    for seed in 0..4u64 {
        let mut m = machine("switched", &crash(n(9), 50, 3000), seed);
        m.reset_costs();
        let mut eng = Engine::new();
        let op = eng
            .submit_xfer_reliable_recovering(
                &m,
                n(2),
                n(9),
                &data,
                &RetryPolicy::default(),
                &RecoveryPolicy::default(),
            )
            .unwrap();
        eng.run(&mut m);
        let out = match eng.take_outcome(op).unwrap() {
            Ok(OpOutcome::Reliable(out)) => out,
            other => panic!("seed {seed}: recovery must converge, got {other:?}"),
        };
        assert_eq!(
            m.read_buffer(n(9), out.xfer.dst_buffer, data.len()),
            data,
            "seed {seed}: exactly-once, byte-exact"
        );
        if eng.recovery_executions(op) > 0 {
            recovered += 1;
            assert!(
                eng.trace().iter().any(|e| e.event == EngineEvent::Recovering(op)),
                "seed {seed}: the park must be traced"
            );
            assert!(
                fault_tol(&m, n(2)) > 0,
                "seed {seed}: re-establishment must bill fault tolerance"
            );
        }
    }
    assert!(recovered > 0, "the crash window must force at least one in-engine recovery");
}

/// DAG-aware recovery: a mid-DAG predecessor felled by a crash-restart
/// is re-executed by the engine while its dependent stays *held*; the
/// dependent then releases and completes instead of failing with
/// `DependencyFailed`.
#[test]
fn mid_dag_predecessor_recovers_and_releases_dependents() {
    let policy = RetryPolicy::default();
    let data_a = payloads::mixed(256, 7);
    let data_b = payloads::mixed(64, 8);
    let mut recovered = 0;
    for seed in 0..4u64 {
        let mut m = machine("switched", &crash(n(9), 50, 3000), seed);
        let mut eng = Engine::new();
        let a = eng
            .submit_xfer_reliable_recovering(
                &m,
                n(2),
                n(9),
                &data_a,
                &policy,
                &RecoveryPolicy::default(),
            )
            .unwrap();
        let b = eng
            .submit_xfer_reliable_after(&m, n(9), n(12), &data_b, &policy, &[a])
            .unwrap();
        eng.run(&mut m);
        match eng.take_outcome(a).unwrap() {
            Ok(OpOutcome::Reliable(out)) => {
                assert_eq!(m.read_buffer(n(9), out.xfer.dst_buffer, data_a.len()), data_a);
            }
            other => panic!("seed {seed}: predecessor must recover, got {other:?}"),
        }
        match eng.take_outcome(b).unwrap() {
            Ok(OpOutcome::Reliable(out)) => {
                assert_eq!(
                    m.read_buffer(n(12), out.xfer.dst_buffer, data_b.len()),
                    data_b,
                    "seed {seed}: dependent must run after the recovered predecessor"
                );
            }
            other => panic!(
                "seed {seed}: dependent must complete, not cascade DependencyFailed: {other:?}"
            ),
        }
        if eng.recovery_executions(a) > 0 {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "the crash window must force at least one mid-DAG recovery");
}

/// Clean-run cost identity, per protocol family: with no faults, every
/// recovering submission bills per-feature instruction counts identical
/// to its non-recovering counterpart, at every node. Recovery support
/// costs nothing until a fault actually happens.
#[test]
fn clean_recovering_runs_bill_identical_to_non_recovering() {
    let clean = FaultConfig::default();
    let assert_identical = |plain: &Machine, rec: &Machine, what: &str| {
        for i in 0..NODES {
            for f in Feature::ALL {
                assert_eq!(
                    plain.cpu(n(i)).snapshot().feature_total(f),
                    rec.cpu(n(i)).snapshot().feature_total(f),
                    "{what}: node {i}, {f:?}"
                );
            }
        }
    };
    let policy = RetryPolicy::default();
    let recovery = RecoveryPolicy::default();

    // Reliable transfer.
    let data = payloads::mixed(128, 3);
    let mut plain = machine("switched", &clean, 11);
    plain.reset_costs();
    plain.xfer_reliable(n(2), n(9), &data, &policy).unwrap();
    let mut rec = machine("switched", &clean, 11);
    rec.reset_costs();
    let (_, re) = rec.xfer_reliable_recovering(n(2), n(9), &data, &policy).unwrap();
    assert_eq!(re, 0, "clean run must not re-execute");
    assert_identical(&plain, &rec, "xfer_reliable");

    // Stream.
    let mut plain = machine("switched", &clean, 12);
    let id = plain.open_stream(n(3), n(9), StreamConfig::default());
    plain.reset_costs();
    plain.stream_send(id, &data).unwrap();
    let mut rec = machine("switched", &clean, 12);
    let id = rec.open_stream(n(3), n(9), StreamConfig::default());
    rec.reset_costs();
    let (_, re) = rec.stream_send_recovering(id, &data, &recovery).unwrap();
    assert_eq!(re, 0, "clean run must not re-execute");
    assert_identical(&plain, &rec, "stream_send");

    // RPC.
    let mut plain = machine("switched", &clean, 13);
    plain.register_rpc_handler(n(11), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
    plain.reset_costs();
    plain.rpc_call_retrying(n(4), n(11), 40, [7, 0, 0, 0], &policy).unwrap();
    let mut rec = machine("switched", &clean, 13);
    rec.register_rpc_handler(n(11), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
    rec.reset_costs();
    let (reply, re) = rec.rpc_call_recovering(n(4), n(11), 40, [7, 0, 0, 0], &policy, &recovery).unwrap();
    assert_eq!(reply, [8, 0, 0, 0]);
    assert_eq!(re, 0, "clean run must not re-execute");
    assert_identical(&plain, &rec, "rpc_call");

    // Collectives (broadcast + all-reduce), deterministic substrate.
    let table = || {
        Machine::new(share(scenarios::table_in_order(NODES)), NODES, CmamConfig::default())
    };
    let mut plain = table();
    plain.reset_costs();
    collectives::broadcast(&mut plain, n(0), [5; 4]).unwrap();
    let mut rec = table();
    rec.reset_costs();
    let (seen, re) = collectives::broadcast_recovering(&mut rec, n(0), [5; 4], &recovery).unwrap();
    assert!(seen.iter().all(|v| *v == [5; 4]));
    assert_eq!(re, 0, "clean run must not re-execute");
    assert_identical(&plain, &rec, "broadcast");
    // The Table 1 pin carries over: 15 edges × (20 send + 27 receive).
    let total: u64 = (0..NODES).map(|i| rec.cpu(n(i)).snapshot().total()).sum();
    assert_eq!(total, 15 * 47, "recovering broadcast keeps the Table 1 edge bill");

    let inputs: Vec<u32> = (0..NODES as u32).collect();
    let mut plain = table();
    plain.reset_costs();
    collectives::allreduce_sum(&mut plain, &inputs).unwrap();
    let mut rec = table();
    rec.reset_costs();
    let (sums, re) = collectives::allreduce_sum_recovering(&mut rec, &inputs, &recovery).unwrap();
    assert_eq!(sums, vec![120; NODES]);
    assert_eq!(re, 0, "clean run must not re-execute");
    assert_identical(&plain, &rec, "allreduce");
}

// ---------------------------------------------------------------------
// Per-family crash recovery.
// ---------------------------------------------------------------------

/// A stream send felled by a receiver crash-restart resumes inside the
/// engine: the re-execution keeps the original sequence range, skips
/// packets the first execution already delivered, and converges to an
/// exactly-once, byte-exact delivered stream.
#[test]
fn stream_crash_recovery_is_exactly_once_and_byte_exact() {
    let data = payloads::mixed(192, 21);
    let mut recovered = 0;
    for seed in 0..4u64 {
        let mut m = machine("switched", &crash(n(9), 50, 3000), seed);
        let id = m.open_stream(n(3), n(9), StreamConfig::default());
        m.reset_costs();
        let (_, re) = m
            .stream_send_recovering(id, &data, &RecoveryPolicy::default())
            .unwrap_or_else(|e| panic!("seed {seed}: stream recovery must converge: {e}"));
        assert_eq!(
            m.stream_received(id),
            &data[..],
            "seed {seed}: delivered stream must be exactly the data, once"
        );
        if re > 0 {
            recovered += 1;
            assert!(
                fault_tol(&m, n(3)) > 0,
                "seed {seed}: stream re-execution must bill fault tolerance"
            );
        }
    }
    assert!(recovered > 0, "the crash window must force at least one stream recovery");
}

/// RPC recovery is exactly-once end to end: when drop-heavy faults
/// exhaust the inner retry budget and the engine re-executes the call,
/// the re-execution reuses the same call id, so the callee either
/// answers from its reply cache or runs the handler for the first time
/// — never twice. The handler-run counter equals the number of logical
/// calls across every seed.
#[test]
fn rpc_recovery_is_exactly_once_via_reply_cache() {
    const CALLS: u32 = 8;
    // An inner budget small enough that drop-heavy faults exhaust it
    // and force engine-level re-execution.
    let inner = RetryPolicy { max_attempts: 2, base_wait: 256, ..RetryPolicy::default() };
    let recovery = RecoveryPolicy::default();
    let fault = FaultConfig { drop_prob: 0.25, ..FaultConfig::default() };
    let mut re_executed = 0;
    for seed in 0..6u64 {
        let mut m = machine("switched", &fault, seed);
        let runs = Rc::new(RefCell::new(0u32));
        let runs2 = Rc::clone(&runs);
        m.register_rpc_handler(n(11), 40, move |_, msg| {
            *runs2.borrow_mut() += 1;
            [msg.words[0] * 3, 0, 0, 0]
        });
        for v in 0..CALLS {
            let (reply, re) = m
                .rpc_call_recovering(n(4), n(11), 40, [v, 0, 0, 0], &inner, &recovery)
                .unwrap_or_else(|e| panic!("seed {seed} call {v}: {e}"));
            assert_eq!(reply[0], v * 3, "seed {seed} call {v}");
            re_executed += re;
        }
        assert_eq!(
            *runs.borrow(),
            CALLS,
            "seed {seed}: the handler must run exactly once per logical call"
        );
    }
    assert!(re_executed > 0, "drop-heavy faults must force at least one re-execution");
}

/// Collectives survive a node crash-restart mid-broadcast and
/// mid-all-reduce: the felled edges are re-executed inside the engine,
/// held subtrees release when their recovered predecessor delivers,
/// and the results are correct at every node.
#[test]
fn collectives_survive_node_crash_restart() {
    let recovery = RecoveryPolicy::default();
    let mut recovered = 0;
    for seed in 0..3u64 {
        let mut m = machine("switched", &crash(n(5), 10, 2500), seed);
        let (seen, re) = collectives::broadcast_recovering(&mut m, n(0), [9, 9, 9, 9], &recovery)
            .unwrap_or_else(|e| panic!("seed {seed}: broadcast must survive the crash: {e}"));
        assert!(
            seen.iter().all(|v| *v == [9, 9, 9, 9]),
            "seed {seed}: every node must see the broadcast value: {seen:?}"
        );
        recovered += re;

        let mut m = machine("switched", &crash(n(5), 10, 2500), seed);
        let inputs: Vec<u32> = (1..=NODES as u32).collect();
        let (sums, re) = collectives::allreduce_sum_recovering(&mut m, &inputs, &recovery)
            .unwrap_or_else(|e| panic!("seed {seed}: all-reduce must survive the crash: {e}"));
        assert_eq!(sums, vec![136; NODES], "seed {seed}: every node must hold the global sum");
        recovered += re;
    }
    assert!(recovered > 0, "the crash window must force at least one edge re-execution");
}

// ---------------------------------------------------------------------
// Receiver-side garbage collection.
// ---------------------------------------------------------------------

/// The bounded-memory pin: ≥ 20 sender crash cycles mid-transfer leave
/// no half-filled segments (no open sessions once transfers complete)
/// and no unbounded session/reply-cache growth. Dead sessions are
/// replaced on the recovered execution's fresh-epoch handshake; expired
/// reply-cache entries are reclaimed by the epoch-TTL sweep riding the
/// engine pump; a final forced sweep returns both tables to empty.
#[test]
fn sender_crash_cycles_leave_no_residual_receiver_state() {
    const CYCLES: u64 = 22;
    const PERIOD: u64 = 20_000;
    let crashes: Vec<CrashWindow> = (0..CYCLES)
        .map(|k| CrashWindow { node: n(2), start: k * PERIOD + 50, end: k * PERIOD + 2500 })
        .collect();
    let fault = FaultConfig { crashes, ..FaultConfig::default() };
    // A TTL shorter than the crash period, so the sweep reclaims one
    // cycle's leavings during the next cycle's engine run.
    let cfg = CmamConfig { gc_ttl_cycles: 8_192, ..CmamConfig::default() };
    let mut m = machine_cfg("switched", &fault, 5, cfg);
    let runs = Rc::new(RefCell::new(0u32));
    let runs2 = Rc::clone(&runs);
    m.register_rpc_handler(n(11), 40, move |_, msg| {
        *runs2.borrow_mut() += 1;
        [msg.words[0], 0, 0, 0]
    });
    let policy = RetryPolicy::default();
    let recovery = RecoveryPolicy::default();
    let data = payloads::mixed(256, 9);
    let mut max_sessions = 0usize;
    let mut max_replies = 0usize;
    let mut recovered = 0u32;
    for k in 0..CYCLES {
        // Align to this cycle's crash window.
        let now = m.network().borrow().now().cycles();
        let base = k * PERIOD;
        if base > now {
            m.advance(base - now);
        }
        // Sender n(2) crashes mid-transfer; the engine recovers.
        let (out, re) = m
            .xfer_reliable_recovering(n(2), n(9), &data, &policy)
            .unwrap_or_else(|e| panic!("cycle {k}: recovery must converge: {e}"));
        assert_eq!(
            m.read_buffer(n(9), out.xfer.dst_buffer, data.len()),
            data,
            "cycle {k}: byte-exact after the sender crash"
        );
        recovered += re;
        // An RPC each cycle keeps the reply cache in play.
        let (reply, _) = m
            .rpc_call_recovering(n(4), n(11), 40, [k as u32, 0, 0, 0], &policy, &recovery)
            .unwrap_or_else(|e| panic!("cycle {k}: rpc must complete: {e}"));
        assert_eq!(reply[0], k as u32);

        max_sessions = max_sessions.max(m.open_sessions());
        max_replies = max_replies.max(m.reply_cache_len());
        assert_eq!(
            m.open_sessions(),
            0,
            "cycle {k}: a completed transfer must leave no open session (no half-filled segments)"
        );
    }
    assert!(recovered > 0, "the crash windows must force re-executions");
    assert_eq!(*runs.borrow(), CYCLES as u32, "rpc handler exactly once per call");
    // Bounded across the whole soak: the TTL sweep and replace-on-epoch
    // reclaim keep both tables at a few entries, never O(cycles).
    assert!(max_sessions <= 2, "session table must stay bounded, saw {max_sessions}");
    assert!(
        max_replies <= 3,
        "reply cache must stay bounded by the TTL sweep, saw {max_replies}"
    );
    // A forced sweep returns both tables to the empty baseline and
    // reports exactly what it reclaimed.
    let before = (m.open_sessions(), m.reply_cache_len());
    let (s, r) = m.gc_sweep();
    assert_eq!((s, r), before, "the sweep must reclaim exactly what was left");
    assert_eq!(m.open_sessions(), 0);
    assert_eq!(m.reply_cache_len(), 0);
}

// ---------------------------------------------------------------------
// Quiesce: uniform cancellation wherever an op sits.
// ---------------------------------------------------------------------

/// `quiesce` settles dependency-held and recovery-parked operations
/// with `Cancelled` — not stranded, not `DependencyFailed` — and
/// records the uniform `Cancelled` trace event for each.
#[test]
fn quiesce_settles_parked_and_held_ops_with_uniform_events() {
    let policy = RetryPolicy::default();
    let data = payloads::mixed(256, 4);
    // A short crash window fells the recovering op early; a long outage
    // on an unrelated node keeps a third op running so the scheduler
    // returns control while the recovering op sits parked (with nothing
    // else running, `pump` would jump the clock through the backoff
    // window in one quantum and the park would never be observable).
    let fault = FaultConfig {
        crashes: vec![CrashWindow { node: n(9), start: 50, end: 600 }],
        outages: vec![OutageWindow { node: n(14), start: 0, end: 50_000 }],
        ..FaultConfig::default()
    };
    let mut m = machine("switched", &fault, 3);
    let mut eng = Engine::new();
    let parked = eng
        .submit_xfer_reliable_recovering(
            &m,
            n(2),
            n(9),
            &data,
            &policy,
            &RecoveryPolicy::default(),
        )
        .unwrap();
    let held = eng
        .submit_xfer_reliable_after(&m, n(9), n(12), &data, &policy, &[parked])
        .unwrap();
    let patient = RetryPolicy { max_attempts: 4, base_wait: 512, ..RetryPolicy::default() };
    let busy = eng.submit_xfer_reliable(&m, n(3), n(14), &data, &patient).unwrap();
    // Pump until the crash fells the first execution and the engine
    // parks the op for its backoff window.
    let mut guard = 0;
    while eng.parked_count() == 0 {
        eng.pump(&mut m);
        guard += 1;
        assert!(guard < 200_000, "the crash must park the recovering op");
    }
    eng.quiesce(&mut m);
    assert_eq!(eng.unfinished(), 0);
    assert_eq!(eng.take_outcome(parked).unwrap(), Err(ProtocolError::Cancelled));
    assert_eq!(eng.take_outcome(held).unwrap(), Err(ProtocolError::Cancelled));
    assert!(eng.take_outcome(busy).is_some(), "the running op is driven to a settled outcome");
    for id in [parked, held] {
        assert!(
            eng.trace().iter().any(|e| e.event == EngineEvent::Cancelled(id)),
            "uniform Cancelled event for {id:?}"
        );
    }
    assert_eq!(m.network().borrow().in_flight(), 0, "quiesce leaves the fabric empty");
}

// ---------------------------------------------------------------------
// Composed-fault chaos matrix.
// ---------------------------------------------------------------------

/// `CrashWindow` × {dup+jitter, drop-heavy, outage} × {switched,
/// wormhole, dual}: recovering transfers, streams, and RPCs all stay
/// exactly-once and byte-exact, and the receiver tables return to
/// baseline after GC (no half-filled segments, no unbounded
/// session/reply-cache growth).
#[test]
fn composed_fault_matrix_stays_exact_and_bounded() {
    let mixes: Vec<(&str, FaultConfig)> = vec![
        (
            "dup+jitter",
            FaultConfig { duplicate_prob: 0.10, delay_jitter: 8, ..FaultConfig::default() },
        ),
        ("drop-heavy", FaultConfig { drop_prob: 0.20, ..FaultConfig::default() }),
        (
            "outage",
            FaultConfig {
                drop_prob: 0.02,
                outages: vec![OutageWindow { node: n(12), start: 200, end: 1500 }],
                ..FaultConfig::default()
            },
        ),
    ];
    let inner = RetryPolicy { max_attempts: 3, base_wait: 512, ..RetryPolicy::default() };
    let recovery = RecoveryPolicy::default();
    let data = payloads::mixed(128, 17);
    let mut recovered = 0u32;
    for sub in ["switched", "wormhole", "dual"] {
        for (mix, fault) in &mixes {
            for seed in 0..2u64 {
                let fault = FaultConfig {
                    crashes: vec![CrashWindow { node: n(9), start: 50, end: 2500 }],
                    ..fault.clone()
                };
                let mut m = machine(sub, &fault, seed);
                let ctx = format!("{sub}/{mix}/seed {seed}");
                let runs = Rc::new(RefCell::new(0u32));
                let runs2 = Rc::clone(&runs);
                m.register_rpc_handler(n(12), 40, move |_, msg| {
                    *runs2.borrow_mut() += 1;
                    [msg.words[0] ^ 0xbeef, 0, 0, 0]
                });

                // Reliable transfer into the crashing node.
                let (out, re) = m
                    .xfer_reliable_recovering(n(2), n(9), &data, &inner)
                    .unwrap_or_else(|e| panic!("{ctx}: xfer: {e}"));
                assert_eq!(
                    m.read_buffer(n(9), out.xfer.dst_buffer, data.len()),
                    data,
                    "{ctx}: xfer byte-exact"
                );
                recovered += re;

                // Stream into the crashing node.
                let id = m.open_stream(n(3), n(9), StreamConfig::default());
                let (_, re) = m
                    .stream_send_recovering(id, &data, &recovery)
                    .unwrap_or_else(|e| panic!("{ctx}: stream: {e}"));
                assert_eq!(m.stream_received(id), &data[..], "{ctx}: stream exactly-once");
                recovered += re;

                // RPCs to the outage-affected node: exactly-once via the
                // reply cache.
                for v in 0..3u32 {
                    let (reply, re) = m
                        .rpc_call_recovering(n(4), n(12), 40, [v, 0, 0, 0], &inner, &recovery)
                        .unwrap_or_else(|e| panic!("{ctx}: rpc {v}: {e}"));
                    assert_eq!(reply[0], v ^ 0xbeef, "{ctx}: rpc {v}");
                    recovered += re;
                }
                assert_eq!(*runs.borrow(), 3, "{ctx}: handler exactly once per call");

                // Bounded receiver tables: completed transfers leave no
                // sessions (no half-filled segments); the reply cache
                // holds at most one entry per logical call, and a forced
                // sweep returns everything to the empty baseline.
                assert_eq!(m.open_sessions(), 0, "{ctx}: no residual sessions");
                assert!(m.reply_cache_len() <= 3, "{ctx}: reply cache bounded");
                m.gc_sweep();
                assert_eq!(m.open_sessions(), 0, "{ctx}: baseline after GC");
                assert_eq!(m.reply_cache_len(), 0, "{ctx}: baseline after GC");
            }
        }
    }
    assert!(recovered > 0, "the matrix must exercise engine-native recovery");
}
