//! Serving-plane invariants: the accounting contracts of the RPC
//! service plane (`timego_workloads::service`), pinned under load,
//! faults, and parallel substrate stepping.
//!
//! * **Conservation** — every arrival is accounted for exactly once:
//!   `offered == admitted + shed` and `admitted == completed + failed`
//!   per class, with nothing in flight once the drain quiesces — even
//!   when the run spends most of its life past the admission bound.
//! * **Exactly-once** — crash windows on the gateway (the RPC caller)
//!   force engine-native re-executions of the recovery-armed class;
//!   the server pool's handler-run counters prove each admitted
//!   request's handler ran exactly once (the reply cache absorbs the
//!   re-sent requests).
//! * **Bill additivity** — on a clean run the per-class bills (engine
//!   class split plus gateway-side attribution) sum to exactly the
//!   untagged total the node cost recorders saw: class tagging is a
//!   partition of the bill, not an estimate.
//! * **Thread invariance** — the whole [`ServiceOutcome::signature`]
//!   (counts, bills, histograms, handler runs) is identical at 1, 2,
//!   and 4 substrate worker threads.
//! * **Overload knee** — past the admission knee, goodput holds within
//!   5% of its peak while the shed fraction keeps rising: admission
//!   control converts overload into shedding, not congestion collapse.

use timego_netsim::{CrashWindow, FaultConfig, NodeId};
use timego_workloads::service::{
    run_service, serving_machine, serving_machine_chaos, AdmissionWindow, BalancerPolicy,
    QosClass, ServiceOutcome, ServiceSpec,
};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn nodes(lo: usize, count: usize) -> Vec<NodeId> {
    (lo..lo + count).map(n).collect()
}

/// The overloaded fixture: a single gateway and a three-server pool
/// whose admission window is the bottleneck at small arrival intervals.
fn overload_spec(interval: u64) -> ServiceSpec {
    ServiceSpec {
        gateways: vec![n(0)],
        servers: nodes(1, 3),
        policy: BalancerPolicy::LeastLoaded,
        window: AdmissionWindow::TierGlobal(32),
        classes: vec![
            QosClass::interactive(interval, 260, 1 << 17),
            QosClass::batch(interval * 2, 130),
        ],
        seed: 42,
        ..ServiceSpec::default()
    }
}

fn assert_conserved(out: &ServiceOutcome) {
    assert_eq!(out.in_flight_at_end, 0, "quiesced run must have nothing in flight");
    for c in &out.classes {
        assert_eq!(c.offered, c.admitted + c.shed, "arrival conservation ({})", c.name);
        assert_eq!(c.admitted, c.completed + c.failed, "settlement conservation ({})", c.name);
        assert_eq!(
            c.completion.count() as usize,
            c.admitted,
            "every admitted request settles into the histogram ({})",
            c.name
        );
    }
}

#[test]
fn conservation_holds_at_quiesce_under_sustained_overload() {
    let mut m = serving_machine(128, 2, 1, 42);
    let out = run_service(&mut m, &overload_spec(1));
    assert_conserved(&out);
    let shed: usize = out.classes.iter().map(|c| c.shed).sum();
    assert!(shed > 0, "the overload fixture must actually shed (got none)");
    assert!(
        out.peak_in_flight <= 32,
        "admission bound violated: {} in flight",
        out.peak_in_flight
    );
    println!(
        "overload conservation: shed {shed}, peak in-flight {}, goodput {:.1}/kc",
        out.peak_in_flight,
        out.goodput_per_kcycle()
    );
}

#[test]
fn crash_windows_on_the_gateway_reexecute_to_exactly_once() {
    // Crash the gateway twice while the recovery-armed batch population
    // is in flight. Re-executions re-send requests the servers may
    // already have answered; the reply cache must absorb them.
    let fault = FaultConfig {
        crashes: vec![
            CrashWindow { node: n(0), start: 500, end: 900 },
            CrashWindow { node: n(0), start: 1600, end: 2000 },
        ],
        ..FaultConfig::default()
    };
    let mut m = serving_machine_chaos(64, 2, 1, fault, 42);
    let spec = ServiceSpec {
        gateways: vec![n(0)],
        servers: nodes(1, 4),
        policy: BalancerPolicy::RoundRobin,
        window: AdmissionWindow::TierGlobal(64),
        classes: vec![QosClass::batch(24, 120)],
        seed: 42,
        ..ServiceSpec::default()
    };
    let out = run_service(&mut m, &spec);
    assert_conserved(&out);
    let c = &out.classes[0];
    assert_eq!(c.failed, 0, "recovery must carry every request through the crashes");
    assert!(
        c.re_executions > 0,
        "the crash windows must force at least one engine re-execution"
    );
    let runs: u64 = out.handler_runs.values().sum();
    assert_eq!(
        runs, c.admitted as u64,
        "exactly-once: handler runs must equal admitted requests despite {} re-executions",
        c.re_executions
    );
    println!(
        "exactly-once: {} admitted, {} handler runs, {} re-executions",
        c.admitted, runs, c.re_executions
    );
}

#[test]
fn per_class_bills_sum_to_the_untagged_node_totals() {
    // A clean two-class run: every instruction recorded at any node was
    // induced by a classed request (op start/step at both endpoints,
    // gateway admission/routing) — so the per-class bills must be a
    // partition of the machine-wide total, not an approximation.
    const NODES: usize = 64;
    let mut m = serving_machine(NODES, 2, 1, 42);
    let spec = ServiceSpec {
        gateways: vec![n(0), n(1)],
        servers: nodes(8, 4),
        policy: BalancerPolicy::ConsistentHash { vnodes: 64 },
        window: AdmissionWindow::TierGlobal(64),
        classes: vec![
            QosClass::interactive(8, 80, 1 << 20),
            QosClass::batch(12, 50),
        ],
        seed: 42,
        ..ServiceSpec::default()
    };
    let out = run_service(&mut m, &spec);
    assert_conserved(&out);
    for c in &out.classes {
        assert_eq!(c.shed, 0, "the additivity fixture must stay under the bound");
        assert_eq!(c.failed, 0, "the additivity fixture must stay clean");
    }
    let classed: u64 = out.classes.iter().map(|c| c.bill.total()).sum();
    let untagged: u64 = (0..NODES).map(|i| m.cpu(n(i)).snapshot().total()).sum();
    assert_eq!(
        classed, untagged,
        "per-class bills must partition the node recorders' total"
    );
    assert!(untagged > 0, "the run must have billed something");
    println!("bill additivity: {classed} classed == {untagged} recorded");
}

#[test]
fn outcome_signature_is_identical_at_every_thread_count() {
    // Same spec, same sharded substrate parameters, different worker
    // thread counts: bills, histograms, shed counts, and handler runs
    // must all be byte-identical (the signature folds them all).
    let spec = overload_spec(2);
    let mut signatures = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = serving_machine(128, 2, threads, 42);
        let out = run_service(&mut m, &spec);
        assert_conserved(&out);
        signatures.push((threads, out.signature()));
    }
    let (_, pinned) = signatures[0];
    for &(threads, sig) in &signatures[1..] {
        assert_eq!(
            sig, pinned,
            "worker-thread count {threads} changed the serving outcome"
        );
    }
    println!("thread invariance: signature {pinned:#018x} at t1/t2/t4");
}

#[test]
fn goodput_holds_within_five_percent_of_peak_past_the_admission_knee() {
    // Sweep the overload fixture from light load to 2x past its knee.
    // Admission control must convert the excess into shedding while
    // goodput stays within 5% of the peak — the anti-collapse contract
    // the serving bench's overload curve reports.
    let mut curve = Vec::new();
    for interval in [8u64, 2, 1] {
        let mut m = serving_machine(128, 2, 1, 42);
        let out = run_service(&mut m, &overload_spec(interval));
        assert_conserved(&out);
        curve.push((interval, out.goodput_per_kcycle(), out.shed_fraction()));
    }
    let peak = curve.iter().map(|&(_, g, _)| g).fold(0.0f64, f64::max);
    let (_, light_g, light_shed) = curve[0];
    let (_, knee_g, knee_shed) = curve[1];
    let (_, past_g, past_shed) = curve[2];
    assert_eq!(light_shed, 0.0, "light load must not shed");
    assert!(light_g < knee_g, "goodput must rise up to the knee");
    assert!(knee_shed > 0.0, "the knee point must shed");
    assert!(
        past_shed > knee_shed,
        "pushing past the knee must shed more ({past_shed:.3} vs {knee_shed:.3})"
    );
    for (interval, g, shed) in &curve {
        println!("interval {interval}: goodput {g:.1}/kc, shed {:.1}%", shed * 100.0);
        if *shed > 0.0 {
            assert!(
                *g >= 0.95 * peak,
                "goodput at interval {interval} fell {:.1}% below the {peak:.1} peak",
                (1.0 - g / peak) * 100.0
            );
        }
    }
    let _ = past_g;
}
