//! Liveness and crash-recovery plane: epoch-stamped sessions, engine
//! supervision, and node crash-restart faults.
//!
//! * **Epoch safety**: N back-to-back reliable transfers between the
//!   *same* ordered pair under a duplicating, jitter-delaying fault
//!   plane stay exactly-once and byte-exact on every substrate
//!   (switched fat tree, dateline wormhole torus, dual request/reply).
//!   Stale duplicates of earlier same-pair sessions are recognized by
//!   their epoch/nonce and discarded as fault-tolerance work — the
//!   in-order and buffer-management bills never move.
//! * **Crash recovery**: a node crash window mid-transfer erases the
//!   receiver's protocol state; the source detects the restart via the
//!   crash counter, fails fast with the retryable `SessionReset`, and
//!   `xfer_reliable_recovering` re-executes under a fresh epoch until
//!   delivery is exactly-once and byte-exact, all billed to fault
//!   tolerance.
//! * **Supervision**: per-op deadlines and the no-progress watchdog
//!   settle individual wedged operations with the retryable
//!   `DeadlineExceeded`; `cancel` settles an op anywhere in the
//!   scheduler and cascades into dependents; `quiesce` cancels waiting
//!   work and drains the fabric.

use timego_am::{
    CmamConfig, Engine, Machine, OpOutcome, ProtocolError, RetryPolicy, Tags,
};
use timego_cost::Feature;
use timego_netsim::{
    CrashWindow, DualNetwork, FaultConfig, NodeId, Torus2D, VcDiscipline, WormholeConfig,
    WormholeNetwork,
};
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

const NODES: usize = 16;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn machine(sub: &str, fault: &FaultConfig, seed: u64) -> Machine {
    match sub {
        "switched" => Machine::new(
            share(scenarios::cm5_chaos(NODES, fault.clone(), seed)),
            NODES,
            CmamConfig::default(),
        ),
        "wormhole" => Machine::new(
            share(WormholeNetwork::new(
                Torus2D::new(4, 4),
                WormholeConfig {
                    virtual_channels: 2,
                    discipline: VcDiscipline::Dateline,
                    fault: fault.clone(),
                    seed,
                    ..WormholeConfig::default()
                },
            )),
            NODES,
            CmamConfig::default(),
        ),
        "dual" => Machine::new(
            share(DualNetwork::new(
                scenarios::cm5_chaos(NODES, fault.clone(), seed),
                scenarios::cm5_chaos(NODES, fault.clone(), seed ^ 0x9e37),
                Tags::RPC_REPLY,
            )),
            NODES,
            CmamConfig::default(),
        ),
        other => panic!("unknown substrate {other}"),
    }
}

fn dup_jitter() -> FaultConfig {
    FaultConfig { duplicate_prob: 0.10, delay_jitter: 8, ..FaultConfig::default() }
}

/// N back-to-back same-ordered-pair reliable transfers under dup+jitter
/// on all three substrates: every session must deliver exactly-once and
/// byte-exact. This is the wedge the epoch-stamped handshake fixes — a
/// jitter-delayed duplicate of session k's request or reply arriving
/// during session k+1 used to poison the later handshake.
#[test]
fn repeated_same_pair_transfers_stay_exact_under_dup_jitter() {
    const TRANSFERS: usize = 6;
    let policy = RetryPolicy::default();
    for sub in ["switched", "wormhole", "dual"] {
        for seed in 0..4u64 {
            let mut m = machine(sub, &dup_jitter(), seed);
            for k in 0..TRANSFERS {
                let data = payloads::mixed(24 + (k % 8), seed.wrapping_add(k as u64));
                let out = m
                    .xfer_reliable(n(2), n(9), &data, &policy)
                    .unwrap_or_else(|e| panic!("{sub}/seed {seed}/transfer {k}: {e}"));
                assert_eq!(
                    m.read_buffer(n(9), out.xfer.dst_buffer, data.len()),
                    data,
                    "{sub}/seed {seed}/transfer {k}: payload must be byte-exact"
                );
            }
        }
    }
}

/// Same-pair repetition under dup+jitter bills every discarded stale
/// packet to fault tolerance and nothing else: the in-order and
/// buffer-management totals of the faulted run equal the clean run's
/// exactly, and at least one seed must actually exercise a stale-epoch
/// discard (fault-tolerance bill strictly above clean).
#[test]
fn stale_epoch_discards_bill_fault_tolerance_only() {
    const TRANSFERS: usize = 6;
    let policy = RetryPolicy::default();
    let mut exercised = false;
    for seed in 0..6u64 {
        let run = |fault: &FaultConfig| {
            let mut m = machine("switched", fault, seed);
            m.reset_costs();
            for k in 0..TRANSFERS {
                let data = payloads::mixed(24 + (k % 8), seed.wrapping_add(k as u64));
                m.xfer_reliable(n(2), n(9), &data, &policy)
                    .unwrap_or_else(|e| panic!("seed {seed}/transfer {k}: {e}"));
            }
            m
        };
        let faulted = run(&dup_jitter());
        let clean = run(&FaultConfig::default());
        for node in [n(2), n(9)] {
            let f = faulted.cpu(node).snapshot();
            let c = clean.cpu(node).snapshot();
            assert_eq!(
                f.feature_total(Feature::InOrder),
                c.feature_total(Feature::InOrder),
                "seed {seed}: in-order totals must not move under duplication"
            );
            assert_eq!(
                f.feature_total(Feature::BufferMgmt),
                c.feature_total(Feature::BufferMgmt),
                "seed {seed}: buffer-management totals must not move under duplication"
            );
        }
        let ft = |m: &Machine| {
            m.cpu(n(2)).snapshot().feature_total(Feature::FaultTol)
                + m.cpu(n(9)).snapshot().feature_total(Feature::FaultTol)
        };
        if ft(&faulted) > ft(&clean) {
            exercised = true;
        }
    }
    assert!(exercised, "at least one seed must discard recovery traffic");
}

/// A node crash mid-transfer erases the receiver's protocol state. The
/// session dies with a retryable error (`SessionReset` once the restart
/// is observed, or a phase timeout if the retry budget drains inside
/// the crash window first); `xfer_reliable_recovering` re-executes
/// under a fresh epoch and converges to exactly-once byte-exact
/// delivery, with the re-establishment billed to fault tolerance.
#[test]
fn crash_mid_transfer_recovers_end_to_end() {
    let policy = RetryPolicy::default();
    let data = payloads::mixed(256, 42);
    let mut recovered = 0;
    for seed in 0..4u64 {
        let fault = FaultConfig {
            crashes: vec![CrashWindow { node: n(9), start: 50, end: 3000 }],
            ..FaultConfig::default()
        };
        let mut m = machine("switched", &fault, seed);
        m.reset_costs();
        let (out, re_executions) = m
            .xfer_reliable_recovering(n(2), n(9), &data, &policy)
            .unwrap_or_else(|e| panic!("seed {seed}: recovery must converge: {e}"));
        assert_eq!(
            m.read_buffer(n(9), out.xfer.dst_buffer, data.len()),
            data,
            "seed {seed}: payload must be byte-exact after crash recovery"
        );
        if re_executions > 0 {
            recovered += 1;
            assert!(
                m.cpu(n(2)).snapshot().feature_total(Feature::FaultTol) > 0,
                "seed {seed}: session re-establishment must bill fault tolerance"
            );
        }
    }
    assert!(recovered > 0, "the crash window must force at least one re-execution");
}

/// A peer that crashed and restarted mid-session is detected by its
/// restart counter and surfaced as the retryable `SessionReset` naming
/// the crashed node (when the session survives long enough to observe
/// the restart rather than draining its retry budget inside the
/// window).
#[test]
fn restart_is_detected_and_retryable() {
    // A generous policy keeps the session alive across the whole crash
    // window, so the first failure it can die of is the restart
    // observation itself.
    let policy = RetryPolicy { max_attempts: 10, base_wait: 8192, ..RetryPolicy::default() };
    let fault = FaultConfig {
        crashes: vec![CrashWindow { node: n(9), start: 50, end: 4000 }],
        ..FaultConfig::default()
    };
    let mut m = machine("switched", &fault, 1);
    let err = m
        .xfer_reliable(n(2), n(9), &payloads::mixed(256, 7), &policy)
        .expect_err("the crash must kill this session");
    assert!(err.is_retryable(), "crash-induced failure must be retryable: {err}");
    match err {
        ProtocolError::SessionReset { node } => assert_eq!(node, n(9)),
        other => panic!("expected SessionReset, got {other}"),
    }
}

/// A per-op deadline settles an op that cannot complete in time with
/// the retryable `DeadlineExceeded`, without touching other ops.
#[test]
fn deadline_settles_op_without_collateral() {
    let policy = RetryPolicy::default();
    let mut m = machine("switched", &FaultConfig::default(), 3);
    let mut eng = Engine::new();
    let doomed = eng
        .submit_xfer_reliable_with_deadline(&m, n(2), n(9), &payloads::mixed(512, 1), &policy, 5)
        .unwrap();
    let data = payloads::mixed(64, 2);
    let fine = eng.submit_xfer_reliable(&m, n(4), n(11), &data, &policy).unwrap();
    eng.run(&mut m);
    match eng.take_outcome(doomed).unwrap() {
        Err(e @ ProtocolError::DeadlineExceeded { .. }) => {
            assert!(e.is_retryable(), "deadline expiry must be retryable");
        }
        other => panic!("a 5-cycle deadline cannot be met, got {other:?}"),
    }
    match eng.take_outcome(fine).unwrap() {
        Ok(OpOutcome::Reliable(out)) => {
            assert_eq!(m.read_buffer(n(11), out.xfer.dst_buffer, data.len()), data);
        }
        other => panic!("the undeadlined op must complete: {other:?}"),
    }
}

/// The watchdog settles an op that stops progressing (here: every
/// packet dropped, with protocol retry windows too wide to fire first)
/// instead of wedging the whole engine.
#[test]
fn watchdog_settles_wedged_op() {
    let fault = FaultConfig { drop_prob: 1.0, ..FaultConfig::default() };
    let mut m = machine("switched", &fault, 5);
    // Retry windows far beyond the watchdog bound: the op itself would
    // wait ~2^19 cycles before even retrying.
    let policy = RetryPolicy { max_attempts: 4, base_wait: 1 << 19, max_wait: 1 << 19, ..RetryPolicy::default() };
    let mut eng = Engine::new();
    eng.set_watchdog(500);
    let id = eng.submit_xfer_reliable(&m, n(2), n(9), &[1, 2, 3, 4], &policy).unwrap();
    eng.run(&mut m);
    match eng.take_outcome(id).unwrap() {
        Err(ProtocolError::DeadlineExceeded { what, .. }) => assert_eq!(what, "watchdog"),
        other => panic!("expected the watchdog to fire, got {other:?}"),
    }
}

/// `cancel` settles an op anywhere in the scheduler; dependents fail
/// with `DependencyFailed` rooted at the cancellation.
#[test]
fn cancel_cascades_into_dependents() {
    let policy = RetryPolicy::default();
    let mut m = machine("switched", &FaultConfig::default(), 7);
    let mut eng = Engine::new();
    let a = eng.submit_xfer_reliable(&m, n(2), n(9), &payloads::mixed(64, 3), &policy).unwrap();
    let b = eng
        .submit_xfer_reliable_after(&m, n(9), n(12), &payloads::mixed(64, 4), &policy, &[a])
        .unwrap();
    assert!(eng.cancel(&m, a), "a is pending and must be cancellable");
    assert!(!eng.cancel(&m, a), "double-cancel is a no-op");
    eng.run(&mut m);
    assert_eq!(eng.take_outcome(a).unwrap(), Err(ProtocolError::Cancelled));
    match eng.take_outcome(b).unwrap() {
        Err(ProtocolError::DependencyFailed { failed, root }) => {
            assert_eq!(failed, a);
            assert_eq!(*root, ProtocolError::Cancelled);
        }
        other => panic!("b must fail on a's cancellation, got {other:?}"),
    }
}

/// `quiesce` cancels everything still waiting, completes what is
/// running, and leaves the fabric empty.
#[test]
fn quiesce_cancels_waiting_work_and_drains_the_fabric() {
    let policy = RetryPolicy::default();
    let mut m = machine("switched", &FaultConfig::default(), 9);
    let mut eng = Engine::new();
    let data = payloads::mixed(128, 5);
    let running = eng.submit_xfer_reliable(&m, n(2), n(9), &data, &policy).unwrap();
    // Same ordered pair: queued behind `running`'s conflict key.
    let waiting = eng.submit_xfer_reliable(&m, n(2), n(9), &data, &policy).unwrap();
    // Admit the first op so it is genuinely running before we quiesce.
    eng.pump(&mut m);
    eng.quiesce(&mut m);
    assert_eq!(eng.unfinished(), 0);
    match eng.take_outcome(running).unwrap() {
        Ok(OpOutcome::Reliable(out)) => {
            assert_eq!(m.read_buffer(n(9), out.xfer.dst_buffer, data.len()), data);
        }
        other => panic!("the running op must finish cleanly: {other:?}"),
    }
    assert_eq!(eng.take_outcome(waiting).unwrap(), Err(ProtocolError::Cancelled));
    assert_eq!(m.network().borrow().in_flight(), 0, "quiesce leaves the fabric empty");
}
