//! Engine concurrency properties.
//!
//! * **One run, many machines**: at least 8 operations across at least
//!   8 nodes progress concurrently inside a single [`Engine::run`] —
//!   proven from the scheduler trace (operations alternate `Progressed`
//!   events; completions land while other operations are still moving),
//!   not from serialized end states.
//! * **Cost identity**: interleaving K operations charges exactly the
//!   same per-node, per-feature instruction totals as running the same
//!   operations serially through the blocking API — for disjoint node
//!   pairs, for operations sharing an endpoint, and for same-pair
//!   operations the engine serializes by conflict key.
//! * **Correlation**: concurrent RPCs to one server match replies by
//!   call id and run handlers exactly once each.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use timego_am::{CmamConfig, Engine, EngineEvent, Machine, OpId, OpOutcome, RetryPolicy, TracedEvent};
use timego_cost::Feature;
use timego_netsim::{DeliveryScript, NodeId, ScriptedNetwork};
use timego_ni::share;
use timego_workloads::{concurrent, payloads, scenarios};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn instant_machine(nodes: usize) -> Machine {
    Machine::new(share(ScriptedNetwork::new(nodes, DeliveryScript::InOrder)), nodes, CmamConfig::default())
}

/// Per-node, per-feature instruction totals.
fn feature_matrix(m: &Machine, nodes: usize) -> Vec<Vec<u64>> {
    (0..nodes)
        .map(|i| {
            Feature::ALL.iter().map(|&f| m.cpu(n(i)).snapshot().feature_total(f)).collect()
        })
        .collect()
}

fn progressed(trace: &[TracedEvent]) -> Vec<OpId> {
    trace
        .iter()
        .filter_map(|e| match e.event {
            EngineEvent::Progressed(id) => Some(id),
            _ => None,
        })
        .collect()
}

#[test]
fn eight_plus_ops_across_eight_plus_nodes_interleave_in_one_run() {
    const NODES: usize = 16;
    let mut m = concurrent::switched_machine(NODES, 23);
    let mut eng = Engine::new();

    // 8 reliable transfers on disjoint pairs: 16 distinct nodes.
    let policy = RetryPolicy::default();
    let mut expected = Vec::new();
    for i in 0..8 {
        let (src, dst) = (n(2 * i), n(2 * i + 1));
        let data = payloads::mixed(64, i as u64);
        let id = eng.submit_xfer_reliable(&m, src, dst, &data, &policy).expect("valid");
        expected.push((id, dst, data));
    }
    // Plus 4 concurrent RPCs riding the same run (no conflict keys).
    let calls = Rc::new(RefCell::new(0u32));
    let counter = calls.clone();
    m.register_rpc_handler(n(1), 40, move |_, msg| {
        *counter.borrow_mut() += 1;
        [msg.words[0] * 3, 0, 0, 0]
    });
    let rpcs: Vec<(OpId, u32)> = (0..4u32)
        .map(|v| (eng.submit_rpc(&mut m, n(2 + 2 * (v as usize)), n(1), 40, [v, 0, 0, 0], None), v))
        .collect();

    eng.run(&mut m);
    assert_eq!(eng.unfinished(), 0);

    // Every operation completed, byte-exact.
    for (id, dst, data) in &expected {
        match eng.take_outcome(*id).expect("finished").expect("completed") {
            OpOutcome::Reliable(out) => {
                assert_eq!(&m.read_buffer(*dst, out.xfer.dst_buffer, data.len()), data);
            }
            other => panic!("expected reliable outcome, got {other:?}"),
        }
    }
    for (id, v) in &rpcs {
        match eng.take_outcome(*id).expect("finished").expect("completed") {
            OpOutcome::Rpc(reply) => assert_eq!(reply[0], v * 3),
            other => panic!("expected rpc outcome, got {other:?}"),
        }
    }
    assert_eq!(*calls.borrow(), 4, "each rpc handler runs exactly once");

    // Interleaving, from the trace. Serial execution would give exactly
    // (ops - 1) switches between consecutive Progressed events; demand
    // far more, and demand a strict a-b-a alternation for most ops.
    let prog = progressed(eng.trace());
    let distinct: HashMap<OpId, ()> = prog.iter().map(|id| (*id, ())).collect();
    assert!(distinct.len() >= 12, "all 12 ops progressed, saw {}", distinct.len());
    let switches = prog.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        switches >= 2 * distinct.len(),
        "expected heavy interleaving, saw only {switches} switches across {} ops",
        distinct.len()
    );
    let mut first = HashMap::new();
    let mut last = HashMap::new();
    for (i, id) in prog.iter().enumerate() {
        first.entry(*id).or_insert(i);
        last.insert(*id, i);
    }
    let aba = prog
        .iter()
        .enumerate()
        .filter(|(i, id)| {
            first.iter().any(|(o, &f)| o != *id && f < *i && last[o] > *i)
        })
        .count();
    assert!(aba > 0, "no operation progressed strictly inside another's lifetime");

    // Completions interleave with progress: after the first Completed
    // event, other operations are still making progress.
    let trace = eng.trace();
    let first_done = trace
        .iter()
        .position(|e| matches!(e.event, EngineEvent::Completed(_, _)))
        .expect("something completed");
    let done_id = match trace[first_done].event {
        EngineEvent::Completed(id, _) => id,
        _ => unreachable!(),
    };
    assert!(
        trace[first_done..]
            .iter()
            .any(|e| matches!(e.event, EngineEvent::Progressed(id) if id != done_id)),
        "first completion was not followed by progress of any other op — serialized run"
    );
}

#[test]
fn disjoint_concurrent_ops_cost_identical_to_serial_blocking_runs() {
    const NODES: usize = 16;
    for k in [2usize, 4, 8] {
        let pairs: Vec<_> = (0..k).map(|i| (n(2 * i), n(2 * i + 1))).collect();
        let payload = |i: usize| payloads::mixed(32, 100 + i as u64);

        let mut serial = instant_machine(NODES);
        for (i, (src, dst)) in pairs.iter().enumerate() {
            serial.xfer(*src, *dst, &payload(i)).expect("instant substrate");
        }

        let mut conc = instant_machine(NODES);
        let mut eng = Engine::new();
        let ids: Vec<_> = pairs
            .iter()
            .enumerate()
            .map(|(i, (src, dst))| eng.submit_xfer(&conc, *src, *dst, &payload(i)).expect("valid"))
            .collect();
        eng.run(&mut conc);
        for id in ids {
            assert!(eng.take_outcome(id).expect("finished").is_ok());
        }

        assert_eq!(
            feature_matrix(&conc, NODES),
            feature_matrix(&serial, NODES),
            "k={k}: interleaving must not change any node's per-feature bill"
        );
    }
}

#[test]
fn shared_endpoint_concurrent_ops_cost_identical_to_serial() {
    const NODES: usize = 8;
    // Fan-out: node 0 transfers to 1..=3 concurrently (distinct conflict
    // keys), and fan-in: nodes 5..=7 transfer to node 4.
    let fan: Vec<(NodeId, NodeId)> =
        vec![(n(0), n(1)), (n(0), n(2)), (n(0), n(3)), (n(5), n(4)), (n(6), n(4)), (n(7), n(4))];
    let payload = |i: usize| payloads::mixed(24, 7 + i as u64);

    let mut serial = instant_machine(NODES);
    for (i, (src, dst)) in fan.iter().enumerate() {
        serial.xfer(*src, *dst, &payload(i)).expect("instant substrate");
    }

    let mut conc = instant_machine(NODES);
    let mut eng = Engine::new();
    let ids: Vec<_> = fan
        .iter()
        .enumerate()
        .map(|(i, (src, dst))| eng.submit_xfer(&conc, *src, *dst, &payload(i)).expect("valid"))
        .collect();
    eng.run(&mut conc);
    for (i, id) in ids.into_iter().enumerate() {
        let out = eng.take_outcome(id).expect("finished").expect("completed");
        match out {
            OpOutcome::Xfer(x) => {
                assert_eq!(conc.read_buffer(fan[i].1, x.dst_buffer, 24), payload(i));
            }
            other => panic!("expected xfer outcome, got {other:?}"),
        }
    }

    assert_eq!(
        feature_matrix(&conc, NODES),
        feature_matrix(&serial, NODES),
        "shared-endpoint interleaving must not change any node's per-feature bill"
    );
}

#[test]
fn same_pair_ops_serialize_fifo_with_serial_cost() {
    let mut serial = instant_machine(2);
    let a = payloads::mixed(16, 1);
    let b = payloads::mixed(16, 2);
    serial.xfer(n(0), n(1), &a).expect("instant substrate");
    serial.xfer(n(0), n(1), &b).expect("instant substrate");

    let mut conc = instant_machine(2);
    let mut eng = Engine::new();
    let ia = eng.submit_xfer(&conc, n(0), n(1), &a).expect("valid");
    let ib = eng.submit_xfer(&conc, n(0), n(1), &b).expect("valid");
    eng.run(&mut conc);

    // FIFO: the second op starts only after the first completes.
    let trace = eng.trace();
    let done_a = trace
        .iter()
        .position(|e| matches!(e.event, EngineEvent::Completed(id, _) if id == ia))
        .expect("first op completed");
    let start_b = trace
        .iter()
        .position(|e| matches!(e.event, EngineEvent::Started(id) if id == ib))
        .expect("second op started");
    assert!(start_b > done_a, "same-pair ops must serialize in submission order");

    let out_a = match eng.take_outcome(ia).unwrap().unwrap() {
        OpOutcome::Xfer(x) => x,
        other => panic!("{other:?}"),
    };
    let out_b = match eng.take_outcome(ib).unwrap().unwrap() {
        OpOutcome::Xfer(x) => x,
        other => panic!("{other:?}"),
    };
    assert_ne!(out_a.dst_buffer, out_b.dst_buffer, "each transfer gets its own segment");
    assert_eq!(conc.read_buffer(n(1), out_a.dst_buffer, 16), a);
    assert_eq!(conc.read_buffer(n(1), out_b.dst_buffer, 16), b);

    assert_eq!(feature_matrix(&conc, 2), feature_matrix(&serial, 2));
}

#[test]
fn completion_percentiles_derive_from_cycle_stamped_trace() {
    // The congestion study's foundation: per-operation completion-time
    // distributions must be recoverable from the cycle-stamped event
    // trace alone. Re-derive them here by hand and check the engine's
    // own accessors agree, percentile by percentile.
    const NODES: usize = 8;
    let mut m = concurrent::switched_machine(NODES, 17);
    let mut eng = Engine::new();
    let mut ids = Vec::new();
    for i in 0..NODES {
        let data = payloads::mixed(24, i as u64);
        ids.push(eng.submit_xfer(&m, n(i), n((i + 1) % NODES), &data).expect("valid"));
    }
    eng.run(&mut m);

    // Hand-derived: pair each op's Submitted stamp with its Completed
    // stamp, straight off the trace.
    let mut submitted = HashMap::new();
    let mut derived = HashMap::new();
    for e in eng.trace() {
        match e.event {
            EngineEvent::Submitted(id) => {
                submitted.insert(id, e.at);
            }
            EngineEvent::Completed(id, _) => {
                derived.insert(id, e.at - submitted[&id]);
            }
            _ => {}
        }
    }
    assert_eq!(derived.len(), ids.len(), "every op completed");

    let engine_times: HashMap<OpId, u64> = eng.completion_times().into_iter().collect();
    assert_eq!(engine_times, derived, "completion_times() is exactly the trace derivation");

    let mut by_hand = timego_netsim::LatencyStats::default();
    for &t in derived.values() {
        by_hand.record(t);
    }
    let stats = eng.completion_stats();
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(stats.quantile(q), by_hand.quantile(q), "q={q}");
    }
    assert!(stats.quantile(0.99) > 0, "real transfers take real cycles");
}

#[test]
fn concurrent_rpcs_to_one_server_correlate_by_call_id() {
    const NODES: usize = 9;
    let mut m = Machine::new(
        share(scenarios::cm5_adaptive(NODES, 3)),
        NODES,
        CmamConfig::default(),
    );
    let calls = Rc::new(RefCell::new(0u32));
    let counter = calls.clone();
    m.register_rpc_handler(n(0), 50, move |_, msg| {
        *counter.borrow_mut() += 1;
        [msg.words[0].wrapping_mul(7), msg.words[1], 0, 0]
    });

    let mut eng = Engine::new();
    let ids: Vec<(OpId, u32)> = (1..NODES)
        .map(|i| {
            let v = i as u32;
            (eng.submit_rpc(&mut m, n(i), n(0), 50, [v, v * 11, 0, 0], None), v)
        })
        .collect();
    eng.run(&mut m);

    for (id, v) in ids {
        match eng.take_outcome(id).expect("finished").expect("completed") {
            OpOutcome::Rpc(reply) => {
                assert_eq!(reply, [v.wrapping_mul(7), v * 11, 0, 0], "caller {v} got its own reply");
            }
            other => panic!("expected rpc outcome, got {other:?}"),
        }
    }
    assert_eq!(*calls.borrow(), (NODES - 1) as u32, "handlers ran exactly once per call");
}

/// ROADMAP satellite: shrink the receive queue until the network
/// actually refuses injections, and prove the engine's idle-cycle
/// advancement still drains everything — no livelock, no timeout —
/// with the queue's high-water mark pinned at its capacity.
///
/// An engine consumer alone can never make the receive queue the brake:
/// its peek-gated receives drain every delivery within the same sweep,
/// so depth never exceeds one and `rx_queue_capacity` stays
/// epiphenomenal. The honest construction is two-phase: first fill the
/// hot node's queue with raw injections while *no* consumer runs, until
/// the full queue blocks last-hop delivery, backs the link queues up to
/// the source, and the fabric refuses the injection — then hand the
/// saturated machine to the engine and let it drain.
#[test]
fn small_rx_queues_refuse_injections_but_never_livelock() {
    use timego_netsim::{FatTree, InjectError, Packet, SwitchedConfig, SwitchedNetwork};

    let tag = timego_am::Tags::USER_BASE + 5;
    let words = [9u32, 9, 9, 9];
    let mut admitted: Vec<(usize, usize)> = Vec::new();
    for cap in [16usize, 4, 2, 1] {
        let net = SwitchedNetwork::new(
            FatTree::new(4, 2, 2),
            SwitchedConfig { rx_queue_capacity: cap, seed: 9, ..SwitchedConfig::default() },
        );
        let mut m = Machine::new(share(net), 8, CmamConfig::default());

        // Fill: keep injecting 6 → 7 with no consumer. Early refusals
        // are transient (the first-hop queue drains forward at link
        // rate); once the receive queue is full, deliveries block in
        // place, the backup reaches the source, and injection stays
        // refused no matter how long the fabric settles — that wedge
        // is the stop condition.
        let mut injected = 0usize;
        'fill: loop {
            assert!(injected < 10_000, "cap {cap}: the fabric never pushed back");
            for _ in 0..400 {
                let accepted = {
                    let mut net = m.network().borrow_mut();
                    match net.try_inject(Packet::new(n(6), n(7), tag, 0, words.to_vec())) {
                        Ok(()) => true,
                        Err(InjectError::Backpressure) => false,
                        Err(e) => panic!("cap {cap}: unexpected inject error {e}"),
                    }
                };
                m.network().borrow_mut().advance(1);
                if accepted {
                    injected += 1;
                    continue 'fill;
                }
            }
            break; // refused for 400 straight cycles: saturated
        }
        // Let every in-flight packet land or park behind the full queue.
        m.network().borrow_mut().advance(200);

        let (peak, backpressure, pending) = {
            let net = m.network().borrow();
            let stats = net.stats();
            (
                stats.occupancy_table()[7].peak_rx_depth,
                stats.backpressure,
                net.rx_pending(n(7)),
            )
        };
        assert!(backpressure > 0, "cap {cap}: refusal was not counted");
        assert_eq!(peak, cap, "cap {cap}: high-water mark must pin at capacity");
        assert_eq!(pending, cap, "cap {cap}: queue must sit full with no consumer");
        admitted.push((cap, injected));

        // Drain: one engine op per admitted packet, all on the same
        // (src, dst) pair so the conflict key serializes them FIFO.
        // Each op's own send may itself be refused by the still-full
        // fabric — idle-cycle advancement must retry and drain the
        // whole backlog without livelock or timeout.
        let mut eng = Engine::new();
        let ids: Vec<OpId> =
            (0..injected).map(|_| eng.submit_am4(&m, n(6), n(7), tag, words).unwrap()).collect();
        eng.run(&mut m);
        assert_eq!(eng.unfinished(), 0);
        for id in ids {
            match eng.take_outcome(id).expect("finished") {
                Ok(OpOutcome::Am4(w)) => assert_eq!(w, words, "cap {cap}: bytes survived"),
                other => panic!("cap {cap}: a refused injection must retry, not wedge: {other:?}"),
            }
        }
    }
    // Shrinking the queue tightens the brake: with the link path fixed,
    // every slot removed from the receive queue is one fewer injection
    // the fabric admits before refusing.
    let count = |cap: usize| admitted.iter().find(|(c, _)| *c == cap).unwrap().1;
    for pair in [16usize, 4, 2, 1].windows(2) {
        assert!(
            count(pair[0]) > count(pair[1]),
            "admitted injections must shrink with the queue: cap {} admitted {}, cap {} admitted {}",
            pair[0],
            count(pair[0]),
            pair[1],
            count(pair[1])
        );
    }
}
