//! Behavioral verification of the network features (§2.2) whose
//! software costs the paper measures — experiment E8 of DESIGN.md.

use timego_netsim::{Network, NodeId, Packet};
use timego_workloads::{patterns, scenarios};

fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
    Packet::new(NodeId::new(src), NodeId::new(dst), 1, seq, vec![seq; 4])
}

#[test]
fn adaptive_routing_reorders_deterministic_does_not() {
    let run = |adaptive: bool| -> f64 {
        let mut net: Box<dyn Network> = if adaptive {
            Box::new(scenarios::cm5_adaptive(64, 42))
        } else {
            Box::new(scenarios::cm5_deterministic(64, 42))
        };
        let pairs = patterns::Pattern::RandomPermutation(3).pairs(64);
        for round in 0..30u32 {
            for (s, d) in &pairs {
                let _ = net.try_inject(Packet::new(*s, *d, 1, round, vec![round; 4]));
            }
            net.advance(2);
        }
        assert!(net.drain_extracting(1_000_000), "network must drain");
        net.stats().order.ooo_fraction()
    };
    assert_eq!(run(false), 0.0, "deterministic single-path routing preserves order");
    assert!(run(true) > 0.01, "adaptive multipath routing reorders");
}

#[test]
fn randomized_routing_also_reorders() {
    let mut net = timego_netsim::SwitchedNetwork::new(
        timego_netsim::FatTree::new(4, 3, 4),
        timego_netsim::SwitchedConfig {
            strategy: timego_netsim::RouteStrategy::Randomized { candidates: 4 },
            rx_queue_capacity: 4096,
            link_queue_capacity: 16,
            seed: 17,
            ..timego_netsim::SwitchedConfig::default()
        },
    );
    for s in 0..300u32 {
        while net.try_inject(pkt(0, 63, s)).is_err() {
            net.advance(1);
        }
    }
    assert!(net.drain(1_000_000));
    assert!(net.stats().order.out_of_order() > 0);
}

#[test]
fn detect_only_network_drops_corrupted_packets() {
    let mut net = scenarios::cm5_lossy(16, 0.2, 5);
    let mut sent = 0u32;
    while sent < 200 {
        if net.try_inject(pkt((sent as usize) % 8, 8, sent)).is_ok() {
            sent += 1;
        }
        net.advance(1);
    }
    assert!(net.drain_extracting(1_000_000));
    let st = net.stats();
    assert!(st.dropped_corrupt > 10);
    assert_eq!(st.delivered + st.dropped_corrupt, 200, "detected, never repaired");
}

#[test]
fn raw_network_stalls_when_receiver_stops_extracting() {
    let mut net = scenarios::tight_mesh(2, 1, 1);
    for s in 0..32u32 {
        let _ = net.try_inject(pkt(0, 1, s));
        net.advance(4);
    }
    net.advance(2_000);
    assert!(net.in_flight() > 0);
    assert!(net.stalled_for() >= 2_000, "wedged behind the full receive queue");
    // Extraction restores liveness — overflow safety is software's job.
    while net.try_receive(NodeId::new(1)).is_some() {}
    net.advance(200);
    assert!(net.stalled_for() < 200);
}

#[test]
fn cr_network_never_reorders_never_loses() {
    let mut net = scenarios::cr_lossy(2, 0.3, 9);
    let mut sent = 0u32;
    let mut got = Vec::new();
    while sent < 300 || net.in_flight() > 0 {
        if sent < 300 && net.try_inject(pkt(0, 1, sent)).is_ok() {
            sent += 1;
        }
        net.advance(1);
        while let Some(p) = net.try_receive(NodeId::new(1)) {
            assert!(!p.is_corrupted());
            got.push(p.header());
        }
    }
    assert_eq!(got.len(), 300);
    assert!(got.windows(2).all(|w| w[0] < w[1]), "strictly in order");
    assert!(net.stats().hw_retransmits > 30, "corruption really happened");
    assert_eq!(net.stats().dropped_corrupt, 0);
}

#[test]
fn cr_header_rejection_keeps_other_traffic_live() {
    let mut net = scenarios::cr(3, 4);
    // Saturate node 1 (which never polls).
    for s in 0..4u32 {
        net.try_inject(pkt(0, 1, s)).unwrap();
    }
    net.advance(500);
    assert!(net.stats().rejects > 0 || net.rx_pending(NodeId::new(1)) > 0);
    // Node 0 → node 2 still flows.
    net.try_inject(pkt(0, 2, 0)).unwrap();
    net.advance(200);
    assert!(net.try_receive(NodeId::new(2)).is_some());
}

#[test]
fn latency_grows_with_distance_on_the_mesh() {
    let mut close = timego_netsim::SwitchedNetwork::new(
        timego_netsim::Mesh2D::new(8, 8),
        timego_netsim::SwitchedConfig::default(),
    );
    close.try_inject(pkt(0, 1, 0)).unwrap();
    close.drain(10_000);
    let near = close.stats().latency.mean();

    let mut far = timego_netsim::SwitchedNetwork::new(
        timego_netsim::Mesh2D::new(8, 8),
        timego_netsim::SwitchedConfig::default(),
    );
    far.try_inject(pkt(0, 63, 0)).unwrap();
    far.drain(10_000);
    assert!(far.stats().latency.mean() > near, "hops cost cycles");
}

#[test]
fn torus_and_fat_tree_both_deliver_permutations() {
    let mut torus = timego_netsim::SwitchedNetwork::new(
        timego_netsim::Torus2D::new(4, 4),
        timego_netsim::SwitchedConfig { rx_queue_capacity: 256, ..Default::default() },
    );
    let pairs = patterns::Pattern::BitReverse.pairs(16);
    let expected = pairs.len() as u64;
    for (i, (s, d)) in pairs.iter().enumerate() {
        while torus
            .try_inject(Packet::new(*s, *d, 1, i as u32, vec![i as u32; 4]))
            .is_err()
        {
            torus.advance(1);
        }
    }
    assert!(torus.drain(1_000_000));
    assert_eq!(torus.stats().delivered, expected);
}
