//! Run-after dependency semantics, proven from the scheduler trace.
//!
//! * **Topological order**: a diamond DAG admits each operation only
//!   after every predecessor completes — `Released`/`Started` events
//!   land strictly after the predecessors' `Completed` events.
//! * **Failure propagation**: a failing predecessor fails all
//!   transitive dependents with [`ProtocolError::DependencyFailed`],
//!   each naming its *direct* failed predecessor, and submitting
//!   against an already-failed predecessor fails at submission.
//! * **Cycle rejection**: dependency edges must point backward to ids
//!   the engine has already minted, so cycles (and self-edges) are
//!   structurally impossible and rejected at submission.
//! * **Held time**: `completion_times()` anchors at submission and so
//!   *includes* time held behind predecessors; `hold_times()` exposes
//!   the held span for callers that want pure execution latency.

use timego_am::{CmamConfig, Engine, EngineEvent, Machine, OpId, OpOutcome, ProtocolError};
use timego_netsim::{DeliveryScript, FaultConfig, NodeId, ScriptedNetwork};
use timego_ni::share;
use timego_workloads::scenarios;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn instant_machine(nodes: usize) -> Machine {
    Machine::new(
        share(ScriptedNetwork::new(nodes, DeliveryScript::InOrder)),
        nodes,
        CmamConfig::default(),
    )
}

/// Trace position of the first matching event.
fn at(eng: &Engine, want: &EngineEvent) -> usize {
    eng.trace()
        .iter()
        .position(|e| e.event == *want)
        .unwrap_or_else(|| panic!("event {want:?} not in trace"))
}

#[test]
fn diamond_dag_completes_in_topological_order() {
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(4, 7)),
        4,
        CmamConfig::default(),
    );
    let mut eng = Engine::new();
    let data: Vec<u32> = (0..32).collect();
    // Diamond: a → {b, c} → d, on four distinct node pairs.
    let a = eng.submit_xfer(&m, n(0), n(1), &data).unwrap();
    let b = eng.submit_xfer_after(&m, n(1), n(2), &data, &[a]).unwrap();
    let c = eng.submit_xfer_after(&m, n(1), n(3), &data, &[a]).unwrap();
    let d = eng.submit_xfer_after(&m, n(2), n(3), &data, &[b, c]).unwrap();
    eng.run(&mut m);
    for id in [a, b, c, d] {
        assert!(eng.take_outcome(id).unwrap().is_ok(), "op {} failed", id.raw());
    }

    // A dependency-free op is released the moment it is submitted...
    assert_eq!(at(&eng, &EngineEvent::Released(a)), at(&eng, &EngineEvent::Submitted(a)) + 1);
    // ...while each dependent is released only after every predecessor
    // completed, and started only after release.
    let done = |id| at(&eng, &EngineEvent::Completed(id, true));
    for (dep, preds) in [(b, vec![a]), (c, vec![a]), (d, vec![b, c])] {
        let released = at(&eng, &EngineEvent::Released(dep));
        for p in preds {
            assert!(
                released > done(p),
                "op {} released at {} before predecessor {} completed at {}",
                dep.raw(),
                released,
                p.raw(),
                done(p)
            );
        }
        assert!(at(&eng, &EngineEvent::Started(dep)) > released);
    }
}

#[test]
fn failing_predecessor_fails_transitive_dependents() {
    // Every packet dropped: the root transfer can only time out.
    let fault = FaultConfig { drop_prob: 1.0, ..FaultConfig::default() };
    let mut m = Machine::new(
        share(scenarios::cm5_chaos(4, fault, 11)),
        4,
        CmamConfig { max_wait_cycles: 300, ..CmamConfig::default() },
    );
    let mut eng = Engine::new();
    let a = eng.submit_xfer(&m, n(0), n(1), &[1, 2, 3]).unwrap();
    let b = eng.submit_xfer_after(&m, n(1), n(2), &[1, 2, 3], &[a]).unwrap();
    let c = eng.submit_xfer_after(&m, n(2), n(3), &[1, 2, 3], &[b]).unwrap();
    eng.run(&mut m);

    // The root dies on its own timeout — or, if the per-op watchdog
    // bound is tighter than the protocol timeout under this config, on
    // the watchdog's `DeadlineExceeded`. Both are retryable liveness
    // errors; either way the failure cone below must collapse.
    let root_err = match eng.take_outcome(a).unwrap() {
        Err(e @ (ProtocolError::Timeout { .. } | ProtocolError::DeadlineExceeded { .. })) => e,
        other => panic!("root should die of a liveness error, got {other:?}"),
    };
    // Each dependent carries its *direct* failed predecessor, spelling
    // out the propagation path a → b → c, and every link carries the
    // same flattened root cause.
    match eng.take_outcome(b).unwrap() {
        Err(ProtocolError::DependencyFailed { failed, root }) => {
            assert_eq!(failed, a);
            assert_eq!(*root, root_err);
        }
        other => panic!("b should fail on a's failure, got {other:?}"),
    }
    match eng.take_outcome(c).unwrap() {
        Err(ProtocolError::DependencyFailed { failed, root }) => {
            assert_eq!(failed, b);
            assert_eq!(*root, root_err, "root cause flattens through the chain");
        }
        other => panic!("c should fail on b's failure, got {other:?}"),
    }
    // Dependents were never released or started.
    assert!(!eng.trace().iter().any(|e| e.event == EngineEvent::Released(b)));
    assert!(!eng.trace().iter().any(|e| e.event == EngineEvent::Started(c)));
}

#[test]
fn submitting_after_settled_predecessors_resolves_immediately() {
    let mut m = instant_machine(4);
    let mut eng = Engine::new();
    let ok = eng.submit_xfer(&m, n(0), n(1), &[1]).unwrap();
    eng.run(&mut m);
    assert!(eng.take_outcome(ok).unwrap().is_ok());

    // After a *successful* predecessor: released immediately, runs.
    let after_ok = eng.submit_xfer_after(&m, n(1), n(2), &[1], &[ok]).unwrap();
    eng.run(&mut m);
    assert!(eng.take_outcome(after_ok).unwrap().is_ok());

    // Manufacture a deterministic failure on a full-drop machine.
    let fault = FaultConfig { drop_prob: 1.0, ..FaultConfig::default() };
    let mut fm = Machine::new(
        share(scenarios::cm5_chaos(4, fault, 5)),
        4,
        CmamConfig { max_wait_cycles: 200, ..CmamConfig::default() },
    );
    let mut feng = Engine::new();
    let doomed = feng.submit_xfer(&fm, n(0), n(1), &[1]).unwrap();
    feng.run(&mut fm);
    assert!(feng.take_outcome(doomed).unwrap().is_err());
    // After a *failed* predecessor: fails at submission, no engine run
    // needed, outcome available at once.
    let after_err = feng.submit_xfer_after(&fm, n(1), n(2), &[1], &[doomed]).unwrap();
    match feng.take_outcome(after_err).unwrap() {
        Err(ProtocolError::DependencyFailed { failed, .. }) => assert_eq!(failed, doomed),
        other => panic!("late dependent should fail at submission, got {other:?}"),
    }
}

#[test]
fn dependency_cycles_are_rejected_at_submission() {
    let m = instant_machine(4);
    let mut eng = Engine::new();
    // Mint ids 0 and 1 on a *different* engine so we hold OpIds whose
    // raw values this engine has not issued yet — the only way to even
    // express a forward (and hence potentially cyclic) edge, since ids
    // are unforgeable and this engine's own ids all point backward.
    let mut other = Engine::new();
    let _ = other.submit_xfer(&m, n(0), n(1), &[1]).unwrap();
    let forward = other.submit_xfer(&m, n(1), n(2), &[1]).unwrap();
    assert_eq!(forward.raw(), 1);

    // This engine has issued no ids, so raw id 1 is a forward edge.
    match eng.submit_xfer_after(&m, n(0), n(1), &[1], &[forward]) {
        Err(ProtocolError::BadTransfer(msg)) => {
            assert!(msg.contains("cycle"), "{msg}");
        }
        other => panic!("forward dependency accepted: {other:?}"),
    }
    // Nothing was enqueued by the rejected submission.
    assert_eq!(eng.unfinished(), 0);
}

#[test]
fn completion_times_include_held_span_and_hold_times_expose_it() {
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(4, 3)),
        4,
        CmamConfig::default(),
    );
    let mut eng = Engine::new();
    let data: Vec<u32> = (0..64).collect();
    let a = eng.submit_xfer(&m, n(0), n(1), &data).unwrap();
    let b = eng.submit_xfer_after(&m, n(2), n(3), &data, &[a]).unwrap();
    eng.run(&mut m);
    assert!(eng.take_outcome(a).unwrap().is_ok());
    assert!(eng.take_outcome(b).unwrap().is_ok());

    let times = eng.completion_times();
    let completion = |id: OpId| times.iter().find(|(i, _)| *i == id).unwrap().1;
    let holds = eng.hold_times();
    let hold = |id: OpId| holds.iter().find(|(i, _)| *i == id).unwrap().1;

    // The dependency-free op was never held.
    assert_eq!(hold(a), 0);
    // Both were submitted in the same cycle, so b's hold span is
    // exactly a's completion time, and b's submission-anchored
    // completion time contains the whole held span on top of its own
    // execution.
    assert!(hold(b) > 0, "b must spend cycles held behind a");
    assert_eq!(hold(b), completion(a));
    assert!(completion(b) > hold(b));
}

#[test]
fn am4_op_delivers_words_at_table1_cost() {
    let mut m = instant_machine(2);
    m.reset_costs();
    let mut eng = Engine::new();
    let tag = timego_am::Tags::USER_BASE + 3;
    let id = eng.submit_am4(&m, n(0), n(1), tag, [4, 5, 6, 7]).unwrap();
    eng.run(&mut m);
    assert_eq!(eng.take_outcome(id).unwrap(), Ok(OpOutcome::Am4([4, 5, 6, 7])));
    // One Table 1 round and nothing else: 20-instruction send plus
    // 27-instruction poll, no idle polls (the receive is peek-gated).
    let total: u64 =
        (0..2).map(|i| m.cpu(n(i)).snapshot().total()).sum();
    assert_eq!(total, 47);
}

#[test]
fn every_submitted_op_is_released_exactly_once() {
    let mut m = instant_machine(6);
    let mut eng = Engine::new();
    let a = eng.submit_xfer(&m, n(0), n(1), &[1, 2]).unwrap();
    let _b = eng.submit_am4(&m, n(2), n(3), timego_am::Tags::USER_BASE + 1, [9; 4]).unwrap();
    let _c = eng.submit_xfer_after(&m, n(4), n(5), &[3], &[a]).unwrap();
    eng.run(&mut m);
    let mut submitted = 0;
    let mut released = 0;
    for e in eng.trace() {
        match e.event {
            EngineEvent::Submitted(_) => submitted += 1,
            EngineEvent::Released(_) => released += 1,
            _ => {}
        }
    }
    assert_eq!(submitted, 3);
    assert_eq!(released, 3, "Released is recorded uniformly, deps or not");
}
