//! Property-based tests across the whole stack: for arbitrary message
//! sizes, packet sizes, delivery scripts and fault seeds, the protocols
//! must deliver data intact and the measured costs must equal the
//! closed-form models.
//!
//! The properties are exercised by deterministic seeded sweeps: every
//! case derives its parameters from a [`SimRng`] stream, so a failure
//! reports the exact case index and reproduces bit-for-bit. (An earlier
//! shrinker-found regression — `words = 897, pkt = 4, ack_period = 1` —
//! is pinned explicitly.)

use timego_am::{CmamConfig, Machine, StreamConfig};
use timego_cost::analytic::{self, IndefiniteOpts, MsgShape};
use timego_netsim::rng::SimRng;
use timego_netsim::{DeliveryScript, FaultConfig, Network, NodeId, ScriptedNetwork};
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

const CASES: u64 = 32;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// Parameter stream for one property: seeded on the property's name so
/// sweeps are independent but reproducible.
fn rng_for(property: &str) -> SimRng {
    let seed = property
        .bytes()
        .fold(0xC0DEu64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
    SimRng::new(seed)
}

#[test]
fn xfer_roundtrips_any_payload() {
    let mut rng = rng_for("xfer_roundtrips_any_payload");
    for case in 0..CASES {
        let words = 1 + rng.gen_index(599);
        let seed = rng.next_u64() % 1000;
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(share(scenarios::table_in_order(2)), 2, CmamConfig::default());
        let out = m.xfer(n(0), n(1), &data).unwrap();
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, words), data, "case {case}");
    }
}

#[test]
fn xfer_cost_matches_model_for_any_shape() {
    let mut rng = rng_for("xfer_cost_matches_model_for_any_shape");
    for case in 0..CASES {
        let words = 1 + rng.next_u64() % 1999;
        let pkt = [4u64, 8, 16, 32][rng.gen_index(4)];
        let (measured, _) = timego_am::measure_xfer(words as usize, pkt as usize);
        let model = analytic::cmam_finite(MsgShape::for_message(words, pkt).unwrap());
        assert_eq!(measured, model, "case {case}: words {words} pkt {pkt}");
    }
}

#[test]
fn stream_cost_matches_model_for_any_shape() {
    let mut rng = rng_for("stream_cost_matches_model_for_any_shape");
    // Pinned shrinker-found regression, then the random sweep.
    let mut cases = vec![(897u64, 4u64, 1u64)];
    for _ in 0..CASES {
        cases.push((
            1 + rng.next_u64() % 1999,
            [4u64, 8, 16, 32][rng.gen_index(4)],
            1 + rng.next_u64() % 9,
        ));
    }
    for (case, (words, pkt, ack_period)) in cases.into_iter().enumerate() {
        let (measured, outcome) =
            timego_am::measure_stream(words as usize, pkt as usize, ack_period);
        let shape = MsgShape::for_message(words, pkt).unwrap();
        // The AlternateSwap script leaves a trailing packet in order
        // when the packet count is odd: ooo = p/2 exactly, like the
        // paper's assumption.
        assert_eq!(outcome.out_of_order, shape.packets() / 2, "case {case}");
        let model = analytic::cmam_indefinite(
            shape,
            IndefiniteOpts { ooo_packets: shape.packets() / 2, ack_period },
        );
        assert_eq!(measured, model, "case {case}: words {words} pkt {pkt} ack {ack_period}");
    }
}

#[test]
fn stream_delivers_in_order_under_any_window_shuffle() {
    let mut rng = rng_for("stream_delivers_in_order_under_any_window_shuffle");
    for case in 0..CASES {
        let words = 1 + rng.gen_index(399);
        let window = 1 + rng.gen_index(11);
        let seed = rng.next_u64() % 500;
        let data = payloads::mixed(words, seed);
        let net = ScriptedNetwork::with_seed(2, DeliveryScript::WindowShuffle { window }, seed);
        let mut m = Machine::new(share(net), 2, CmamConfig::default());
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        m.stream_send(id, &data).unwrap();
        assert_eq!(m.stream_received(id), data.as_slice(), "case {case}");
    }
}

#[test]
fn stream_survives_random_corruption() {
    let mut rng = rng_for("stream_survives_random_corruption");
    for case in 0..CASES {
        let words = 1 + rng.gen_index(199);
        let prob = 0.08 * (rng.next_u64() % 1000) as f64 / 1000.0;
        let seed = rng.next_u64() % 200;
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(
            share(scenarios::cm5_lossy(4, prob, seed)),
            4,
            CmamConfig::default(),
        );
        let id = m.open_stream(
            n(0),
            n(1),
            StreamConfig { rto_iterations: 128, ..StreamConfig::default() },
        );
        m.stream_send(id, &data).unwrap();
        assert_eq!(m.stream_received(id), data.as_slice(), "case {case}");
    }
}

/// Under simultaneous duplication and loss, the stream must deliver
/// exactly once (duplicate suppression) and still complete — lost
/// acknowledgements are recovered because duplicates and
/// retransmissions are re-acknowledged at the receiver.
#[test]
fn stream_suppresses_duplicates_and_reacks_under_faults() {
    let mut rng = rng_for("stream_suppresses_duplicates_and_reacks_under_faults");
    let mut dup_suppressed = false;
    let mut retransmitted = false;
    for case in 0..CASES {
        let words = 8 + rng.gen_index(120);
        let seed = rng.next_u64();
        let fault = FaultConfig {
            drop_prob: 0.02 + 0.06 * (rng.next_u64() % 1000) as f64 / 1000.0,
            duplicate_prob: 0.05 + 0.10 * (rng.next_u64() % 1000) as f64 / 1000.0,
            ..FaultConfig::default()
        };
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(
            share(scenarios::cm5_chaos(4, fault, seed)),
            4,
            CmamConfig::default(),
        );
        let id = m.open_stream(
            n(0),
            n(1),
            StreamConfig { rto_iterations: 256, ..StreamConfig::default() },
        );
        let out = m.stream_send(id, &data).unwrap();
        // Exactly once: the delivered buffer holds the payload once —
        // every duplicate was discarded, never appended.
        assert_eq!(m.stream_received(id), data.as_slice(), "case {case}");
        dup_suppressed |= out.duplicates > 0;
        retransmitted |= out.retransmits > 0;
    }
    assert!(dup_suppressed, "sweep never exercised duplicate suppression");
    assert!(retransmitted, "sweep never exercised loss recovery");
}

#[test]
fn hl_protocols_roundtrip_over_cr() {
    let mut rng = rng_for("hl_protocols_roundtrip_over_cr");
    for case in 0..CASES {
        let words = 1 + rng.gen_index(399);
        let seed = rng.next_u64() % 200;
        let data = payloads::mixed(words, seed);
        let mut m =
            Machine::new(share(scenarios::cr_lossy(2, 0.05, seed)), 2, CmamConfig::default());
        let out = m.hl_xfer(n(0), n(1), &data).unwrap();
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, words), data, "case {case}");
        let got = m.hl_stream_send(n(0), n(1), &data).unwrap();
        assert_eq!(got, data, "case {case}");
    }
}

#[test]
fn switched_network_conserves_packets() {
    let mut rng = rng_for("switched_network_conserves_packets");
    for case in 0..CASES {
        let count = 1 + rng.gen_u32() % 149;
        let seed = rng.next_u64() % 300;
        let adaptive = rng.gen_bool(0.5);
        let mut net: Box<dyn Network> = if adaptive {
            Box::new(scenarios::cm5_adaptive(16, seed))
        } else {
            Box::new(scenarios::cm5_deterministic(16, seed))
        };
        let mut sent = 0u32;
        while sent < count {
            let s = (sent as usize * 7) % 16;
            let d = (s + 1 + (sent as usize * 3) % 15) % 16;
            if net
                .try_inject(timego_netsim::Packet::new(n(s), n(d), 1, sent, vec![sent; 4]))
                .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
        }
        assert!(net.drain_extracting(1_000_000), "case {case}");
        assert_eq!(net.stats().delivered, u64::from(count), "case {case}");
    }
}

#[test]
fn overhead_fraction_is_scale_free_for_streams() {
    // §3.2: the overhead fraction is "independent of the total volume
    // of data transmitted". Exhaustive over the old sweep's range.
    for words_exp in 5u32..12 {
        let words = 1u64 << words_exp;
        let (c, _) = timego_am::measure_stream(words as usize, 4, 1);
        assert!(
            (0.6..0.75).contains(&c.overhead_fraction()),
            "words 2^{words_exp}: fraction {}",
            c.overhead_fraction()
        );
    }
}

#[test]
fn costs_are_monotone_in_message_size() {
    let mut rng = rng_for("costs_are_monotone_in_message_size");
    for case in 0..CASES {
        let words = 1 + rng.gen_index(999);
        let (small, _) = timego_am::measure_xfer(words, 4);
        let (big, _) = timego_am::measure_xfer(words + 64, 4);
        assert!(big.total() > small.total(), "case {case}: words {words}");
    }
}

#[test]
fn wormhole_cr_conserves_and_orders_packets() {
    let mut rng = rng_for("wormhole_cr_conserves_and_orders_packets");
    for case in 0..CASES {
        let count = 1 + rng.gen_u32() % 59;
        let prob = 0.2 * (rng.next_u64() % 1000) as f64 / 1000.0;
        let seed = rng.next_u64() % 200;
        let mut net = scenarios::wormhole_torus_cr(4, 1, prob, seed);
        let mut sent = 0u32;
        let mut got = Vec::new();
        let mut spins = 0u64;
        while (sent < count || net.in_flight() > 0) && spins < 1_000_000 {
            if sent < count
                && net
                    .try_inject(timego_netsim::Packet::new(n(0), n(2), 1, sent, vec![sent; 4]))
                    .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
            spins += 1;
            while let Some(p) = net.try_receive(n(2)) {
                got.push(p.header());
            }
        }
        assert_eq!(got.len() as u32, count, "case {case}: every packet arrives");
        assert!(got.windows(2).all(|w| w[0] < w[1]), "case {case}: in order");
    }
}

#[test]
fn allreduce_matches_scalar_sum() {
    let mut rng = rng_for("allreduce_matches_scalar_sum");
    for case in 0..CASES {
        let nodes = 1usize << (1 + rng.gen_index(3));
        let seed = rng.next_u64() % 500;
        let inputs = payloads::random(nodes, seed);
        let expected: u32 = inputs.iter().fold(0u32, |a, b| a.wrapping_add(*b));
        let mut m =
            Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::collectives::allreduce_sum(&mut m, &inputs).unwrap();
        assert!(out.iter().all(|&v| v == expected), "case {case}: {nodes} nodes");
    }
}

#[test]
fn broadcast_reaches_everyone_from_any_root() {
    let mut rng = rng_for("broadcast_reaches_everyone_from_any_root");
    for case in 0..CASES {
        let nodes = 1 + rng.gen_index(11);
        let root = rng.gen_index(nodes);
        let seed = rng.next_u64() % 100;
        let value = {
            let v = payloads::random(4, seed);
            [v[0], v[1], v[2], v[3]]
        };
        let mut m =
            Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let seen =
            timego_workloads::apps::collectives::broadcast(&mut m, n(root), value).unwrap();
        assert!(seen.iter().all(|v| *v == value), "case {case}: root {root}/{nodes}");
    }
}

#[test]
fn distributed_sort_always_sorts() {
    let mut rng = rng_for("distributed_sort_always_sorts");
    for case in 0..CASES {
        let block = 1 + rng.gen_index(39);
        let nodes = [2usize, 4, 8][rng.gen_index(3)];
        let seed = rng.next_u64() % 500;
        let data = payloads::random(block * nodes, seed);
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut m =
            Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::sort::run(&mut m, &data).unwrap();
        assert_eq!(out.data, expected, "case {case}: block {block} × {nodes}");
    }
}

#[test]
fn halo_exchange_matches_reference() {
    let mut rng = rng_for("halo_exchange_matches_reference");
    for case in 0..CASES {
        let nodes = 4usize;
        let block = 1usize << (2 + rng.gen_index(3)); // 4..16 words per node
        let iters = 1 + rng.gen_index(4);
        let seed = rng.next_u64() % 300;
        let data: Vec<u32> =
            payloads::random(block * nodes, seed).iter().map(|w| w % 10_000).collect();
        let mut m =
            Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::halo::run(&mut m, &data, iters, 2).unwrap();
        assert_eq!(
            out.data,
            timego_workloads::apps::halo::reference(&data, iters, nodes, 2),
            "case {case}: block {block} iters {iters}"
        );
    }
}
