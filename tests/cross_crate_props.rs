//! Property-based tests across the whole stack: for arbitrary message
//! sizes, packet sizes, delivery scripts and fault seeds, the protocols
//! must deliver data intact and the measured costs must equal the
//! closed-form models.

use proptest::prelude::*;

use timego_am::{CmamConfig, Machine, StreamConfig};
use timego_cost::analytic::{self, IndefiniteOpts, MsgShape};
use timego_netsim::{DeliveryScript, Network, NodeId, ScriptedNetwork};
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn xfer_roundtrips_any_payload(words in 1usize..600, seed in 0u64..1000) {
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(share(scenarios::table_in_order(2)), 2, CmamConfig::default());
        let out = m.xfer(n(0), n(1), &data).unwrap();
        prop_assert_eq!(m.read_buffer(n(1), out.dst_buffer, words), data);
    }

    #[test]
    fn xfer_cost_matches_model_for_any_shape(
        words in 1u64..2000,
        n_idx in 0usize..4,
    ) {
        let pkt = [4u64, 8, 16, 32][n_idx];
        let (measured, _) = timego_am::measure_xfer(words as usize, pkt as usize);
        let model = analytic::cmam_finite(MsgShape::for_message(words, pkt).unwrap());
        prop_assert_eq!(measured, model);
    }

    #[test]
    fn stream_cost_matches_model_for_any_shape(
        words in 1u64..2000,
        n_idx in 0usize..4,
        ack_period in 1u64..10,
    ) {
        let pkt = [4u64, 8, 16, 32][n_idx];
        let (measured, outcome) = timego_am::measure_stream(words as usize, pkt as usize, ack_period);
        let shape = MsgShape::for_message(words, pkt).unwrap();
        // The AlternateSwap script leaves a trailing packet in order
        // when the packet count is odd: ooo = p/2 exactly, like the
        // paper's assumption.
        prop_assert_eq!(outcome.out_of_order, shape.packets() / 2);
        let model = analytic::cmam_indefinite(
            shape,
            IndefiniteOpts { ooo_packets: shape.packets() / 2, ack_period },
        );
        prop_assert_eq!(measured, model);
    }

    #[test]
    fn stream_delivers_in_order_under_any_window_shuffle(
        words in 1usize..400,
        window in 1usize..12,
        seed in 0u64..500,
    ) {
        let data = payloads::mixed(words, seed);
        let net = ScriptedNetwork::with_seed(2, DeliveryScript::WindowShuffle { window }, seed);
        let mut m = Machine::new(share(net), 2, CmamConfig::default());
        let id = m.open_stream(n(0), n(1), StreamConfig::default());
        m.stream_send(id, &data).unwrap();
        prop_assert_eq!(m.stream_received(id), data.as_slice());
    }

    #[test]
    fn stream_survives_random_corruption(
        words in 1usize..200,
        prob in 0.0f64..0.08,
        seed in 0u64..200,
    ) {
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(
            share(scenarios::cm5_lossy(4, prob, seed)),
            4,
            CmamConfig::default(),
        );
        let id = m.open_stream(
            n(0),
            n(1),
            StreamConfig { rto_iterations: 128, ..StreamConfig::default() },
        );
        m.stream_send(id, &data).unwrap();
        prop_assert_eq!(m.stream_received(id), data.as_slice());
    }

    #[test]
    fn hl_protocols_roundtrip_over_cr(words in 1usize..400, seed in 0u64..200) {
        let data = payloads::mixed(words, seed);
        let mut m = Machine::new(share(scenarios::cr_lossy(2, 0.05, seed)), 2, CmamConfig::default());
        let out = m.hl_xfer(n(0), n(1), &data).unwrap();
        prop_assert_eq!(m.read_buffer(n(1), out.dst_buffer, words), data.clone());
        let got = m.hl_stream_send(n(0), n(1), &data).unwrap();
        prop_assert_eq!(got, data);
    }

    #[test]
    fn switched_network_conserves_packets(
        count in 1u32..150,
        seed in 0u64..300,
        adaptive in proptest::bool::ANY,
    ) {
        let mut net: Box<dyn Network> = if adaptive {
            Box::new(scenarios::cm5_adaptive(16, seed))
        } else {
            Box::new(scenarios::cm5_deterministic(16, seed))
        };
        let mut sent = 0u32;
        while sent < count {
            let s = (sent as usize * 7) % 16;
            let d = (s + 1 + (sent as usize * 3) % 15) % 16;
            if net
                .try_inject(timego_netsim::Packet::new(n(s), n(d), 1, sent, vec![sent; 4]))
                .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
        }
        prop_assert!(net.drain_extracting(1_000_000));
        prop_assert_eq!(net.stats().delivered, u64::from(count));
    }

    #[test]
    fn overhead_fraction_is_scale_free_for_streams(words_exp in 5u32..12) {
        // §3.2: the overhead fraction is "independent of the total
        // volume of data transmitted".
        let words = 1u64 << words_exp;
        let (c, _) = timego_am::measure_stream(words as usize, 4, 1);
        prop_assert!((0.6..0.75).contains(&c.overhead_fraction()));
    }

    #[test]
    fn costs_are_monotone_in_message_size(words in 1usize..1000) {
        let (small, _) = timego_am::measure_xfer(words, 4);
        let (big, _) = timego_am::measure_xfer(words + 64, 4);
        prop_assert!(big.total() > small.total());
    }

    #[test]
    fn wormhole_cr_conserves_and_orders_packets(
        count in 1u32..60,
        prob in 0.0f64..0.2,
        seed in 0u64..200,
    ) {
        let mut net = scenarios::wormhole_torus_cr(4, 1, prob, seed);
        let mut sent = 0u32;
        let mut got = Vec::new();
        let mut spins = 0u64;
        while (sent < count || net.in_flight() > 0) && spins < 1_000_000 {
            if sent < count
                && net
                    .try_inject(timego_netsim::Packet::new(n(0), n(2), 1, sent, vec![sent; 4]))
                    .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
            spins += 1;
            while let Some(p) = net.try_receive(n(2)) {
                got.push(p.header());
            }
        }
        prop_assert_eq!(got.len() as u32, count, "every packet arrives");
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "in order");
    }

    #[test]
    fn allreduce_matches_scalar_sum(
        exp in 1u32..4,
        seed in 0u64..500,
    ) {
        let nodes = 1usize << exp;
        let inputs = payloads::random(nodes, seed);
        let expected: u32 = inputs.iter().fold(0u32, |a, b| a.wrapping_add(*b));
        let mut m = Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::collectives::allreduce_sum(&mut m, &inputs).unwrap();
        prop_assert!(out.iter().all(|&v| v == expected));
    }

    #[test]
    fn broadcast_reaches_everyone_from_any_root(
        nodes in 1usize..12,
        root in 0usize..12,
        seed in 0u64..100,
    ) {
        let root = root % nodes;
        let value = {
            let v = payloads::random(4, seed);
            [v[0], v[1], v[2], v[3]]
        };
        let mut m = Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let seen =
            timego_workloads::apps::collectives::broadcast(&mut m, n(root), value).unwrap();
        prop_assert!(seen.iter().all(|v| *v == value));
    }

    #[test]
    fn distributed_sort_always_sorts(
        block in 1usize..40,
        nodes_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let nodes = [2usize, 4, 8][nodes_idx];
        let data = payloads::random(block * nodes, seed);
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut m = Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::sort::run(&mut m, &data).unwrap();
        prop_assert_eq!(out.data, expected);
    }

    #[test]
    fn halo_exchange_matches_reference(
        block_exp in 2u32..5,
        iters in 1usize..5,
        seed in 0u64..300,
    ) {
        let nodes = 4usize;
        let block = 1usize << block_exp; // 4..16 words per node
        let data: Vec<u32> =
            payloads::random(block * nodes, seed).iter().map(|w| w % 10_000).collect();
        let mut m = Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = timego_workloads::apps::halo::run(&mut m, &data, iters, 2).unwrap();
        prop_assert_eq!(
            out.data,
            timego_workloads::apps::halo::reference(&data, iters, nodes, 2)
        );
    }
}
