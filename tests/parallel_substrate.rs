//! Determinism properties of the parallel sharded substrate, below the
//! scheduler: for a fixed shard layout, the worker thread count must be
//! invisible in every observable — wake sequences (`take_delivered`
//! merge order), receive streams, aggregate `NetStats` totals, restart
//! counters, and final clocks — under clean, dup+jitter, and
//! crash-window fault variants, on both the bare sharded substrate and
//! a `DualNetwork` built from two sharded sides.
//!
//! The scheduler-level counterpart (traces/bills/outcomes) lives in
//! `sched_equivalence.rs`; this file pins the network layer directly so
//! a thread-count divergence is caught at its source, with a
//! packet-level diff instead of a trace diff.

use timego_netsim::{
    CrashWindow, DualNetwork, FaultConfig, Network, NodeId, Packet, ShardedConfig, ShardedNetwork,
    SwitchedConfig,
};
use timego_workloads::scenarios;

const NODES: usize = 16;
const SHARDS: usize = 4;
const SEEDS: u64 = 4;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn fault_variant(name: &str) -> FaultConfig {
    match name {
        "clean" => FaultConfig::default(),
        "dup+jitter" => {
            FaultConfig { duplicate_prob: 0.10, delay_jitter: 8, ..FaultConfig::default() }
        }
        "crash" => FaultConfig {
            crashes: vec![CrashWindow { node: n(9), start: 80, end: 220 }],
            ..FaultConfig::default()
        },
        other => panic!("unknown fault variant {other}"),
    }
}

/// Everything observable about one scripted run of a substrate.
#[derive(Debug, PartialEq)]
struct Observation {
    /// Wake sets per advance, in taken order.
    wakes: Vec<Vec<NodeId>>,
    /// Every received packet: (receiver, src, header, pair_seq).
    rx: Vec<(usize, usize, u32, Option<u64>)>,
    injected: u64,
    delivered: u64,
    duplicated: u64,
    dropped_corrupt: u64,
    backpressure: u64,
    crash_drops: u64,
    latency_count: u64,
    restarts: Vec<u32>,
    final_cycles: u64,
}

/// Drive a fixed inject/advance/receive script: a rotating all-pairs
/// mix (intra- and cross-shard), uneven advances, receives drained in
/// node order. Only the substrate under test varies.
fn observe(net: &mut dyn Network, seed: u64) -> Observation {
    let mut wakes = Vec::new();
    let mut rx = Vec::new();
    for s in 0..240u32 {
        let src = (s as usize).wrapping_mul(7).wrapping_add(seed as usize) % NODES;
        let dst = (src + 1 + (s as usize) % (NODES - 1)) % NODES;
        // Alternating tags so a DualNetwork under test exercises both
        // sides (reply_tag_min = 2 routes the odd injections).
        let tag = if s % 2 == 0 { 1 } else { 3 };
        let _ = net.try_inject(Packet::new(n(src), n(dst), tag, s, vec![s; 3]));
        net.advance(1 + (s as u64) % 3);
        wakes.push(net.take_delivered());
        for i in 0..NODES {
            while let Some(p) = net.try_receive(n(i)) {
                rx.push((i, p.src().index(), p.header(), p.pair_seq()));
            }
        }
    }
    net.drain(20_000);
    for i in 0..NODES {
        while let Some(p) = net.try_receive(n(i)) {
            rx.push((i, p.src().index(), p.header(), p.pair_seq()));
        }
    }
    let st = net.stats().clone();
    Observation {
        wakes,
        rx,
        injected: st.injected,
        delivered: st.delivered,
        duplicated: st.duplicated,
        dropped_corrupt: st.dropped_corrupt,
        backpressure: st.backpressure,
        crash_drops: st.crash_drops,
        latency_count: st.latency.count(),
        restarts: (0..NODES).map(|i| net.restarts(n(i))).collect(),
        final_cycles: net.now().cycles(),
    }
}

#[test]
fn sharded_substrate_is_thread_invariant() {
    for variant in ["clean", "dup+jitter", "crash"] {
        let fault = fault_variant(variant);
        for seed in 0..SEEDS {
            let run = |threads: usize| {
                let mut net =
                    scenarios::cm5_sharded_chaos(NODES, SHARDS, threads, fault.clone(), seed);
                observe(&mut net, seed)
            };
            let baseline = run(1);
            for threads in [2, 4] {
                assert_eq!(
                    run(threads),
                    baseline,
                    "sharded/{variant}/seed {seed}: {threads} threads diverged from 1"
                );
            }
        }
    }
}

#[test]
fn dual_of_sharded_sides_is_thread_invariant() {
    for variant in ["clean", "dup+jitter", "crash"] {
        let fault = fault_variant(variant);
        for seed in 0..SEEDS {
            let run = |threads: usize| {
                // Tags >= 2 (half the script's traffic) ride the second
                // sharded side.
                let mut net = DualNetwork::new(
                    scenarios::cm5_sharded_chaos(NODES, SHARDS, threads, fault.clone(), seed),
                    scenarios::cm5_sharded_chaos(
                        NODES,
                        SHARDS,
                        threads,
                        fault.clone(),
                        seed ^ 0x9e37,
                    ),
                    2,
                );
                observe(&mut net, seed)
            };
            let baseline = run(1);
            for threads in [2, 4] {
                assert_eq!(
                    run(threads),
                    baseline,
                    "dual-sharded/{variant}/seed {seed}: {threads} threads diverged from 1"
                );
            }
        }
    }
}

/// One shard is *definitionally* the unsharded substrate: same seed,
/// same ids, same wake order, byte for byte — under faults too.
#[test]
fn single_shard_matches_flat_switched_under_faults() {
    for variant in ["clean", "dup+jitter", "crash"] {
        let fault = fault_variant(variant);
        for seed in 0..SEEDS {
            let mut flat = scenarios::cm5_chaos(NODES, fault.clone(), seed);
            let mut one = scenarios::cm5_sharded_chaos(NODES, 1, 1, fault.clone(), seed);
            assert_eq!(
                observe(&mut flat, seed),
                observe(&mut one, seed),
                "flat-vs-1-shard/{variant}/seed {seed}"
            );
        }
    }
}

/// The wake merge must come out in ascending global node-id order for
/// multi-shard layouts, independent of which shard delivered first.
#[test]
fn wake_merge_order_is_ascending_node_ids() {
    for threads in [1, 2, 4] {
        let mut net = scenarios::cm5_sharded_chaos(
            NODES,
            SHARDS,
            threads,
            fault_variant("dup+jitter"),
            7,
        );
        for s in 0..120u32 {
            let src = (s as usize) % NODES;
            let dst = (src + 5) % NODES;
            let _ = net.try_inject(Packet::new(n(src), n(dst), 1, s, vec![s]));
            net.advance(2);
            let wakes = net.take_delivered();
            let mut sorted = wakes.clone();
            sorted.sort_unstable_by_key(|w| w.index());
            assert_eq!(wakes, sorted, "t{threads}: wake set not in node-id order");
            for i in 0..NODES {
                while net.try_receive(n(i)).is_some() {}
            }
        }
    }
}

/// Cross-shard crash semantics: packets into a crashed node vanish and
/// are billed as crash drops; the restart becomes visible exactly when
/// the window closes, at every thread count.
#[test]
fn cross_shard_crash_window_bills_drops_and_restarts() {
    for threads in [1, 2, 4] {
        let mut net = ShardedNetwork::new(
            NODES,
            ShardedConfig {
                shards: SHARDS,
                threads,
                switched: SwitchedConfig {
                    fault: FaultConfig {
                        crashes: vec![CrashWindow { node: n(9), start: 0, end: 100 }],
                        ..FaultConfig::default()
                    },
                    seed: 11,
                    ..SwitchedConfig::default()
                },
                ..ShardedConfig::default()
            },
        );
        // 1 → 9 crosses shards into the dead node: silently dropped.
        net.try_inject(Packet::new(n(1), n(9), 1, 0, vec![0])).unwrap();
        assert_eq!(net.stats().crash_drops, 1, "t{threads}");
        assert_eq!(net.restarts(n(9)), 0, "t{threads}");
        net.advance(120);
        assert_eq!(net.restarts(n(9)), 1, "t{threads}: restart after window close");
        assert!(net.restarts_hint() >= 1, "t{threads}");
        net.try_inject(Packet::new(n(1), n(9), 1, 1, vec![1])).unwrap();
        assert!(net.drain(10_000), "t{threads}");
        assert_eq!(net.stats().delivered, 1, "t{threads}: post-restart delivery");
    }
}
