//! End-to-end assertions that the measured protocol executions
//! reproduce every table and figure of the paper (experiment index
//! E1–E7 in DESIGN.md).

use timego_am::{
    measure_hl_stream, measure_hl_xfer, measure_single_packet, measure_stream, measure_xfer,
};
use timego_cost::analytic::{self, IndefiniteOpts, MsgShape};
use timego_cost::{Endpoint, Feature, FeatureCost};

#[test]
fn e1_table1_single_packet() {
    let c = measure_single_packet();
    assert_eq!(c.endpoint_total(Endpoint::Source), 20);
    assert_eq!(c.endpoint_total(Endpoint::Destination), 27);
    assert_eq!(c.total(), 47);
    // "34 instructions are dedicated to accessing the NI": for us that
    // is NI setup + write/read + status/latch accesses; the paper's
    // boundary counts NI setup and check-status rows plus FIFO accesses
    // (5 + 2 + 7 at the source, 3 + 12 at the destination).
    let fine = analytic::single_packet_fine(Endpoint::Source);
    let src_ni: u64 = fine
        .iter()
        .filter(|(f, _)| {
            use timego_cost::Fine::*;
            matches!(f, NiSetup | WriteNi | ReadNi | CheckStatus)
        })
        .map(|(_, n)| n)
        .sum();
    let fine = analytic::single_packet_fine(Endpoint::Destination);
    let dst_ni: u64 = fine
        .iter()
        .filter(|(f, _)| {
            use timego_cost::Fine::*;
            matches!(f, NiSetup | WriteNi | ReadNi | CheckStatus)
        })
        .map(|(_, n)| n)
        .sum();
    assert_eq!(src_ni + dst_ni, 29);
}

#[test]
fn e2_table2_finite_sequence() {
    // 16 words: reconstructed block (DESIGN.md §3).
    let (c, out) = measure_xfer(16, 4);
    assert_eq!(out.packets, 4);
    assert_eq!(c.endpoint_total(Endpoint::Source), 173);
    assert_eq!(c.endpoint_total(Endpoint::Destination), 224);
    assert_eq!(c.total(), 397);

    // 1024 words: the paper's printed block, cell by cell.
    let (c, out) = measure_xfer(1024, 4);
    assert_eq!(out.packets, 256);
    let expect = [
        (Feature::Base, 5635, 4626),
        (Feature::BufferMgmt, 47, 101),
        (Feature::InOrder, 512, 769),
        (Feature::FaultTol, 27, 20),
    ];
    for (f, s, d) in expect {
        assert_eq!(c.get(Endpoint::Source, f).total(), s, "{f} source");
        assert_eq!(c.get(Endpoint::Destination, f).total(), d, "{f} destination");
    }
    assert_eq!(c.total(), 11737);
}

#[test]
fn e2_table2_indefinite_sequence() {
    let (c, _) = measure_stream(16, 4, 1);
    let expect = [
        (Feature::Base, 80, 69),
        (Feature::BufferMgmt, 0, 0),
        (Feature::InOrder, 20, 116),
        (Feature::FaultTol, 116, 80),
    ];
    for (f, s, d) in expect {
        assert_eq!(c.get(Endpoint::Source, f).total(), s, "{f} source");
        assert_eq!(c.get(Endpoint::Destination, f).total(), d, "{f} destination");
    }
    assert_eq!(c.total(), 481);

    let (c, _) = measure_stream(1024, 4, 1);
    assert_eq!(c.endpoint_total(Endpoint::Source), 13824);
    assert_eq!(c.endpoint_total(Endpoint::Destination), 16141);
    assert_eq!(c.total(), 29965);
}

#[test]
fn e3_table3_class_breakdown() {
    // The full (feature × class) matrix of the 1024-word blocks.
    let (c, _) = measure_xfer(1024, 4);
    assert_eq!(c.get(Endpoint::Source, Feature::Base), FeatureCost::new(3842, 513, 1280));
    assert_eq!(c.get(Endpoint::Destination, Feature::Base), FeatureCost::new(3086, 515, 1025));
    assert_eq!(c.get(Endpoint::Source, Feature::BufferMgmt), FeatureCost::new(36, 1, 10));
    assert_eq!(c.get(Endpoint::Destination, Feature::BufferMgmt), FeatureCost::new(79, 12, 10));
    assert_eq!(c.get(Endpoint::Source, Feature::InOrder), FeatureCost::new(512, 0, 0));
    assert_eq!(c.get(Endpoint::Destination, Feature::InOrder), FeatureCost::new(769, 0, 0));
    assert_eq!(c.get(Endpoint::Source, Feature::FaultTol), FeatureCost::new(22, 0, 5));
    assert_eq!(c.get(Endpoint::Destination, Feature::FaultTol), FeatureCost::new(14, 1, 5));

    let (c, _) = measure_stream(1024, 4, 1);
    assert_eq!(c.get(Endpoint::Source, Feature::Base), FeatureCost::new(3584, 256, 1280));
    assert_eq!(c.get(Endpoint::Destination, Feature::Base), FeatureCost::new(2572, 0, 1025));
    assert_eq!(c.get(Endpoint::Source, Feature::InOrder), FeatureCost::new(512, 768, 0));
    assert_eq!(c.get(Endpoint::Destination, Feature::InOrder), FeatureCost::new(4480, 2944, 0));
    assert_eq!(c.get(Endpoint::Source, Feature::FaultTol), FeatureCost::new(5632, 512, 1280));
    assert_eq!(c.get(Endpoint::Destination, Feature::FaultTol), FeatureCost::new(3584, 256, 1280));
    // Printed column totals.
    assert_eq!(c.endpoint_classes(Endpoint::Source), FeatureCost::new(9728, 1536, 2560));
    assert_eq!(c.endpoint_classes(Endpoint::Destination), FeatureCost::new(10636, 3200, 2305));
}

#[test]
fn e4_figure6_cmam_vs_hl() {
    // HL costs equal the CMAM base costs; the indefinite-sequence
    // reduction is ~70% at both message sizes.
    for words in [16usize, 1024] {
        let (cmam, _) = measure_stream(words, 4, 1);
        let hl = measure_hl_stream(words, 4);
        assert_eq!(hl.feature_total(Feature::Base), cmam.feature_total(Feature::Base));
        assert_eq!(hl.overhead_total(), 0);
        let reduction = 1.0 - hl.total() as f64 / cmam.total() as f64;
        assert!((0.65..0.75).contains(&reduction), "indefinite {words}w: {reduction}");
    }
    // Finite sequence: big win for small messages, ~12% for large.
    let (cmam16, _) = measure_xfer(16, 4);
    let (hl16, _) = measure_hl_xfer(16, 4);
    let r16 = 1.0 - hl16.total() as f64 / cmam16.total() as f64;
    assert!(r16 > 0.3, "16w finite reduction {r16}");
    let (cmam1024, _) = measure_xfer(1024, 4);
    let (hl1024, _) = measure_hl_xfer(1024, 4);
    let r1024 = 1.0 - hl1024.total() as f64 / cmam1024.total() as f64;
    assert!((0.08..0.2).contains(&r1024), "1024w finite reduction {r1024}");
    assert_eq!(measure_hl_stream(16, 4).total(), 149);
    assert_eq!(measure_hl_stream(1024, 4).total(), 8717);
}

#[test]
fn e5_figure8_left_simulation_matches_closed_forms() {
    for n in [4u64, 8, 16, 32, 64, 128] {
        let shape = MsgShape::for_message(1024, n).unwrap();
        let (fin, _) = measure_xfer(1024, n as usize);
        assert_eq!(fin, analytic::cmam_finite(shape), "finite n={n}");
        let (ind, _) = measure_stream(1024, n as usize, 1);
        assert_eq!(
            ind,
            analytic::cmam_indefinite(shape, IndefiniteOpts::paper(shape)),
            "indefinite n={n}"
        );
    }
}

#[test]
fn e6_figure8_right_overhead_vs_packet_size() {
    let mut prev_ind = f64::INFINITY;
    for n in [4usize, 8, 16, 32, 64, 128] {
        let (fin, _) = measure_xfer(1024, n);
        assert!(
            (0.08..0.14).contains(&fin.overhead_fraction()),
            "finite n={n}: {}",
            fin.overhead_fraction()
        );
        let (ind, _) = measure_stream(1024, n, 1);
        let frac = ind.overhead_fraction();
        assert!(frac > 0.5, "indefinite n={n}: {frac}");
        assert!(frac <= prev_ind);
        prev_ind = frac;
    }
}

#[test]
fn e7_group_acks_keep_overhead_significant() {
    let (per_packet, _) = measure_stream(1024, 4, 1);
    let mut prev = per_packet.overhead_fraction();
    assert!((0.65..0.75).contains(&prev));
    for g in [2u64, 4, 8, 16, 64] {
        let (c, out) = measure_stream(1024, 4, g);
        let frac = c.overhead_fraction();
        assert!(frac <= prev, "overhead must fall with ack period");
        assert!(frac > 0.4, "…but remains significant (g={g}: {frac})");
        assert_eq!(out.acks, 256u64.div_ceil(g));
        prev = frac;
    }
}

#[test]
fn prose_claim_50_to_70_percent_overhead() {
    // §3.3: overhead is 50–70% of total cost "in all situations except
    // large finite-sequence multi-packet transfers".
    let (fin16, _) = measure_xfer(16, 4);
    assert!(fin16.overhead_fraction() > 0.5);
    let (ind16, _) = measure_stream(16, 4, 1);
    assert!((0.5..0.75).contains(&ind16.overhead_fraction()));
    let (ind1024, _) = measure_stream(1024, 4, 1);
    assert!((0.5..0.75).contains(&ind1024.overhead_fraction()));
    // The exception:
    let (fin1024, _) = measure_xfer(1024, 4);
    assert!(fin1024.overhead_fraction() < 0.2);
}

#[test]
fn conclusion_quote_16_word_cost_range() {
    // "the cost of delivering a 16-word message is between 285 and 481
    // instructions" — the upper end matches our indefinite measurement
    // exactly; the lower end conflicts with the paper's own Table 3
    // (see EXPERIMENTS.md), which our finite measurement reproduces.
    let (ind, _) = measure_stream(16, 4, 1);
    assert_eq!(ind.total(), 481);
    let (fin, _) = measure_xfer(16, 4);
    assert_eq!(fin.total(), 397);
    assert!(fin.total() > 285 && fin.total() < 481);
}
