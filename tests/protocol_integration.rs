//! Cross-crate integration: the messaging protocols running over every
//! substrate, with multiple nodes, concurrent channels, and data
//! integrity verified end to end.

use timego_am::{CmamConfig, Machine, PollOutcome, StreamConfig, Tags};
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{patterns::Pattern, payloads, scenarios};

fn node(i: usize) -> NodeId {
    NodeId::new(i)
}

#[test]
fn xfer_over_deterministic_switched_network() {
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(4, 1)),
        4,
        CmamConfig::default(),
    );
    let data = payloads::mixed(512, 1);
    let out = m.xfer(node(0), node(3), &data).expect("completes");
    assert_eq!(m.read_buffer(node(3), out.dst_buffer, data.len()), data);
    // The destination's receive queue is smaller than the message; the
    // interleaved drain (enabled by preallocation) is what made this
    // work.
    assert!(out.packets as usize > 16);
}

#[test]
fn xfer_over_cr_network_also_works() {
    // The CMAM protocol does not *require* the raw network's weakness —
    // it runs (wastefully) over the high-level substrate too.
    let mut m = Machine::new(share(scenarios::cr(4, 2)), 4, CmamConfig::default());
    let data = payloads::mixed(256, 2);
    let out = m.xfer(node(1), node(2), &data).expect("completes");
    assert_eq!(m.read_buffer(node(2), out.dst_buffer, data.len()), data);
}

#[test]
fn stream_over_adaptive_network_with_real_reordering() {
    let mut m = Machine::new(share(scenarios::cm5_adaptive(16, 7)), 16, CmamConfig::default());
    let data = payloads::mixed(1024, 3);
    let id = m.open_stream(node(2), node(13), StreamConfig::default());
    let out = m.stream_send(id, &data).expect("completes");
    assert_eq!(m.stream_received(id), data.as_slice());
    assert_eq!(out.packets, 256);
}

#[test]
fn stream_recovers_from_corruption() {
    let mut m = Machine::new(
        share(scenarios::cm5_lossy(4, 0.03, 5)),
        4,
        CmamConfig::default(),
    );
    let data = payloads::mixed(768, 4);
    let id = m.open_stream(
        node(0),
        node(1),
        StreamConfig { rto_iterations: 128, ..StreamConfig::default() },
    );
    let out = m.stream_send(id, &data).expect("retransmission recovers");
    assert_eq!(m.stream_received(id), data.as_slice());
    let drops = m.network().borrow().stats().dropped_corrupt;
    assert!(drops > 0, "the run should actually have seen loss");
    assert!(out.retransmits > 0, "recovery should have used retransmission");
}

#[test]
fn two_concurrent_streams_do_not_interfere() {
    let mut m = Machine::new(share(scenarios::table_half_ooo(4)), 4, CmamConfig::default());
    let a = m.open_stream(node(0), node(1), StreamConfig::default());
    let b = m.open_stream(node(2), node(3), StreamConfig::default());
    let da = payloads::mixed(96, 10);
    let db = payloads::mixed(96, 11);
    m.stream_send(a, &da).unwrap();
    m.stream_send(b, &db).unwrap();
    assert_eq!(m.stream_received(a), da.as_slice());
    assert_eq!(m.stream_received(b), db.as_slice());
}

#[test]
fn am4_ring_pattern_over_switched_network() {
    let nodes = 16;
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(nodes, 9)),
        nodes,
        CmamConfig::default(),
    );
    // Each node forwards a token to its neighbor via a user handler.
    for (s, d) in Pattern::Ring.pairs(nodes) {
        m.am4_send(s, d, Tags::USER_BASE + 1, [s.index() as u32, 0, 0, 0])
            .unwrap();
    }
    m.advance(500);
    let mut received = 0;
    for i in 0..nodes {
        loop {
            match m.poll(node(i)) {
                PollOutcome::Idle => break,
                PollOutcome::Unclaimed(msg) => {
                    assert_eq!(msg.tag, Tags::USER_BASE + 1);
                    assert_eq!((msg.words[0] as usize + 1) % nodes, i);
                    received += 1;
                }
                PollOutcome::Handled(_) => unreachable!("no handlers registered"),
            }
        }
    }
    assert_eq!(received, nodes);
}

#[test]
fn hotspot_pattern_backpressures_but_loses_nothing() {
    let nodes = 16;
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(nodes, 3)),
        nodes,
        CmamConfig::default(),
    );
    for (s, d) in Pattern::Hotspot.pairs(nodes) {
        m.am4_send(s, d, Tags::USER_BASE, [s.index() as u32; 4]).unwrap();
    }
    let mut got = 0;
    let mut spins = 0;
    while got < nodes - 1 && spins < 10_000 {
        match m.poll(node(0)) {
            PollOutcome::Idle => {
                m.advance(1);
                spins += 1;
            }
            _ => got += 1,
        }
    }
    assert_eq!(got, nodes - 1, "every hotspot message must arrive");
}

#[test]
fn mixed_protocols_share_the_machine() {
    let mut m = Machine::new(share(scenarios::table_in_order(4)), 4, CmamConfig::default());
    let bulk = payloads::mixed(256, 21);
    let streamed = payloads::mixed(128, 22);

    let x = m.xfer(node(0), node(1), &bulk).unwrap();
    let s = m.open_stream(node(2), node(3), StreamConfig::default());
    m.stream_send(s, &streamed).unwrap();
    m.am4_send(node(1), node(2), Tags::USER_BASE, [5, 6, 7, 8]).unwrap();

    assert_eq!(m.read_buffer(node(1), x.dst_buffer, bulk.len()), bulk);
    assert_eq!(m.stream_received(s), streamed.as_slice());
    assert!(m.poll(node(2)).received());
}

#[test]
fn packet_size_generalization_carries_data_correctly() {
    for n in [4usize, 8, 16, 64] {
        let mut m = Machine::new(
            share(scenarios::table_half_ooo(2)),
            2,
            CmamConfig { packet_words: n, ..CmamConfig::default() },
        );
        let data = payloads::mixed(333, n as u64); // deliberately not a multiple of n
        let id = m.open_stream(node(0), node(1), StreamConfig::default());
        m.stream_send(id, &data).unwrap();
        assert_eq!(m.stream_received(id), data.as_slice(), "n={n}");
    }
}

#[test]
fn hl_protocols_over_flit_level_cr_wormhole() {
    // The high-level protocols run unchanged over the *flit-level*
    // Compressionless Routing substrate — per-pair worm serialization,
    // kill-and-retry, and hardware retransmission of corrupted worms
    // included.
    let net = scenarios::wormhole_torus_cr(3, 2, 0.05, 9); // 6 nodes
    let mut m = Machine::new(share(net), 6, CmamConfig::default());
    let data = payloads::mixed(120, 14);
    let out = m.hl_xfer(node(0), node(4), &data).expect("completes");
    assert_eq!(m.read_buffer(node(4), out.dst_buffer, data.len()), data);
    let got = m.hl_stream_send(node(0), node(4), &data).expect("completes");
    assert_eq!(got, data);
}

#[test]
fn cmam_stream_over_plain_wormhole_mesh() {
    // The CMAM protocols run over the flit-level substrate too; with
    // single-VC deterministic wormhole routing the network happens to
    // preserve order, so no out-of-order buffering occurs — the
    // sequencing machinery is pure insurance here, and still paid for.
    let net = timego_netsim::WormholeNetwork::new(
        timego_netsim::Mesh2D::new(2, 2),
        timego_netsim::WormholeConfig { rx_queue_capacity: 64, ..Default::default() },
    );
    let mut m = Machine::new(share(net), 4, CmamConfig::default());
    let data = payloads::mixed(96, 15);
    let id = m.open_stream(node(0), node(3), StreamConfig::default());
    let outcome = m.stream_send(id, &data).expect("completes");
    assert_eq!(m.stream_received(id), data.as_slice());
    assert_eq!(outcome.out_of_order, 0);
}

#[test]
fn stream_window_limits_inflight_buffers() {
    let mut m = Machine::new(share(scenarios::cr(2, 8)), 2, CmamConfig::default());
    let id = m.open_stream(
        node(0),
        node(1),
        StreamConfig { window: 2, ..StreamConfig::default() },
    );
    let data = payloads::mixed(200, 30);
    let out = m.stream_send(id, &data).expect("completes with a tiny window");
    assert_eq!(m.stream_received(id), data.as_slice());
    assert_eq!(out.packets, 50);
}
