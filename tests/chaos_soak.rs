//! Chaos soak: sweep seeds × fault mixes × protocols and assert the
//! recovery layer's end-to-end guarantees hold everywhere.
//!
//! For every named fault mix (drop, duplicate, reorder, outage, storm)
//! and twenty seeds each, the three fault-tolerant protocols — retried
//! RPC, `xfer_reliable`, and the indefinite-sequence stream — must:
//!
//! * **complete** (no timeout within the retry policy's bounds),
//! * invoke RPC handlers **exactly once** per logical call, even when
//!   the network duplicates requests or the caller retransmits them,
//! * deliver **byte-exact** payloads,
//! * keep **buffer occupancy bounded**: residual stray packets after a
//!   run are limited by the duplications the fault plane injected, not
//!   proportional to the data volume.
//!
//! A final case re-runs the sweep with every fault probability at zero
//! and checks the recovery-capable protocols cost exactly the same
//! per-feature instruction counts as their paper-faithful originals.
//!
//! The concurrency × fault-plane matrix extends the soak across
//! substrates: operation count {4, 12, 24} × fault mix {clean,
//! drop-heavy, dup+jitter, outage} × substrate {switched, wormhole,
//! dual}, with serial-blocking cost identity asserted at the clean
//! packet-switched points.

use std::cell::RefCell;
use std::rc::Rc;

use timego_am::{CmamConfig, Machine, RetryPolicy, StreamConfig};
use timego_cost::Feature;
use timego_netsim::{FaultConfig, NodeId};
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

const SEEDS: u64 = 20;
const NODES: usize = 4;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn chaos_machine(fault: &FaultConfig, seed: u64) -> Machine {
    Machine::new(
        share(scenarios::cm5_chaos(NODES, fault.clone(), seed)),
        NODES,
        CmamConfig::default(),
    )
}

/// Drain every stray packet still queued or in flight after a run and
/// return the count. Late duplicates and crossed retransmissions may
/// linger, but their number must be bounded by what the fault plane
/// actually injected — not grow with payload size.
fn residual_packets(m: &Machine, nodes: usize) -> u64 {
    m.advance(4_096); // flush jitter/reorder holds
    let net = m.network();
    let mut strays = 0;
    for i in 0..nodes {
        while net.borrow_mut().try_receive(n(i)).is_some() {
            strays += 1;
        }
    }
    strays
}

fn assert_occupancy_bounded(m: &Machine, nodes: usize, label: &str, seed: u64) {
    let strays = residual_packets(m, nodes);
    let stats = m.network().borrow().stats().clone();
    // Every stray is either a fault-plane duplicate or a software
    // retransmission that crossed its own recovery; both are counted.
    let bound = stats.duplicated + stats.reordered + 16;
    assert!(
        strays <= bound,
        "{label}/seed {seed}: {strays} stray packets exceed bound {bound}"
    );
}

#[test]
fn retried_rpc_soaks_clean_across_fault_mixes() {
    for (mix, fault) in scenarios::fault_mixes() {
        let mut mix_faults = 0u64;
        for seed in 0..SEEDS {
            let mut m = chaos_machine(&fault, seed);
            let runs = Rc::new(RefCell::new(0u32));
            let counter = runs.clone();
            m.register_rpc_handler(n(1), 40, move |_, msg| {
                *counter.borrow_mut() += 1;
                [msg.words[0].wrapping_mul(3), msg.words[1] ^ 0xdead_beef, 0, 0]
            });
            let calls = 5u32;
            for v in 0..calls {
                let args = [v, seed as u32, 0, 0];
                let reply = m
                    .rpc_call_retrying(n(0), n(1), 40, args, &RetryPolicy::default())
                    .unwrap_or_else(|e| panic!("{mix}/seed {seed} call {v}: {e}"));
                assert_eq!(
                    reply,
                    [v.wrapping_mul(3), seed as u32 ^ 0xdead_beef, 0, 0],
                    "{mix}/seed {seed} call {v}: reply must be byte-exact"
                );
            }
            assert_eq!(
                *runs.borrow(),
                calls,
                "{mix}/seed {seed}: handler must run exactly once per call"
            );
            assert_occupancy_bounded(&m, NODES, mix, seed);
            let s = m.network().borrow().stats().clone();
            mix_faults +=
                s.dropped_fault + s.duplicated + s.reordered + s.outage_drops + s.dropped_corrupt;
        }
        assert!(mix_faults > 0, "mix {mix:?} never injected a fault across {SEEDS} seeds");
    }
}

#[test]
fn xfer_reliable_soaks_byte_exact_across_fault_mixes() {
    let mut retransmitted = false;
    for (mix, fault) in scenarios::fault_mixes() {
        let mut mix_faults = 0u64;
        for seed in 0..SEEDS {
            let mut m = chaos_machine(&fault, seed);
            let words = 32 + (seed as usize % 48);
            let data = payloads::mixed(words, seed);
            let out = m
                .xfer_reliable(n(0), n(1), &data, &RetryPolicy::default())
                .unwrap_or_else(|e| panic!("{mix}/seed {seed}: {e}"));
            assert_eq!(
                m.read_buffer(n(1), out.xfer.dst_buffer, words),
                data,
                "{mix}/seed {seed}: payload must be byte-exact"
            );
            retransmitted |= out.handshake_retries > 0
                || out.data_retransmits > 0
                || out.nack_rounds > 0
                || out.ack_probes > 0;
            assert_occupancy_bounded(&m, NODES, mix, seed);
            let s = m.network().borrow().stats().clone();
            mix_faults +=
                s.dropped_fault + s.duplicated + s.reordered + s.outage_drops + s.dropped_corrupt;
        }
        // Every mix must demonstrably fault the network; reorder and
        // duplication are absorbed without retransmission (offset writes
        // and the duplicate-discard path), so the retransmit counters
        // are asserted once over the whole sweep below.
        assert!(mix_faults > 0, "mix {mix:?} never injected a fault across {SEEDS} seeds");
    }
    assert!(retransmitted, "no mix ever forced xfer_reliable to retransmit");
}

#[test]
fn stream_soaks_in_order_exactly_once_across_fault_mixes() {
    for (mix, fault) in scenarios::fault_mixes() {
        for seed in 0..SEEDS {
            let mut m = chaos_machine(&fault, seed);
            let words = 24 + (seed as usize % 40);
            let data = payloads::mixed(words, seed.wrapping_add(77));
            let id = m.open_stream(
                n(0),
                n(1),
                StreamConfig { rto_iterations: 256, ..StreamConfig::default() },
            );
            let out = m
                .stream_send(id, &data)
                .unwrap_or_else(|e| panic!("{mix}/seed {seed}: {e}"));
            // Byte-exact AND exactly-once: the delivered buffer holds the
            // payload once — duplicates were suppressed, not appended.
            assert_eq!(
                m.stream_received(id),
                data.as_slice(),
                "{mix}/seed {seed}: stream must deliver in order, exactly once"
            );
            assert!(
                out.duplicates <= m.network().borrow().stats().duplicated + out.retransmits,
                "{mix}/seed {seed}: receiver saw more duplicates than were created"
            );
            assert_occupancy_bounded(&m, NODES, mix, seed);
        }
    }
}

#[test]
fn engine_concurrent_ops_soak_exactly_once_across_fault_mixes() {
    use timego_am::{Engine, OpOutcome};

    const ENGINE_NODES: usize = 8;
    const ENGINE_SEEDS: u64 = 8;
    let policy = RetryPolicy::default();
    for (mix, fault) in scenarios::fault_mixes() {
        for seed in 0..ENGINE_SEEDS {
            let mut m = Machine::new(
                share(scenarios::cm5_chaos(ENGINE_NODES, fault.clone(), seed)),
                ENGINE_NODES,
                CmamConfig::default(),
            );
            let runs = Rc::new(RefCell::new(0u32));
            let counter = runs.clone();
            m.register_rpc_handler(n(1), 40, move |_, msg| {
                *counter.borrow_mut() += 1;
                [msg.words[0].wrapping_add(9), 0, 0, 0]
            });

            // One engine run: three reliable transfers on disjoint pairs,
            // one retried stream, two retried RPCs — all under the fault
            // plane at once.
            let mut eng = Engine::new();
            let transfers: Vec<_> = [(2usize, 3usize), (4, 5), (6, 7)]
                .iter()
                .enumerate()
                .map(|(i, (s, d))| {
                    let data = payloads::mixed(24 + (seed as usize % 24), seed + i as u64);
                    let id = eng
                        .submit_xfer_reliable(&m, n(*s), n(*d), &data, &policy)
                        .expect("valid");
                    (id, n(*d), data)
                })
                .collect();
            let sid = m.open_stream(
                n(0),
                n(2),
                StreamConfig { rto_iterations: 256, ..StreamConfig::default() },
            );
            let stream_data = payloads::mixed(20 + (seed as usize % 16), seed.wrapping_add(55));
            let stream_op = eng.submit_stream_send(&m, sid, &stream_data).expect("valid");
            let rpcs: Vec<_> = (0..2u32)
                .map(|v| {
                    (eng.submit_rpc(&mut m, n(3 + v as usize), n(1), 40, [v, 0, 0, 0], Some(&policy)), v)
                })
                .collect();

            eng.run(&mut m);
            assert_eq!(eng.unfinished(), 0, "{mix}/seed {seed}");

            for (id, dst, data) in &transfers {
                match eng.take_outcome(*id).expect("finished") {
                    Ok(OpOutcome::Reliable(out)) => assert_eq!(
                        &m.read_buffer(*dst, out.xfer.dst_buffer, data.len()),
                        data,
                        "{mix}/seed {seed}: reliable payload must be byte-exact"
                    ),
                    other => panic!("{mix}/seed {seed}: {other:?}"),
                }
            }
            match eng.take_outcome(stream_op).expect("finished") {
                Ok(OpOutcome::Stream(_)) => assert_eq!(
                    m.stream_received(sid),
                    stream_data.as_slice(),
                    "{mix}/seed {seed}: stream must deliver in order, exactly once"
                ),
                other => panic!("{mix}/seed {seed}: {other:?}"),
            }
            for (id, v) in &rpcs {
                match eng.take_outcome(*id).expect("finished") {
                    Ok(OpOutcome::Rpc(reply)) => assert_eq!(
                        reply[0],
                        v.wrapping_add(9),
                        "{mix}/seed {seed}: rpc reply must be byte-exact"
                    ),
                    other => panic!("{mix}/seed {seed}: {other:?}"),
                }
            }
            assert_eq!(
                *runs.borrow(),
                2,
                "{mix}/seed {seed}: handlers must run exactly once per call under faults"
            );

            // Residual occupancy stays bounded by injected faults, as in
            // the blocking soaks.
            m.advance(4_096);
            let net = m.network();
            let mut strays = 0u64;
            for i in 0..ENGINE_NODES {
                while net.borrow_mut().try_receive(n(i)).is_some() {
                    strays += 1;
                }
            }
            let stats = net.borrow().stats().clone();
            let bound = stats.duplicated + stats.reordered + 16;
            assert!(
                strays <= bound,
                "{mix}/seed {seed}: {strays} stray packets exceed bound {bound}"
            );
        }
    }
}

/// ISSUE satellite: the concurrency × fault-plane matrix. A seeded
/// sweep over operation count {4, 12, 24} × fault mix {clean,
/// drop-heavy, dup+jitter, outage} × substrate {switched fat tree,
/// dateline wormhole torus, dual request/reply} — every point must
/// deliver exactly-once, byte-exact, with bounded residual occupancy,
/// and on the clean points the concurrent engine run must charge
/// exactly the per-node, per-feature instruction bill of the same
/// operations run serially through the blocking layer.
#[test]
fn engine_matrix_soaks_concurrency_by_fault_plane_by_substrate() {
    use timego_am::{Engine, Machine, OpOutcome, Tags};
    use timego_netsim::{
        DualNetwork, Torus2D, VcDiscipline, WormholeConfig, WormholeNetwork,
    };

    const M_NODES: usize = 16;
    const M_SEEDS: u64 = 2; // reduced grid: this sweep rides the tier-1 path
    let policy = RetryPolicy::default();

    let mixes: Vec<(&str, FaultConfig)> = vec![
        ("clean", FaultConfig::default()),
        ("drop-heavy", scenarios::fault_mix("drop")),
        (
            "dup+jitter",
            FaultConfig { duplicate_prob: 0.10, delay_jitter: 8, ..FaultConfig::default() },
        ),
        ("outage", scenarios::fault_mix("outage")),
    ];
    let machine = |sub: &str, fault: &FaultConfig, seed: u64| -> Machine {
        match sub {
            "switched" => Machine::new(
                share(scenarios::cm5_chaos(M_NODES, fault.clone(), seed)),
                M_NODES,
                CmamConfig::default(),
            ),
            "wormhole" => Machine::new(
                share(WormholeNetwork::new(
                    Torus2D::new(4, 4),
                    WormholeConfig {
                        virtual_channels: 2,
                        discipline: VcDiscipline::Dateline,
                        fault: fault.clone(),
                        seed,
                        ..WormholeConfig::default()
                    },
                )),
                M_NODES,
                CmamConfig::default(),
            ),
            "dual" => Machine::new(
                share(DualNetwork::new(
                    scenarios::cm5_chaos(M_NODES, fault.clone(), seed),
                    scenarios::cm5_chaos(M_NODES, fault.clone(), seed ^ 0x9e37),
                    Tags::RPC_REPLY,
                )),
                M_NODES,
                CmamConfig::default(),
            ),
            other => panic!("unknown substrate {other}"),
        }
    };
    // The op list for a matrix point: mostly reliable transfers, with
    // every fourth op a retried RPC to the server on node 1. Transfers
    // deliberately *repeat* the same four ordered pairs (low half →
    // high half): successive same-pair sessions under a duplicating,
    // jitter-delaying fault plane are exactly what the epoch-stamped
    // handshake exists for — a delayed duplicate of an earlier session's
    // request, reply, or data packet carries a stale epoch/nonce and is
    // discarded as fault-tolerance work instead of poisoning the next
    // handshake. Conflict keys serialize the same-pair ops in
    // submission order.
    let pair = |j: usize| (NodeId::new(j % 4), NodeId::new(8 + j % 4));
    let payload = |i: usize, seed: u64| payloads::mixed(16 + (i % 8), seed.wrapping_add(i as u64));

    for sub in ["switched", "wormhole", "dual"] {
        for (mix, fault) in &mixes {
            for ops in [4usize, 12, 24] {
                for seed in 0..M_SEEDS {
                    let label = format!("{sub}/{mix}/{ops} ops");
                    let mut m = machine(sub, fault, seed);
                    let runs = Rc::new(RefCell::new(0u32));
                    let counter = runs.clone();
                    m.register_rpc_handler(n(1), 40, move |_, msg| {
                        *counter.borrow_mut() += 1;
                        [msg.words[0].wrapping_mul(5), msg.words[1], 0, 0]
                    });

                    let mut eng = Engine::new();
                    let mut xfers = Vec::new();
                    let mut rpcs = Vec::new();
                    let mut xj = 0usize;
                    for i in 0..ops {
                        if i % 4 == 3 {
                            let caller = n((2 * i + 4) % M_NODES);
                            let v = i as u32;
                            let id = eng.submit_rpc(
                                &mut m,
                                caller,
                                n(1),
                                40,
                                [v, seed as u32, 0, 0],
                                Some(&policy),
                            );
                            rpcs.push((id, v));
                        } else {
                            let (src, dst) = pair(xj);
                            xj += 1;
                            let data = payload(i, seed);
                            let id = eng
                                .submit_xfer_reliable(&m, src, dst, &data, &policy)
                                .expect("valid");
                            xfers.push((id, dst, data));
                        }
                    }
                    eng.run(&mut m);
                    assert_eq!(eng.unfinished(), 0, "{label}/seed {seed}");

                    for (id, dst, data) in &xfers {
                        match eng.take_outcome(*id).expect("finished") {
                            Ok(OpOutcome::Reliable(out)) => assert_eq!(
                                &m.read_buffer(*dst, out.xfer.dst_buffer, data.len()),
                                data,
                                "{label}/seed {seed}: payload must be byte-exact"
                            ),
                            other => panic!("{label}/seed {seed}: {other:?}"),
                        }
                    }
                    for (id, v) in &rpcs {
                        match eng.take_outcome(*id).expect("finished") {
                            Ok(OpOutcome::Rpc(reply)) => assert_eq!(
                                reply,
                                [v.wrapping_mul(5), seed as u32, 0, 0],
                                "{label}/seed {seed}: reply must be byte-exact"
                            ),
                            other => panic!("{label}/seed {seed}: {other:?}"),
                        }
                    }
                    assert_eq!(
                        *runs.borrow() as usize,
                        rpcs.len(),
                        "{label}/seed {seed}: handlers must run exactly once per call"
                    );
                    assert_occupancy_bounded(&m, M_NODES, &label, seed);

                    // Clean points: interleaving K operations must
                    // charge exactly the serial blocking bill, per node
                    // and per feature. Scoped to the packet-switched
                    // substrates: on the wormhole fabric concurrent
                    // worms contend for flit channels, so the number of
                    // (paid) injection attempts genuinely differs from
                    // a serial run over an empty fabric — equal results,
                    // different bills, by design.
                    if *mix == "clean" && sub != "wormhole" {
                        let mut serial = machine(sub, fault, seed);
                        let runs = Rc::new(RefCell::new(0u32));
                        let counter = runs.clone();
                        serial.register_rpc_handler(n(1), 40, move |_, msg| {
                            *counter.borrow_mut() += 1;
                            [msg.words[0].wrapping_mul(5), msg.words[1], 0, 0]
                        });
                        let mut xj = 0usize;
                        for i in 0..ops {
                            if i % 4 == 3 {
                                let caller = n((2 * i + 4) % M_NODES);
                                serial
                                    .rpc_call_retrying(caller, n(1), 40, [i as u32, seed as u32, 0, 0], &policy)
                                    .expect("clean substrate");
                            } else {
                                let (src, dst) = pair(xj);
                                xj += 1;
                                serial
                                    .xfer_reliable(src, dst, &payload(i, seed), &policy)
                                    .expect("clean substrate");
                            }
                        }
                        for node in 0..M_NODES {
                            for f in Feature::ALL {
                                assert_eq!(
                                    m.cpu(n(node)).snapshot().feature_total(f),
                                    serial.cpu(n(node)).snapshot().feature_total(f),
                                    "{label}/seed {seed}: node {node} feature {f:?} bill must \
                                     match the serial blocking run"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fault_free_soak_runs_cost_exactly_the_paper_protocols() {
    let clean = FaultConfig::default();
    let data = payloads::mixed(64, 9);

    // xfer_reliable vs xfer on the same (fault-free) chaos substrate.
    let mut base = chaos_machine(&clean, 5);
    base.reset_costs();
    let b = base.xfer(n(0), n(1), &data).unwrap();
    let mut rel = chaos_machine(&clean, 5);
    rel.reset_costs();
    let r = rel.xfer_reliable(n(0), n(1), &data, &RetryPolicy::default()).unwrap();
    assert_eq!(r.xfer.packets, b.packets);
    assert_eq!(
        (r.handshake_retries, r.data_retransmits, r.nack_rounds, r.ack_probes),
        (0, 0, 0, 0),
        "clean run must not exercise recovery"
    );
    for node in [n(0), n(1)] {
        for f in Feature::ALL {
            assert_eq!(
                rel.cpu(node).snapshot().feature_total(f),
                base.cpu(node).snapshot().feature_total(f),
                "xfer_reliable node {node:?} feature {f:?} must cost exactly xfer"
            );
        }
    }

    // rpc_call_retrying vs rpc_call.
    let mut base = chaos_machine(&clean, 6);
    base.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
    base.reset_costs();
    assert_eq!(base.rpc_call(n(0), n(1), 40, [7, 0, 0, 0]).unwrap()[0], 8);
    let mut ret = chaos_machine(&clean, 6);
    ret.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
    ret.reset_costs();
    assert_eq!(
        ret.rpc_call_retrying(n(0), n(1), 40, [7, 0, 0, 0], &RetryPolicy::default()).unwrap()[0],
        8
    );
    for node in [n(0), n(1)] {
        for f in Feature::ALL {
            assert_eq!(
                ret.cpu(node).snapshot().feature_total(f),
                base.cpu(node).snapshot().feature_total(f),
                "retried rpc node {node:?} feature {f:?} must cost exactly rpc_call"
            );
        }
    }
}
