//! Scheduler equivalence soak: the readiness-driven event scheduler
//! must be observationally identical to the retained reference
//! round-robin stepper.
//!
//! For every substrate {switched, wormhole, dual} × fault variant
//! {clean, dup+jitter, crash window} × 6 seeds, the same mixed workload
//! (reliable transfers with engine-native recovery, a stream burst,
//! retried RPCs, an am4 run-after chain) is driven to completion twice
//! — once under [`SchedMode::EventDriven`], once under
//! [`SchedMode::ReferenceRoundRobin`] — on identically-seeded machines,
//! and the runs must agree on:
//!
//! * the **full scheduler trace** ([`TracedEvent`] sequence, stamps
//!   included) — same progress interleaving at the same cycles;
//! * the **per-node, per-feature instruction bills** — sleeping is
//!   cost-free, so skipping idle steps must not move a single count;
//! * every operation's **outcome** (payloads, retransmit tallies,
//!   errors);
//! * while the event scheduler takes **no more op steps** than the
//!   reference — and strictly fewer in aggregate, or the readiness
//!   machinery isn't doing anything.
//!
//! A second soak re-runs the same workload on the parallel sharded
//! substrate at 1, 2 and 4 worker threads and requires every thread
//! count to be byte-identical to the single-threaded run.

use std::cell::RefCell;
use std::rc::Rc;

use timego_am::{
    CmamConfig, Engine, Machine, OpId, RecoveryPolicy, RetryPolicy, SchedMode, StreamConfig,
    Tags, TracedEvent,
};
use timego_cost::Feature;
use timego_netsim::{
    CrashWindow, DualNetwork, FaultConfig, NodeId, Torus2D, VcDiscipline, WormholeConfig,
    WormholeNetwork,
};
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

const NODES: usize = 16;
const SEEDS: u64 = 6;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn machine(sub: &str, fault: &FaultConfig, seed: u64) -> Machine {
    match sub {
        "switched" => Machine::new(
            share(scenarios::cm5_chaos(NODES, fault.clone(), seed)),
            NODES,
            CmamConfig::default(),
        ),
        "wormhole" => Machine::new(
            share(WormholeNetwork::new(
                Torus2D::new(4, 4),
                WormholeConfig {
                    virtual_channels: 2,
                    discipline: VcDiscipline::Dateline,
                    fault: fault.clone(),
                    seed,
                    ..WormholeConfig::default()
                },
            )),
            NODES,
            CmamConfig::default(),
        ),
        "dual" => Machine::new(
            share(DualNetwork::new(
                scenarios::cm5_chaos(NODES, fault.clone(), seed),
                scenarios::cm5_chaos(NODES, fault.clone(), seed ^ 0x9e37),
                Tags::RPC_REPLY,
            )),
            NODES,
            CmamConfig::default(),
        ),
        // Parallel sharded substrate at each thread count: the shard
        // layout (4 shards of 4 nodes) is fixed, only the worker count
        // varies — results must not.
        "sharded-t1" | "sharded-t2" | "sharded-t4" => {
            let threads = sub.trim_start_matches("sharded-t").parse().expect("thread suffix");
            Machine::new(
                share(scenarios::cm5_sharded_chaos(NODES, 4, threads, fault.clone(), seed)),
                NODES,
                CmamConfig::default(),
            )
        }
        other => panic!("unknown substrate {other}"),
    }
}

fn fault_variant(name: &str) -> FaultConfig {
    match name {
        "clean" => FaultConfig::default(),
        "dup+jitter" => {
            FaultConfig { duplicate_prob: 0.10, delay_jitter: 8, ..FaultConfig::default() }
        }
        // One endpoint of the first transfer crashes mid-run and
        // restarts; engine-native recovery re-executes across it.
        "crash" => FaultConfig {
            crashes: vec![CrashWindow { node: n(9), start: 80, end: 220 }],
            ..FaultConfig::default()
        },
        other => panic!("unknown fault variant {other}"),
    }
}

/// Per-node, per-feature instruction totals.
fn feature_matrix(m: &Machine, nodes: usize) -> Vec<Vec<u64>> {
    (0..nodes)
        .map(|i| Feature::ALL.iter().map(|&f| m.cpu(n(i)).snapshot().feature_total(f)).collect())
        .collect()
}

struct Fingerprint {
    trace: Vec<TracedEvent>,
    bills: Vec<Vec<u64>>,
    outcomes: Vec<(OpId, String)>,
    steps: u64,
}

/// Drive the mixed workload to completion under `mode` and capture
/// everything observable about the run.
fn run_one(mode: SchedMode, sub: &str, fault: &FaultConfig, seed: u64) -> Fingerprint {
    let mut m = machine(sub, fault, seed);
    let calls = Rc::new(RefCell::new(0u32));
    let counter = calls.clone();
    m.register_rpc_handler(n(1), 40, move |_, msg| {
        *counter.borrow_mut() += 1;
        [msg.words[0].wrapping_mul(3), 0, 0, 0]
    });

    let mut eng = Engine::with_mode(mode);
    let policy = RetryPolicy::default();
    let recovery = RecoveryPolicy::default();
    let mut ids: Vec<OpId> = Vec::new();

    // Two recovery-armed reliable transfers on disjoint pairs; the
    // crash variant fells node 9 mid-flight, so transfer A re-executes.
    for (i, (s, d)) in [(2usize, 9usize), (4, 11)].into_iter().enumerate() {
        let data = payloads::mixed(24 + 8 * i, seed + i as u64);
        ids.push(
            eng.submit_xfer_reliable_recovering(&m, n(s), n(d), &data, &policy, &recovery)
                .expect("valid transfer"),
        );
    }
    // A stream burst with its own RTO machinery.
    let sid = m.open_stream(n(0), n(2), StreamConfig { rto_iterations: 256, ..StreamConfig::default() });
    ids.push(
        eng.submit_stream_send(&m, sid, &payloads::mixed(20, seed.wrapping_add(55)))
            .expect("valid stream"),
    );
    // Two retried RPCs against one server.
    for v in 0..2u32 {
        ids.push(eng.submit_rpc(&mut m, n(3 + 2 * v as usize), n(1), 40, [v, 0, 0, 0], Some(&policy)));
    }
    // An am4 run-after chain: the second hop releases only when the
    // first delivers.
    let hop = eng.submit_am4(&m, n(6), n(7), 50, [seed as u32, 1, 2, 3]).expect("valid am4");
    ids.push(hop);
    ids.push(
        eng.submit_am4_after(&m, n(7), n(8), 50, [seed as u32, 4, 5, 6], &[hop])
            .expect("valid am4 chain"),
    );

    eng.run(&mut m);
    assert_eq!(eng.unfinished(), 0, "{sub}/seed {seed}: run must settle everything");

    let trace = eng.trace().to_vec();
    let bills = feature_matrix(&m, NODES);
    let outcomes = ids
        .iter()
        .map(|&id| (id, format!("{:?}", eng.take_outcome(id).expect("finished"))))
        .collect();
    Fingerprint { trace, bills, outcomes, steps: eng.counters().steps }
}

#[test]
fn event_scheduler_is_trace_and_bill_identical_to_reference() {
    let mut ref_steps = 0u64;
    let mut evt_steps = 0u64;
    for sub in ["switched", "wormhole", "dual"] {
        for variant in ["clean", "dup+jitter", "crash"] {
            let fault = fault_variant(variant);
            for seed in 0..SEEDS {
                let evt = run_one(SchedMode::EventDriven, sub, &fault, seed);
                let rr = run_one(SchedMode::ReferenceRoundRobin, sub, &fault, seed);
                let ctx = format!("{sub}/{variant}/seed {seed}");
                if evt.trace != rr.trace {
                    let at = evt
                        .trace
                        .iter()
                        .zip(rr.trace.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| evt.trace.len().min(rr.trace.len()));
                    let window = |t: &[TracedEvent]| {
                        t[at.saturating_sub(3)..(at + 4).min(t.len())].to_vec()
                    };
                    panic!(
                        "{ctx}: traces diverge at entry {at} (event {} entries, reference {}):\n  event: {:?}\n  reference: {:?}",
                        evt.trace.len(),
                        rr.trace.len(),
                        window(&evt.trace),
                        window(&rr.trace),
                    );
                }
                assert_eq!(
                    evt.bills, rr.bills,
                    "{ctx}: per-feature bills must match node by node"
                );
                assert_eq!(evt.outcomes, rr.outcomes, "{ctx}: outcomes must match");
                assert!(
                    evt.steps <= rr.steps,
                    "{ctx}: event scheduler took more steps ({} > {})",
                    evt.steps,
                    rr.steps
                );
                ref_steps += rr.steps;
                evt_steps += evt.steps;
            }
        }
    }
    assert!(
        evt_steps < ref_steps,
        "event scheduler must skip idle steps somewhere (event {evt_steps} vs reference {ref_steps})"
    );
}

/// The PR 7 soak re-run on the parallel sharded substrate, at 1, 2 and
/// 4 worker threads: within each thread count the event scheduler must
/// be trace/bill/outcome-identical to the reference stepper, and across
/// thread counts *everything* — traces, bills, outcomes, step counts —
/// must be byte-identical to the single-threaded run. Thread count is
/// an execution resource, never a model parameter.
#[test]
fn sharded_substrate_is_equivalent_at_every_thread_count() {
    for variant in ["clean", "dup+jitter", "crash"] {
        let fault = fault_variant(variant);
        for seed in 0..SEEDS {
            let baseline = run_one(SchedMode::EventDriven, "sharded-t1", &fault, seed);
            let rr = run_one(SchedMode::ReferenceRoundRobin, "sharded-t1", &fault, seed);
            let ctx = format!("sharded/{variant}/seed {seed}");
            assert_eq!(baseline.trace, rr.trace, "{ctx}: event vs reference trace");
            assert_eq!(baseline.bills, rr.bills, "{ctx}: event vs reference bills");
            assert_eq!(baseline.outcomes, rr.outcomes, "{ctx}: event vs reference outcomes");
            for sub in ["sharded-t2", "sharded-t4"] {
                let threaded = run_one(SchedMode::EventDriven, sub, &fault, seed);
                let ctx = format!("{sub}/{variant}/seed {seed}");
                assert_eq!(
                    threaded.trace, baseline.trace,
                    "{ctx}: trace must be byte-identical to 1 thread"
                );
                assert_eq!(threaded.bills, baseline.bills, "{ctx}: bills vs 1 thread");
                assert_eq!(threaded.outcomes, baseline.outcomes, "{ctx}: outcomes vs 1 thread");
                assert_eq!(threaded.steps, baseline.steps, "{ctx}: step count vs 1 thread");
            }
        }
    }
}

/// The default engine is the event scheduler — the whole test suite
/// re-pins equivalence implicitly, but make the default explicit here.
#[test]
fn default_engine_mode_is_event_driven() {
    assert_eq!(Engine::new().mode(), SchedMode::EventDriven);
}
