//! Failure-domain invariants: the service plane's failure detector,
//! health-aware routing, hedged requests, retry budgets, and brownout
//! breaker, pinned under crash-restart faults and parallel substrate
//! stepping.
//!
//! * **Detection and recovery** — a mid-run crash-restart on one
//!   server is ejected by the heartbeat detector and reinstated after
//!   the restart; goodput with the full failure domain armed stays
//!   within 10% of a clean run while the detector-off baseline
//!   measurably degrades.
//! * **Hedged exactly-once** — hedge legs racing a `CrashWindow` never
//!   double-run a handler: `ServerPool` runs equal admitted requests
//!   at 1, 2, and 4 substrate worker threads, with byte-identical
//!   [`ServiceOutcome::signature`]s (the satellite-4 property test).
//! * **Retry budgets** — a near-dry token bucket caps the crash's
//!   recovery amplification; denials are observable and bounded by the
//!   bucket, and denied requests settle (fail) instead of re-running.
//! * **Brownout breaker** — losing most of the pool trips the breaker:
//!   the sheddable class is turned away at admission instead of
//!   queueing at the corpses, and the batch class keeps completing.
//! * **Migration × detector** — retiring an ejected server mid-run
//!   neither panics nor routes to the retiree (the satellite-3
//!   `remove_server` fix, exercised end to end).

use timego_am::{RecoveryPolicy, RetryPolicy};
use timego_netsim::{CrashWindow, FaultConfig, NodeId};
use timego_workloads::service::{
    run_service, serving_machine, serving_machine_chaos, AdmissionWindow, BalancerPolicy,
    BreakerSpec, DetectorSpec, HedgeSpec, Migration, QosClass, RetryBudget, ServiceOutcome,
    ServiceSpec,
};

const NODES: usize = 256;
const GATEWAYS: usize = 4;
const SERVERS: usize = 8;
const REQUESTS: usize = 500;
const INTERVAL: u64 = 24;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn nodes(lo: usize, count: usize) -> Vec<NodeId> {
    (lo..lo + count).map(n).collect()
}

/// Recovery-armed, hedged, sheddable interactive population with no
/// deadline: every admitted request eventually settles, so exactly-once
/// stays assertable under crash windows.
fn hedged_class() -> QosClass {
    QosClass {
        name: "interactive",
        class: 0,
        interval: INTERVAL,
        requests: REQUESTS,
        work: 4,
        deadline: None,
        recovery: Some(RecoveryPolicy::default()),
        retry: RetryPolicy::default(),
        hedge: true,
        sheddable: true,
        retry_budget: None,
    }
}

fn detector() -> DetectorSpec {
    DetectorSpec { period: 600, timeout: 500, threshold: 2 }
}

fn hedge() -> HedgeSpec {
    HedgeSpec { quantile: 0.95, min_samples: 32, bootstrap: 2048 }
}

fn failover_spec(detector_on: bool, hedge_on: bool) -> ServiceSpec {
    ServiceSpec {
        gateways: nodes(0, GATEWAYS),
        servers: nodes(GATEWAYS, SERVERS),
        policy: BalancerPolicy::ConsistentHash { vnodes: 64 },
        window: AdmissionWindow::TierGlobal(4 * SERVERS),
        classes: vec![hedged_class()],
        detector: detector_on.then(detector),
        hedge: hedge_on.then(hedge),
        seed: 42,
        ..ServiceSpec::default()
    }
}

/// One crash-restart on the first server spanning the middle half of
/// the arrival span.
fn one_crash() -> FaultConfig {
    let span = INTERVAL * REQUESTS as u64;
    FaultConfig {
        crashes: vec![CrashWindow { node: n(GATEWAYS), start: span / 4, end: span * 3 / 4 }],
        ..FaultConfig::default()
    }
}

fn assert_conserved(out: &ServiceOutcome) {
    assert_eq!(out.in_flight_at_end, 0, "quiesced run must have nothing in flight");
    for c in &out.classes {
        assert_eq!(c.offered, c.admitted + c.shed, "arrival conservation ({})", c.name);
        assert_eq!(c.admitted, c.completed + c.failed, "settlement conservation ({})", c.name);
    }
}

fn total_runs(out: &ServiceOutcome) -> u64 {
    out.handler_runs.values().sum()
}

fn admitted(out: &ServiceOutcome) -> usize {
    out.classes.iter().map(|c| c.admitted).sum()
}

#[test]
fn detector_ejects_the_crashed_server_and_reinstates_it_after_restart() {
    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let out = run_service(&mut m, &failover_spec(true, false));
    assert_conserved(&out);
    assert!(out.probes > 0, "the detector must have probed");
    assert!(out.probe_failures > 0, "probes at the corpse must fail");
    assert!(out.ejections >= 1, "the crashed server must be ejected");
    assert!(
        out.reinstatements >= 1,
        "the restarted server must be reinstated ({} ejections)",
        out.ejections
    );
    assert!(
        out.detector_bill.total() > 0,
        "detection work must be billed, not free"
    );
    println!(
        "detector: {} probes, {} failures, {} ejections, {} reinstatements, {} bill",
        out.probes,
        out.probe_failures,
        out.ejections,
        out.reinstatements,
        out.detector_bill.total()
    );
}

#[test]
fn failure_domain_holds_goodput_while_the_baseline_degrades() {
    let mut m = serving_machine(NODES, 2, 1, 42);
    let clean = run_service(&mut m, &failover_spec(true, true));
    assert_conserved(&clean);
    assert_eq!(clean.ejections, 0, "a clean run must not eject");

    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let base = run_service(&mut m, &failover_spec(false, false));
    assert_conserved(&base);

    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let armed = run_service(&mut m, &failover_spec(true, true));
    assert_conserved(&armed);
    assert!(armed.ejections >= 1, "the armed run must eject the corpse");

    let (g_clean, g_base, g_armed) = (
        clean.goodput_per_kcycle(),
        base.goodput_per_kcycle(),
        armed.goodput_per_kcycle(),
    );
    assert!(
        g_armed >= 0.9 * g_clean,
        "armed goodput {g_armed:.2}/kc fell more than 10% below clean {g_clean:.2}/kc"
    );
    assert!(
        g_base < 0.9 * g_clean,
        "the detector-off baseline must measurably degrade ({g_base:.2} vs {g_clean:.2})"
    );
    println!("goodput/kc: clean {g_clean:.2}, baseline {g_base:.2}, armed {g_armed:.2}");
}

#[test]
fn hedge_legs_racing_a_crash_window_run_each_handler_exactly_once() {
    // The satellite-4 property: hedged requests whose legs race a
    // server CrashWindow still run exactly once pool-wide, and the
    // whole outcome is identical at 1, 2, and 4 worker threads.
    let spec = failover_spec(true, true);
    let mut signatures = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = serving_machine_chaos(NODES, 2, threads, one_crash(), 42);
        let out = run_service(&mut m, &spec);
        assert_conserved(&out);
        assert_eq!(
            total_runs(&out),
            admitted(&out) as u64,
            "t{threads}: handler runs must equal admitted requests \
             ({} hedges, {} wins, {} dup-suppressed)",
            out.classes[0].hedges,
            out.classes[0].hedge_wins,
            out.dup_suppressed
        );
        signatures.push((threads, out.signature(), out.classes[0].hedges));
    }
    let (_, pinned, hedges) = signatures[0];
    assert!(hedges > 0, "the crash must provoke at least one hedge");
    for &(threads, sig, _) in &signatures[1..] {
        assert_eq!(sig, pinned, "worker-thread count {threads} changed the hedged outcome");
    }
    println!("hedged exactly-once: signature {pinned:#018x} at t1/t2/t4, {hedges} hedges");
}

#[test]
fn a_near_dry_retry_budget_caps_recovery_amplification() {
    // Unbudgeted reference: recovery re-executes freely through the
    // crash (hedging off so the budget actually comes under pressure).
    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let free = run_service(&mut m, &failover_spec(true, false));
    assert_conserved(&free);
    let free_reexec = free.classes[0].re_executions;
    assert!(free_reexec > 2, "the fixture must re-execute (got {free_reexec})");
    assert_eq!(free.classes[0].budget_denied, 0, "no budget, no denials");

    let mut spec = failover_spec(true, false);
    spec.classes[0].retry_budget = Some(RetryBudget { capacity: 2, refill_milli_per_kcycle: 0 });
    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let capped = run_service(&mut m, &spec);
    assert_conserved(&capped);
    let c = &capped.classes[0];
    assert!(c.budget_denied > 0, "the dry bucket must deny re-executions");
    assert!(
        c.re_executions <= 2,
        "re-executions {} must be bounded by the bucket capacity",
        c.re_executions
    );
    assert!(
        c.re_executions < free_reexec,
        "the budget must cap amplification ({} vs {})",
        c.re_executions,
        free_reexec
    );
    assert!(c.failed > 0, "denied requests settle as failures, not limbo");
    println!(
        "retry budget: {} re-executions (free ran {free_reexec}), {} denied, {} failed",
        c.re_executions, c.budget_denied, c.failed
    );
}

#[test]
fn losing_most_of_the_pool_trips_the_brownout_breaker() {
    // Crash 6 of 8 servers for the middle half of the run. The breaker
    // sheds the sheddable interactive class while healthy capacity is
    // below half; the non-sheddable batch class keeps completing.
    let span = INTERVAL * REQUESTS as u64;
    let fault = FaultConfig {
        crashes: (0..6)
            .map(|i| CrashWindow { node: n(GATEWAYS + i), start: span / 4, end: span * 3 / 4 })
            .collect(),
        ..FaultConfig::default()
    };
    let mut spec = failover_spec(true, true);
    spec.breaker = Some(BreakerSpec { min_healthy_milli: 500 });
    spec.classes.push(QosClass {
        name: "batch",
        class: 1,
        interval: INTERVAL * 2,
        requests: REQUESTS / 2,
        work: 4,
        deadline: None,
        recovery: Some(RecoveryPolicy::default()),
        retry: RetryPolicy::default(),
        hedge: false,
        sheddable: false,
        retry_budget: None,
    });
    let mut m = serving_machine_chaos(NODES, 2, 1, fault, 42);
    let out = run_service(&mut m, &spec);
    assert_conserved(&out);
    let interactive = &out.classes[0];
    let batch = &out.classes[1];
    assert!(
        interactive.breaker_shed > 0,
        "losing 6/8 servers must trip the breaker on the sheddable class"
    );
    assert_eq!(batch.breaker_shed, 0, "the breaker must not touch non-sheddable classes");
    assert!(batch.completed > 0, "batch must keep completing through the brownout");
    assert_eq!(
        total_runs(&out),
        admitted(&out) as u64,
        "brownout must stay exactly-once"
    );
    println!(
        "brownout: interactive breaker-shed {}, batch completed {}, {} ejections",
        interactive.breaker_shed, batch.completed, out.ejections
    );
}

#[test]
fn retiring_an_ejected_server_mid_run_is_safe() {
    // Migration fires at 60% of arrivals — while the crashed (and by
    // then ejected) first server is still dark — and retires the two
    // lowest-id servers, recruiting a spare. The satellite-3 fix means
    // the retiree leaves membership, ring, and ejection set atomically:
    // no panic, no routing to the removed node, and the run still
    // settles every admitted request.
    let mut spec = failover_spec(true, true);
    spec.migration = Some(Migration {
        at: 0.6,
        retire: 2,
        recruit: vec![n(GATEWAYS + SERVERS)],
    });
    let mut m = serving_machine_chaos(NODES, 2, 1, one_crash(), 42);
    let out = run_service(&mut m, &spec);
    assert_conserved(&out);
    assert!(out.ejections >= 1, "the corpse must be ejected before the migration");
    assert_eq!(
        total_runs(&out),
        admitted(&out) as u64,
        "migration × detector must stay exactly-once"
    );
    let retired_runs = out.handler_runs.get(&GATEWAYS).copied().unwrap_or(0)
        + out.handler_runs.get(&(GATEWAYS + 1)).copied().unwrap_or(0);
    let recruit_runs = out.handler_runs.get(&(GATEWAYS + SERVERS)).copied().unwrap_or(0);
    assert!(
        recruit_runs > 0,
        "the recruited spare must take traffic after the migration"
    );
    println!(
        "migration × detector: {} ejections, retiree ran {retired_runs}, recruit ran {recruit_runs}",
        out.ejections
    );
}
