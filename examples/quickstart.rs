//! Quickstart: the active-messages layer in five minutes.
//!
//! Builds a two-node machine over an instant substrate, sends a single
//! active message (the paper's Table 1 workload), then a bulk transfer
//! and a stream, printing the measured instruction costs of each.
//!
//! Run with: `cargo run -p timego-bench --example quickstart`

use timego_am::{CmamConfig, Machine, PollOutcome, StreamConfig, Tags};
use timego_cost::Feature;
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An instant, in-order substrate — the paper's measurement setup.
    let net = share(scenarios::table_in_order(2));
    let mut m = Machine::new(net, 2, CmamConfig::default());
    let (alice, bob) = (NodeId::new(0), NodeId::new(1));

    // --- 1. A single active message (CMAM_4) -------------------------
    m.register_handler(bob, Tags::USER_BASE, |mem, msg| {
        // The handler is the "small amount of computation at the
        // receiving end": store the payload's sum into memory.
        let a = mem.alloc(1);
        mem.store(a, msg.words.iter().sum());
        println!("  bob's handler ran: sum = {}", msg.words.iter().sum::<u32>());
    });
    m.am4_send(alice, bob, Tags::USER_BASE, [1, 2, 3, 4])?;
    let outcome = m.poll(bob);
    assert!(matches!(outcome, PollOutcome::Handled(_)));
    println!(
        "single-packet delivery: {} instructions at the source, {} at the destination",
        m.cpu(alice).snapshot().total(),
        m.cpu(bob).snapshot().total(),
    );

    // --- 2. A bulk memory-to-memory transfer (finite sequence) -------
    m.reset_costs();
    let data = payloads::ramp(1024);
    let xfer = m.xfer(alice, bob, &data)?;
    assert_eq!(m.read_buffer(bob, xfer.dst_buffer, data.len()), data);
    let src = m.cpu(alice).snapshot();
    let dst = m.cpu(bob).snapshot();
    println!(
        "finite-sequence transfer of 1024 words: {} packets, {} instructions total",
        xfer.packets,
        src.total() + dst.total(),
    );
    println!(
        "  of which buffer management {}, in-order delivery {}, fault tolerance {}",
        src.feature_total(Feature::BufferMgmt) + dst.feature_total(Feature::BufferMgmt),
        src.feature_total(Feature::InOrder) + dst.feature_total(Feature::InOrder),
        src.feature_total(Feature::FaultTol) + dst.feature_total(Feature::FaultTol),
    );

    // --- 3. An ordered stream (indefinite sequence) -------------------
    m.reset_costs();
    let id = m.open_stream(alice, bob, StreamConfig::default());
    m.stream_send(id, &data)?;
    assert_eq!(m.stream_received(id), data.as_slice());
    let total = m.cpu(alice).snapshot().total() + m.cpu(bob).snapshot().total();
    let ovh = m.cpu(alice).snapshot().overhead_total() + m.cpu(bob).snapshot().overhead_total();
    println!(
        "indefinite-sequence stream of 1024 words: {} instructions total, {:.0}% software overhead",
        total,
        100.0 * ovh as f64 / total as f64,
    );
    println!("(the paper's headline: 50-70% of messaging cost is overhead)");
    Ok(())
}
