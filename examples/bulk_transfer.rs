//! Bulk memory-to-memory transfer, CMAM versus a high-level network.
//!
//! Sweeps message sizes and shows where the preallocation handshake
//! hurts (small transfers) and what a Compressionless-Routing-style
//! network recovers — the content of Figure 6 (left), plus a run over
//! the *actual* CR substrate with latency and bounded windows.
//!
//! Run with: `cargo run -p timego-bench --example bulk_transfer`

use timego_am::{measure_hl_xfer, measure_xfer, CmamConfig, Machine};
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{payloads, scenarios, sweeps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("words | CMAM instr | HL instr | reduction");
    println!("------+------------+----------+----------");
    for words in sweeps::message_sizes(16, 4096) {
        let (cmam, _) = measure_xfer(words as usize, 4);
        let (hl, _) = measure_hl_xfer(words as usize, 4);
        println!(
            "{words:>5} | {:>10} | {:>8} | {:>7.1}%",
            cmam.total(),
            hl.total(),
            100.0 * (1.0 - hl.total() as f64 / cmam.total() as f64),
        );
    }

    // The same transfer over a real CR substrate (delivery latency,
    // bounded per-pair window, hardware retransmission): correctness is
    // hardware's problem, and the software cost barely moves.
    println!("\nOver the behavioral CR substrate (window 4, latency 6 cycles):");
    let mut m = Machine::new(share(scenarios::cr(2, 42)), 2, CmamConfig::default());
    let data = payloads::mixed(2048, 7);
    m.reset_costs();
    let out = m.hl_xfer(NodeId::new(0), NodeId::new(1), &data)?;
    assert_eq!(m.read_buffer(NodeId::new(1), out.dst_buffer, data.len()), data);
    println!(
        "  2048 words: {} packets, {} injection retries (hardware flow control), {} instructions",
        out.packets,
        out.send_retries,
        m.cpu(NodeId::new(0)).snapshot().total() + m.cpu(NodeId::new(1)).snapshot().total(),
    );
    Ok(())
}
