//! Concurrent many-to-many traffic through one engine run.
//!
//! Eight nodes on the adaptive (reordering) fat-tree substrate carry a
//! full random permutation of fault-tolerant bulk transfers *and* a
//! ring of stream sends at the same time — every operation a state
//! machine inside a single [`timego_am::Engine`] run, so the transfers
//! genuinely overlap on the wire instead of executing back to back.
//! Prints per-node occupancy (who got hot) and the aggregate
//! per-feature instruction bill.
//!
//! Run with: `cargo run -p timego-bench --example concurrent_traffic`

use timego_am::RetryPolicy;
use timego_cost::Feature;
use timego_netsim::NodeId;
use timego_workloads::concurrent::{self, TrafficKind};

const NODES: usize = 8;
const WORDS: usize = 96;

fn main() {
    let mut m = concurrent::switched_machine(NODES, 17);

    // A full random permutation of reliable transfers...
    let mut ops = concurrent::permutation_plan(NODES, TrafficKind::Reliable, WORDS, 5);
    let transfers = ops.len();
    // ...plus a ring of streams, all submitted into the same engine run.
    let ring: Vec<_> =
        (0..NODES).map(|i| (NodeId::new(i), NodeId::new((i + 1) % NODES))).collect();
    ops.extend(concurrent::plan(&ring, TrafficKind::Stream, WORDS, 9));

    println!(
        "submitting {} operations ({transfers} reliable transfers + {} streams) across {NODES} nodes\n",
        ops.len(),
        ops.len() - transfers,
    );
    let out = concurrent::run_concurrent(&mut m, &ops, &RetryPolicy::default());
    assert!(out.failures.is_empty(), "failures: {:?}", out.failures);

    println!(
        "one engine run: {}/{} operations completed byte-exact in {} network cycles",
        out.completed, out.submitted, out.elapsed_cycles
    );
    println!(
        "{} payload words moved = {:.2} words/cycle aggregate; {} scheduler trace events\n",
        out.words_moved,
        out.words_per_cycle(),
        out.trace_events
    );

    println!("per-node occupancy (the substrate's view of the contention):");
    println!("{:>6} | {:>12} | {:>14} | {:>13}", "node", "delivered to", "delivered from", "peak rx depth");
    let stats = m.network().borrow().stats().clone();
    for (i, occ) in stats.occupancy_table().iter().enumerate().take(NODES) {
        println!(
            "{:>6} | {:>12} | {:>14} | {:>13}",
            i, occ.delivered_to, occ.delivered_from, occ.peak_rx_depth
        );
    }

    println!("\naggregate instruction bill by feature (all nodes):");
    let mut total = 0u64;
    for f in Feature::ALL {
        let c: u64 =
            (0..NODES).map(|i| m.cpu(NodeId::new(i)).snapshot().feature_total(f)).sum();
        total += c;
        println!("{:>12} | {c:>8}", format!("{f:?}"));
    }
    println!("{:>12} | {total:>8}", "total");
    println!(
        "\nThe per-operation software bill is identical to running each transfer\n\
         alone (cost identity is test-asserted); concurrency buys wall cycles,\n\
         not cheaper instructions — the messaging-layer overhead the paper\n\
         measures does not amortize across concurrent operations."
    );
}
