//! Fault injection: what "error detection without error correction"
//! costs, and what hardware fault tolerance recovers.
//!
//! On a detect-only network (the CM-5 model), a corrupted packet is
//! dropped at the receiving NI. The finite-sequence protocol has no
//! per-packet retransmission — like the real machine, the transfer just
//! fails. The indefinite-sequence protocol retransmits from its source
//! buffers and completes. On the CR substrate, hardware retransmission
//! makes loss invisible to software.
//!
//! Run with: `cargo run -p timego-bench --example fault_injection`

use timego_am::{CmamConfig, Machine, RetryPolicy, StreamConfig};
use timego_cost::Feature;
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

fn main() {
    let data = payloads::mixed(512, 5);
    let (src, dst) = (NodeId::new(0), NodeId::new(1));

    // 1. Finite-sequence transfer over a lossy detect-only network:
    //    detect-and-give-up, the paper's crash model.
    let mut m = Machine::new(
        share(scenarios::cm5_lossy(4, 0.05, 99)),
        4,
        CmamConfig {
            max_wait_cycles: 20_000,
            ..CmamConfig::default()
        },
    );
    match m.xfer(src, dst, &data) {
        Ok(out) => {
            let intact = m.read_buffer(dst, out.dst_buffer, data.len()) == data;
            println!("xfer over 5%-lossy network: completed, data intact = {intact} (got lucky)");
        }
        Err(e) => println!("xfer over 5%-lossy network: FAILED as expected ({e})"),
    }

    // 2. The stream protocol's fault tolerance actually works: source
    //    buffering + acks + retransmission deliver everything.
    let mut m = Machine::new(
        share(scenarios::cm5_lossy(4, 0.05, 99)),
        4,
        CmamConfig::default(),
    );
    let id = m.open_stream(src, dst, StreamConfig { rto_iterations: 256, ..StreamConfig::default() });
    let out = m.stream_send(id, &data).expect("stream recovers from loss");
    assert_eq!(m.stream_received(id), data.as_slice());
    let drops = m.network().borrow().stats().dropped_corrupt;
    println!(
        "stream over the same network: {} packets, {} CRC drops survived via {} retransmissions ({} duplicates discarded); data intact = true",
        out.packets, drops, out.retransmits, out.duplicates,
    );

    // 3. CR substrate: the same loss rate, handled entirely in hardware.
    let mut m = Machine::new(share(scenarios::cr_lossy(2, 0.05, 99)), 2, CmamConfig::default());
    let got = m.hl_stream_send(src, dst, &data).expect("hardware repairs loss");
    let retx = m.network().borrow().stats().hw_retransmits;
    println!(
        "HL stream over 5%-lossy CR network: {} hardware retransmissions, zero software fault handling; data intact = {}",
        retx,
        got == data,
    );

    // 4. The reliable finite-sequence variant: where plain xfer gave up,
    //    xfer_reliable NACKs the gaps and selectively retransmits — and
    //    the whole recovery bill lands under Feature::FaultTol.
    let fault = scenarios::fault_mix("storm");
    let mut m = Machine::new(share(scenarios::cm5_chaos(4, fault, 99)), 4, CmamConfig::default());
    let out = m
        .xfer_reliable(src, dst, &data, &RetryPolicy::default())
        .expect("reliable transfer recovers");
    assert_eq!(m.read_buffer(dst, out.xfer.dst_buffer, data.len()), data);
    let ft = m.cpu(src).snapshot().feature_total(Feature::FaultTol)
        + m.cpu(dst).snapshot().feature_total(Feature::FaultTol);
    let s = m.network().borrow().stats().clone();
    println!(
        "xfer_reliable under the 'storm' mix ({} dropped, {} duplicated, {} reordered): \
         {} retransmits / {} NACK rounds / {} ack probes; {} FaultTol instructions; data intact = true",
        s.dropped_fault + s.dropped_corrupt,
        s.duplicated,
        s.reordered,
        out.data_retransmits,
        out.nack_rounds,
        out.ack_probes,
        ft,
    );

    // 5. Retried RPC with exactly-once handlers: duplicated requests are
    //    answered from the callee's reply cache, never re-executed.
    let fault = scenarios::fault_mix("duplicate");
    let mut m = Machine::new(share(scenarios::cm5_chaos(4, fault, 7)), 4, CmamConfig::default());
    m.register_rpc_handler(dst, 40, |_, msg| [msg.words[0] * 10, 0, 0, 0]);
    for v in 0..8u32 {
        let reply = m
            .rpc_call_retrying(src, dst, 40, [v, 0, 0, 0], &RetryPolicy::default())
            .expect("rpc recovers");
        assert_eq!(reply[0], v * 10);
    }
    println!(
        "8 retried RPCs over a duplicating network: {} duplicate deliveries suppressed at the callee, every reply exact",
        m.network().borrow().stats().duplicated,
    );
}
