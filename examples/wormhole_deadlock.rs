//! Flit-level wormhole routing: watch a real deadlock form, then watch
//! two different hardware mechanisms dissolve it.
//!
//! Four nodes on a torus ring each send a worm two hops clockwise. With
//! one virtual channel the wraparound closes a cyclic channel
//! dependency and every head blocks forever — a genuine routing
//! deadlock, not a metaphor. Dateline virtual channels (Dally) avoid
//! the cycle; Compressionless Routing (the paper's §4 substrate)
//! detects the lack of compression relief, kills paths, and retries —
//! deadlock freedom *independent of packet acceptance*, which is
//! exactly the property that lets the messaging layer drop its
//! preallocation handshake.
//!
//! Run with: `cargo run -p timego-bench --example wormhole_deadlock`

use timego_netsim::{Network, NodeId, Packet};
use timego_workloads::scenarios;

fn inject_ring(net: &mut dyn Network) {
    // Same-cycle injection on distinct first channels: the cyclic
    // allocation forms before anyone can slip through.
    for s in 0..4usize {
        let d = (s + 2) % 4;
        net.try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]))
            .expect("first channels are free at time zero");
    }
}

fn main() {
    // 1. Plain wormhole, one VC: deadlock.
    let mut net = scenarios::wormhole_torus(4, 1, 3);
    inject_ring(&mut net);
    net.advance(3_000);
    println!(
        "1 VC, dimension-order torus ring: {} worms in flight, no flit moved for {} cycles -> DEADLOCK",
        net.in_flight(),
        net.stalled_for(),
    );

    // 2. Dateline virtual channels: the cycle never forms.
    let mut net = scenarios::wormhole_torus_dateline(4, 1, 3);
    inject_ring(&mut net);
    let drained = net.drain_extracting(20_000);
    println!(
        "dateline VCs: drained = {drained}, {} delivered (deadlock avoided in the channel graph)",
        net.stats().delivered,
    );

    // 3. Compressionless Routing: same single-VC hardware, but blocked
    //    worms are killed and retried.
    let mut net = scenarios::wormhole_torus_cr(4, 1, 0.0, 3);
    inject_ring(&mut net);
    let drained = net.drain_extracting(50_000);
    println!(
        "CR kill-&-retry: drained = {drained}, {} delivered after {} path kills (deadlock freedom independent of acceptance)",
        net.stats().delivered,
        net.kills(),
    );

    // 4. And CR's fault tolerance: corrupt 20% of worms; hardware
    //    retransmission delivers everything anyway, in order.
    let mut net = scenarios::wormhole_torus_cr(4, 4, 0.2, 5);
    let mut sent = 0u32;
    let mut got = Vec::new();
    while sent < 64 || net.in_flight() > 0 {
        if sent < 64
            && net
                .try_inject(Packet::new(NodeId::new(0), NodeId::new(9), 1, sent, vec![sent; 4]))
                .is_ok()
        {
            sent += 1;
        }
        net.advance(1);
        while let Some(p) = net.try_receive(NodeId::new(9)) {
            got.push(p.header());
        }
    }
    let in_order = got.windows(2).all(|w| w[0] < w[1]);
    println!(
        "CR at 20% corruption: {}/64 delivered, in order = {in_order}, {} hardware retransmissions, 0 software fault handling",
        got.len(),
        net.stats().hw_retransmits,
    );
}
