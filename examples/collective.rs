//! A collective operation built on the messaging layer: all-to-all
//! personalized exchange (each node sends a distinct block to every
//! other node), the communication kernel of matrix transpose and FFT.
//!
//! Shows the messaging-layer costs the paper measures composing at
//! application scale, and how the same collective shrinks on a
//! high-level network.
//!
//! Run with: `cargo run -p timego-bench --example collective`

use timego_am::{CmamConfig, Machine};
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

const NODES: usize = 8;
const BLOCK_WORDS: usize = 64;

fn run(m: &mut Machine, hl: bool) -> Result<u64, Box<dyn std::error::Error>> {
    m.reset_costs();
    // Each ordered pair exchanges one block; verify every block.
    for s in 0..NODES {
        for d in 0..NODES {
            if s == d {
                continue;
            }
            let block = payloads::mixed(BLOCK_WORDS, (s * NODES + d) as u64);
            let out = if hl {
                m.hl_xfer(NodeId::new(s), NodeId::new(d), &block)?
            } else {
                m.xfer(NodeId::new(s), NodeId::new(d), &block)?
            };
            assert_eq!(
                m.read_buffer(NodeId::new(d), out.dst_buffer, BLOCK_WORDS),
                block,
                "block {s}->{d} must arrive intact"
            );
        }
    }
    Ok((0..NODES).map(|i| m.cpu(NodeId::new(i)).snapshot().total()).sum())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "all-to-all personalized exchange: {NODES} nodes x {BLOCK_WORDS}-word blocks ({} transfers)",
        NODES * (NODES - 1)
    );

    // CMAM protocols over the instant raw substrate.
    let mut m = Machine::new(share(scenarios::table_in_order(NODES)), NODES, CmamConfig::default());
    let cmam_total = run(&mut m, false)?;
    println!("CMAM finite-sequence transfers: {cmam_total} instructions");

    // The same collective on a high-level network.
    let mut m = Machine::new(share(scenarios::table_in_order(NODES)), NODES, CmamConfig::default());
    let hl_total = run(&mut m, true)?;
    println!(
        "high-level network transfers:   {hl_total} instructions ({:.0}% saved)",
        100.0 * (1.0 - hl_total as f64 / cmam_total as f64)
    );
    println!(
        "small blocks make the preallocation handshake dominate — exactly\nwhere the paper says buffer management hurts most."
    );

    // And over a real switched fat tree, to show it all still works with
    // contention, finite buffers and real routing.
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(NODES, 77)),
        NODES,
        CmamConfig::default(),
    );
    let switched_total = run(&mut m, false)?;
    println!("same collective over the switched fat tree: {switched_total} instructions (extra polls while packets are in flight)");

    // Engine-native collectives: a binomial broadcast and a
    // recursive-doubling all-reduce expressed as run-after dependency
    // DAGs, sharing one engine run. Each edge is admitted the moment
    // its predecessor delivers, so independent subtrees and rounds
    // overlap instead of waiting on a global phase barrier.
    use timego_am::Engine;
    use timego_workloads::apps::collectives;

    let inputs: Vec<u32> = (0..NODES as u32).map(|i| 10 + i).collect();
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(NODES, 77)),
        NODES,
        CmamConfig::default(),
    );
    let mut eng = Engine::new();
    let bc = collectives::submit_broadcast(&mut eng, &m, NodeId::new(0), [7, 7, 7, 7])?;
    let ar = collectives::submit_allreduce(&mut eng, &m, &inputs)?;
    eng.run(&mut m);
    let dag_cycles = m.network().borrow().now();
    let seen = collectives::broadcast_results(&mut eng, &bc, NODES)?;
    let sums = collectives::allreduce_results(&mut eng, &ar)?;
    assert!(seen.iter().all(|w| *w == [7, 7, 7, 7]), "broadcast must reach every node");
    let expect: u32 = inputs.iter().sum();
    assert!(sums.iter().all(|s| *s == expect), "every node must hold the full sum");
    // Held spans come straight off the scheduler trace: how long each
    // edge sat behind its predecessor before being released.
    let held: u64 = eng.hold_times().iter().map(|(_, h)| h).sum();

    // The same two collectives, phase-serial: one engine run per round.
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(NODES, 77)),
        NODES,
        CmamConfig::default(),
    );
    collectives::broadcast_phased(&mut m, NodeId::new(0), [7, 7, 7, 7])?;
    collectives::allreduce_phased(&mut m, &inputs)?;
    let phased_cycles = m.network().borrow().now();

    println!(
        "\nengine-native broadcast + all-reduce (one DAG run): sum {expect} at every node"
    );
    println!(
        "  dependency DAG: {dag_cycles} wall clock ({held} op-cycles spent held behind predecessors)"
    );
    println!(
        "  phase-serial:   {phased_cycles} wall clock — the DAG overlaps what phases serialize"
    );
    Ok(())
}
