//! Socket-style ordered streams over a reordering network.
//!
//! The paper's indefinite-sequence protocol: the network delivers
//! packets in arbitrary order (here: an adaptive-routed fat tree under
//! cross traffic, and the paper's exactly-half-out-of-order script),
//! and receiver software restores order with sequence numbers and
//! buffering — at a measurable instruction cost.
//!
//! Run with: `cargo run -p timego-bench --example stream_sockets`

use timego_am::{CmamConfig, Machine, StreamConfig};
use timego_cost::Feature;
use timego_netsim::NodeId;
use timego_ni::share;
use timego_workloads::{payloads, scenarios};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = payloads::mixed(1024, 3);

    // Paper-exact conditions: half the packets out of order.
    let mut m = Machine::new(share(scenarios::table_half_ooo(2)), 2, CmamConfig::default());
    let id = m.open_stream(NodeId::new(0), NodeId::new(1), StreamConfig::default());
    m.reset_costs();
    let out = m.stream_send(id, &data)?;
    assert_eq!(m.stream_received(id), data.as_slice());
    let src = m.cpu(NodeId::new(0)).snapshot();
    let dst = m.cpu(NodeId::new(1)).snapshot();
    println!("paper conditions (half out of order, per-packet acks):");
    println!(
        "  {} packets ({} buffered out of order), {} instructions, {:.0}% overhead",
        out.packets,
        out.out_of_order,
        src.total() + dst.total(),
        100.0 * (src.overhead_total() + dst.overhead_total()) as f64
            / (src.total() + dst.total()) as f64,
    );
    println!(
        "  in-order delivery machinery alone: {} instructions",
        src.feature_total(Feature::InOrder) + dst.feature_total(Feature::InOrder),
    );

    // Group acknowledgements: fewer acks, same sequencing cost.
    for period in [4u64, 16] {
        let mut m = Machine::new(share(scenarios::table_half_ooo(2)), 2, CmamConfig::default());
        let id = m.open_stream(
            NodeId::new(0),
            NodeId::new(1),
            StreamConfig { ack_period: period, ..StreamConfig::default() },
        );
        m.reset_costs();
        let out = m.stream_send(id, &data)?;
        let total = m.cpu(NodeId::new(0)).snapshot().total() + m.cpu(NodeId::new(1)).snapshot().total();
        let ovh = m.cpu(NodeId::new(0)).snapshot().overhead_total()
            + m.cpu(NodeId::new(1)).snapshot().overhead_total();
        println!(
            "group acks every {period:>2}: {} acks, {total} instructions, {:.0}% overhead",
            out.acks,
            100.0 * ovh as f64 / total as f64,
        );
    }

    // A behavioral run: adaptive fat tree, genuine load-dependent
    // reordering.
    let mut m = Machine::new(share(scenarios::cm5_adaptive(4, 17)), 4, CmamConfig::default());
    let id = m.open_stream(NodeId::new(0), NodeId::new(3), StreamConfig::default());
    m.reset_costs();
    let out = m.stream_send(id, &data)?;
    assert_eq!(m.stream_received(id), data.as_slice());
    println!(
        "adaptive fat tree: {} of {} packets arrived out of order; data still in order at the user level",
        out.out_of_order, out.packets,
    );
    Ok(())
}
