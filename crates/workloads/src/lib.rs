//! # timego-workloads — workload generators and substrate scenarios
//!
//! Reusable building blocks for the experiments: standard substrate
//! configurations ([`scenarios`]), communication patterns over many
//! nodes ([`patterns`]), deterministic payload generators
//! ([`payloads`]), the parameter sweeps the paper's figures are built
//! from ([`sweeps`]), engine-driven concurrent many-to-many
//! traffic ([`concurrent`]), the open-loop offered-load driver
//! for congestion studies ([`load`]), and the RPC service plane —
//! client populations hitting a balanced, admission-controlled server
//! pool with per-class accounting ([`service`], actors in
//! [`apps::service`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod concurrent;
pub mod load;
pub mod patterns;
pub mod payloads;
pub mod rpc;
pub mod scenarios;
pub mod service;
pub mod sweeps;
