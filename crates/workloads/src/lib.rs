//! # timego-workloads — workload generators and substrate scenarios
//!
//! Reusable building blocks for the experiments: standard substrate
//! configurations ([`scenarios`]), communication patterns over many
//! nodes ([`patterns`]), deterministic payload generators
//! ([`payloads`]), the parameter sweeps the paper's figures are built
//! from ([`sweeps`]), and engine-driven concurrent many-to-many
//! traffic ([`concurrent`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod concurrent;
pub mod patterns;
pub mod payloads;
pub mod rpc;
pub mod scenarios;
pub mod sweeps;
