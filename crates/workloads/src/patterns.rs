//! Multi-node communication patterns.
//!
//! Each pattern yields a list of `(src, dst)` pairs describing who talks
//! to whom; the harness decides what each pair sends. These are the
//! classic patterns of the parallel-machine literature the paper's
//! machines ran.

use timego_netsim::{NodeId, SimRng};

/// A communication pattern over `nodes` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every node `i` sends to `i + 1 (mod N)` — neighborly, low
    /// contention.
    Ring,
    /// Node `i` sends to the bit-reversal of `i` (power-of-two node
    /// counts give a perfect permutation; others fall back to a shift).
    BitReverse,
    /// Matrix-transpose permutation for a square node grid.
    Transpose,
    /// Each node sends to one uniformly random peer (a random
    /// permutation, seeded).
    RandomPermutation(u64),
    /// All nodes send to node 0 — the hotspot that exposes finite
    /// buffering.
    Hotspot,
    /// Every ordered pair communicates (all-to-all).
    AllToAll,
}

impl Pattern {
    /// Materialize the pattern for `nodes` nodes. Self-pairs are
    /// omitted.
    pub fn pairs(&self, nodes: usize) -> Vec<(NodeId, NodeId)> {
        let id = NodeId::new;
        match *self {
            Pattern::Ring => (0..nodes)
                .map(|i| (id(i), id((i + 1) % nodes)))
                .filter(|(a, b)| a != b)
                .collect(),
            Pattern::BitReverse => {
                let bits = nodes.next_power_of_two().trailing_zeros();
                (0..nodes)
                    .map(|i| {
                        let mut r = 0usize;
                        for b in 0..bits {
                            if i & (1 << b) != 0 {
                                r |= 1 << (bits - 1 - b);
                            }
                        }
                        (id(i), id(r % nodes))
                    })
                    .filter(|(a, b)| a != b)
                    .collect()
            }
            Pattern::Transpose => {
                let side = (nodes as f64).sqrt() as usize;
                let side = side.max(1);
                (0..nodes)
                    .map(|i| {
                        let (x, y) = (i % side, i / side);
                        let t = if y < side && x < side { x * side + y } else { i };
                        (id(i), id(t % nodes))
                    })
                    .filter(|(a, b)| a != b)
                    .collect()
            }
            Pattern::RandomPermutation(seed) => {
                let mut rng = SimRng::new(seed);
                let mut targets: Vec<usize> = (0..nodes).collect();
                rng.shuffle(&mut targets);
                (0..nodes)
                    .map(|i| (id(i), id(targets[i])))
                    .filter(|(a, b)| a != b)
                    .collect()
            }
            Pattern::Hotspot => (1..nodes).map(|i| (id(i), id(0))).collect(),
            Pattern::AllToAll => {
                let mut v = Vec::with_capacity(nodes * nodes.saturating_sub(1));
                for s in 0..nodes {
                    for d in 0..nodes {
                        if s != d {
                            v.push((id(s), id(d)));
                        }
                    }
                }
                v
            }
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Ring => "ring",
            Pattern::BitReverse => "bit-reverse",
            Pattern::Transpose => "transpose",
            Pattern::RandomPermutation(_) => "random-permutation",
            Pattern::Hotspot => "hotspot",
            Pattern::AllToAll => "all-to-all",
        }
    }
}

/// A random background-traffic generator: `count` packets between
/// uniformly random distinct pairs.
pub fn random_pairs(nodes: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(nodes >= 2, "need at least two nodes for traffic");
    let mut rng = SimRng::new(seed);
    (0..count)
        .map(|_| {
            let s = rng.gen_index(nodes);
            let mut d = rng.gen_index(nodes - 1);
            if d >= s {
                d += 1;
            }
            (NodeId::new(s), NodeId::new(d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let p = Pattern::Ring.pairs(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p[3], (NodeId::new(3), NodeId::new(0)));
    }

    #[test]
    fn bit_reverse_is_a_permutation_on_powers_of_two() {
        let p = Pattern::BitReverse.pairs(16);
        let mut dsts: Vec<usize> = p.iter().map(|(_, d)| d.index()).collect();
        dsts.sort_unstable();
        dsts.dedup();
        // Self-pairs (palindromic indices) are dropped; the rest are
        // distinct.
        assert_eq!(dsts.len(), p.len());
    }

    #[test]
    fn transpose_square() {
        let p = Pattern::Transpose.pairs(16);
        // (x=1,y=0) → index 1 maps to (0,1) → index 4.
        assert!(p.contains(&(NodeId::new(1), NodeId::new(4))));
    }

    #[test]
    fn random_permutation_is_deterministic_per_seed() {
        assert_eq!(
            Pattern::RandomPermutation(7).pairs(32),
            Pattern::RandomPermutation(7).pairs(32)
        );
        assert_ne!(
            Pattern::RandomPermutation(7).pairs(32),
            Pattern::RandomPermutation(8).pairs(32)
        );
    }

    #[test]
    fn hotspot_targets_node_zero() {
        let p = Pattern::Hotspot.pairs(5);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|(_, d)| d.index() == 0));
    }

    #[test]
    fn all_to_all_size() {
        assert_eq!(Pattern::AllToAll.pairs(4).len(), 12);
    }

    #[test]
    fn random_pairs_are_distinct_and_in_range() {
        for (s, d) in random_pairs(8, 100, 3) {
            assert_ne!(s, d);
            assert!(s.index() < 8 && d.index() < 8);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Pattern::Hotspot.name(), "hotspot");
        assert_eq!(Pattern::RandomPermutation(1).name(), "random-permutation");
    }
}
