//! Standard substrate configurations used across examples, tests and
//! benches.

use timego_netsim::{
    CrConfig, CrMode, CrNetwork, DeliveryScript, FatTree, FaultConfig, Mesh2D, NodeId,
    OutageWindow, RouteStrategy, ScriptedNetwork, ShardedConfig, ShardedNetwork, SwitchedConfig,
    SwitchedNetwork, Torus2D, VcDiscipline, WormholeConfig, WormholeNetwork,
};

/// A CM-5-flavoured fat-tree network with deterministic routing:
/// in-order per pair in practice, but finite buffers and no fault
/// handling. `nodes` is rounded up to the next power of 4.
pub fn cm5_deterministic(nodes: usize, seed: u64) -> SwitchedNetwork<FatTree> {
    SwitchedNetwork::new(
        fat_tree_for(nodes),
        SwitchedConfig {
            strategy: RouteStrategy::Deterministic,
            seed,
            ..SwitchedConfig::default()
        },
    )
}

/// A CM-5-flavoured fat-tree network with adaptive multipath routing —
/// the configuration whose arbitrary delivery order the paper's
/// indefinite-sequence protocol pays for.
pub fn cm5_adaptive(nodes: usize, seed: u64) -> SwitchedNetwork<FatTree> {
    SwitchedNetwork::new(
        fat_tree_for(nodes),
        SwitchedConfig {
            strategy: RouteStrategy::Adaptive { candidates: 4 },
            rx_queue_capacity: 64,
            link_queue_capacity: 16,
            seed,
            ..SwitchedConfig::default()
        },
    )
}

/// A lossy CM-5-flavoured network: packets are corrupted with
/// probability `corruption_prob`, detected by CRC at the receiving NI
/// and dropped (never repaired) — the "fault detection but not fault
/// tolerance" feature of §2.2.
pub fn cm5_lossy(nodes: usize, corruption_prob: f64, seed: u64) -> SwitchedNetwork<FatTree> {
    SwitchedNetwork::new(
        fat_tree_for(nodes),
        SwitchedConfig {
            strategy: RouteStrategy::Adaptive { candidates: 4 },
            rx_queue_capacity: 64,
            link_queue_capacity: 16,
            fault: FaultConfig { corruption_prob, ..FaultConfig::default() },
            seed,
            ..SwitchedConfig::default()
        },
    )
}

/// A small mesh with tight buffers, for backpressure/overflow
/// experiments.
pub fn tight_mesh(w: usize, h: usize, seed: u64) -> SwitchedNetwork<Mesh2D> {
    SwitchedNetwork::new(
        Mesh2D::new(w, h),
        SwitchedConfig {
            link_queue_capacity: 2,
            rx_queue_capacity: 2,
            seed,
            ..SwitchedConfig::default()
        },
    )
}

/// A Compressionless-Routing-like network (§4): in-order, reliable,
/// flow-controlled in hardware.
pub fn cr(nodes: usize, seed: u64) -> CrNetwork {
    CrNetwork::new(CrConfig { seed, ..CrConfig::new(nodes) })
}

/// A Compressionless-Routing-like network whose links corrupt packets
/// with probability `corruption_prob`; the hardware detects, kills and
/// retransmits them invisibly to software.
pub fn cr_lossy(nodes: usize, corruption_prob: f64, seed: u64) -> CrNetwork {
    CrNetwork::new(CrConfig {
        corruption_prob,
        seed,
        ..CrConfig::new(nodes)
    })
}

/// The paper's measurement substrate for the finite-sequence tables:
/// instant, reliable, in order.
pub fn table_in_order(nodes: usize) -> ScriptedNetwork {
    ScriptedNetwork::new(nodes, DeliveryScript::InOrder)
}

/// The paper's measurement substrate for the indefinite-sequence
/// tables: instant and reliable, with exactly half of each stream's
/// packets delivered out of order.
pub fn table_half_ooo(nodes: usize) -> ScriptedNetwork {
    ScriptedNetwork::new(nodes, DeliveryScript::AlternateSwap)
}

/// A flit-level wormhole torus with a single virtual channel — prone to
/// genuine routing deadlock on wraparound cycles.
pub fn wormhole_torus(w: usize, h: usize, seed: u64) -> WormholeNetwork<Torus2D> {
    WormholeNetwork::new(
        Torus2D::new(w, h),
        WormholeConfig {
            flit_buffer: 1,
            seed,
            ..WormholeConfig::default()
        },
    )
}

/// The same torus with two dateline-disciplined virtual channels —
/// deadlock-free by construction.
pub fn wormhole_torus_dateline(w: usize, h: usize, seed: u64) -> WormholeNetwork<Torus2D> {
    WormholeNetwork::new(
        Torus2D::new(w, h),
        WormholeConfig {
            flit_buffer: 1,
            virtual_channels: 2,
            discipline: VcDiscipline::Dateline,
            seed,
            ..WormholeConfig::default()
        },
    )
}

/// The same torus under Compressionless Routing: deadlocks are detected
/// by the absence of compression relief and resolved by killing and
/// retransmitting paths; corrupted worms retransmit; full receivers
/// reject headers. High-level guarantees from low-level hardware.
pub fn wormhole_torus_cr(w: usize, h: usize, corruption_prob: f64, seed: u64) -> WormholeNetwork<Torus2D> {
    WormholeNetwork::new(
        Torus2D::new(w, h),
        WormholeConfig {
            flit_buffer: 1,
            fault: FaultConfig { corruption_prob, ..FaultConfig::default() },
            cr: Some(CrMode::default()),
            seed,
            ..WormholeConfig::default()
        },
    )
}

/// A CM-5-flavoured adaptive network with an arbitrary fault mix — the
/// chaos-soak substrate. All recovery must come from software.
pub fn cm5_chaos(nodes: usize, fault: FaultConfig, seed: u64) -> SwitchedNetwork<FatTree> {
    SwitchedNetwork::new(
        fat_tree_for(nodes),
        SwitchedConfig {
            strategy: RouteStrategy::Adaptive { candidates: 4 },
            rx_queue_capacity: 64,
            link_queue_capacity: 16,
            fault,
            seed,
            ..SwitchedConfig::default()
        },
    )
}

/// The sharded counterpart of [`cm5_deterministic`]: the same
/// deterministic-routing subnet configuration partitioned into `shards`
/// fat-tree shards and stepped by `threads` workers. Results depend on
/// `shards` (a model parameter) but never on `threads`; with
/// `shards == 1` it is byte-identical to [`cm5_deterministic`].
pub fn cm5_sharded(nodes: usize, shards: usize, threads: usize, seed: u64) -> ShardedNetwork {
    ShardedNetwork::new(
        nodes,
        ShardedConfig {
            shards,
            threads,
            switched: SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                seed,
                ..SwitchedConfig::default()
            },
            ..ShardedConfig::default()
        },
    )
}

/// The serving-plane substrate: [`cm5_sharded`] with server-grade
/// queue depths (64-deep rx queues, 16-deep link queues — the depths
/// [`cm5_sharded_chaos`] already uses). The service plane converges
/// many replies on few gateway nodes; the default 16-deep rx queue
/// wedges reply injection under an admission window wider than it,
/// while these depths let congestion express as queueing delay and
/// admission-controlled shedding instead.
pub fn cm5_sharded_serving(nodes: usize, shards: usize, threads: usize, seed: u64) -> ShardedNetwork {
    ShardedNetwork::new(
        nodes,
        ShardedConfig {
            shards,
            threads,
            switched: SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                rx_queue_capacity: 64,
                link_queue_capacity: 16,
                seed,
                ..SwitchedConfig::default()
            },
            ..ShardedConfig::default()
        },
    )
}

/// The sharded counterpart of [`cm5_chaos`]: adaptive subnets with the
/// full fault mix, partitioned into `shards` shards stepped by
/// `threads` workers. Crash/outage windows land on the shard owning the
/// node; probabilistic faults draw from per-shard streams plus a
/// boundary stream — so results depend on `shards` but not `threads`.
pub fn cm5_sharded_chaos(
    nodes: usize,
    shards: usize,
    threads: usize,
    fault: FaultConfig,
    seed: u64,
) -> ShardedNetwork {
    ShardedNetwork::new(
        nodes,
        ShardedConfig {
            shards,
            threads,
            switched: SwitchedConfig {
                strategy: RouteStrategy::Adaptive { candidates: 4 },
                rx_queue_capacity: 64,
                link_queue_capacity: 16,
                fault,
                seed,
                ..SwitchedConfig::default()
            },
            ..ShardedConfig::default()
        },
    )
}

/// Named fault mixes for chaos experiments. Each stresses one recovery
/// path of the software protocols; [`fault_mixes`] returns all of them.
pub fn fault_mix(name: &str) -> FaultConfig {
    match name {
        "drop" => FaultConfig { drop_prob: 0.08, ..FaultConfig::default() },
        "duplicate" => FaultConfig { duplicate_prob: 0.10, ..FaultConfig::default() },
        "reorder" => FaultConfig {
            reorder_prob: 0.15,
            reorder_depth: 6,
            delay_jitter: 12,
            ..FaultConfig::default()
        },
        "outage" => FaultConfig {
            drop_prob: 0.02,
            outages: vec![
                OutageWindow { node: NodeId::new(1), start: 120, end: 420 },
                OutageWindow { node: NodeId::new(0), start: 900, end: 1_100 },
            ],
            ..FaultConfig::default()
        },
        "storm" => FaultConfig {
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            reorder_prob: 0.08,
            reorder_depth: 4,
            delay_jitter: 8,
            corruption_prob: 0.03,
            ..FaultConfig::default()
        },
        _ => panic!("unknown fault mix {name:?}"),
    }
}

/// Every named fault mix, for sweeping.
pub fn fault_mixes() -> Vec<(&'static str, FaultConfig)> {
    ["drop", "duplicate", "reorder", "outage", "storm"]
        .into_iter()
        .map(|n| (n, fault_mix(n)))
        .collect()
}

fn fat_tree_for(nodes: usize) -> FatTree {
    let mut levels = 1u32;
    while 4usize.pow(levels) < nodes {
        levels += 1;
    }
    FatTree::new(4, levels as usize, 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_netsim::Network;

    #[test]
    fn fat_tree_sizing_covers_requested_nodes() {
        assert_eq!(cm5_deterministic(2, 0).num_nodes(), 4);
        assert_eq!(cm5_deterministic(16, 0).num_nodes(), 16);
        assert_eq!(cm5_adaptive(17, 0).num_nodes(), 64);
    }

    #[test]
    fn scenario_guarantees_are_as_advertised() {
        assert!(!cm5_adaptive(4, 0).guarantees().reliable);
        assert!(cr(4, 0).guarantees().in_order);
        assert!(table_in_order(2).guarantees().reliable);
        assert!(!table_half_ooo(2).guarantees().in_order);
    }

    #[test]
    fn mesh_scenario_has_tight_buffers() {
        let m = tight_mesh(2, 2, 1);
        assert_eq!(m.config().rx_queue_capacity, 2);
    }
}
