//! The RPC service plane: open-loop client populations driving a
//! sharded server pool through a gateway tier.
//!
//! This is the "millions of users" counterpart of [`crate::load`]: the
//! client population is *virtual* (an open-loop arrival schedule, far
//! larger than any node count), while the simulated nodes host the two
//! real tiers — **gateways**, where requests arrive, pass admission
//! control, and are routed by a pluggable [`Balancer`]; and
//! **servers**, whose registered RPC handlers perform the per-request
//! application work. Every request is an engine RPC from its gateway to
//! the chosen server, tagged with its QoS class via
//! [`Engine::set_class`], so the run splits both completion times and
//! the paper's per-feature instruction bills *per request class* —
//! "where does the time go" for a service, not a kernel.
//!
//! QoS classes map onto the engine's supervision primitives:
//! a latency-sensitive class carries a per-request deadline (late work
//! is failed fast, the serving analogue of [`Engine::set_deadline`]'s
//! cancel semantics), while a throughput-sensitive class is
//! recovery-armed ([`RecoveryPolicy`]) and re-executes through crashes
//! to exactly-once completion. Admission control is a bounded in-flight
//! window at the gateway tier: past it, arrivals are *shed* — billed to
//! `FaultTol` at the gateway, never submitted — which is what keeps
//! goodput flat (instead of collapsing) under overload.
//!
//! Accounting invariants (pinned by `tests/serving_invariants.rs`):
//!
//! * **Conservation** — `offered == admitted + shed` and
//!   `admitted == completed + failed` with nothing in flight after the
//!   drain.
//! * **Bill additivity** — on clean runs, the sum of per-class bills
//!   (engine split + gateway-side attribution) equals the untagged
//!   total the node recorders saw.
//! * **Exactly-once** — a recovery-armed class crossed with
//!   [`CrashWindow`](timego_netsim::CrashWindow)s on its gateway runs
//!   every admitted request's handler exactly once (reply-cache dedup
//!   across re-executions).
//! * **Thread invariance** — on [`ShardedNetwork`] the whole outcome
//!   (bills, latencies, shed counts) is identical at every
//!   worker-thread count.

use std::collections::BTreeMap;

use timego_am::{CmamConfig, Engine, Machine, OpId, RecoveryPolicy, RetryPolicy};
use timego_cost::CostVector;
use timego_netsim::{FaultConfig, LatencyStats, NodeId, ShardedNetwork, SimRng};

use crate::apps::service::{Admission, Gateway, ServerPool};
use crate::scenarios;

/// SplitMix64 — the stateless mixer used for client keys and the
/// consistent-hash ring (same finalizer family as the netsim RNG, but
/// usable as a pure function of the key).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Load-balancing policy of the gateway tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Uniform random pick from the live server set (seeded, so runs
    /// are reproducible).
    Random,
    /// Strict rotation over the live server set.
    RoundRobin,
    /// Pick the server with the fewest outstanding requests; ties break
    /// to the lowest node id (deterministic).
    LeastLoaded,
    /// Consistent hashing on the client key over a ring of `vnodes`
    /// virtual points per server. Server add/remove (shard migration)
    /// remaps only the keys owned by the affected arcs — at most
    /// ~`K/n` of `K` keys for one server among `n`.
    ConsistentHash {
        /// Virtual ring points per server; more points flatten the
        /// per-server arc-length variance.
        vnodes: usize,
    },
}

impl BalancerPolicy {
    /// Short stable name, used in report keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::Random => "random",
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::LeastLoaded => "least_loaded",
            BalancerPolicy::ConsistentHash { .. } => "consistent_hash",
        }
    }
}

/// A pluggable request router over a mutable server set.
///
/// The balancer is deliberately *driver-side* state (cursor, ring, RNG)
/// — the instruction cost of a pick is billed separately at the gateway
/// node by [`Gateway`], per policy.
#[derive(Debug, Clone)]
pub struct Balancer {
    policy: BalancerPolicy,
    servers: Vec<NodeId>,
    rr_cursor: usize,
    // Consistent-hash ring: (point, server), sorted by point. Empty for
    // the other policies.
    ring: Vec<(u64, NodeId)>,
    rng: SimRng,
}

impl Balancer {
    /// A balancer over `servers` (non-empty) with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    #[must_use]
    pub fn new(policy: BalancerPolicy, servers: &[NodeId], seed: u64) -> Self {
        assert!(!servers.is_empty(), "balancer needs at least one server");
        let mut b = Balancer {
            policy,
            servers: servers.to_vec(),
            rr_cursor: 0,
            ring: Vec::new(),
            rng: SimRng::new(seed),
        };
        if let BalancerPolicy::ConsistentHash { vnodes } = policy {
            for &s in servers {
                b.insert_ring_points(s, vnodes);
            }
        }
        b
    }

    /// The live server set, in insertion order.
    #[must_use]
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    fn insert_ring_points(&mut self, server: NodeId, vnodes: usize) {
        for v in 0..vnodes {
            let point = splitmix64(
                (server.index() as u64) << 32 | (v as u64) | 0x5e47_0000_0000_0000,
            );
            let at = self.ring.partition_point(|&(p, _)| p < point);
            self.ring.insert(at, (point, server));
        }
    }

    /// Add a server to the live set (shard migration: recruit). Under
    /// consistent hashing only the keys whose ring arcs the new points
    /// capture move — everything else keeps its server.
    pub fn add_server(&mut self, server: NodeId) {
        if self.servers.contains(&server) {
            return;
        }
        self.servers.push(server);
        if let BalancerPolicy::ConsistentHash { vnodes } = self.policy {
            self.insert_ring_points(server, vnodes);
        }
    }

    /// Remove a server from the live set (shard migration: retire).
    /// Under consistent hashing exactly the keys that server owned move
    /// — each to the next live point on its arc.
    pub fn remove_server(&mut self, server: NodeId) {
        self.servers.retain(|&s| s != server);
        self.ring.retain(|&(_, s)| s != server);
        if self.rr_cursor >= self.servers.len() {
            self.rr_cursor = 0;
        }
    }

    /// Route one request: `key` identifies the client (consistent
    /// hashing routes on it), `loads` maps servers to outstanding
    /// request counts (least-loaded reads it; servers absent from the
    /// map count as idle).
    ///
    /// # Panics
    ///
    /// Panics if every server has been removed.
    pub fn pick(&mut self, key: u64, loads: &BTreeMap<NodeId, usize>) -> NodeId {
        assert!(!self.servers.is_empty(), "balancer has no live servers");
        match self.policy {
            BalancerPolicy::Random => {
                let i = self.rng.gen_index(self.servers.len());
                self.servers[i]
            }
            BalancerPolicy::RoundRobin => {
                let s = self.servers[self.rr_cursor % self.servers.len()];
                self.rr_cursor = (self.rr_cursor + 1) % self.servers.len();
                s
            }
            BalancerPolicy::LeastLoaded => {
                *self
                    .servers
                    .iter()
                    .min_by_key(|&&s| (loads.get(&s).copied().unwrap_or(0), s.index()))
                    .expect("non-empty server set")
            }
            BalancerPolicy::ConsistentHash { .. } => {
                let h = splitmix64(key);
                let at = self.ring.partition_point(|&(p, _)| p < h);
                self.ring[at % self.ring.len()].1
            }
        }
    }
}

/// One QoS class: an open-loop client population plus the engine
/// primitives its requests are mapped onto.
#[derive(Debug, Clone)]
pub struct QosClass {
    /// Stable name, used in report keys ("interactive", "batch", …).
    pub name: &'static str,
    /// The class tag handed to [`Engine::set_class`].
    pub class: u8,
    /// Cycles between successive arrivals of this population (open
    /// loop; smaller is a higher offered rate). Must be ≥ 1.
    pub interval: u64,
    /// Total requests this population offers.
    pub requests: usize,
    /// Application work units the server handler performs per request
    /// (each unit is a fixed load/store/ALU shape billed at the
    /// callee).
    pub work: u32,
    /// Per-request deadline in cycles from submission, if the class is
    /// latency-supervised: late requests are failed fast with
    /// `DeadlineExceeded` instead of occupying the pool.
    pub deadline: Option<u64>,
    /// Engine-native re-execution budget, if the class is
    /// recovery-armed: retryable failures (crash-window `SessionReset`s
    /// included) park and re-execute to exactly-once completion.
    pub recovery: Option<RecoveryPolicy>,
    /// Inner protocol retry policy for the RPC itself.
    pub retry: RetryPolicy,
}

impl QosClass {
    /// A latency-sensitive class: small work, per-request deadline, no
    /// re-execution (stale interactive replies are worthless).
    #[must_use]
    pub fn interactive(interval: u64, requests: usize, deadline: u64) -> Self {
        QosClass {
            name: "interactive",
            class: 0,
            interval,
            requests,
            work: 4,
            deadline: Some(deadline),
            recovery: None,
            retry: RetryPolicy::default(),
        }
    }

    /// A throughput-sensitive class: heavier work, no deadline,
    /// recovery-armed so crashes re-execute instead of failing.
    #[must_use]
    pub fn batch(interval: u64, requests: usize) -> Self {
        QosClass {
            name: "batch",
            class: 1,
            interval,
            requests,
            work: 16,
            deadline: None,
            recovery: Some(RecoveryPolicy::default()),
            retry: RetryPolicy::default(),
        }
    }
}

/// One serving run: tiers, policy, admission bound, and the class
/// populations.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Gateway-tier nodes (requests arrive here; each RPC's caller).
    pub gateways: Vec<NodeId>,
    /// Server-pool nodes (RPC handlers live here).
    pub servers: Vec<NodeId>,
    /// How gateways route admitted requests.
    pub policy: BalancerPolicy,
    /// Admission bound: maximum requests in flight (admitted, not yet
    /// settled) across the whole gateway tier. Arrivals past it are
    /// shed.
    pub admission_bound: usize,
    /// The client populations.
    pub classes: Vec<QosClass>,
    /// Shard migration script: at the arrival fraction `at` (0.0–1.0 of
    /// all arrivals), retire `retire` servers (the lowest-indexed live
    /// ones) and recruit these spare nodes into the pool.
    pub migration: Option<Migration>,
    /// Seed for the balancer RNG and payload keys.
    pub seed: u64,
}

/// A scripted mid-run reshape of the server pool (see
/// [`ServiceSpec::migration`]).
#[derive(Debug, Clone)]
pub struct Migration {
    /// Fraction of total arrivals after which the migration runs.
    pub at: f64,
    /// How many live servers to retire (lowest node ids first).
    pub retire: usize,
    /// Spare nodes to recruit.
    pub recruit: Vec<NodeId>,
}

/// Per-class results of one serving run.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Class name from the spec.
    pub name: &'static str,
    /// Class tag from the spec.
    pub class: u8,
    /// Arrivals offered by this population.
    pub offered: usize,
    /// Arrivals admitted (submitted to the engine).
    pub admitted: usize,
    /// Arrivals shed at the gateway (admission bound hit).
    pub shed: usize,
    /// Admitted requests that completed successfully.
    pub completed: usize,
    /// Admitted requests that failed (deadline, retry exhaustion, …).
    pub failed: usize,
    /// Engine-native re-executions across this class's requests.
    pub re_executions: u64,
    /// Completion-time histogram (submission → settlement, queueing and
    /// re-execution included) for this class only.
    pub completion: LatencyStats,
    /// The class's full cost bill: the engine's per-class split plus
    /// the gateway-side admission/routing/shed instructions attributed
    /// to this class.
    pub bill: CostVector,
}

/// Whole-run results of one serving run.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Per-class outcomes, in spec order.
    pub classes: Vec<ClassOutcome>,
    /// Cycles from the first arrival to the end of the drain.
    pub elapsed_cycles: u64,
    /// Highest in-flight admitted count the run reached.
    pub peak_in_flight: usize,
    /// Requests still in flight after the drain (0 on a conserved run).
    pub in_flight_at_end: usize,
    /// Substrate backpressure events over the run.
    pub backpressure: u64,
    /// Handler runs per server node index — what the exactly-once
    /// invariant audits: across crash re-executions, the pool-wide sum
    /// stays equal to the admitted count (reply-cache dedup).
    pub handler_runs: BTreeMap<usize, u64>,
}

impl ServiceOutcome {
    /// Completed requests per elapsed kilocycle, across all classes —
    /// the goodput axis of the overload curves.
    #[must_use]
    pub fn goodput_per_kcycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let done: usize = self.classes.iter().map(|c| c.completed).sum();
        done as f64 * 1000.0 / self.elapsed_cycles as f64
    }

    /// Shed fraction across all classes: shed / offered.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let offered: usize = self.classes.iter().map(|c| c.offered).sum();
        if offered == 0 {
            return 0.0;
        }
        let shed: usize = self.classes.iter().map(|c| c.shed).sum();
        shed as f64 / offered as f64
    }

    /// A compact determinism signature: every count, bill total, and
    /// histogram moment folded into one value. Two runs of the same
    /// spec on the same substrate parameters must produce equal
    /// signatures at every worker-thread count.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        fold(self.elapsed_cycles);
        fold(self.peak_in_flight as u64);
        fold(self.in_flight_at_end as u64);
        fold(self.backpressure);
        for (&server, &runs) in &self.handler_runs {
            fold(server as u64);
            fold(runs);
        }
        for c in &self.classes {
            fold(c.class as u64);
            fold(c.offered as u64);
            fold(c.admitted as u64);
            fold(c.shed as u64);
            fold(c.completed as u64);
            fold(c.failed as u64);
            fold(c.re_executions);
            fold(c.completion.count());
            fold(c.completion.max());
            fold(c.completion.quantile(0.5));
            fold(c.completion.quantile(0.99));
            fold(c.completion.quantile(0.999));
            fold(c.bill.total());
            fold(c.bill.overhead_total());
        }
        h
    }
}

/// The request tag the serving plane registers its handlers under.
pub const SERVICE_TAG: u8 = timego_am::Tags::USER_BASE + 7;

fn clock(m: &Machine) -> u64 {
    m.network().borrow().now().cycles()
}

/// Drive one serving run to completion: pace the merged per-class
/// arrival schedules on the substrate clock (pumping the engine in
/// between), pass every arrival through gateway admission and the
/// balancer, submit admitted requests as class-tagged RPCs, then drain.
///
/// The machine should be freshly constructed for the run — substrate
/// counters are read as whole-run totals, and the server handlers are
/// (re)registered here.
///
/// # Panics
///
/// Panics if the spec has no classes, no gateways, no servers, a zero
/// interval, or gateway/server tiers that overlap.
pub fn run_service(m: &mut Machine, spec: &ServiceSpec) -> ServiceOutcome {
    assert!(!spec.classes.is_empty(), "need at least one QoS class");
    assert!(!spec.gateways.is_empty(), "need at least one gateway");
    assert!(!spec.servers.is_empty(), "need at least one server");
    assert!(spec.classes.iter().all(|c| c.interval >= 1), "intervals must be ≥ 1");
    assert!(
        spec.gateways.iter().all(|g| !spec.servers.contains(g)),
        "gateway and server tiers must not overlap"
    );

    let nclasses = spec.classes.len();
    let pool = ServerPool::install(
        m,
        &spec.servers,
        spec.migration.as_ref().map_or(&[][..], |mig| &mig.recruit),
        SERVICE_TAG,
    );
    let mut balancer = Balancer::new(spec.policy, &spec.servers, spec.seed);
    let mut gateway = Gateway::new(spec.admission_bound, nclasses);
    let mut eng = Engine::new();

    // Merged arrival schedule: (due, class index, per-class arrival
    // index), ordered by due cycle then class — deterministic.
    let start = clock(m);
    let mut arrivals: Vec<(u64, usize, usize)> = Vec::new();
    for (ci, c) in spec.classes.iter().enumerate() {
        for i in 0..c.requests {
            arrivals.push((start + i as u64 * c.interval, ci, i));
        }
    }
    arrivals.sort_unstable_by_key(|&(due, ci, i)| (due, ci, i));
    let migrate_after = spec
        .migration
        .as_ref()
        .map(|mig| ((arrivals.len() as f64) * mig.at.clamp(0.0, 1.0)) as usize);

    // Request ledger: OpId -> (class index, server). Loads: server ->
    // outstanding requests (what least-loaded routing reads).
    let mut owner: BTreeMap<OpId, (usize, NodeId)> = BTreeMap::new();
    let mut loads: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut in_flight = 0usize;
    let mut peak_in_flight = 0usize;
    let mut admitted = vec![0usize; nclasses];
    let mut settled = vec![0usize; nclasses];
    let mut trace_seen = 0usize;
    let mut ids: Vec<OpId> = Vec::new();

    // Incremental completion harvest off the cycle-stamped trace: only
    // final settlements appear as `Completed` (recovery re-executions
    // park instead), so this is exactly the in-flight decrement.
    let harvest = |eng: &Engine,
                   trace_seen: &mut usize,
                   owner: &BTreeMap<OpId, (usize, NodeId)>,
                   loads: &mut BTreeMap<NodeId, usize>,
                   settled: &mut Vec<usize>,
                   in_flight: &mut usize| {
        let trace = eng.trace();
        for e in &trace[*trace_seen..] {
            if let timego_am::EngineEvent::Completed(id, _) = e.event {
                if let Some(&(ci, server)) = owner.get(&id) {
                    *in_flight -= 1;
                    settled[ci] += 1;
                    if let Some(l) = loads.get_mut(&server) {
                        *l = l.saturating_sub(1);
                    }
                }
            }
        }
        *trace_seen = trace.len();
    };

    for (k, &(due, ci, i)) in arrivals.iter().enumerate() {
        if migrate_after == Some(k) {
            let mig = spec.migration.as_ref().expect("migrate_after implies migration");
            let retire: Vec<NodeId> =
                balancer.servers().iter().copied().take(mig.retire).collect();
            for s in retire {
                balancer.remove_server(s);
            }
            for &s in &mig.recruit {
                balancer.add_server(s);
            }
        }
        while clock(m) < due {
            eng.pump(m);
            harvest(&eng, &mut trace_seen, &owner, &mut loads, &mut settled, &mut in_flight);
        }
        let c = &spec.classes[ci];
        // The client key: stable per (class, arrival), what consistent
        // hashing routes on and what spreads arrivals over gateways.
        let key = splitmix64(spec.seed ^ ((ci as u64) << 48) ^ i as u64);
        let gw = spec.gateways[(key % spec.gateways.len() as u64) as usize];
        match gateway.admit(m, gw, ci, in_flight) {
            Admission::Shed => continue,
            Admission::Granted => {}
        }
        let server = balancer.pick(key, &loads);
        gateway.bill_route(m, gw, ci, spec.policy, balancer.servers().len());
        let args = [ci as u32, i as u32, c.work, (key & 0xffff_ffff) as u32];
        let id = match &c.recovery {
            Some(rec) => {
                eng.submit_rpc_recovering(m, gw, server, SERVICE_TAG, args, Some(&c.retry), rec)
            }
            None => eng.submit_rpc(m, gw, server, SERVICE_TAG, args, Some(&c.retry)),
        };
        eng.set_class(id, c.class);
        if let Some(d) = c.deadline {
            eng.set_deadline(m, id, d);
        }
        owner.insert(id, (ci, server));
        ids.push(id);
        *loads.entry(server).or_insert(0) += 1;
        admitted[ci] += 1;
        in_flight += 1;
        peak_in_flight = peak_in_flight.max(in_flight);
    }
    while eng.unfinished() > 0 {
        eng.pump(m);
        harvest(&eng, &mut trace_seen, &owner, &mut loads, &mut settled, &mut in_flight);
    }
    harvest(&eng, &mut trace_seen, &owner, &mut loads, &mut settled, &mut in_flight);
    let elapsed_cycles = clock(m) - start;

    let mut completed = vec![0usize; nclasses];
    let mut failed = vec![0usize; nclasses];
    let mut re_execs = vec![0u64; nclasses];
    for id in ids {
        let (ci, _) = owner[&id];
        re_execs[ci] += u64::from(eng.recovery_executions(id));
        match eng.take_outcome(id).expect("engine drained") {
            Ok(_) => completed[ci] += 1,
            Err(_) => failed[ci] += 1,
        }
    }

    let backpressure = m.network().borrow().stats().backpressure;
    let classes = spec
        .classes
        .iter()
        .enumerate()
        .map(|(ci, c)| ClassOutcome {
            name: c.name,
            class: c.class,
            offered: c.requests,
            admitted: admitted[ci],
            shed: gateway.shed(ci),
            completed: completed[ci],
            failed: failed[ci],
            re_executions: re_execs[ci],
            completion: eng.completion_stats_for_class(c.class),
            bill: eng.class_bill(c.class) + gateway.bill(ci),
        })
        .collect();
    let handler_runs = pool.runs();
    drop(pool);
    ServiceOutcome {
        classes,
        elapsed_cycles,
        peak_in_flight,
        in_flight_at_end: in_flight,
        backpressure,
        handler_runs,
    }
}

/// A serving machine on the parallel sharded substrate: `nodes`
/// endpoints on deterministic-routing fat-tree shards (the PR 8 server
/// pool backbone) with server-grade queue depths — many replies
/// converge on few gateways, so the substrate carries 64-deep rx
/// queues (see [`scenarios::cm5_sharded_serving`]). Results depend on
/// `shards`, never on `threads`.
#[must_use]
pub fn serving_machine(nodes: usize, shards: usize, threads: usize, seed: u64) -> Machine {
    let net: ShardedNetwork = scenarios::cm5_sharded_serving(nodes, shards, threads, seed);
    Machine::new(timego_ni::share(net), nodes, CmamConfig::default())
}

/// The chaos counterpart of [`serving_machine`]: same sharded fat-tree
/// pool with a fault plane (crash windows land on the shard owning the
/// node).
#[must_use]
pub fn serving_machine_chaos(
    nodes: usize,
    shards: usize,
    threads: usize,
    fault: FaultConfig,
    seed: u64,
) -> Machine {
    let net = scenarios::cm5_sharded_chaos(nodes, shards, threads, fault, seed);
    Machine::new(timego_ni::share(net), nodes, CmamConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn servers(lo: usize, count: usize) -> Vec<NodeId> {
        (lo..lo + count).map(n).collect()
    }

    #[test]
    fn round_robin_is_fair_over_a_full_rotation() {
        let pool = servers(4, 5);
        let mut b = Balancer::new(BalancerPolicy::RoundRobin, &pool, 1);
        let loads = BTreeMap::new();
        // Three full rotations: every server picked exactly three
        // times, in pool order, regardless of keys.
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for k in 0..15u64 {
            let s = b.pick(splitmix64(k), &loads);
            assert_eq!(s, pool[(k % 5) as usize], "rotation order at pick {k}");
            *counts.entry(s).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 3), "fair rotation: {counts:?}");
    }

    #[test]
    fn least_loaded_tie_breaks_to_lowest_node_id_deterministically() {
        let pool = servers(10, 4);
        let mut b = Balancer::new(BalancerPolicy::LeastLoaded, &pool, 2);
        let mut loads = BTreeMap::new();
        // All idle: the lowest node id wins, every time.
        for k in 0..8u64 {
            assert_eq!(b.pick(k, &loads).index(), 10, "all-idle tie at pick {k}");
        }
        // Tie between 11 and 13 at load 1 (10 and 12 busier): 11 wins.
        loads.insert(n(10), 3);
        loads.insert(n(11), 1);
        loads.insert(n(12), 2);
        loads.insert(n(13), 1);
        for k in 0..8u64 {
            assert_eq!(b.pick(k, &loads).index(), 11, "two-way tie at pick {k}");
        }
        // Strictly least-loaded server wins when unique.
        loads.insert(n(13), 0);
        assert_eq!(b.pick(99, &loads).index(), 13);
    }

    #[test]
    fn random_policy_reaches_every_server() {
        let pool = servers(0, 6);
        let mut b = Balancer::new(BalancerPolicy::Random, &pool, 42);
        let loads = BTreeMap::new();
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for k in 0..600u64 {
            *counts.entry(b.pick(k, &loads)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6, "every server reached");
        // Seeded determinism: a fresh balancer with the same seed
        // repeats the sequence exactly.
        let mut b2 = Balancer::new(BalancerPolicy::Random, &pool, 42);
        let mut b3 = Balancer::new(BalancerPolicy::Random, &pool, 42);
        for k in 0..50u64 {
            assert_eq!(b2.pick(k, &loads), b3.pick(k, &loads));
        }
    }

    #[test]
    fn consistent_hash_add_moves_at_most_one_nth_of_keys() {
        const KEYS: u64 = 4000;
        let pool = servers(0, 8);
        let loads = BTreeMap::new();
        let mut before = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 128 }, &pool, 3);
        let owners: Vec<NodeId> = (0..KEYS).map(|k| before.pick(k, &loads)).collect();

        // Recruit a ninth server: only arcs the new points capture may
        // move, and every moved key must land on the recruit.
        let mut after = before.clone();
        after.add_server(n(100));
        let mut moved = 0u64;
        for k in 0..KEYS {
            let now = after.pick(k, &loads);
            if now != owners[k as usize] {
                moved += 1;
                assert_eq!(now.index(), 100, "key {k} moved to a non-recruit");
            }
        }
        assert!(moved > 0, "a recruit must take over some arcs");
        assert!(
            moved <= KEYS / pool.len() as u64,
            "add moved {moved} of {KEYS} keys over {} servers",
            pool.len()
        );

        // Retire one original server: exactly its keys move.
        let mut retired = before.clone();
        retired.remove_server(pool[3]);
        let mut moved = 0u64;
        for k in 0..KEYS {
            let now = retired.pick(k, &loads);
            if now != owners[k as usize] {
                moved += 1;
                assert_eq!(
                    owners[k as usize],
                    pool[3],
                    "key {k} moved without its server retiring"
                );
            }
        }
        assert!(moved > 0);
        assert!(
            moved <= KEYS * 2 / pool.len() as u64,
            "remove moved {moved} of {KEYS} keys over {} servers",
            pool.len()
        );
    }

    #[test]
    fn consistent_hash_is_stable_per_key() {
        let pool = servers(0, 5);
        let loads = BTreeMap::new();
        let mut b = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 64 }, &pool, 9);
        for k in (0..200u64).step_by(7) {
            let first = b.pick(k, &loads);
            for _ in 0..3 {
                assert_eq!(b.pick(k, &loads), first, "key {k} must be sticky");
            }
        }
    }

    #[test]
    fn splitmix_is_a_bijection_mixer() {
        // Spot-check: distinct inputs stay distinct, zero doesn't fix.
        assert_ne!(splitmix64(0), 0);
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u64 {
            assert!(seen.insert(splitmix64(k)), "collision at {k}");
        }
    }

    #[test]
    fn small_service_run_conserves_and_completes() {
        let mut m = serving_machine(64, 2, 1, 11);
        let spec = ServiceSpec {
            gateways: vec![n(0), n(1)],
            servers: servers(8, 4),
            policy: BalancerPolicy::RoundRobin,
            admission_bound: 64,
            classes: vec![
                QosClass::interactive(96, 30, 600_000),
                QosClass::batch(160, 20),
            ],
            migration: None,
            seed: 5,
        };
        let out = run_service(&mut m, &spec);
        assert_eq!(out.in_flight_at_end, 0, "drained");
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            assert_eq!(c.shed, 0, "light load must not shed ({})", c.name);
            assert_eq!(c.failed, 0, "light load must not fail ({})", c.name);
            assert_eq!(c.completion.count() as usize, c.admitted);
            assert!(c.bill.total() > 0, "class {} billed nothing", c.name);
        }
        assert!(out.goodput_per_kcycle() > 0.0);
    }

    #[test]
    fn migration_mid_run_reshapes_the_pool_and_still_conserves() {
        let mut m = serving_machine(64, 2, 1, 13);
        let spec = ServiceSpec {
            gateways: vec![n(0)],
            servers: servers(8, 4),
            policy: BalancerPolicy::ConsistentHash { vnodes: 64 },
            admission_bound: 64,
            classes: vec![QosClass::batch(128, 40)],
            migration: Some(Migration { at: 0.5, retire: 2, recruit: vec![n(20), n(21)] }),
            seed: 7,
        };
        let out = run_service(&mut m, &spec);
        let c = &out.classes[0];
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.admitted, c.completed + c.failed);
        assert_eq!(c.failed, 0, "retired servers must still answer in-flight work");
        assert_eq!(out.in_flight_at_end, 0);
    }
}
