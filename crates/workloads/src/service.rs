//! The RPC service plane: open-loop client populations driving a
//! sharded server pool through a gateway tier.
//!
//! This is the "millions of users" counterpart of [`crate::load`]: the
//! client population is *virtual* (an open-loop arrival schedule, far
//! larger than any node count), while the simulated nodes host the two
//! real tiers — **gateways**, where requests arrive, pass admission
//! control, and are routed by a pluggable [`Balancer`]; and
//! **servers**, whose registered RPC handlers perform the per-request
//! application work. Every request is an engine RPC from its gateway to
//! the chosen server, tagged with its QoS class via
//! [`Engine::set_class`], so the run splits both completion times and
//! the paper's per-feature instruction bills *per request class* —
//! "where does the time go" for a service, not a kernel.
//!
//! # The failure domain
//!
//! Under partial failure the paper's question gets a new answer: the
//! time goes into timeouts, futile retries, and requests routed at
//! corpses. The serving plane therefore carries a full failure domain:
//!
//! * **Heartbeat failure detection** ([`DetectorSpec`]) — gateways
//!   probe every pool member with a cheap `am4` ping each probe
//!   period. A probe is delivery-confirmed (the op completes when the
//!   packet surfaces at the server) and deadline-bounded; consecutive
//!   misses past the suspicion threshold *eject* the server from the
//!   balancer. Probes ride the engine class plane under
//!   [`DETECTOR_CLASS`] and their bookkeeping is billed to `FaultTol`
//!   at the probing gateway, so detection itself shows up in the
//!   "where does the time go" split.
//! * **Health-aware balancing** — [`Balancer::eject`] removes a
//!   suspected server's consistent-hash ring points (its arcs fall to
//!   the next live point) and every scan policy skips ejected nodes;
//!   [`Balancer::reinstate`] restores the exact same ring points when
//!   probes succeed again (points are a pure function of server and
//!   vnode), so routing reacts within ~2 probe periods of a crash and
//!   recovers just as fast.
//! * **Hedged requests** ([`HedgeSpec`]) — a hedge-armed request still
//!   unsettled past the class's observed latency quantile gets a
//!   second leg submitted to a different healthy server.
//!   First-completion-wins: the winner settles the request and the
//!   loser is [`Engine::cancel`]led; a pool-wide idempotency ledger in
//!   [`ServerPool`] suppresses the duplicate handler run the losing
//!   leg may have already caused, keeping exactly-once accounting.
//! * **Retry budgets and the brownout breaker** — a per-class token
//!   bucket ([`RetryBudget`] → [`Engine::set_retry_budget`]) caps
//!   recovery amplification under correlated failure, and the gateway
//!   [`BreakerSpec`] sheds brownout-sheddable classes outright (billed
//!   like an admission shed) while the healthy-server fraction the
//!   detector reports is below threshold.
//!
//! Accounting invariants (pinned by `tests/serving_invariants.rs` and
//! `tests/serving_failover.rs`):
//!
//! * **Conservation** — `offered == admitted + shed` and
//!   `admitted == completed + failed` with nothing in flight after the
//!   drain.
//! * **Bill additivity** — on clean runs, the sum of per-class bills
//!   (engine split + gateway-side attribution) equals the untagged
//!   total the node recorders saw.
//! * **Exactly-once** — a recovery-armed class crossed with
//!   [`CrashWindow`](timego_netsim::CrashWindow)s runs every admitted
//!   request's handler exactly once, hedge legs included (reply-cache
//!   dedup within a server, idempotency ledger across servers).
//! * **Thread invariance** — on [`ShardedNetwork`] the whole outcome
//!   (bills, latencies, shed counts, ejections, hedge wins) is
//!   identical at every worker-thread count.

use std::collections::{BTreeMap, BTreeSet};

use timego_am::{CmamConfig, Engine, Machine, OpId, RecoveryPolicy, RetryPolicy, Tags};
use timego_cost::{CostVector, Feature, Fine};
use timego_netsim::{FaultConfig, LatencyStats, NodeId, ShardedNetwork, SimRng};

pub use crate::apps::service::{
    Admission, AdmissionWindow, BreakerSpec, Gateway, ServerPool,
};
use crate::apps::service::cost;
use crate::scenarios;

/// SplitMix64 — the stateless mixer used for client keys and the
/// consistent-hash ring (same finalizer family as the netsim RNG, but
/// usable as a pure function of the key).
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Load-balancing policy of the gateway tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerPolicy {
    /// Uniform random pick from the live server set (seeded, so runs
    /// are reproducible).
    Random,
    /// Strict rotation over the live server set.
    RoundRobin,
    /// Pick the server with the fewest outstanding requests; ties break
    /// to the lowest node id (deterministic).
    LeastLoaded,
    /// Pick the server with the lowest completion-time EWMA measured
    /// from settled legs (servers with no sample yet count as fastest,
    /// so cold servers get probed with real traffic); ties break to the
    /// lowest node id.
    LatencyEwma,
    /// Consistent hashing on the client key over a ring of `vnodes`
    /// virtual points per server. Server add/remove (shard migration)
    /// remaps only the keys owned by the affected arcs — at most
    /// ~`K/n` of `K` keys for one server among `n`.
    ConsistentHash {
        /// Virtual ring points per server; more points flatten the
        /// per-server arc-length variance.
        vnodes: usize,
    },
}

impl BalancerPolicy {
    /// Short stable name, used in report keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            BalancerPolicy::Random => "random",
            BalancerPolicy::RoundRobin => "round_robin",
            BalancerPolicy::LeastLoaded => "least_loaded",
            BalancerPolicy::LatencyEwma => "latency_ewma",
            BalancerPolicy::ConsistentHash { .. } => "consistent_hash",
        }
    }
}

/// The load signals a routing decision may read: outstanding request
/// counts (what least-loaded scans) and per-server completion-time
/// EWMAs (what [`BalancerPolicy::LatencyEwma`] scans). Servers absent
/// from a map count as idle / unsampled.
#[derive(Debug, Clone, Copy)]
pub struct LoadView<'a> {
    /// Outstanding (submitted, unsettled) request legs per server.
    pub outstanding: &'a BTreeMap<NodeId, usize>,
    /// Completion-time EWMA per server, in cycles.
    pub ewma: &'a BTreeMap<NodeId, u64>,
}

impl<'a> LoadView<'a> {
    /// Bundle the two signal maps.
    #[must_use]
    pub fn new(
        outstanding: &'a BTreeMap<NodeId, usize>,
        ewma: &'a BTreeMap<NodeId, u64>,
    ) -> Self {
        LoadView { outstanding, ewma }
    }
}

/// A pluggable request router over a mutable server set with a health
/// overlay.
///
/// The balancer is deliberately *driver-side* state (cursor, ring, RNG,
/// ejection set) — the instruction cost of a pick is billed separately
/// at the gateway node by [`Gateway`], per policy.
///
/// **Membership vs health:** `add_server`/`remove_server` change the
/// *member* set (shard migration); [`Balancer::eject`] /
/// [`Balancer::reinstate`] toggle a member's *health* (failure
/// detection). Routing draws from the live (member ∧ healthy) set and
/// falls back to the full member set only when everything is ejected —
/// degraded routing beats a panic when the whole pool browns out.
#[derive(Debug, Clone)]
pub struct Balancer {
    policy: BalancerPolicy,
    servers: Vec<NodeId>,
    ejected: BTreeSet<NodeId>,
    rr_cursor: usize,
    // Consistent-hash ring: (point, server), sorted by point, holding
    // points of *live* members only. Empty for the other policies.
    ring: Vec<(u64, NodeId)>,
    rng: SimRng,
}

impl Balancer {
    /// A balancer over `servers` (non-empty) with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    #[must_use]
    pub fn new(policy: BalancerPolicy, servers: &[NodeId], seed: u64) -> Self {
        assert!(!servers.is_empty(), "balancer needs at least one server");
        let mut b = Balancer {
            policy,
            servers: servers.to_vec(),
            ejected: BTreeSet::new(),
            rr_cursor: 0,
            ring: Vec::new(),
            rng: SimRng::new(seed),
        };
        if let BalancerPolicy::ConsistentHash { vnodes } = policy {
            for &s in servers {
                b.insert_ring_points(s, vnodes);
            }
        }
        b
    }

    /// The member server set, in insertion order (ejected members
    /// included — ejection is a health overlay, not membership).
    #[must_use]
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// Whether `server` is a pool member (healthy or not).
    #[must_use]
    pub fn is_member(&self, server: NodeId) -> bool {
        self.servers.contains(&server)
    }

    /// Whether `server` is currently ejected by the failure detector.
    #[must_use]
    pub fn is_ejected(&self, server: NodeId) -> bool {
        self.ejected.contains(&server)
    }

    /// Member count, ejected included.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.servers.len()
    }

    /// Healthy member count.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.servers.iter().filter(|s| !self.ejected.contains(s)).count()
    }

    fn insert_ring_points(&mut self, server: NodeId, vnodes: usize) {
        for v in 0..vnodes {
            // A pure function of (server, vnode): reinstating a server
            // recreates exactly the points ejection removed, so a
            // crash-recover cycle is ownership-neutral.
            let point = splitmix64(
                (server.index() as u64) << 32 | (v as u64) | 0x5e47_0000_0000_0000,
            );
            let at = self.ring.partition_point(|&(p, _)| p < point);
            self.ring.insert(at, (point, server));
        }
    }

    /// Add a server to the member set (shard migration: recruit). A
    /// recruit that is already a member only gets its health back.
    /// Under consistent hashing only the keys whose ring arcs the new
    /// points capture move — everything else keeps its server.
    pub fn add_server(&mut self, server: NodeId) {
        if self.servers.contains(&server) {
            self.reinstate(server);
            return;
        }
        self.servers.push(server);
        if let BalancerPolicy::ConsistentHash { vnodes } = self.policy {
            self.insert_ring_points(server, vnodes);
        }
    }

    /// Remove a server from the member set (shard migration: retire).
    /// Safe on ejected and on never-added servers — all its state
    /// (membership, ring points, ejection) is purged, so a later
    /// `add_server` of the same node starts fresh.
    pub fn remove_server(&mut self, server: NodeId) {
        self.servers.retain(|&s| s != server);
        self.ring.retain(|&(_, s)| s != server);
        self.ejected.remove(&server);
    }

    /// Mark a member unhealthy (failure detector: suspicion threshold
    /// crossed). Its ring points leave the ring — each owned arc falls
    /// to the next live point — and scan policies skip it. Returns
    /// `false` if it is not a member or already ejected.
    pub fn eject(&mut self, server: NodeId) -> bool {
        if !self.servers.contains(&server) {
            return false;
        }
        if !self.ejected.insert(server) {
            return false;
        }
        self.ring.retain(|&(_, s)| s != server);
        true
    }

    /// Mark an ejected member healthy again (failure detector: probe
    /// succeeded). Its exact ring points return. Returns `false` if it
    /// was not ejected.
    pub fn reinstate(&mut self, server: NodeId) -> bool {
        if !self.ejected.remove(&server) {
            return false;
        }
        if let BalancerPolicy::ConsistentHash { vnodes } = self.policy {
            if self.servers.contains(&server) {
                self.insert_ring_points(server, vnodes);
            }
        }
        true
    }

    /// Route one request: `key` identifies the client (consistent
    /// hashing routes on it), `view` carries the load signals the scan
    /// policies read. Ejected members are skipped; if *every* member is
    /// ejected, routing falls back to the full member set (degraded
    /// beats down).
    ///
    /// # Panics
    ///
    /// Panics if every server has been removed.
    pub fn pick(&mut self, key: u64, view: &LoadView) -> NodeId {
        assert!(!self.servers.is_empty(), "balancer has no live servers");
        let live: Vec<NodeId> = self
            .servers
            .iter()
            .copied()
            .filter(|s| !self.ejected.contains(s))
            .collect();
        let pool: &[NodeId] = if live.is_empty() { &self.servers } else { &live };
        match self.policy {
            BalancerPolicy::Random => {
                let i = self.rng.gen_index(pool.len());
                pool[i]
            }
            BalancerPolicy::RoundRobin => {
                let s = pool[self.rr_cursor % pool.len()];
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                s
            }
            BalancerPolicy::LeastLoaded => {
                *pool
                    .iter()
                    .min_by_key(|&&s| {
                        (view.outstanding.get(&s).copied().unwrap_or(0), s.index())
                    })
                    .expect("non-empty pool")
            }
            BalancerPolicy::LatencyEwma => {
                *pool
                    .iter()
                    .min_by_key(|&&s| (view.ewma.get(&s).copied().unwrap_or(0), s.index()))
                    .expect("non-empty pool")
            }
            BalancerPolicy::ConsistentHash { .. } => {
                let h = splitmix64(key);
                if self.ring.is_empty() {
                    // Every member ejected: degraded fallback keeps the
                    // key → server mapping stable (pure hash over the
                    // member list) until someone recovers.
                    pool[(h % pool.len() as u64) as usize]
                } else {
                    let at = self.ring.partition_point(|&(p, _)| p < h);
                    self.ring[at % self.ring.len()].1
                }
            }
        }
    }

    /// Pick the target for a hedge leg: the least-outstanding healthy
    /// member other than `exclude` (the primary leg's server). `None`
    /// when no such server exists — a hedge to the same box buys
    /// nothing.
    #[must_use]
    pub fn pick_hedge(&self, exclude: NodeId, view: &LoadView) -> Option<NodeId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| s != exclude && !self.ejected.contains(&s))
            .min_by_key(|&s| (view.outstanding.get(&s).copied().unwrap_or(0), s.index()))
    }
}

/// The heartbeat failure detector's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorSpec {
    /// Cycles between probe rounds. Each round sends one `am4` ping
    /// from a gateway to every pool member without a probe already in
    /// flight.
    pub period: u64,
    /// Per-probe deadline: a probe not delivery-confirmed within this
    /// many cycles counts as a miss.
    pub timeout: u64,
    /// Consecutive misses before a server is ejected.
    pub threshold: u32,
}

impl Default for DetectorSpec {
    fn default() -> Self {
        DetectorSpec { period: 1500, timeout: 1200, threshold: 2 }
    }
}

/// Hedged-request policy for hedge-armed classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeSpec {
    /// Latency quantile of the class's *observed* completions past
    /// which an unsettled request hedges (0.95 = hedge the slowest 5%).
    pub quantile: f64,
    /// Observed completions required before the quantile is trusted.
    pub min_samples: u64,
    /// Hedge delay in cycles used until `min_samples` completions have
    /// been observed.
    pub bootstrap: u64,
}

impl Default for HedgeSpec {
    fn default() -> Self {
        HedgeSpec { quantile: 0.95, min_samples: 32, bootstrap: 8192 }
    }
}

/// A per-class retry budget: the token bucket handed to
/// [`Engine::set_retry_budget`], capping recovery re-executions so a
/// correlated failure cannot amplify one class's offered load into an
/// unbounded retry storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Bucket capacity in re-execution tokens (also the initial fill).
    pub capacity: u32,
    /// Refill rate in milli-tokens per kilocycle (1000 = one
    /// re-execution per kilocycle sustained).
    pub refill_milli_per_kcycle: u32,
}

/// One QoS class: an open-loop client population plus the engine
/// primitives its requests are mapped onto.
#[derive(Debug, Clone)]
pub struct QosClass {
    /// Stable name, used in report keys ("interactive", "batch", …).
    pub name: &'static str,
    /// The class tag handed to [`Engine::set_class`].
    pub class: u8,
    /// Cycles between successive arrivals of this population (open
    /// loop; smaller is a higher offered rate). Must be ≥ 1.
    pub interval: u64,
    /// Total requests this population offers.
    pub requests: usize,
    /// Application work units the server handler performs per request
    /// (each unit is a fixed load/store/ALU shape billed at the
    /// callee).
    pub work: u32,
    /// Per-request deadline in cycles from submission, if the class is
    /// latency-supervised: late requests are failed fast with
    /// `DeadlineExceeded` instead of occupying the pool.
    pub deadline: Option<u64>,
    /// Engine-native re-execution budget, if the class is
    /// recovery-armed: retryable failures (crash-window `SessionReset`s
    /// included) park and re-execute to exactly-once completion.
    pub recovery: Option<RecoveryPolicy>,
    /// Inner protocol retry policy for the RPC itself.
    pub retry: RetryPolicy,
    /// Whether requests of this class hedge when the run's
    /// [`HedgeSpec`] is armed (tail insurance is an interactive trait —
    /// batch work just waits).
    pub hedge: bool,
    /// Whether the brownout breaker may shed this class (see
    /// [`BreakerSpec`]).
    pub sheddable: bool,
    /// Per-class retry budget, if capped (see [`RetryBudget`]).
    pub retry_budget: Option<RetryBudget>,
}

impl QosClass {
    /// A latency-sensitive class: small work, per-request deadline, no
    /// re-execution (stale interactive replies are worthless), hedged
    /// and brownout-sheddable.
    #[must_use]
    pub fn interactive(interval: u64, requests: usize, deadline: u64) -> Self {
        QosClass {
            name: "interactive",
            class: 0,
            interval,
            requests,
            work: 4,
            deadline: Some(deadline),
            recovery: None,
            retry: RetryPolicy::default(),
            hedge: true,
            sheddable: true,
            retry_budget: None,
        }
    }

    /// A throughput-sensitive class: heavier work, no deadline,
    /// recovery-armed so crashes re-execute instead of failing; never
    /// hedged or breaker-shed.
    #[must_use]
    pub fn batch(interval: u64, requests: usize) -> Self {
        QosClass {
            name: "batch",
            class: 1,
            interval,
            requests,
            work: 16,
            deadline: None,
            recovery: Some(RecoveryPolicy::default()),
            retry: RetryPolicy::default(),
            hedge: false,
            sheddable: false,
            retry_budget: None,
        }
    }
}

/// One serving run: tiers, policy, admission window, failure-domain
/// knobs, and the class populations.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Gateway-tier nodes (requests arrive here; each RPC's caller).
    pub gateways: Vec<NodeId>,
    /// Server-pool nodes (RPC handlers live here).
    pub servers: Vec<NodeId>,
    /// How gateways route admitted requests.
    pub policy: BalancerPolicy,
    /// The admission window: tier-global or per-gateway in-flight
    /// bound. Arrivals past it are shed.
    pub window: AdmissionWindow,
    /// The client populations.
    pub classes: Vec<QosClass>,
    /// Shard migration script: at the arrival fraction `at` (0.0–1.0 of
    /// all arrivals), retire `retire` servers (the lowest-indexed live
    /// ones) and recruit these spare nodes into the pool.
    pub migration: Option<Migration>,
    /// Heartbeat failure detection, if armed.
    pub detector: Option<DetectorSpec>,
    /// Hedged requests for hedge-armed classes, if armed.
    pub hedge: Option<HedgeSpec>,
    /// Gateway brownout breaker, if armed (needs the detector to feed
    /// it a healthy fraction — without one it never trips).
    pub breaker: Option<BreakerSpec>,
    /// Seed for the balancer RNG and payload keys.
    pub seed: u64,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec {
            gateways: Vec::new(),
            servers: Vec::new(),
            policy: BalancerPolicy::RoundRobin,
            window: AdmissionWindow::TierGlobal(64),
            classes: Vec::new(),
            migration: None,
            detector: None,
            hedge: None,
            breaker: None,
            seed: 0,
        }
    }
}

/// A scripted mid-run reshape of the server pool (see
/// [`ServiceSpec::migration`]).
#[derive(Debug, Clone)]
pub struct Migration {
    /// Fraction of total arrivals after which the migration runs.
    pub at: f64,
    /// How many live servers to retire (lowest node ids first; capped
    /// so at least one member always remains).
    pub retire: usize,
    /// Spare nodes to recruit.
    pub recruit: Vec<NodeId>,
}

/// Per-class results of one serving run.
#[derive(Debug, Clone)]
pub struct ClassOutcome {
    /// Class name from the spec.
    pub name: &'static str,
    /// Class tag from the spec.
    pub class: u8,
    /// Arrivals offered by this population.
    pub offered: usize,
    /// Arrivals admitted (submitted to the engine).
    pub admitted: usize,
    /// Arrivals shed at the gateway (admission bound hit or breaker
    /// open).
    pub shed: usize,
    /// The subset of [`ClassOutcome::shed`] the brownout breaker took.
    pub breaker_shed: usize,
    /// Admitted requests that completed successfully (first winning
    /// leg).
    pub completed: usize,
    /// Admitted requests whose every leg failed (deadline, retry
    /// exhaustion, …).
    pub failed: usize,
    /// Engine-native re-executions across this class's request legs.
    pub re_executions: u64,
    /// Recovery re-executions the class's retry budget denied.
    pub budget_denied: u64,
    /// Hedge legs launched for this class.
    pub hedges: usize,
    /// Requests settled by a hedge leg rather than the primary.
    pub hedge_wins: usize,
    /// Completion-time histogram (submission → settlement of the
    /// *request*: first winning leg or last failing one; queueing,
    /// re-execution, and hedging included) for this class only.
    pub completion: LatencyStats,
    /// The class's full cost bill: the engine's per-class split plus
    /// the gateway-side admission/routing/shed/hedge instructions
    /// attributed to this class.
    pub bill: CostVector,
}

/// Whole-run results of one serving run.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Per-class outcomes, in spec order.
    pub classes: Vec<ClassOutcome>,
    /// Cycles from the first arrival to the end of the drain.
    pub elapsed_cycles: u64,
    /// Highest in-flight admitted count the run reached (tier-wide).
    pub peak_in_flight: usize,
    /// Highest in-flight count per gateway node index.
    pub peak_per_gateway: BTreeMap<usize, usize>,
    /// Requests still in flight after the drain (0 on a conserved run).
    pub in_flight_at_end: usize,
    /// Substrate backpressure events over the run.
    pub backpressure: u64,
    /// Handler runs per server node index — what the exactly-once
    /// invariant audits: across crash re-executions *and hedge races*,
    /// the pool-wide sum stays equal to the admitted count.
    pub handler_runs: BTreeMap<usize, u64>,
    /// Handler invocations the pool's idempotency ledger suppressed
    /// (the losing hedge leg's duplicate).
    pub dup_suppressed: u64,
    /// Heartbeat probes the detector sent.
    pub probes: u64,
    /// Probes that missed (deadline or delivery failure).
    pub probe_failures: u64,
    /// Servers ejected by the detector (threshold crossings, not a
    /// distinct-server count).
    pub ejections: u64,
    /// Ejected servers reinstated after probes succeeded again.
    pub reinstatements: u64,
    /// What detection itself cost: the engine's bill for
    /// [`DETECTOR_CLASS`] (the probe ops) plus the driver-side
    /// suspicion bookkeeping billed at the gateways.
    pub detector_bill: CostVector,
}

impl ServiceOutcome {
    /// Completed requests per elapsed kilocycle, across all classes —
    /// the goodput axis of the overload and failover curves.
    #[must_use]
    pub fn goodput_per_kcycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            return 0.0;
        }
        let done: usize = self.classes.iter().map(|c| c.completed).sum();
        done as f64 * 1000.0 / self.elapsed_cycles as f64
    }

    /// Shed fraction across all classes: shed / offered.
    #[must_use]
    pub fn shed_fraction(&self) -> f64 {
        let offered: usize = self.classes.iter().map(|c| c.offered).sum();
        if offered == 0 {
            return 0.0;
        }
        let shed: usize = self.classes.iter().map(|c| c.shed).sum();
        shed as f64 / offered as f64
    }

    /// A compact determinism signature: every count, bill total, and
    /// histogram moment folded into one value. Two runs of the same
    /// spec on the same substrate parameters must produce equal
    /// signatures at every worker-thread count.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        fold(self.elapsed_cycles);
        fold(self.peak_in_flight as u64);
        fold(self.in_flight_at_end as u64);
        fold(self.backpressure);
        fold(self.dup_suppressed);
        fold(self.probes);
        fold(self.probe_failures);
        fold(self.ejections);
        fold(self.reinstatements);
        fold(self.detector_bill.total());
        fold(self.detector_bill.overhead_total());
        for (&gw, &peak) in &self.peak_per_gateway {
            fold(gw as u64);
            fold(peak as u64);
        }
        for (&server, &runs) in &self.handler_runs {
            fold(server as u64);
            fold(runs);
        }
        for c in &self.classes {
            fold(c.class as u64);
            fold(c.offered as u64);
            fold(c.admitted as u64);
            fold(c.shed as u64);
            fold(c.breaker_shed as u64);
            fold(c.completed as u64);
            fold(c.failed as u64);
            fold(c.re_executions);
            fold(c.budget_denied);
            fold(c.hedges as u64);
            fold(c.hedge_wins as u64);
            fold(c.completion.count());
            fold(c.completion.max());
            fold(c.completion.quantile(0.5));
            fold(c.completion.quantile(0.99));
            fold(c.completion.quantile(0.999));
            fold(c.bill.total());
            fold(c.bill.overhead_total());
        }
        h
    }
}

/// The request tag the serving plane registers its handlers under.
pub const SERVICE_TAG: u8 = Tags::USER_BASE + 7;

/// The tag heartbeat probes ride on (no handler — the probe op itself
/// consumes the ping on delivery).
pub const PROBE_TAG: u8 = Tags::USER_BASE + 8;

/// The engine class tag detector probes are billed under, far outside
/// the QoS range so detection cost never pollutes a class bill.
pub const DETECTOR_CLASS: u8 = 0xff;

fn clock(m: &Machine) -> u64 {
    m.network().borrow().now().cycles()
}

/// One request leg (primary or hedge) in flight.
#[derive(Debug, Clone, Copy)]
struct Leg {
    /// Index into the request ledger.
    req: usize,
    server: NodeId,
    submitted_at: u64,
}

/// One admitted request: its legs and settlement state.
#[derive(Debug, Clone)]
struct Req {
    ci: usize,
    gw: NodeId,
    primary: NodeId,
    args: [u32; 4],
    submitted_at: u64,
    legs: Vec<OpId>,
    outstanding: usize,
    hedged: bool,
    settled: bool,
}

/// Driver-side detector state: suspicion counters, probes in flight,
/// and the probe schedule.
#[derive(Debug)]
struct DetectorState {
    spec: DetectorSpec,
    misses: BTreeMap<NodeId, u32>,
    outstanding: BTreeMap<OpId, NodeId>,
    next_round: u64,
    active: bool,
    probes: u64,
    failures: u64,
    ejections: u64,
    reinstatements: u64,
    bill: CostVector,
}

/// The run's mutable driver state, bundled so the pacing loop, the
/// harvest, the detector, and the hedger can hand it around without
/// borrow gymnastics.
struct Rt<'a> {
    spec: &'a ServiceSpec,
    balancer: Balancer,
    gateway: Gateway,
    det: Option<DetectorState>,
    reqs: Vec<Req>,
    legs: BTreeMap<OpId, Leg>,
    outstanding: BTreeMap<NodeId, usize>,
    ewma: BTreeMap<NodeId, u64>,
    lat: Vec<LatencyStats>,
    completed: Vec<usize>,
    failed: Vec<usize>,
    hedges: Vec<usize>,
    hedge_wins: Vec<usize>,
    hedge_due: BTreeMap<u64, Vec<usize>>,
    cursor: usize,
}

impl Rt<'_> {
    /// Drain new `Completed` trace events: settle requests first-win,
    /// cancel losing hedge legs, update load signals, and feed probe
    /// verdicts to the detector.
    fn harvest(&mut self, m: &Machine, eng: &mut Engine) {
        let done = eng.completions_since(&mut self.cursor);
        if done.is_empty() {
            return;
        }
        let mut verdicts: Vec<(NodeId, bool)> = Vec::new();
        for (id, ok, at) in done {
            let Some(leg) = self.legs.get(&id).copied() else {
                if let Some(ds) = self.det.as_mut() {
                    if let Some(server) = ds.outstanding.remove(&id) {
                        verdicts.push((server, ok));
                    }
                }
                continue;
            };
            if let Some(l) = self.outstanding.get_mut(&leg.server) {
                *l = l.saturating_sub(1);
            }
            if ok {
                let sample = at.saturating_sub(leg.submitted_at).max(1);
                match self.ewma.get_mut(&leg.server) {
                    Some(e) => *e = (*e * 7 + sample) / 8,
                    None => {
                        self.ewma.insert(leg.server, sample);
                    }
                }
            }
            let req = &mut self.reqs[leg.req];
            req.outstanding = req.outstanding.saturating_sub(1);
            if req.settled {
                continue;
            }
            if ok {
                // First completion wins: settle the request, cancel
                // every other leg (a cancelled leg's own `Completed`
                // event lands after the cursor and is absorbed on the
                // next harvest).
                req.settled = true;
                let (ci, gw, t0) = (req.ci, req.gw, req.submitted_at);
                let won_by_hedge = req.legs.first() != Some(&id);
                let losers: Vec<OpId> =
                    req.legs.iter().copied().filter(|&l| l != id).collect();
                self.completed[ci] += 1;
                if won_by_hedge {
                    self.hedge_wins[ci] += 1;
                }
                self.lat[ci].record(at.saturating_sub(t0).max(1));
                self.gateway.complete(gw);
                for l in losers {
                    eng.cancel(m, l);
                }
            } else if req.outstanding == 0 {
                // Every leg failed: the request fails.
                req.settled = true;
                let (ci, gw, t0) = (req.ci, req.gw, req.submitted_at);
                self.failed[ci] += 1;
                self.lat[ci].record(at.saturating_sub(t0).max(1));
                self.gateway.complete(gw);
            }
        }
        for (server, ok) in verdicts {
            self.probe_verdict(m, server, ok);
        }
    }

    /// Apply one probe verdict: clear or bump the suspicion counter,
    /// eject at the threshold, reinstate on recovery, and refresh the
    /// breaker's healthy fraction. The bookkeeping is billed to
    /// `FaultTol` at the probing gateway.
    fn probe_verdict(&mut self, m: &Machine, server: NodeId, ok: bool) {
        let Some(ds) = self.det.as_mut() else { return };
        let prober =
            self.spec.gateways[server.index() % self.spec.gateways.len()];
        let cpu = m.cpu(prober);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::FaultTol, |c| {
            c.reg(Fine::RegOp, cost::PROBE_BOOK_REG);
            c.mem_store(cost::PROBE_BOOK_MEM);
        });
        ds.bill += cpu.snapshot() - before;
        if !self.balancer.is_member(server) {
            // Migrated away while the probe was in flight.
            ds.misses.remove(&server);
            return;
        }
        if ok {
            ds.misses.insert(server, 0);
            if self.balancer.is_ejected(server) && self.balancer.reinstate(server) {
                ds.reinstatements += 1;
            }
        } else {
            ds.failures += 1;
            let miss = ds.misses.entry(server).or_insert(0);
            *miss += 1;
            if *miss >= ds.spec.threshold
                && !self.balancer.is_ejected(server)
                && self.balancer.eject(server)
            {
                ds.ejections += 1;
            }
        }
        self.gateway
            .note_health(self.balancer.live_count(), self.balancer.member_count());
    }

    /// Launch a probe round if one is due: one deadline-bounded `am4`
    /// ping per member without a probe already outstanding.
    fn tick_detector(&mut self, m: &mut Machine, eng: &mut Engine) {
        let ngw = self.spec.gateways.len();
        let Some(ds) = self.det.as_mut() else { return };
        if !ds.active {
            return;
        }
        let now = clock(m);
        if now < ds.next_round {
            return;
        }
        let targets: Vec<NodeId> = self.balancer.servers().to_vec();
        for server in targets {
            if ds.outstanding.values().any(|&s| s == server) {
                continue;
            }
            let prober = self.spec.gateways[server.index() % ngw];
            // `RecoveryPolicy::none()` keeps the probe single-shot but
            // routes it through the token-stamped submission path, so a
            // ping landing after its op expired is orphan-discardable
            // instead of wedging the server's rx queue.
            let id = eng
                .submit_am4_recovering(
                    m,
                    prober,
                    server,
                    PROBE_TAG,
                    [0x5052_4f42, server.index() as u32, 0, 0],
                    &RecoveryPolicy::none(),
                )
                .expect("probe submission");
            eng.set_class(id, DETECTOR_CLASS);
            eng.set_deadline(m, id, ds.spec.timeout);
            ds.outstanding.insert(id, server);
            ds.probes += 1;
        }
        while ds.next_round <= now {
            ds.next_round += ds.spec.period.max(1);
        }
    }

    /// Launch hedge legs for requests past their due point.
    fn tick_hedges(&mut self, m: &mut Machine, eng: &mut Engine) {
        if self.spec.hedge.is_none() {
            return;
        }
        let now = clock(m);
        while let Some((&due, _)) = self.hedge_due.first_key_value() {
            if due > now {
                break;
            }
            let (_, batch) = self.hedge_due.pop_first().expect("peeked entry");
            for ri in batch {
                self.launch_hedge(m, eng, ri, now);
            }
        }
    }

    fn launch_hedge(&mut self, m: &mut Machine, eng: &mut Engine, ri: usize, now: u64) {
        let (ci, gw, primary, args, t0, hedged, settled) = {
            let r = &self.reqs[ri];
            (r.ci, r.gw, r.primary, r.args, r.submitted_at, r.hedged, r.settled)
        };
        if settled || hedged {
            return;
        }
        let c = &self.spec.classes[ci];
        let mut remaining = None;
        if let Some(d) = c.deadline {
            // Hedging into an almost-dead deadline window buys nothing.
            let left = (t0 + d).saturating_sub(now);
            if left < 2 {
                return;
            }
            remaining = Some(left);
        }
        let view = LoadView::new(&self.outstanding, &self.ewma);
        let Some(target) = self.balancer.pick_hedge(primary, &view) else {
            return;
        };
        self.reqs[ri].hedged = true;
        self.gateway.bill_hedge(m, gw, ci, self.balancer.live_count());
        // The hedge leg is single-shot (no recovery): the primary owns
        // durability, the hedge owns the tail.
        let id = eng.submit_rpc(m, gw, target, SERVICE_TAG, args, Some(&c.retry));
        eng.set_class(id, c.class);
        if let Some(left) = remaining {
            eng.set_deadline(m, id, left);
        }
        self.legs.insert(id, Leg { req: ri, server: target, submitted_at: now });
        self.reqs[ri].legs.push(id);
        self.reqs[ri].outstanding += 1;
        *self.outstanding.entry(target).or_insert(0) += 1;
        self.hedges[ci] += 1;
    }

    /// One pacing step: pump the engine, absorb completions, probe, and
    /// hedge.
    fn step(&mut self, m: &mut Machine, eng: &mut Engine) {
        eng.pump(m);
        self.harvest(m, eng);
        self.tick_detector(m, eng);
        self.tick_hedges(m, eng);
    }
}

/// Drive one serving run to completion: pace the merged per-class
/// arrival schedules on the substrate clock (pumping the engine in
/// between), pass every arrival through gateway admission and the
/// balancer, submit admitted requests as class-tagged RPCs — hedging,
/// probing, and ejecting along the way — then drain.
///
/// The machine should be freshly constructed for the run — substrate
/// counters are read as whole-run totals, and the server handlers are
/// (re)registered here.
///
/// # Panics
///
/// Panics if the spec has no classes, no gateways, no servers, a zero
/// interval, gateway/server tiers that overlap, a zero-period or
/// zero-threshold detector, or a class colliding with
/// [`DETECTOR_CLASS`] while the detector is armed.
#[allow(clippy::too_many_lines)]
pub fn run_service(m: &mut Machine, spec: &ServiceSpec) -> ServiceOutcome {
    assert!(!spec.classes.is_empty(), "need at least one QoS class");
    assert!(!spec.gateways.is_empty(), "need at least one gateway");
    assert!(!spec.servers.is_empty(), "need at least one server");
    assert!(spec.classes.iter().all(|c| c.interval >= 1), "intervals must be ≥ 1");
    assert!(
        spec.gateways.iter().all(|g| !spec.servers.contains(g)),
        "gateway and server tiers must not overlap"
    );
    if let Some(d) = spec.detector {
        assert!(d.period >= 1 && d.timeout >= 1 && d.threshold >= 1, "degenerate detector");
        assert!(
            spec.classes.iter().all(|c| c.class != DETECTOR_CLASS),
            "class tag {DETECTOR_CLASS:#x} is reserved for the failure detector"
        );
    }

    let nclasses = spec.classes.len();
    let pool = ServerPool::install(
        m,
        &spec.servers,
        spec.migration.as_ref().map_or(&[][..], |mig| &mig.recruit),
        SERVICE_TAG,
    );
    let mut eng = Engine::new();
    for c in &spec.classes {
        if let Some(rb) = &c.retry_budget {
            eng.set_retry_budget(c.class, rb.capacity, rb.refill_milli_per_kcycle);
        }
    }
    let mut gateway = Gateway::new(spec.window, nclasses);
    if let Some(b) = spec.breaker {
        gateway.set_breaker(b);
    }
    let start = clock(m);
    let mut rt = Rt {
        spec,
        balancer: Balancer::new(spec.policy, &spec.servers, spec.seed),
        gateway,
        det: spec.detector.map(|d| DetectorState {
            spec: d,
            misses: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            next_round: start,
            active: true,
            probes: 0,
            failures: 0,
            ejections: 0,
            reinstatements: 0,
            bill: CostVector::new(),
        }),
        reqs: Vec::new(),
        legs: BTreeMap::new(),
        outstanding: BTreeMap::new(),
        ewma: BTreeMap::new(),
        lat: (0..nclasses).map(|_| LatencyStats::default()).collect(),
        completed: vec![0; nclasses],
        failed: vec![0; nclasses],
        hedges: vec![0; nclasses],
        hedge_wins: vec![0; nclasses],
        hedge_due: BTreeMap::new(),
        cursor: 0,
    };

    // Merged arrival schedule: (due, class index, per-class arrival
    // index), ordered by due cycle then class — deterministic.
    let mut arrivals: Vec<(u64, usize, usize)> = Vec::new();
    for (ci, c) in spec.classes.iter().enumerate() {
        for i in 0..c.requests {
            arrivals.push((start + i as u64 * c.interval, ci, i));
        }
    }
    arrivals.sort_unstable_by_key(|&(due, ci, i)| (due, ci, i));
    let migrate_after = spec
        .migration
        .as_ref()
        .map(|mig| ((arrivals.len() as f64) * mig.at.clamp(0.0, 1.0)) as usize);

    let mut admitted = vec![0usize; nclasses];
    for (k, &(due, ci, i)) in arrivals.iter().enumerate() {
        if migrate_after == Some(k) {
            let mig = spec.migration.as_ref().expect("migrate_after implies migration");
            let members: Vec<NodeId> = rt.balancer.servers().to_vec();
            // Never retire the whole pool: at least one member stays so
            // routing (and the detector's health denominator) survives
            // a misconfigured script.
            let retire_n = mig.retire.min(members.len().saturating_sub(1));
            for &s in members.iter().take(retire_n) {
                rt.balancer.remove_server(s);
                if let Some(ds) = rt.det.as_mut() {
                    ds.misses.remove(&s);
                }
            }
            for &s in &mig.recruit {
                rt.balancer.add_server(s);
            }
            if rt.det.is_some() {
                rt.gateway
                    .note_health(rt.balancer.live_count(), rt.balancer.member_count());
            }
        }
        while clock(m) < due {
            rt.step(m, &mut eng);
        }
        rt.tick_detector(m, &mut eng);
        rt.tick_hedges(m, &mut eng);
        let c = &spec.classes[ci];
        // The client key: stable per (class, arrival), what consistent
        // hashing routes on and what spreads arrivals over gateways.
        let key = splitmix64(spec.seed ^ ((ci as u64) << 48) ^ i as u64);
        let gw = spec.gateways[(key % spec.gateways.len() as u64) as usize];
        match rt.gateway.admit(m, gw, ci, c.sheddable) {
            Admission::Shed => continue,
            Admission::Granted => {}
        }
        let view = LoadView::new(&rt.outstanding, &rt.ewma);
        let server = rt.balancer.pick(key, &view);
        rt.gateway
            .bill_route(m, gw, ci, spec.policy, rt.balancer.live_count().max(1));
        let args = [ci as u32, i as u32, c.work, (key & 0xffff_ffff) as u32];
        let id = match &c.recovery {
            Some(rec) => {
                eng.submit_rpc_recovering(m, gw, server, SERVICE_TAG, args, Some(&c.retry), rec)
            }
            None => eng.submit_rpc(m, gw, server, SERVICE_TAG, args, Some(&c.retry)),
        };
        eng.set_class(id, c.class);
        if let Some(d) = c.deadline {
            eng.set_deadline(m, id, d);
        }
        let now = clock(m);
        let ri = rt.reqs.len();
        rt.reqs.push(Req {
            ci,
            gw,
            primary: server,
            args,
            submitted_at: now,
            legs: vec![id],
            outstanding: 1,
            hedged: false,
            settled: false,
        });
        rt.legs.insert(id, Leg { req: ri, server, submitted_at: now });
        *rt.outstanding.entry(server).or_insert(0) += 1;
        admitted[ci] += 1;
        if let Some(h) = &spec.hedge {
            if c.hedge {
                let s = &rt.lat[ci];
                let delay = if s.count() >= h.min_samples {
                    s.quantile(h.quantile).max(1)
                } else {
                    h.bootstrap.max(1)
                };
                rt.hedge_due.entry(now + delay).or_default().push(ri);
            }
        }
    }

    // Drain phase 1: every admitted request settles (probes keep
    // cycling so mid-drain crashes are still detected).
    while rt.gateway.in_flight_total() > 0 {
        rt.step(m, &mut eng);
    }
    // Drain phase 2: stop probing, discard in-flight probe verdicts
    // (a post-run ejection would be noise), and let the engine empty.
    if let Some(ds) = rt.det.as_mut() {
        ds.active = false;
        let ids: Vec<OpId> = ds.outstanding.keys().copied().collect();
        ds.outstanding.clear();
        for id in ids {
            eng.cancel(m, id);
        }
    }
    while eng.unfinished() > 0 {
        eng.pump(m);
        rt.harvest(m, &mut eng);
    }
    rt.harvest(m, &mut eng);
    let elapsed_cycles = clock(m) - start;

    let mut re_execs = vec![0u64; nclasses];
    for (&id, leg) in &rt.legs {
        re_execs[rt.reqs[leg.req].ci] += u64::from(eng.recovery_executions(id));
    }
    let backpressure = m.network().borrow().stats().backpressure;
    let classes = spec
        .classes
        .iter()
        .enumerate()
        .map(|(ci, c)| ClassOutcome {
            name: c.name,
            class: c.class,
            offered: c.requests,
            admitted: admitted[ci],
            shed: rt.gateway.shed(ci),
            breaker_shed: rt.gateway.breaker_shed(ci),
            completed: rt.completed[ci],
            failed: rt.failed[ci],
            re_executions: re_execs[ci],
            budget_denied: eng.retry_budget_denied(c.class),
            hedges: rt.hedges[ci],
            hedge_wins: rt.hedge_wins[ci],
            completion: rt.lat[ci],
            bill: eng.class_bill(c.class) + rt.gateway.bill(ci),
        })
        .collect();
    let handler_runs = pool.runs();
    let dup_suppressed = pool.dup_suppressed();
    drop(pool);
    let (probes, probe_failures, ejections, reinstatements, det_bill) =
        rt.det.as_ref().map_or((0, 0, 0, 0, CostVector::new()), |ds| {
            (ds.probes, ds.failures, ds.ejections, ds.reinstatements, ds.bill.clone())
        });
    ServiceOutcome {
        classes,
        elapsed_cycles,
        peak_in_flight: rt.gateway.peak_in_flight(),
        peak_per_gateway: rt.gateway.peak_per_gateway(),
        in_flight_at_end: rt.gateway.in_flight_total(),
        backpressure,
        handler_runs,
        dup_suppressed,
        probes,
        probe_failures,
        ejections,
        reinstatements,
        detector_bill: det_bill + eng.class_bill(DETECTOR_CLASS),
    }
}

/// A serving machine on the parallel sharded substrate: `nodes`
/// endpoints on deterministic-routing fat-tree shards (the PR 8 server
/// pool backbone) with server-grade queue depths — many replies
/// converge on few gateways, so the substrate carries 64-deep rx
/// queues (see [`scenarios::cm5_sharded_serving`]). Results depend on
/// `shards`, never on `threads`.
#[must_use]
pub fn serving_machine(nodes: usize, shards: usize, threads: usize, seed: u64) -> Machine {
    let net: ShardedNetwork = scenarios::cm5_sharded_serving(nodes, shards, threads, seed);
    Machine::new(timego_ni::share(net), nodes, CmamConfig::default())
}

/// The chaos counterpart of [`serving_machine`]: same sharded fat-tree
/// pool with a fault plane (crash windows land on the shard owning the
/// node).
#[must_use]
pub fn serving_machine_chaos(
    nodes: usize,
    shards: usize,
    threads: usize,
    fault: FaultConfig,
    seed: u64,
) -> Machine {
    let net = scenarios::cm5_sharded_chaos(nodes, shards, threads, fault, seed);
    Machine::new(timego_ni::share(net), nodes, CmamConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn servers(lo: usize, count: usize) -> Vec<NodeId> {
        (lo..lo + count).map(n).collect()
    }

    /// An idle load view for tests that don't exercise load signals.
    macro_rules! idle_view {
        ($loads:ident, $ewma:ident, $view:ident) => {
            let $loads: BTreeMap<NodeId, usize> = BTreeMap::new();
            let $ewma: BTreeMap<NodeId, u64> = BTreeMap::new();
            let $view = LoadView::new(&$loads, &$ewma);
        };
    }

    #[test]
    fn round_robin_is_fair_over_a_full_rotation() {
        let pool = servers(4, 5);
        let mut b = Balancer::new(BalancerPolicy::RoundRobin, &pool, 1);
        idle_view!(loads, ewma, view);
        // Three full rotations: every server picked exactly three
        // times, in pool order, regardless of keys.
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for k in 0..15u64 {
            let s = b.pick(splitmix64(k), &view);
            assert_eq!(s, pool[(k % 5) as usize], "rotation order at pick {k}");
            *counts.entry(s).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 3), "fair rotation: {counts:?}");
    }

    #[test]
    fn least_loaded_tie_breaks_to_lowest_node_id_deterministically() {
        let pool = servers(10, 4);
        let mut b = Balancer::new(BalancerPolicy::LeastLoaded, &pool, 2);
        let mut loads = BTreeMap::new();
        let ewma = BTreeMap::new();
        // All idle: the lowest node id wins, every time.
        for k in 0..8u64 {
            let view = LoadView::new(&loads, &ewma);
            assert_eq!(b.pick(k, &view).index(), 10, "all-idle tie at pick {k}");
        }
        // Tie between 11 and 13 at load 1 (10 and 12 busier): 11 wins.
        loads.insert(n(10), 3);
        loads.insert(n(11), 1);
        loads.insert(n(12), 2);
        loads.insert(n(13), 1);
        for k in 0..8u64 {
            let view = LoadView::new(&loads, &ewma);
            assert_eq!(b.pick(k, &view).index(), 11, "two-way tie at pick {k}");
        }
        // Strictly least-loaded server wins when unique.
        loads.insert(n(13), 0);
        let view = LoadView::new(&loads, &ewma);
        assert_eq!(b.pick(99, &view).index(), 13);
    }

    #[test]
    fn latency_ewma_prefers_measured_fast_servers_and_tie_breaks_low() {
        let pool = servers(20, 4);
        let mut b = Balancer::new(BalancerPolicy::LatencyEwma, &pool, 3);
        let loads = BTreeMap::new();
        let mut ewma = BTreeMap::new();
        // No samples anywhere: all tie at "unsampled" and the lowest
        // node id wins, deterministically.
        for k in 0..6u64 {
            let view = LoadView::new(&loads, &ewma);
            assert_eq!(b.pick(k, &view).index(), 20, "unsampled tie at pick {k}");
        }
        // Measured EWMAs rule: 22 is the fastest sampled server, but an
        // unsampled server (21) still counts as fastest of all — cold
        // servers get probed with real traffic.
        ewma.insert(n(20), 900);
        ewma.insert(n(22), 300);
        ewma.insert(n(23), 700);
        let view = LoadView::new(&loads, &ewma);
        assert_eq!(b.pick(0, &view).index(), 21, "cold server probes first");
        ewma.insert(n(21), 500);
        for k in 0..6u64 {
            let view = LoadView::new(&loads, &ewma);
            assert_eq!(b.pick(k, &view).index(), 22, "fastest EWMA at pick {k}");
        }
        // Exact EWMA tie: lowest node id, every time.
        ewma.insert(n(21), 300);
        for k in 0..6u64 {
            let view = LoadView::new(&loads, &ewma);
            assert_eq!(b.pick(k, &view).index(), 21, "EWMA tie at pick {k}");
        }
        // Load is irrelevant to this policy.
        let mut heavy = BTreeMap::new();
        heavy.insert(n(21), 100usize);
        let view = LoadView::new(&heavy, &ewma);
        assert_eq!(b.pick(7, &view).index(), 21);
    }

    #[test]
    fn random_policy_reaches_every_server() {
        let pool = servers(0, 6);
        let mut b = Balancer::new(BalancerPolicy::Random, &pool, 42);
        idle_view!(loads, ewma, view);
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for k in 0..600u64 {
            *counts.entry(b.pick(k, &view)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6, "every server reached");
        // Seeded determinism: a fresh balancer with the same seed
        // repeats the sequence exactly.
        let mut b2 = Balancer::new(BalancerPolicy::Random, &pool, 42);
        let mut b3 = Balancer::new(BalancerPolicy::Random, &pool, 42);
        for k in 0..50u64 {
            assert_eq!(b2.pick(k, &view), b3.pick(k, &view));
        }
    }

    #[test]
    fn consistent_hash_add_moves_at_most_one_nth_of_keys() {
        const KEYS: u64 = 4000;
        let pool = servers(0, 8);
        idle_view!(loads, ewma, view);
        let mut before = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 128 }, &pool, 3);
        let owners: Vec<NodeId> = (0..KEYS).map(|k| before.pick(k, &view)).collect();

        // Recruit a ninth server: only arcs the new points capture may
        // move, and every moved key must land on the recruit.
        let mut after = before.clone();
        after.add_server(n(100));
        let mut moved = 0u64;
        for k in 0..KEYS {
            let now = after.pick(k, &view);
            if now != owners[k as usize] {
                moved += 1;
                assert_eq!(now.index(), 100, "key {k} moved to a non-recruit");
            }
        }
        assert!(moved > 0, "a recruit must take over some arcs");
        assert!(
            moved <= KEYS / pool.len() as u64,
            "add moved {moved} of {KEYS} keys over {} servers",
            pool.len()
        );

        // Retire one original server: exactly its keys move.
        let mut retired = before.clone();
        retired.remove_server(pool[3]);
        let mut moved = 0u64;
        for k in 0..KEYS {
            let now = retired.pick(k, &view);
            if now != owners[k as usize] {
                moved += 1;
                assert_eq!(
                    owners[k as usize],
                    pool[3],
                    "key {k} moved without its server retiring"
                );
            }
        }
        assert!(moved > 0);
        assert!(
            moved <= KEYS * 2 / pool.len() as u64,
            "remove moved {moved} of {KEYS} keys over {} servers",
            pool.len()
        );
    }

    #[test]
    fn consistent_hash_is_stable_per_key() {
        let pool = servers(0, 5);
        idle_view!(loads, ewma, view);
        let mut b = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 64 }, &pool, 9);
        for k in (0..200u64).step_by(7) {
            let first = b.pick(k, &view);
            for _ in 0..3 {
                assert_eq!(b.pick(k, &view), first, "key {k} must be sticky");
            }
        }
    }

    #[test]
    fn eject_and_reinstate_are_ownership_neutral() {
        const KEYS: u64 = 2000;
        let pool = servers(0, 6);
        idle_view!(loads, ewma, view);
        let mut b = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 64 }, &pool, 5);
        let owners: Vec<NodeId> = (0..KEYS).map(|k| b.pick(k, &view)).collect();

        // Eject: the victim's keys move, nothing else does, and no key
        // routes at the corpse.
        assert!(b.eject(pool[2]));
        assert!(!b.eject(pool[2]), "double eject is a no-op");
        assert!(b.is_ejected(pool[2]));
        assert!(b.is_member(pool[2]), "ejection is health, not membership");
        assert_eq!(b.live_count(), 5);
        for k in 0..KEYS {
            let now = b.pick(k, &view);
            assert_ne!(now, pool[2], "key {k} routed at an ejected server");
            if owners[k as usize] != pool[2] {
                assert_eq!(now, owners[k as usize], "key {k} moved needlessly");
            }
        }
        // Reinstate: the exact pre-ejection ownership returns (ring
        // points are a pure function of server and vnode).
        assert!(b.reinstate(pool[2]));
        assert!(!b.reinstate(pool[2]), "double reinstate is a no-op");
        for k in 0..KEYS {
            assert_eq!(b.pick(k, &view), owners[k as usize], "key {k} after recovery");
        }

        // Scan policies skip ejected servers too.
        let mut ll = Balancer::new(BalancerPolicy::LeastLoaded, &pool, 6);
        ll.eject(pool[0]);
        assert_eq!(ll.pick(0, &view), pool[1], "least-loaded skips the ejected head");
        // pick_hedge avoids both the primary and the ejected.
        assert_eq!(ll.pick_hedge(pool[1], &view), Some(pool[2]));
        ll.eject(pool[2]);
        assert_eq!(ll.pick_hedge(pool[1], &view), Some(pool[3]));
    }

    #[test]
    fn all_ejected_pool_degrades_to_members_instead_of_panicking() {
        let pool = servers(0, 3);
        idle_view!(loads, ewma, view);
        for policy in [
            BalancerPolicy::RoundRobin,
            BalancerPolicy::LeastLoaded,
            BalancerPolicy::LatencyEwma,
            BalancerPolicy::ConsistentHash { vnodes: 16 },
        ] {
            let mut b = Balancer::new(policy, &pool, 8);
            for &s in &pool {
                b.eject(s);
            }
            assert_eq!(b.live_count(), 0);
            // Degraded routing still lands on a member.
            let s = b.pick(17, &view);
            assert!(pool.contains(&s), "{policy:?} fell off the member set");
            // No healthy hedge target exists.
            assert_eq!(b.pick_hedge(s, &view), None, "{policy:?}");
        }
    }

    #[test]
    fn removing_an_ejected_migration_target_is_safe() {
        // Regression: the failure detector ejects a server, then a
        // migration retires it. The remove must purge the ejection
        // bookkeeping so (a) routing never panics, (b) nothing routes
        // to it, and (c) a later recruit of the same node starts
        // fresh with exactly its vnodes ring points.
        let pool = servers(0, 4);
        idle_view!(loads, ewma, view);
        let mut b = Balancer::new(BalancerPolicy::ConsistentHash { vnodes: 32 }, &pool, 4);
        assert!(b.eject(pool[1]));
        b.remove_server(pool[1]);
        assert!(!b.is_member(pool[1]));
        assert!(!b.is_ejected(pool[1]), "remove purges ejection state");
        assert_eq!(b.live_count(), 3);
        for k in 0..500u64 {
            assert_ne!(b.pick(k, &view), pool[1], "key {k} routed at a removed server");
        }
        // Re-recruit the same node: it is healthy, owns arcs again, and
        // carries exactly one point set (no double insertion).
        b.add_server(pool[1]);
        assert!(b.is_member(pool[1]) && !b.is_ejected(pool[1]));
        assert_eq!(b.ring.iter().filter(|&&(_, s)| s == pool[1]).count(), 32);
        assert!((0..500u64).any(|k| b.pick(k, &view) == pool[1]), "recruit owns arcs");
        // And recruiting an *ejected* member is a reinstate, not a
        // duplicate membership.
        assert!(b.eject(pool[2]));
        b.add_server(pool[2]);
        assert!(!b.is_ejected(pool[2]), "add_server reinstates an ejected member");
        assert_eq!(b.servers().iter().filter(|&&s| s == pool[2]).count(), 1);
        assert_eq!(b.ring.iter().filter(|&&(_, s)| s == pool[2]).count(), 32);
    }

    #[test]
    fn splitmix_is_a_bijection_mixer() {
        // Spot-check: distinct inputs stay distinct, zero doesn't fix.
        assert_ne!(splitmix64(0), 0);
        let mut seen = std::collections::HashSet::new();
        for k in 0..1000u64 {
            assert!(seen.insert(splitmix64(k)), "collision at {k}");
        }
    }

    #[test]
    fn small_service_run_conserves_and_completes() {
        let mut m = serving_machine(64, 2, 1, 11);
        let spec = ServiceSpec {
            gateways: vec![n(0), n(1)],
            servers: servers(8, 4),
            policy: BalancerPolicy::RoundRobin,
            window: AdmissionWindow::TierGlobal(64),
            classes: vec![
                QosClass::interactive(96, 30, 600_000),
                QosClass::batch(160, 20),
            ],
            seed: 5,
            ..ServiceSpec::default()
        };
        let out = run_service(&mut m, &spec);
        assert_eq!(out.in_flight_at_end, 0, "drained");
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            assert_eq!(c.shed, 0, "light load must not shed ({})", c.name);
            assert_eq!(c.failed, 0, "light load must not fail ({})", c.name);
            assert_eq!(c.completion.count() as usize, c.admitted);
            assert!(c.bill.total() > 0, "class {} billed nothing", c.name);
            assert_eq!(c.hedges, 0, "hedging disarmed");
        }
        assert_eq!(out.probes, 0, "detector disarmed");
        assert_eq!(out.dup_suppressed, 0);
        assert!(out.goodput_per_kcycle() > 0.0);
    }

    #[test]
    fn clean_run_with_full_failure_domain_stays_conserved() {
        // Detector + hedging + breaker armed on a healthy pool: probes
        // cycle and bill FaultTol, nothing is ejected, the breaker
        // never trips, and conservation holds with hedge legs deduped.
        let mut m = serving_machine(64, 2, 1, 17);
        let spec = ServiceSpec {
            gateways: vec![n(0), n(1)],
            servers: servers(8, 4),
            policy: BalancerPolicy::ConsistentHash { vnodes: 32 },
            window: AdmissionWindow::TierGlobal(64),
            classes: vec![
                QosClass::interactive(96, 40, 600_000),
                QosClass::batch(160, 20),
            ],
            detector: Some(DetectorSpec::default()),
            hedge: Some(HedgeSpec { quantile: 0.9, min_samples: 8, bootstrap: 4096 }),
            breaker: Some(BreakerSpec::default()),
            seed: 21,
            ..ServiceSpec::default()
        };
        let out = run_service(&mut m, &spec);
        assert_eq!(out.in_flight_at_end, 0, "drained");
        assert!(out.probes > 0, "detector probed");
        assert_eq!(out.ejections, 0, "healthy pool, no ejections");
        assert_eq!(out.probe_failures, 0, "healthy pool, no misses");
        assert!(out.detector_bill.total() > 0, "detection is not free");
        let total_runs: u64 = out.handler_runs.values().sum();
        let admitted: usize = out.classes.iter().map(|c| c.admitted).sum();
        assert_eq!(total_runs, admitted as u64, "exactly-once with hedging");
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            assert_eq!(c.breaker_shed, 0, "healthy pool, breaker closed");
            assert_eq!(c.completion.count() as usize, c.admitted);
        }
    }

    #[test]
    fn migration_mid_run_reshapes_the_pool_and_still_conserves() {
        let mut m = serving_machine(64, 2, 1, 13);
        let spec = ServiceSpec {
            gateways: vec![n(0)],
            servers: servers(8, 4),
            policy: BalancerPolicy::ConsistentHash { vnodes: 64 },
            window: AdmissionWindow::TierGlobal(64),
            classes: vec![QosClass::batch(128, 40)],
            migration: Some(Migration { at: 0.5, retire: 2, recruit: vec![n(20), n(21)] }),
            seed: 7,
            ..ServiceSpec::default()
        };
        let out = run_service(&mut m, &spec);
        let c = &out.classes[0];
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.admitted, c.completed + c.failed);
        assert_eq!(c.failed, 0, "retired servers must still answer in-flight work");
        assert_eq!(out.in_flight_at_end, 0);
    }
}
