//! Open-loop offered-load driver: controlled-rate injection of
//! pattern-derived traffic through the protocol engine.
//!
//! Where [`crate::concurrent`] submits everything up front and lets the
//! engine race, this module paces submissions on the substrate clock:
//! one finite transfer every `interval` cycles, regardless of whether
//! earlier transfers have finished. That is the *open-loop* discipline
//! of the congestion-study literature — the offered rate is a property
//! of the driver, not of the system under test — and it is what makes
//! saturation observable: past the knee, delivered throughput flattens
//! while completion times (which include queueing delay) diverge.
//!
//! Terminology, as used by the congestion report and `DESIGN.md §8`:
//!
//! * **Offered load** — payload words the driver *asks* the system to
//!   move per cycle: `words / interval`.
//! * **Delivered throughput** — payload words actually moved per
//!   elapsed cycle, measured from completed operations over the whole
//!   run (injection phase plus drain).
//! * **Completion time** — cycles from an operation's `Submitted`
//!   engine event to its `Completed` event, queueing included (see
//!   [`Engine::completion_times`]).

use timego_am::{CmamConfig, Engine, Machine};
use timego_netsim::LatencyStats;

use crate::patterns::Pattern;
use crate::payloads;
use crate::scenarios;

/// One open-loop load point: what to offer, how fast, for how long.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Who talks to whom; operations cycle through the pattern's pairs
    /// round-robin, so patterns with few pairs (hotspot) revisit pairs
    /// sooner than dense ones (all-to-all).
    pub pattern: Pattern,
    /// Node count the pattern is materialized over.
    pub nodes: usize,
    /// Payload words per operation.
    pub words: usize,
    /// Cycles between successive submissions (the open-loop injection
    /// interval; smaller is a higher offered load). Must be ≥ 1.
    pub interval: u64,
    /// Total operations to offer.
    pub ops: usize,
    /// Seed for the deterministic per-operation payloads.
    pub seed: u64,
}

impl LoadSpec {
    /// The offered load in payload words per cycle: `words / interval`.
    #[must_use]
    pub fn offered_words_per_cycle(&self) -> f64 {
        self.words as f64 / self.interval as f64
    }
}

/// What one open-loop run delivered, and at what latency.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Operations submitted (the full `spec.ops`).
    pub offered: usize,
    /// Operations that completed successfully.
    pub completed: usize,
    /// Operations that failed (timeouts under extreme congestion).
    pub failed: usize,
    /// Cycles from the first submission to the last completion
    /// (injection phase plus drain).
    pub elapsed_cycles: u64,
    /// Payload words moved by completed operations.
    pub words_moved: u64,
    /// Injection attempts the substrate refused with backpressure
    /// during the run.
    pub backpressure: u64,
    /// Highest receive-queue depth any node reached during the run.
    pub peak_rx_depth: usize,
    /// Per-packet injection→delivery latency histogram, from the
    /// substrate's own [`LatencyStats`].
    pub packet_latency: LatencyStats,
    /// Per-operation completion-time histogram (submission→completion,
    /// queueing included), from the cycle-stamped engine trace.
    pub completion: LatencyStats,
}

impl LoadOutcome {
    /// Delivered throughput in payload words per elapsed cycle.
    #[must_use]
    pub fn delivered_words_per_cycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.words_moved as f64 / self.elapsed_cycles as f64
        }
    }
}

fn clock(m: &Machine) -> u64 {
    m.network().borrow().now().cycles()
}

/// Drive one open-loop load point: submit one finite transfer every
/// `spec.interval` cycles (pumping the engine in between so earlier
/// operations keep moving), then drain until everything has completed
/// or failed.
///
/// The machine should be freshly constructed for the load point — the
/// substrate-side counters (backpressure, latency histogram, occupancy
/// high-water marks) are read as whole-run totals.
///
/// # Panics
///
/// Panics if the pattern yields no pairs for `spec.nodes`, if
/// `spec.interval` is zero, or if `spec.words` is zero.
pub fn run_offered_load(m: &mut Machine, spec: &LoadSpec) -> LoadOutcome {
    let pairs = spec.pattern.pairs(spec.nodes);
    assert!(!pairs.is_empty(), "pattern yields no pairs over {} nodes", spec.nodes);
    assert!(spec.interval >= 1, "open-loop interval must be at least one cycle");
    assert!(spec.words >= 1, "operations must carry payload");

    let mut eng = Engine::new();
    let start = clock(m);
    let mut ids = Vec::with_capacity(spec.ops);
    for i in 0..spec.ops {
        let due = start + i as u64 * spec.interval;
        while clock(m) < due {
            eng.pump(m);
        }
        let (src, dst) = pairs[i % pairs.len()];
        let data = payloads::mixed(spec.words, spec.seed.wrapping_add(i as u64));
        ids.push(eng.submit_xfer(m, src, dst, &data).expect("non-empty payload"));
    }
    while eng.unfinished() > 0 {
        eng.pump(m);
    }
    let elapsed_cycles = clock(m) - start;

    let mut completed = 0usize;
    let mut failed = 0usize;
    for id in ids {
        match eng.take_outcome(id).expect("engine drained") {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }

    let net = m.network().borrow();
    let stats = net.stats();
    LoadOutcome {
        offered: spec.ops,
        completed,
        failed,
        elapsed_cycles,
        words_moved: completed as u64 * spec.words as u64,
        backpressure: stats.backpressure,
        peak_rx_depth: stats
            .occupancy_table()
            .iter()
            .map(|o| o.peak_rx_depth)
            .max()
            .unwrap_or(0),
        packet_latency: stats.latency,
        completion: eng.completion_stats(),
    }
}

/// A ready-made machine for congestion studies on the CR-like
/// substrate: `nodes` endpoints on the in-order, reliable,
/// flow-controlled network of §4, default CMAM config — the
/// high-level-network counterpart of
/// [`crate::concurrent::switched_machine`].
#[must_use]
pub fn cr_machine(nodes: usize, seed: u64) -> Machine {
    Machine::new(
        timego_ni::share(scenarios::cr(nodes, seed)),
        nodes,
        CmamConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::switched_machine;

    #[test]
    fn light_load_completes_everything() {
        let mut m = switched_machine(8, 5);
        let out = run_offered_load(
            &mut m,
            &LoadSpec {
                pattern: Pattern::Ring,
                nodes: 8,
                words: 8,
                interval: 512,
                ops: 10,
                seed: 1,
            },
        );
        assert_eq!(out.completed, 10, "{} failed", out.failed);
        assert_eq!(out.failed, 0);
        assert_eq!(out.words_moved, 80);
        assert!(out.elapsed_cycles >= 9 * 512, "open loop paces submissions");
        assert_eq!(out.completion.count(), 10);
        assert!(out.packet_latency.count() > 0, "substrate recorded packet latencies");
    }

    #[test]
    fn offered_load_is_words_over_interval() {
        let spec = LoadSpec {
            pattern: Pattern::Hotspot,
            nodes: 4,
            words: 16,
            interval: 8,
            ops: 1,
            seed: 0,
        };
        assert!((spec.offered_words_per_cycle() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_load_finishes_sooner_in_wall_cycles() {
        // Same work at twice the injection rate must take fewer elapsed
        // cycles (the driver, not the substrate, was the bottleneck).
        let run = |interval| {
            let mut m = switched_machine(8, 7);
            run_offered_load(
                &mut m,
                &LoadSpec {
                    pattern: Pattern::Ring,
                    nodes: 8,
                    words: 8,
                    interval,
                    ops: 12,
                    seed: 3,
                },
            )
        };
        let slow = run(1024);
        let fast = run(256);
        assert_eq!(slow.completed, 12);
        assert_eq!(fast.completed, 12);
        assert!(fast.elapsed_cycles < slow.elapsed_cycles);
    }

    #[test]
    fn cr_machine_carries_offered_load() {
        let mut m = cr_machine(8, 3);
        let out = run_offered_load(
            &mut m,
            &LoadSpec {
                pattern: Pattern::Hotspot,
                nodes: 8,
                words: 8,
                interval: 64,
                ops: 14,
                seed: 2,
            },
        );
        assert_eq!(out.completed, 14, "{} failed", out.failed);
    }
}
