//! A request/reply (fetch) workload — the round-trip pattern behind
//! footnote 6 of the paper: on one finite-buffer network a
//! flood-then-serve fetch pattern can deadlock (replies trapped behind
//! stuck requests); on the CM-5's *two* networks it is safe.

use timego_netsim::{Network, NodeId, Packet};

/// Tag used for request packets.
pub const REQUEST_TAG: u8 = 1;
/// Tag threshold for reply packets (route these to the reply network of
/// a [`DualNetwork`](timego_netsim::DualNetwork)).
pub const REPLY_TAG: u8 = 128;

/// Result of a fetch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchOutcome {
    /// Requests fully served (complete replies received).
    pub completed: u32,
    /// Whether the run finished; `false` means the network wedged.
    pub finished: bool,
}

/// Run a two-node fetch workload: both nodes flood `rounds` requests at
/// each other until the network saturates, then serve. Serving a
/// request means injecting a `reply_packets`-packet reply before
/// extracting anything else — the handler discipline that deadlocks a
/// single finite-buffer network once replies exceed one packet, and
/// that the split request/reply networks of
/// [`DualNetwork`](timego_netsim::DualNetwork) make safe.
pub fn run_fetch(net: &mut dyn Network, rounds: u32, reply_packets: u32) -> FetchOutcome {
    assert!(net.num_nodes() >= 2, "fetch needs two nodes");
    assert!(reply_packets >= 1, "a reply is at least one packet");
    let mut requests_sent = [0u32; 2];

    // Flood until saturation (or everything accepted).
    let mut stuck = 0;
    while stuck < 50 && (requests_sent[0] < rounds || requests_sent[1] < rounds) {
        let mut progressed = false;
        for (me, sent) in requests_sent.iter_mut().enumerate() {
            if *sent < rounds
                && net
                    .try_inject(Packet::new(
                        NodeId::new(me),
                        NodeId::new(1 - me),
                        REQUEST_TAG,
                        *sent,
                        vec![0; 4],
                    ))
                    .is_ok()
            {
                *sent += 1;
                progressed = true;
            }
        }
        net.advance(1);
        stuck = if progressed { 0 } else { stuck + 1 };
    }

    // Serve.
    let total: u32 = requests_sent.iter().sum();
    let mut reply_pkts_owed = [0u32; 2];
    let mut reply_pkts_got = 0u32;
    for _ in 0..20_000 {
        for me in 0..2usize {
            let peer = NodeId::new(1 - me);
            if reply_pkts_owed[me] > 0 {
                if net
                    .try_inject(Packet::new(NodeId::new(me), peer, REPLY_TAG, 0, vec![0; 4]))
                    .is_ok()
                {
                    reply_pkts_owed[me] -= 1;
                }
                continue; // still inside the handler either way
            }
            if let Some(p) = net.try_receive(NodeId::new(me)) {
                if p.tag() >= REPLY_TAG {
                    reply_pkts_got += 1;
                } else {
                    reply_pkts_owed[me] += reply_packets;
                }
            }
            if requests_sent[me] < rounds
                && net
                    .try_inject(Packet::new(
                        NodeId::new(me),
                        peer,
                        REQUEST_TAG,
                        requests_sent[me],
                        vec![0; 4],
                    ))
                    .is_ok()
            {
                requests_sent[me] += 1;
            }
        }
        net.advance(1);
        let completed = reply_pkts_got / reply_packets;
        if completed >= total && requests_sent.iter().sum::<u32>() == completed {
            return FetchOutcome { completed, finished: true };
        }
    }
    FetchOutcome {
        completed: reply_pkts_got / reply_packets,
        finished: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_netsim::{DualNetwork, Mesh2D, SwitchedConfig, SwitchedNetwork};

    fn tight() -> SwitchedNetwork<Mesh2D> {
        SwitchedNetwork::new(
            Mesh2D::new(2, 1),
            SwitchedConfig {
                link_queue_capacity: 4,
                rx_queue_capacity: 4,
                ..SwitchedConfig::default()
            },
        )
    }

    #[test]
    fn single_network_wedges_with_multi_packet_replies() {
        let mut net = tight();
        let out = run_fetch(&mut net, 64, 2);
        assert!(!out.finished, "{out:?}");
    }

    #[test]
    fn dual_network_completes() {
        let mut net = DualNetwork::new(tight(), tight(), REPLY_TAG);
        let out = run_fetch(&mut net, 64, 2);
        assert!(out.finished, "{out:?}");
        assert_eq!(out.completed, 128);
    }

    #[test]
    fn single_packet_replies_survive_even_one_network() {
        // With one-packet replies the two-node pattern self-drains;
        // the hazard appears as replies grow.
        let mut net = tight();
        let out = run_fetch(&mut net, 32, 1);
        assert!(out.finished, "{out:?}");
    }
}
