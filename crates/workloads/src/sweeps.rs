//! Parameter sweeps behind the paper's tables and figures.

/// The two message sizes every Table 2/3 block reports.
pub const TABLE_MESSAGE_SIZES: [u64; 2] = [16, 1024];

/// The packet-size axis of Figure 8 (right): 4–128 words.
pub const FIGURE8_PACKET_SIZES: [u64; 6] = [4, 8, 16, 32, 64, 128];

/// The message size Figure 8 (right) holds fixed.
pub const FIGURE8_MESSAGE_WORDS: u64 = 1024;

/// Acknowledgement periods for the group-acknowledgement ablation
/// (§3.2's closing remark); `1` is the paper's per-packet default.
pub const GROUP_ACK_PERIODS: [u64; 6] = [1, 2, 4, 8, 16, 64];

/// Concurrent-transfer counts for the engine concurrency study: how
/// aggregate throughput and per-feature cost scale with the number of
/// transfers interleaved through one engine run.
pub const CONCURRENCY_KS: [usize; 5] = [1, 2, 4, 8, 16];

/// A geometric message-size sweep from `lo` to `hi` (both inclusive if
/// on the ×2 grid).
pub fn message_sizes(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
    let mut v = Vec::new();
    let mut w = lo;
    while w <= hi {
        v.push(w);
        if w > hi / 2 {
            break;
        }
        w *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_sweep() {
        assert_eq!(message_sizes(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(message_sizes(5, 5), vec![5]);
    }

    #[test]
    fn figure8_axis_is_the_papers() {
        assert_eq!(FIGURE8_PACKET_SIZES[0], 4);
        assert_eq!(*FIGURE8_PACKET_SIZES.last().unwrap(), 128);
        assert_eq!(FIGURE8_MESSAGE_WORDS, 1024);
    }
}
