//! Parameter sweeps behind the paper's tables and figures.

/// The two message sizes every Table 2/3 block reports.
pub const TABLE_MESSAGE_SIZES: [u64; 2] = [16, 1024];

/// The packet-size axis of Figure 8 (right): 4–128 words.
pub const FIGURE8_PACKET_SIZES: [u64; 6] = [4, 8, 16, 32, 64, 128];

/// The message size Figure 8 (right) holds fixed.
pub const FIGURE8_MESSAGE_WORDS: u64 = 1024;

/// Acknowledgement periods for the group-acknowledgement ablation
/// (§3.2's closing remark); `1` is the paper's per-packet default.
pub const GROUP_ACK_PERIODS: [u64; 6] = [1, 2, 4, 8, 16, 64];

/// Concurrent-transfer counts for the engine concurrency study: how
/// aggregate throughput and per-feature cost scale with the number of
/// transfers interleaved through one engine run.
pub const CONCURRENCY_KS: [usize; 5] = [1, 2, 4, 8, 16];

/// Injection intervals (cycles between submissions) swept by the
/// congestion study, highest load last. The grid straddles the
/// CM-5-like substrate's saturation knee: at 16-word operations the
/// offered load runs from 1/16 word/cycle (far below saturation) to 16
/// words/cycle (an order of magnitude past it).
pub const CONGESTION_INTERVALS: [u64; 7] = [256, 64, 16, 8, 4, 2, 1];

/// The reduced interval grid for CI smoke runs of the congestion
/// sweep; still straddles the CM-5-like knee (between intervals 8 and
/// 4) so the saturation signal stays visible.
pub const CONGESTION_QUICK_INTERVALS: [u64; 3] = [64, 8, 4];

/// Node count the congestion study runs every pattern over.
pub const CONGESTION_NODES: usize = 16;

/// Payload words per operation in the congestion study.
pub const CONGESTION_WORDS: usize = 16;

/// Operations offered per load point in the congestion study.
pub const CONGESTION_OPS: usize = 48;

/// Node counts for the collectives scaling study (engine-native
/// dependency DAGs vs phase-serial rounds). Power-of-two so recursive
/// doubling applies at every point.
pub const COLLECTIVE_NODES: [usize; 3] = [16, 64, 256];

/// Reduced collectives grid for CI and debug builds.
pub const COLLECTIVE_NODES_QUICK: [usize; 2] = [16, 64];

/// Crash-window lengths (cycles) swept by the crash-recovery study;
/// `0` is the no-crash baseline. The window opens at cycle 50, well
/// inside a 256-word transfer, so every non-zero point kills at least
/// the first session outright.
pub const RECOVERY_CRASH_WINDOWS: [u64; 4] = [0, 1500, 3000, 6000];

/// Reduced crash-window grid for CI smoke runs; keeps the baseline and
/// one mid-transfer crash point.
pub const RECOVERY_CRASH_WINDOWS_QUICK: [u64; 2] = [0, 3000];

/// Seeds per crash-recovery cell on the full grid.
pub const RECOVERY_SEEDS: u64 = 6;

/// Seeds per crash-recovery cell on the CI-quick grid.
pub const RECOVERY_SEEDS_QUICK: u64 = 2;

/// Node count of the crash-recovery study's fat tree.
pub const RECOVERY_NODES: usize = 16;

/// Payload words per transfer in the crash-recovery study.
pub const RECOVERY_WORDS: usize = 256;

/// Protocol families crossed with every crash-window length in the
/// crash-recovery study: reliable transfer, stream, RPC, and the
/// binomial-tree broadcast collective.
pub const RECOVERY_FAMILIES: [&str; 4] = ["xfer", "stream", "rpc", "collective"];

/// A geometric message-size sweep from `lo` to `hi` (both inclusive if
/// on the ×2 grid).
pub fn message_sizes(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
    let mut v = Vec::new();
    let mut w = lo;
    while w <= hi {
        v.push(w);
        if w > hi / 2 {
            break;
        }
        w *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_sweep() {
        assert_eq!(message_sizes(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(message_sizes(5, 5), vec![5]);
    }

    #[test]
    fn figure8_axis_is_the_papers() {
        assert_eq!(FIGURE8_PACKET_SIZES[0], 4);
        assert_eq!(*FIGURE8_PACKET_SIZES.last().unwrap(), 128);
        assert_eq!(FIGURE8_MESSAGE_WORDS, 1024);
    }
}
