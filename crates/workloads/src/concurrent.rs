//! Concurrent many-to-many traffic driven through the protocol engine.
//!
//! Where [`crate::patterns`] describes *who talks to whom*, this module
//! turns a pattern into a set of planned operations and drives all of
//! them through **one** [`Engine`] run, so transfers between different
//! node pairs genuinely overlap on the substrate instead of executing
//! back to back. The outcome records enough to study aggregate
//! throughput and per-node load under contention.

use timego_am::{CmamConfig, Engine, Machine, OpOutcome, RetryPolicy, StreamConfig};
use timego_netsim::NodeId;

use crate::patterns::Pattern;
use crate::payloads;

/// Which protocol a planned operation exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// Finite-sequence transfer ([`Machine::xfer`] semantics).
    Xfer,
    /// Fault-tolerant finite-sequence transfer
    /// ([`Machine::xfer_reliable`] semantics).
    Reliable,
    /// Indefinite-sequence stream send ([`Machine::stream_send`]
    /// semantics); a fresh stream is opened per planned operation.
    Stream,
}

/// One operation of a concurrent traffic plan.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Protocol to run.
    pub kind: TrafficKind,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload words to move.
    pub data: Vec<u32>,
}

/// Plan one operation of `kind` per pair, with deterministic mixed
/// payloads of `words` words derived from `seed` (each pair gets a
/// distinct payload).
#[must_use]
pub fn plan(pairs: &[(NodeId, NodeId)], kind: TrafficKind, words: usize, seed: u64) -> Vec<PlannedOp> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, (src, dst))| PlannedOp {
            kind,
            src: *src,
            dst: *dst,
            data: payloads::mixed(words, seed.wrapping_add(i as u64)),
        })
        .collect()
}

/// A random-permutation plan over `nodes` nodes: every node sends to
/// its image under the permutation (self-pairs are omitted, as in
/// [`Pattern::RandomPermutation`]).
#[must_use]
pub fn permutation_plan(nodes: usize, kind: TrafficKind, words: usize, seed: u64) -> Vec<PlannedOp> {
    plan(&Pattern::RandomPermutation(seed).pairs(nodes), kind, words, seed)
}

/// Aggregate outcome of one concurrent engine run.
#[derive(Debug, Clone, Default)]
pub struct ConcurrentOutcome {
    /// Operations submitted.
    pub submitted: usize,
    /// Operations that completed with a verified, byte-exact payload.
    pub completed: usize,
    /// Network cycles consumed by the whole run.
    pub elapsed_cycles: u64,
    /// Total payload words moved by completed operations.
    pub words_moved: u64,
    /// Scheduler trace length (submission/start/progress/completion
    /// events) — a cheap proxy for how finely the run interleaved.
    pub trace_events: usize,
    /// Failures, as `(plan index, error text)`.
    pub failures: Vec<(usize, String)>,
}

impl ConcurrentOutcome {
    /// Payload words moved per network cycle (aggregate throughput).
    /// Zero elapsed cycles (instant substrates) reports 0.0.
    #[must_use]
    pub fn words_per_cycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.words_moved as f64 / self.elapsed_cycles as f64
        }
    }
}

/// Drive every planned operation through one engine run and verify the
/// data each completed operation claims to have moved.
///
/// Reliable transfers and retried streams use `policy`-derived bounds;
/// plain transfers run the paper-faithful protocol. Verification is
/// end-to-end: destination segments and stream receive buffers are
/// compared word-for-word against the planned payloads.
///
/// # Panics
///
/// Panics if a planned operation is empty or its endpoints are out of
/// range (the same conditions the blocking APIs reject).
pub fn run_concurrent(
    m: &mut Machine,
    ops: &[PlannedOp],
    policy: &RetryPolicy,
) -> ConcurrentOutcome {
    let mut eng = Engine::new();
    let mut submitted = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op.kind {
            TrafficKind::Xfer => {
                let id = eng.submit_xfer(m, op.src, op.dst, &op.data).expect("valid plan");
                submitted.push((i, id, None));
            }
            TrafficKind::Reliable => {
                let id = eng
                    .submit_xfer_reliable(m, op.src, op.dst, &op.data, policy)
                    .expect("valid plan");
                submitted.push((i, id, None));
            }
            TrafficKind::Stream => {
                let sid = m.open_stream(
                    op.src,
                    op.dst,
                    StreamConfig { rto_iterations: 256, ..StreamConfig::default() },
                );
                let id = eng.submit_stream_send(m, sid, &op.data).expect("valid plan");
                submitted.push((i, id, Some(sid)));
            }
        }
    }

    let start = m.network().borrow().now();
    eng.run(m);
    let elapsed_cycles = m.network().borrow().now() - start;

    let mut out = ConcurrentOutcome {
        submitted: ops.len(),
        elapsed_cycles,
        trace_events: eng.trace().len(),
        ..ConcurrentOutcome::default()
    };
    for (i, id, sid) in submitted {
        let op = &ops[i];
        match eng.take_outcome(id).expect("engine ran to completion") {
            Ok(outcome) => match verify(m, op, &outcome, sid) {
                Ok(()) => {
                    out.completed += 1;
                    out.words_moved += op.data.len() as u64;
                }
                Err(e) => out.failures.push((i, e)),
            },
            Err(e) => out.failures.push((i, e.to_string())),
        }
    }
    out
}

fn verify(
    m: &Machine,
    op: &PlannedOp,
    outcome: &OpOutcome,
    sid: Option<timego_am::StreamId>,
) -> Result<(), String> {
    let delivered = match (op.kind, outcome) {
        (TrafficKind::Xfer, OpOutcome::Xfer(x)) => m.read_buffer(op.dst, x.dst_buffer, op.data.len()),
        (TrafficKind::Reliable, OpOutcome::Reliable(r)) => {
            m.read_buffer(op.dst, r.xfer.dst_buffer, op.data.len())
        }
        (TrafficKind::Stream, OpOutcome::Stream(_)) => {
            m.stream_received(sid.expect("stream op kept its id")).to_vec()
        }
        (kind, other) => return Err(format!("{kind:?} produced mismatched outcome {other:?}")),
    };
    if delivered == op.data {
        Ok(())
    } else {
        Err(format!("{:?}->{:?} payload mismatch", op.src, op.dst))
    }
}

/// A ready-made machine for concurrency studies: `nodes` endpoints on
/// the adaptive (reordering) fat-tree substrate, default CMAM config.
#[must_use]
pub fn switched_machine(nodes: usize, seed: u64) -> Machine {
    Machine::new(
        timego_ni::share(crate::scenarios::cm5_adaptive(nodes, seed)),
        nodes,
        CmamConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_plan_covers_every_non_self_pair() {
        let plan = permutation_plan(8, TrafficKind::Xfer, 16, 3);
        assert!(!plan.is_empty());
        for op in &plan {
            assert_ne!(op.src, op.dst);
            assert_eq!(op.data.len(), 16);
        }
    }

    #[test]
    fn concurrent_permutation_completes_byte_exact() {
        let mut m = switched_machine(8, 11);
        let ops = permutation_plan(8, TrafficKind::Reliable, 32, 5);
        let out = run_concurrent(&mut m, &ops, &RetryPolicy::default());
        assert_eq!(out.completed, out.submitted, "failures: {:?}", out.failures);
        assert!(out.words_moved >= 32 * out.completed as u64 / 2);
        assert!(out.elapsed_cycles > 0);
    }

    #[test]
    fn mixed_kinds_share_one_engine_run() {
        let mut m = switched_machine(8, 7);
        let mut ops = plan(
            &[(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(3))],
            TrafficKind::Xfer,
            24,
            1,
        );
        ops.extend(plan(
            &[(NodeId::new(4), NodeId::new(5)), (NodeId::new(6), NodeId::new(7))],
            TrafficKind::Stream,
            24,
            2,
        ));
        let out = run_concurrent(&mut m, &ops, &RetryPolicy::default());
        assert_eq!(out.completed, 4, "failures: {:?}", out.failures);
    }
}
