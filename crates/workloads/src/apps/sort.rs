//! Odd-even transposition sort over block-distributed data.
//!
//! Each node holds one block, locally sorted. In alternating odd/even
//! phases, neighbor pairs exchange their blocks with bulk transfers
//! (the finite-sequence protocol) and keep the low/high halves. After
//! `nodes` phases the global array is sorted — a classic distributed
//! kernel whose communication volume dwarfs a message-passing layer's
//! fixed costs, and whose small per-phase messages expose them.

use timego_am::{Machine, ProtocolError};
use timego_netsim::NodeId;

/// Result of a distributed sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortOutcome {
    /// The sorted global array.
    pub data: Vec<u32>,
    /// Total messaging-layer instructions across all nodes.
    pub messaging_instructions: u64,
    /// Pairwise block exchanges performed.
    pub exchanges: u64,
}

/// Sort `data` across all of `m`'s nodes with odd-even transposition.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from the underlying transfers.
///
/// # Panics
///
/// Panics if the array does not split evenly across the nodes.
pub fn run(m: &mut Machine, data: &[u32]) -> Result<SortOutcome, ProtocolError> {
    let nodes = m.num_nodes();
    assert!(
        data.len().is_multiple_of(nodes) && !data.is_empty(),
        "array must split evenly across nodes"
    );
    let block = data.len() / nodes;

    // Distribute and locally sort (application work).
    let mut local: Vec<Vec<u32>> = data.chunks(block).map(<[u32]>::to_vec).collect();
    for b in &mut local {
        b.sort_unstable();
    }
    m.reset_costs();
    let mut exchanges = 0u64;

    for phase in 0..nodes {
        let first = phase % 2; // even phases pair (0,1),(2,3)…; odd (1,2),(3,4)…
        let mut lo = first;
        while lo + 1 < nodes {
            let hi = lo + 1;
            // Each partner ships its block to the other (two bulk
            // transfers — the real communication), then both keep their
            // half of the merge (local compute).
            let to_hi = m.xfer(NodeId::new(lo), NodeId::new(hi), &local[lo])?;
            let lo_block_at_hi = m.read_buffer(NodeId::new(hi), to_hi.dst_buffer, block);
            let to_lo = m.xfer(NodeId::new(hi), NodeId::new(lo), &local[hi])?;
            let hi_block_at_lo = m.read_buffer(NodeId::new(lo), to_lo.dst_buffer, block);
            exchanges += 2;

            let mut merged: Vec<u32> = Vec::with_capacity(2 * block);
            merged.extend_from_slice(&local[lo]);
            merged.extend_from_slice(&hi_block_at_lo);
            merged.sort_unstable();
            debug_assert_eq!(
                {
                    let mut also = local[hi].clone();
                    also.extend_from_slice(&lo_block_at_hi);
                    also.sort_unstable();
                    also
                },
                merged,
                "both partners must see the same merge"
            );
            local[lo] = merged[..block].to_vec();
            local[hi] = merged[block..].to_vec();
            lo += 2;
        }
    }

    let messaging_instructions = (0..nodes)
        .map(|i| m.cpu(NodeId::new(i)).snapshot().total())
        .sum();
    Ok(SortOutcome {
        data: local.concat(),
        messaging_instructions,
        exchanges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{payloads, scenarios};
    use timego_am::CmamConfig;
    use timego_ni::share;

    fn is_sorted(v: &[u32]) -> bool {
        v.windows(2).all(|w| w[0] <= w[1])
    }

    #[test]
    fn sorts_across_four_nodes() {
        let data = payloads::random(256, 11);
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut m = Machine::new(share(scenarios::table_in_order(4)), 4, CmamConfig::default());
        let out = run(&mut m, &data).unwrap();
        assert_eq!(out.data, expected);
        assert!(is_sorted(&out.data));
        assert!(out.exchanges > 0);
    }

    #[test]
    fn sorts_over_adaptive_fat_tree() {
        let data = payloads::random(128, 12);
        let mut expected = data.clone();
        expected.sort_unstable();
        let mut m = Machine::new(share(scenarios::cm5_adaptive(8, 4)), 8, CmamConfig::default());
        let out = run(&mut m, &data).unwrap();
        assert_eq!(out.data, expected);
    }

    #[test]
    fn single_node_sort_needs_no_messages() {
        let data = payloads::random(32, 13);
        let mut m = Machine::new(share(scenarios::table_in_order(1)), 1, CmamConfig::default());
        let out = run(&mut m, &data).unwrap();
        assert!(is_sorted(&out.data));
        assert_eq!(out.messaging_instructions, 0);
        assert_eq!(out.exchanges, 0);
    }

    #[test]
    fn already_sorted_input_stays_sorted() {
        let data: Vec<u32> = (0..64).collect();
        let mut m = Machine::new(share(scenarios::table_in_order(4)), 4, CmamConfig::default());
        let out = run(&mut m, &data).unwrap();
        assert_eq!(out.data, data);
    }
}
