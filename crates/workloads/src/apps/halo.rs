//! 1-D stencil smoothing with ghost-cell (halo) exchange.
//!
//! The global array is block-distributed over the machine's nodes. Each
//! iteration, every node sends its boundary cells to its neighbors
//! (finite-sequence bulk transfers — the `CMAM_xfer` pattern), then
//! applies a three-point smoothing kernel. The result is verified
//! against a sequential computation of the same recurrence.

use timego_am::{Machine, ProtocolError};
use timego_netsim::NodeId;

/// Integer three-point smoothing: `x'[i] = (x[i-1] + 2·x[i] + x[i+1]) / 4`
/// with clamped (replicated) boundaries. One sequential reference step.
fn smooth_step(data: &[u32]) -> Vec<u32> {
    let n = data.len();
    (0..n)
        .map(|i| {
            let l = data[if i == 0 { 0 } else { i - 1 }] as u64;
            let c = data[i] as u64;
            let r = data[if i + 1 == n { n - 1 } else { i + 1 }] as u64;
            ((l + 2 * c + r) / 4) as u32
        })
        .collect()
}

/// Result of a halo-exchange run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloOutcome {
    /// Final global array (gathered from all nodes).
    pub data: Vec<u32>,
    /// Total messaging-layer instructions across all nodes.
    pub messaging_instructions: u64,
    /// Halo transfers performed.
    pub transfers: u64,
}

/// Run `iterations` smoothing steps over `initial`, block-distributed
/// across all of `m`'s nodes, exchanging `halo_width`-word halos with
/// bulk transfers each iteration.
///
/// # Errors
///
/// Propagates any [`ProtocolError`] from the underlying transfers.
///
/// # Panics
///
/// Panics if the array does not split evenly into blocks of at least
/// `halo_width` words, or `halo_width` is zero or odd (transfers move
/// double words).
pub fn run(
    m: &mut Machine,
    initial: &[u32],
    iterations: usize,
    halo_width: usize,
) -> Result<HaloOutcome, ProtocolError> {
    let nodes = m.num_nodes();
    assert!(halo_width >= 2 && halo_width.is_multiple_of(2), "halo width must be even and ≥ 2");
    assert!(
        initial.len().is_multiple_of(nodes) && initial.len() / nodes >= halo_width,
        "array must split evenly into blocks of at least one halo"
    );
    let block = initial.len() / nodes;

    // Distribute (harness setup, cost-free).
    let mut local: Vec<Vec<u32>> = initial.chunks(block).map(<[u32]>::to_vec).collect();
    m.reset_costs();
    let mut transfers = 0u64;

    for _ in 0..iterations {
        // Exchange halos with bulk transfers. Left-to-right then
        // right-to-left; the received buffers are read back out of the
        // destination node's memory (harness verification reads are
        // cost-free; the protocol's own loads/stores are counted).
        let mut left_ghost: Vec<Option<Vec<u32>>> = vec![None; nodes];
        let mut right_ghost: Vec<Option<Vec<u32>>> = vec![None; nodes];
        for i in 0..nodes.saturating_sub(1) {
            let (src, dst) = (NodeId::new(i), NodeId::new(i + 1));
            let boundary = &local[i][block - halo_width..];
            let out = m.xfer(src, dst, boundary)?;
            left_ghost[i + 1] = Some(m.read_buffer(dst, out.dst_buffer, halo_width));
            transfers += 1;
        }
        for i in (1..nodes).rev() {
            let (src, dst) = (NodeId::new(i), NodeId::new(i - 1));
            let boundary = &local[i][..halo_width];
            let out = m.xfer(src, dst, boundary)?;
            right_ghost[i - 1] = Some(m.read_buffer(dst, out.dst_buffer, halo_width));
            transfers += 1;
        }

        // Local compute (application work, outside the measured layer).
        for i in 0..nodes {
            let mut extended = Vec::with_capacity(block + 2 * halo_width);
            if let Some(g) = &left_ghost[i] {
                extended.extend_from_slice(g);
            }
            extended.extend_from_slice(&local[i]);
            if let Some(g) = &right_ghost[i] {
                extended.extend_from_slice(g);
            }
            let smoothed = smooth_step(&extended);
            let start = if left_ghost[i].is_some() { halo_width } else { 0 };
            local[i] = smoothed[start..start + block].to_vec();
        }
    }

    let messaging_instructions = (0..nodes)
        .map(|i| m.cpu(NodeId::new(i)).snapshot().total())
        .sum();
    Ok(HaloOutcome {
        data: local.concat(),
        messaging_instructions,
        transfers,
    })
}

/// Sequential reference: the same blocked computation (block boundaries
/// see only `halo_width` neighbor cells per iteration, exactly like the
/// distributed version).
pub fn reference(initial: &[u32], iterations: usize, nodes: usize, halo_width: usize) -> Vec<u32> {
    let block = initial.len() / nodes;
    let mut local: Vec<Vec<u32>> = initial.chunks(block).map(<[u32]>::to_vec).collect();
    for _ in 0..iterations {
        let snapshot = local.clone();
        for i in 0..nodes {
            let mut extended = Vec::new();
            if i > 0 {
                extended.extend_from_slice(&snapshot[i - 1][block - halo_width..]);
            }
            extended.extend_from_slice(&snapshot[i]);
            if i + 1 < nodes {
                extended.extend_from_slice(&snapshot[i + 1][..halo_width]);
            }
            let smoothed = smooth_step(&extended);
            let start = if i > 0 { halo_width } else { 0 };
            local[i] = smoothed[start..start + block].to_vec();
        }
    }
    local.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{payloads, scenarios};
    use timego_am::CmamConfig;
    use timego_ni::share;

    #[test]
    fn distributed_matches_sequential_reference() {
        let nodes = 4;
        let data = payloads::mixed(256, 3).iter().map(|w| w % 1000).collect::<Vec<_>>();
        let mut m = Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default());
        let out = run(&mut m, &data, 5, 2).unwrap();
        assert_eq!(out.data, reference(&data, 5, nodes, 2));
        assert_eq!(out.transfers, 5 * 2 * 3); // 5 iters × both directions × 3 pairs
        assert!(out.messaging_instructions > 0);
    }

    #[test]
    fn works_over_a_real_switched_network() {
        let nodes = 4;
        let data: Vec<u32> = (0..128).map(|i| (i * 31) % 997).collect();
        let mut m = Machine::new(
            share(scenarios::cm5_deterministic(nodes, 5)),
            nodes,
            CmamConfig::default(),
        );
        let out = run(&mut m, &data, 3, 2).unwrap();
        assert_eq!(out.data, reference(&data, 3, nodes, 2));
    }

    #[test]
    fn messaging_cost_scales_with_iterations() {
        let data = payloads::mixed(64, 1).iter().map(|w| w % 100).collect::<Vec<_>>();
        let cost = |iters| {
            let mut m = Machine::new(share(scenarios::table_in_order(2)), 2, CmamConfig::default());
            run(&mut m, &data, iters, 2).unwrap().messaging_instructions
        };
        let one = cost(1);
        let four = cost(4);
        assert_eq!(four, 4 * one, "per-iteration messaging cost is constant");
    }

    #[test]
    #[should_panic(expected = "halo width")]
    fn odd_halo_width_panics() {
        let mut m = Machine::new(share(scenarios::table_in_order(2)), 2, CmamConfig::default());
        let _ = run(&mut m, &[0; 32], 1, 3);
    }
}
