//! Service-plane actors: the gateway tier and the server pool.
//!
//! [`crate::service`] owns the policies and the open-loop driver; this
//! module owns the two node-resident actors the driver wires together:
//!
//! * [`Gateway`] — admission control and routing *cost*. The routing
//!   decision itself lives in [`Balancer`](crate::service::Balancer);
//!   the gateway bills the instruction shape of each decision at the
//!   gateway node (admission checks and routing under
//!   `Feature::BufferMgmt` — it is queue management — and the shed
//!   path under `Feature::FaultTol`, the feature that owns
//!   load-shedding in the paper's taxonomy) and attributes every
//!   instruction to the request's QoS class, so gateway overhead shows
//!   up in the per-class "where does the time go" split alongside the
//!   engine's own attribution.
//! * [`ServerPool`] — registers the RPC handler on every pool node
//!   (spares included, so a mid-run migration finds its recruits
//!   ready). The handler performs the request's application work —
//!   `work` units of a fixed load/store/ALU shape billed at the callee
//!   — and counts its runs per server, which is what the exactly-once
//!   invariant measures across crash re-executions.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use timego_am::Machine;
use timego_cost::{CostVector, Feature, Fine};
use timego_netsim::NodeId;

use crate::service::BalancerPolicy;

/// Instruction shapes of the gateway actor, in the calibrated-constant
/// style of `timego_am`'s protocol costs.
pub mod cost {
    /// Admission check: load the in-flight counter and bound, compare,
    /// branch.
    pub const ADMIT_REG: u64 = 4;
    /// Admission check memory traffic (counter + bound).
    pub const ADMIT_MEM: u64 = 2;
    /// Shed path: reject branch, per-class shed counter update.
    pub const SHED_REG: u64 = 3;
    /// Shed path memory traffic (counter store).
    pub const SHED_MEM: u64 = 1;
    /// Random pick: RNG step and bound fold.
    pub const PICK_RANDOM_REG: u64 = 4;
    /// Round-robin pick: cursor increment and wrap.
    pub const PICK_RR_REG: u64 = 2;
    /// Round-robin cursor load/store.
    pub const PICK_RR_MEM: u64 = 2;
    /// Least-loaded scan, per live server: compare and conditional
    /// move.
    pub const PICK_SCAN_REG_PER_SERVER: u64 = 2;
    /// Least-loaded scan, per live server: load of the load-table
    /// entry.
    pub const PICK_SCAN_MEM_PER_SERVER: u64 = 1;
    /// Consistent hash: SplitMix64 mix of the client key.
    pub const PICK_HASH_REG: u64 = 9;
    /// Consistent hash: per ring-search probe (binary search step).
    pub const PICK_PROBE_REG: u64 = 2;
    /// Consistent hash: per ring-search probe memory load.
    pub const PICK_PROBE_MEM: u64 = 1;
    /// Dispatch bookkeeping on the admitted path: request-context
    /// store.
    pub const DISPATCH_MEM: u64 = 2;
}

/// The gateway's admission verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under the bound: route and submit it.
    Granted,
    /// Over the bound: shed at the gateway, never submitted.
    Shed,
}

/// The gateway-tier actor: a bounded admission window shared by every
/// gateway node, with per-class shed counts and per-class attribution
/// of every gateway instruction.
#[derive(Debug)]
pub struct Gateway {
    bound: usize,
    shed: Vec<usize>,
    bills: Vec<CostVector>,
}

impl Gateway {
    /// A gateway tier admitting at most `bound` in-flight requests,
    /// serving `nclasses` QoS classes.
    #[must_use]
    pub fn new(bound: usize, nclasses: usize) -> Self {
        Gateway {
            bound,
            shed: vec![0; nclasses],
            bills: vec![CostVector::new(); nclasses],
        }
    }

    /// Decide one arrival of class `ci` at gateway node `gw` with
    /// `in_flight` requests currently admitted. Bills the admission
    /// check (and the shed path, when taken) at the gateway node and
    /// attributes it to the class.
    pub fn admit(&mut self, m: &Machine, gw: NodeId, ci: usize, in_flight: usize) -> Admission {
        let cpu = m.cpu(gw);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::BufferMgmt, |c| {
            c.reg(Fine::RegOp, cost::ADMIT_REG);
            c.mem_load(cost::ADMIT_MEM);
        });
        let verdict = if in_flight >= self.bound {
            cpu.with_feature(Feature::FaultTol, |c| {
                c.reg(Fine::RegOp, cost::SHED_REG);
                c.mem_store(cost::SHED_MEM);
            });
            self.shed[ci] += 1;
            Admission::Shed
        } else {
            Admission::Granted
        };
        self.bills[ci] += cpu.snapshot() - before;
        verdict
    }

    /// Bill the routing decision for an admitted request of class `ci`:
    /// the per-policy instruction shape over `nservers` live servers,
    /// plus dispatch bookkeeping, at gateway node `gw`.
    pub fn bill_route(
        &mut self,
        m: &Machine,
        gw: NodeId,
        ci: usize,
        policy: BalancerPolicy,
        nservers: usize,
    ) {
        let cpu = m.cpu(gw);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::BufferMgmt, |c| {
            match policy {
                BalancerPolicy::Random => c.reg(Fine::RegOp, cost::PICK_RANDOM_REG),
                BalancerPolicy::RoundRobin => {
                    c.reg(Fine::RegOp, cost::PICK_RR_REG);
                    c.mem_load(cost::PICK_RR_MEM);
                }
                BalancerPolicy::LeastLoaded => {
                    c.reg(Fine::RegOp, cost::PICK_SCAN_REG_PER_SERVER * nservers as u64);
                    c.mem_load(cost::PICK_SCAN_MEM_PER_SERVER * nservers as u64);
                }
                BalancerPolicy::ConsistentHash { vnodes } => {
                    let ring = (vnodes * nservers).max(2);
                    let probes = u64::from((ring as u64).ilog2()) + 1;
                    c.reg(Fine::RegOp, cost::PICK_HASH_REG + cost::PICK_PROBE_REG * probes);
                    c.mem_load(cost::PICK_PROBE_MEM * probes);
                }
            }
            c.mem_store(cost::DISPATCH_MEM);
        });
        self.bills[ci] += cpu.snapshot() - before;
    }

    /// Arrivals of class `ci` shed so far.
    #[must_use]
    pub fn shed(&self, ci: usize) -> usize {
        self.shed[ci]
    }

    /// Gateway instructions attributed to class `ci` so far.
    #[must_use]
    pub fn bill(&self, ci: usize) -> CostVector {
        self.bills[ci].clone()
    }
}

/// Per-server handler-run counters, shared with the registered
/// closures.
pub type RunCounts = Rc<RefCell<BTreeMap<usize, u64>>>;

/// The server-pool actor: one registered RPC handler per pool node
/// (spares included), counting runs per server.
#[derive(Debug)]
pub struct ServerPool {
    runs: RunCounts,
}

impl ServerPool {
    /// Register the serving handler on every node of `servers` and
    /// `spares` under `tag`. The handler echoes the request identity
    /// (class, arrival index) back in the reply and performs
    /// `msg.words[2]` work units, each a fixed shape of 2 loads, 1
    /// store, and 3 register ops billed at the callee.
    pub fn install(m: &mut Machine, servers: &[NodeId], spares: &[NodeId], tag: u8) -> Self {
        let runs: RunCounts = Rc::new(RefCell::new(BTreeMap::new()));
        for &s in servers.iter().chain(spares) {
            let counter = Rc::clone(&runs);
            let idx = s.index();
            m.register_rpc_handler(s, tag, move |mem, msg| {
                *counter.borrow_mut().entry(idx).or_insert(0) += 1;
                let work = u64::from(msg.words[2]);
                let cpu = mem.cpu();
                cpu.mem_load(2 * work);
                cpu.mem_store(work);
                cpu.reg_op(3 * work);
                [msg.words[0], msg.words[1], msg.words[2].wrapping_mul(3), 0]
            });
        }
        ServerPool { runs }
    }

    /// Handler runs per server node index, for exactly-once accounting.
    #[must_use]
    pub fn runs(&self) -> BTreeMap<usize, u64> {
        self.runs.borrow().clone()
    }

    /// Total handler runs across the pool.
    #[must_use]
    pub fn total_runs(&self) -> u64 {
        self.runs.borrow().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::switched_machine;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn gateway_sheds_past_the_bound_and_bills_the_class() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(2, 2);
        assert_eq!(g.admit(&m, n(0), 0, 0), Admission::Granted);
        assert_eq!(g.admit(&m, n(0), 0, 1), Admission::Granted);
        assert_eq!(g.admit(&m, n(0), 1, 2), Admission::Shed);
        assert_eq!(g.shed(0), 0);
        assert_eq!(g.shed(1), 1);
        // Both classes paid the admission check; only the shed class
        // paid the FaultTol shed shape.
        assert!(g.bill(0).feature_total(Feature::BufferMgmt) > 0);
        assert_eq!(g.bill(0).feature_total(Feature::FaultTol), 0);
        assert!(g.bill(1).feature_total(Feature::FaultTol) > 0);
    }

    #[test]
    fn gateway_route_billing_scales_with_policy() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(8, 1);
        g.bill_route(&m, n(0), 0, BalancerPolicy::RoundRobin, 4);
        let rr = g.bill(0).total();
        let mut g2 = Gateway::new(8, 1);
        g2.bill_route(&m, n(0), 0, BalancerPolicy::LeastLoaded, 64);
        let scan = g2.bill(0).total();
        assert!(
            scan > rr,
            "a 64-server least-loaded scan ({scan}) must out-cost a rotation ({rr})"
        );
    }

    #[test]
    fn server_pool_counts_handler_runs() {
        let mut m = switched_machine(4, 2);
        let pool = ServerPool::install(&mut m, &[n(1), n(2)], &[], 40);
        let reply = m.rpc_call(n(0), n(1), 40, [7, 9, 2, 0]).unwrap();
        assert_eq!(reply, [7, 9, 6, 0]);
        assert_eq!(pool.total_runs(), 1);
        assert_eq!(pool.runs().get(&1), Some(&1));
    }
}
