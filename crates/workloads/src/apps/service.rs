//! Service-plane actors: the gateway tier and the server pool.
//!
//! [`crate::service`] owns the policies and the open-loop driver; this
//! module owns the two node-resident actors the driver wires together:
//!
//! * [`Gateway`] — admission control and routing *cost*. The routing
//!   decision itself lives in [`Balancer`](crate::service::Balancer);
//!   the gateway bills the instruction shape of each decision at the
//!   gateway node (admission checks and routing under
//!   `Feature::BufferMgmt` — it is queue management — and the shed
//!   path under `Feature::FaultTol`, the feature that owns
//!   load-shedding in the paper's taxonomy) and attributes every
//!   instruction to the request's QoS class, so gateway overhead shows
//!   up in the per-class "where does the time go" split alongside the
//!   engine's own attribution. The gateway *owns* the in-flight
//!   ledger: the admission window is either tier-global (one bound
//!   shared by every gateway node) or per-gateway (each node bounds
//!   its own slice), and a brownout [`BreakerSpec`] sheds
//!   brownout-sheddable classes outright when the healthy-server
//!   fraction the failure detector reports drops below its threshold.
//! * [`ServerPool`] — registers the RPC handler on every pool node
//!   (spares included, so a mid-run migration finds its recruits
//!   ready). The handler performs the request's application work —
//!   `work` units of a fixed load/store/ALU shape billed at the callee
//!   — and counts its runs per server, which is what the exactly-once
//!   invariant measures across crash re-executions. A pool-wide
//!   *idempotency ledger* (modelling the durable request-id dedup
//!   table a real tier keeps) suppresses the application work of a
//!   request whose handler already ran on **another** server — the
//!   case hedged requests create, which the per-node reply cache
//!   cannot see.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use timego_am::Machine;
use timego_cost::{CostVector, Feature, Fine};
use timego_netsim::NodeId;

use crate::service::BalancerPolicy;

/// Instruction shapes of the gateway actor, in the calibrated-constant
/// style of `timego_am`'s protocol costs.
pub mod cost {
    /// Admission check: load the in-flight counter and bound, compare,
    /// branch.
    pub const ADMIT_REG: u64 = 4;
    /// Admission check memory traffic (counter + bound).
    pub const ADMIT_MEM: u64 = 2;
    /// Shed path: reject branch, per-class shed counter update.
    pub const SHED_REG: u64 = 3;
    /// Shed path memory traffic (counter store).
    pub const SHED_MEM: u64 = 1;
    /// Brownout-breaker check: load the healthy fraction and threshold,
    /// compare, branch.
    pub const BREAKER_REG: u64 = 3;
    /// Brownout-breaker check memory traffic (healthy-fraction load).
    pub const BREAKER_MEM: u64 = 1;
    /// Random pick: RNG step and bound fold.
    pub const PICK_RANDOM_REG: u64 = 4;
    /// Round-robin pick: cursor increment and wrap.
    pub const PICK_RR_REG: u64 = 2;
    /// Round-robin cursor load/store.
    pub const PICK_RR_MEM: u64 = 2;
    /// Least-loaded scan, per live server: compare and conditional
    /// move.
    pub const PICK_SCAN_REG_PER_SERVER: u64 = 2;
    /// Least-loaded scan, per live server: load of the load-table
    /// entry.
    pub const PICK_SCAN_MEM_PER_SERVER: u64 = 1;
    /// Consistent hash: SplitMix64 mix of the client key.
    pub const PICK_HASH_REG: u64 = 9;
    /// Consistent hash: per ring-search probe (binary search step).
    pub const PICK_PROBE_REG: u64 = 2;
    /// Consistent hash: per ring-search probe memory load.
    pub const PICK_PROBE_MEM: u64 = 1;
    /// Dispatch bookkeeping on the admitted path: request-context
    /// store.
    pub const DISPATCH_MEM: u64 = 2;
    /// Hedge dispatch: deadline-quantile compare, hedge-context store.
    pub const HEDGE_REG: u64 = 4;
    /// Hedge dispatch memory traffic (hedge-context store).
    pub const HEDGE_MEM: u64 = 2;
    /// Failure-detector bookkeeping per probe verdict: suspicion
    /// counter update, threshold compare.
    pub const PROBE_BOOK_REG: u64 = 3;
    /// Failure-detector bookkeeping memory traffic.
    pub const PROBE_BOOK_MEM: u64 = 1;
    /// Idempotency-ledger probe at the server: hash the request id,
    /// one table lookup.
    pub const DEDUP_REG: u64 = 2;
    /// Idempotency-ledger probe memory traffic.
    pub const DEDUP_MEM: u64 = 1;
}

/// How the admission window bounds in-flight requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionWindow {
    /// One bound shared by the whole gateway tier: an arrival is shed
    /// when the tier-wide in-flight count has reached the bound,
    /// regardless of which gateway it lands on.
    TierGlobal(usize),
    /// Each gateway node bounds its own in-flight slice: an arrival is
    /// shed when *its* gateway has reached the bound, even if the tier
    /// as a whole has room (the price of not sharing a counter).
    PerGateway(usize),
}

impl AdmissionWindow {
    /// Short stable name, used in report keys.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionWindow::TierGlobal(_) => "tier_global",
            AdmissionWindow::PerGateway(_) => "per_gateway",
        }
    }
}

/// The gateway brownout breaker: when the failure detector reports the
/// healthy-server fraction below `min_healthy_milli` (per mille), the
/// gateway sheds every arrival of a brownout-sheddable class outright —
/// billed exactly like an admission shed — so the surviving servers'
/// capacity goes to the classes that must not degrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerSpec {
    /// Healthy-fraction threshold in per mille (500 = half the pool).
    pub min_healthy_milli: u32,
}

impl Default for BreakerSpec {
    fn default() -> Self {
        BreakerSpec { min_healthy_milli: 500 }
    }
}

/// The gateway's admission verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Under the bound: route and submit it.
    Granted,
    /// Over the bound (or the brownout breaker is open): shed at the
    /// gateway, never submitted.
    Shed,
}

/// The gateway-tier actor: the admission window (tier-global or
/// per-gateway), the in-flight ledger it bounds, the brownout breaker,
/// per-class shed counts, and per-class attribution of every gateway
/// instruction.
#[derive(Debug)]
pub struct Gateway {
    window: AdmissionWindow,
    breaker: Option<BreakerSpec>,
    // Healthy-server fraction in per mille, as last reported by
    // `note_health`. Starts at 1000 (everything healthy).
    healthy_milli: u32,
    // In-flight ledger: per-gateway counts plus the tier total.
    in_flight: BTreeMap<usize, usize>,
    total: usize,
    peak_total: usize,
    peak_per_gateway: BTreeMap<usize, usize>,
    shed: Vec<usize>,
    breaker_shed: Vec<usize>,
    bills: Vec<CostVector>,
}

impl Gateway {
    /// A gateway tier with the given admission window, serving
    /// `nclasses` QoS classes, with no brownout breaker.
    #[must_use]
    pub fn new(window: AdmissionWindow, nclasses: usize) -> Self {
        Gateway {
            window,
            breaker: None,
            healthy_milli: 1000,
            in_flight: BTreeMap::new(),
            total: 0,
            peak_total: 0,
            peak_per_gateway: BTreeMap::new(),
            shed: vec![0; nclasses],
            breaker_shed: vec![0; nclasses],
            bills: vec![CostVector::new(); nclasses],
        }
    }

    /// Arm the brownout breaker.
    pub fn set_breaker(&mut self, spec: BreakerSpec) {
        self.breaker = Some(spec);
    }

    /// Report the detector's current view of the pool: `healthy` live
    /// servers out of `total` members. Host-side bookkeeping (the
    /// detector already billed its probes); charges nothing.
    pub fn note_health(&mut self, healthy: usize, total: usize) {
        self.healthy_milli =
            (healthy * 1000).checked_div(total).unwrap_or(0) as u32;
    }

    /// Decide one arrival of class `ci` at gateway node `gw`.
    /// `sheddable` marks the class brownout-sheddable (the breaker only
    /// sheds those). Bills the admission check — and the shed path,
    /// when taken — at the gateway node and attributes it to the class.
    /// A granted arrival is charged to the in-flight ledger; pair every
    /// grant with a [`Gateway::complete`] when the request settles.
    pub fn admit(&mut self, m: &Machine, gw: NodeId, ci: usize, sheddable: bool) -> Admission {
        let cpu = m.cpu(gw);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::BufferMgmt, |c| {
            c.reg(Fine::RegOp, cost::ADMIT_REG);
            c.mem_load(cost::ADMIT_MEM);
        });
        let mut tripped = false;
        if let Some(b) = self.breaker {
            if sheddable {
                cpu.with_feature(Feature::FaultTol, |c| {
                    c.reg(Fine::RegOp, cost::BREAKER_REG);
                    c.mem_load(cost::BREAKER_MEM);
                });
                tripped = self.healthy_milli < b.min_healthy_milli;
            }
        }
        let over = match self.window {
            AdmissionWindow::TierGlobal(bound) => self.total >= bound,
            AdmissionWindow::PerGateway(bound) => {
                self.in_flight.get(&gw.index()).copied().unwrap_or(0) >= bound
            }
        };
        let verdict = if tripped || over {
            cpu.with_feature(Feature::FaultTol, |c| {
                c.reg(Fine::RegOp, cost::SHED_REG);
                c.mem_store(cost::SHED_MEM);
            });
            self.shed[ci] += 1;
            if tripped {
                self.breaker_shed[ci] += 1;
            }
            Admission::Shed
        } else {
            let slot = self.in_flight.entry(gw.index()).or_insert(0);
            *slot += 1;
            let peak = self.peak_per_gateway.entry(gw.index()).or_insert(0);
            *peak = (*peak).max(*slot);
            self.total += 1;
            self.peak_total = self.peak_total.max(self.total);
            Admission::Granted
        };
        self.bills[ci] += cpu.snapshot() - before;
        verdict
    }

    /// Release the in-flight slot a granted arrival at `gw` held —
    /// call once per admitted request when it settles (first winning
    /// leg or last failing one), not per leg.
    pub fn complete(&mut self, gw: NodeId) {
        let slot = self.in_flight.entry(gw.index()).or_insert(0);
        *slot = slot.saturating_sub(1);
        self.total = self.total.saturating_sub(1);
    }

    /// Requests currently in flight across the tier.
    #[must_use]
    pub fn in_flight_total(&self) -> usize {
        self.total
    }

    /// Highest tier-wide in-flight count reached.
    #[must_use]
    pub fn peak_in_flight(&self) -> usize {
        self.peak_total
    }

    /// Highest in-flight count each gateway node reached.
    #[must_use]
    pub fn peak_per_gateway(&self) -> BTreeMap<usize, usize> {
        self.peak_per_gateway.clone()
    }

    /// Bill the routing decision for an admitted request of class `ci`:
    /// the per-policy instruction shape over `nservers` live servers,
    /// plus dispatch bookkeeping, at gateway node `gw`.
    pub fn bill_route(
        &mut self,
        m: &Machine,
        gw: NodeId,
        ci: usize,
        policy: BalancerPolicy,
        nservers: usize,
    ) {
        let cpu = m.cpu(gw);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::BufferMgmt, |c| {
            match policy {
                BalancerPolicy::Random => c.reg(Fine::RegOp, cost::PICK_RANDOM_REG),
                BalancerPolicy::RoundRobin => {
                    c.reg(Fine::RegOp, cost::PICK_RR_REG);
                    c.mem_load(cost::PICK_RR_MEM);
                }
                BalancerPolicy::LeastLoaded | BalancerPolicy::LatencyEwma => {
                    c.reg(Fine::RegOp, cost::PICK_SCAN_REG_PER_SERVER * nservers as u64);
                    c.mem_load(cost::PICK_SCAN_MEM_PER_SERVER * nservers as u64);
                }
                BalancerPolicy::ConsistentHash { vnodes } => {
                    let ring = (vnodes * nservers).max(2);
                    let probes = u64::from((ring as u64).ilog2()) + 1;
                    c.reg(Fine::RegOp, cost::PICK_HASH_REG + cost::PICK_PROBE_REG * probes);
                    c.mem_load(cost::PICK_PROBE_MEM * probes);
                }
            }
            c.mem_store(cost::DISPATCH_MEM);
        });
        self.bills[ci] += cpu.snapshot() - before;
    }

    /// Bill a hedge dispatch for class `ci` at gateway `gw`: the
    /// latency-quantile compare plus a least-loaded scan over the
    /// `nservers` healthy candidates. The hedge is the class's own
    /// tail-insurance spend, so it lands in that class's bill.
    pub fn bill_hedge(&mut self, m: &Machine, gw: NodeId, ci: usize, nservers: usize) {
        let cpu = m.cpu(gw);
        let before = cpu.snapshot();
        cpu.with_feature(Feature::FaultTol, |c| {
            c.reg(
                Fine::RegOp,
                cost::HEDGE_REG + cost::PICK_SCAN_REG_PER_SERVER * nservers as u64,
            );
            c.mem_load(cost::PICK_SCAN_MEM_PER_SERVER * nservers as u64);
            c.mem_store(cost::HEDGE_MEM);
        });
        self.bills[ci] += cpu.snapshot() - before;
    }

    /// Arrivals of class `ci` shed so far (breaker sheds included).
    #[must_use]
    pub fn shed(&self, ci: usize) -> usize {
        self.shed[ci]
    }

    /// Arrivals of class `ci` the brownout breaker shed (a subset of
    /// [`Gateway::shed`]).
    #[must_use]
    pub fn breaker_shed(&self, ci: usize) -> usize {
        self.breaker_shed[ci]
    }

    /// Gateway instructions attributed to class `ci` so far.
    #[must_use]
    pub fn bill(&self, ci: usize) -> CostVector {
        self.bills[ci].clone()
    }
}

/// Per-server handler-run counters, shared with the registered
/// closures.
pub type RunCounts = Rc<RefCell<BTreeMap<usize, u64>>>;

/// The server-pool actor: one registered RPC handler per pool node
/// (spares included), counting runs per server, deduplicating
/// cross-server duplicates through a pool-wide idempotency ledger.
#[derive(Debug)]
pub struct ServerPool {
    runs: RunCounts,
    dup_suppressed: Rc<RefCell<u64>>,
}

impl ServerPool {
    /// Register the serving handler on every node of `servers` and
    /// `spares` under `tag`. The handler echoes the request identity
    /// (class, arrival index) back in the reply and performs
    /// `msg.words[2]` work units, each a fixed shape of 2 loads, 1
    /// store, and 3 register ops billed at the callee.
    ///
    /// Every run first probes the pool-wide idempotency ledger on the
    /// request identity `(words[0], words[1])` — the durable dedup
    /// table of a real service tier, so it survives node restarts. A
    /// hit means another server (a hedge leg's target) already
    /// performed this request's work: the handler pays only the ledger
    /// probe, skips the application work, and the run is counted as
    /// *suppressed* instead — which is what keeps
    /// [`ServerPool::total_runs`] equal to the admitted count under
    /// hedging. Same-server duplicates (protocol resends, crash
    /// re-executions) never reach the handler at all: the per-node
    /// reply cache absorbs them first.
    pub fn install(m: &mut Machine, servers: &[NodeId], spares: &[NodeId], tag: u8) -> Self {
        let runs: RunCounts = Rc::new(RefCell::new(BTreeMap::new()));
        let dup_suppressed = Rc::new(RefCell::new(0u64));
        let ledger: Rc<RefCell<BTreeSet<u64>>> = Rc::new(RefCell::new(BTreeSet::new()));
        for &s in servers.iter().chain(spares) {
            let counter = Rc::clone(&runs);
            let dups = Rc::clone(&dup_suppressed);
            let seen = Rc::clone(&ledger);
            let idx = s.index();
            m.register_rpc_handler(s, tag, move |mem, msg| {
                let cpu = mem.cpu();
                cpu.reg_op(cost::DEDUP_REG);
                cpu.mem_load(cost::DEDUP_MEM);
                let key = (u64::from(msg.words[0]) << 32) | u64::from(msg.words[1]);
                if seen.borrow_mut().insert(key) {
                    *counter.borrow_mut().entry(idx).or_insert(0) += 1;
                    let work = u64::from(msg.words[2]);
                    cpu.mem_load(2 * work);
                    cpu.mem_store(work);
                    cpu.reg_op(3 * work);
                } else {
                    *dups.borrow_mut() += 1;
                }
                [msg.words[0], msg.words[1], msg.words[2].wrapping_mul(3), 0]
            });
        }
        ServerPool { runs, dup_suppressed }
    }

    /// Handler runs per server node index, for exactly-once accounting.
    #[must_use]
    pub fn runs(&self) -> BTreeMap<usize, u64> {
        self.runs.borrow().clone()
    }

    /// Total handler runs across the pool. Duplicate runs the
    /// idempotency ledger suppressed are *not* counted: even with hedge
    /// legs racing, this equals the number of admitted requests whose
    /// handler performed work.
    #[must_use]
    pub fn total_runs(&self) -> u64 {
        self.runs.borrow().values().sum()
    }

    /// Handler invocations the idempotency ledger suppressed (a hedge
    /// leg's duplicate arriving after the other leg already ran).
    #[must_use]
    pub fn dup_suppressed(&self) -> u64 {
        *self.dup_suppressed.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::switched_machine;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn gateway_sheds_past_the_bound_and_bills_the_class() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(AdmissionWindow::TierGlobal(2), 2);
        assert_eq!(g.admit(&m, n(0), 0, false), Admission::Granted);
        assert_eq!(g.admit(&m, n(0), 0, false), Admission::Granted);
        assert_eq!(g.admit(&m, n(0), 1, false), Admission::Shed);
        assert_eq!(g.shed(0), 0);
        assert_eq!(g.shed(1), 1);
        assert_eq!(g.in_flight_total(), 2);
        // Both classes paid the admission check; only the shed class
        // paid the FaultTol shed shape.
        assert!(g.bill(0).feature_total(Feature::BufferMgmt) > 0);
        assert_eq!(g.bill(0).feature_total(Feature::FaultTol), 0);
        assert!(g.bill(1).feature_total(Feature::FaultTol) > 0);
        // Releasing a slot re-opens the window.
        g.complete(n(0));
        assert_eq!(g.admit(&m, n(0), 1, false), Admission::Granted);
        assert_eq!(g.peak_in_flight(), 2);
    }

    #[test]
    fn per_gateway_window_bounds_each_node_separately() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(AdmissionWindow::PerGateway(1), 1);
        assert_eq!(g.admit(&m, n(0), 0, false), Admission::Granted);
        // Gateway 0 is full; gateway 1 still has room at the same
        // tier-wide count.
        assert_eq!(g.admit(&m, n(0), 0, false), Admission::Shed);
        assert_eq!(g.admit(&m, n(1), 0, false), Admission::Granted);
        assert_eq!(g.in_flight_total(), 2);
        assert_eq!(g.peak_per_gateway().get(&0), Some(&1));
        assert_eq!(g.peak_per_gateway().get(&1), Some(&1));
    }

    #[test]
    fn breaker_sheds_only_sheddable_classes_under_brownout() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(AdmissionWindow::TierGlobal(64), 2);
        g.set_breaker(BreakerSpec { min_healthy_milli: 500 });
        g.note_health(3, 8); // 375 per mille: below threshold
        assert_eq!(g.admit(&m, n(0), 0, true), Admission::Shed);
        assert_eq!(g.breaker_shed(0), 1);
        assert_eq!(g.shed(0), 1, "breaker sheds count as sheds");
        // The non-sheddable class rides through the brownout.
        assert_eq!(g.admit(&m, n(0), 1, false), Admission::Granted);
        assert_eq!(g.breaker_shed(1), 0);
        // Recovery closes the breaker.
        g.note_health(5, 8);
        assert_eq!(g.admit(&m, n(0), 0, true), Admission::Granted);
    }

    #[test]
    fn gateway_route_billing_scales_with_policy() {
        let m = switched_machine(4, 1);
        let mut g = Gateway::new(AdmissionWindow::TierGlobal(8), 1);
        g.bill_route(&m, n(0), 0, BalancerPolicy::RoundRobin, 4);
        let rr = g.bill(0).total();
        let mut g2 = Gateway::new(AdmissionWindow::TierGlobal(8), 1);
        g2.bill_route(&m, n(0), 0, BalancerPolicy::LeastLoaded, 64);
        let scan = g2.bill(0).total();
        assert!(
            scan > rr,
            "a 64-server least-loaded scan ({scan}) must out-cost a rotation ({rr})"
        );
    }

    #[test]
    fn server_pool_counts_handler_runs() {
        let mut m = switched_machine(4, 2);
        let pool = ServerPool::install(&mut m, &[n(1), n(2)], &[], 40);
        let reply = m.rpc_call(n(0), n(1), 40, [7, 9, 2, 0]).unwrap();
        assert_eq!(reply, [7, 9, 6, 0]);
        assert_eq!(pool.total_runs(), 1);
        assert_eq!(pool.runs().get(&1), Some(&1));
        assert_eq!(pool.dup_suppressed(), 0);
    }

    #[test]
    fn idempotency_ledger_suppresses_cross_server_duplicates() {
        let mut m = switched_machine(4, 2);
        let pool = ServerPool::install(&mut m, &[n(1), n(2)], &[], 40);
        // The same request identity served on two different servers —
        // what a hedge leg does. The second run is suppressed; the
        // reply is identical either way.
        let a = m.rpc_call(n(0), n(1), 40, [3, 5, 2, 0]).unwrap();
        let b = m.rpc_call(n(0), n(2), 40, [3, 5, 2, 0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(pool.total_runs(), 1, "one logical request, one counted run");
        assert_eq!(pool.dup_suppressed(), 1);
        // A different identity on the same server still runs.
        m.rpc_call(n(0), n(2), 40, [3, 6, 2, 0]).unwrap();
        assert_eq!(pool.total_runs(), 2);
    }
}
