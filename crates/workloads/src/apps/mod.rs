//! Application kernels built on the public messaging API.
//!
//! The paper's motivation is that applications should get high-level
//! communication services (ordering, overflow safety, reliability)
//! without hand-rolling them. These kernels are the proof of use: real
//! parallel algorithms written against [`timego_am::Machine`]'s public
//! API, verified end to end, with the messaging-layer instruction costs
//! they induce measurable per node.
//!
//! * [`halo`] — iterative 1-D stencil smoothing with ghost-cell
//!   exchange (bulk transfers between neighbors);
//! * [`sort`] — odd-even transposition sort over distributed blocks
//!   (pairwise bulk exchanges);
//! * [`collectives`] — broadcast / all-reduce / barrier built from
//!   single-packet active messages (binomial and recursive-doubling
//!   trees);
//! * [`service`] — the service-plane actors: the admission-controlled
//!   gateway tier and the RPC server pool (see [`crate::service`] for
//!   the policies and the open-loop driver).
//!
//! Application *compute* runs with cost recording suspended, so the
//! recorded instruction counts isolate the messaging layer — the same
//! separation the paper's measurements make.

pub mod collectives;
pub mod halo;
pub mod service;
pub mod sort;
