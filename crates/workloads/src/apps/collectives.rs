//! Collectives from single-packet active messages: binomial-tree
//! broadcast, recursive-doubling all-reduce, and a barrier.
//!
//! The CM-5 had a dedicated control network for these; on the data
//! network they are what applications build from `CMAM_4`, and each
//! step costs exactly one Table 1 round (20 + 27 instructions).

use timego_am::{Machine, PollOutcome, ProtocolError, Tags};
use timego_netsim::NodeId;

/// Tag used by collective packets (user range).
pub const COLLECTIVE_TAG: u8 = Tags::USER_BASE + 7;

fn deliver_all(m: &mut Machine, node: NodeId, expect: usize) -> Result<Vec<[u32; 4]>, ProtocolError> {
    let mut got = Vec::with_capacity(expect);
    let mut spins = 0u64;
    while got.len() < expect {
        match m.poll(node) {
            PollOutcome::Unclaimed(msg) if msg.tag == COLLECTIVE_TAG => got.push(msg.words),
            PollOutcome::Idle => {
                m.advance(1);
                spins += 1;
                if spins > m.config().max_wait_cycles {
                    return Err(ProtocolError::timeout("collective packet", spins));
                }
            }
            _ => {}
        }
    }
    Ok(got)
}

/// Broadcast four words from `root` to every node with a binomial tree:
/// `⌈log₂ N⌉` rounds, each node relays once. Returns the value as seen
/// at every node (for verification).
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if a relay starves.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn broadcast(m: &mut Machine, root: NodeId, value: [u32; 4]) -> Result<Vec<[u32; 4]>, ProtocolError> {
    let n = m.num_nodes();
    assert!(root.index() < n);
    // Rank space rotated so the root is rank 0.
    let rank_of = |node: usize| (node + n - root.index()) % n;
    let node_of = |rank: usize| (rank + root.index()) % n;

    let mut have: Vec<Option<[u32; 4]>> = vec![None; n];
    have[0] = Some(value);
    let mut stride = 1;
    while stride < n {
        for rank in 0..stride.min(n) {
            let peer = rank + stride;
            if peer < n {
                let v = have[rank].expect("sender holds the value by round r");
                m.am4_send(NodeId::new(node_of(rank)), NodeId::new(node_of(peer)), COLLECTIVE_TAG, v)?;
                let got = deliver_all(m, NodeId::new(node_of(peer)), 1)?;
                have[peer] = Some(got[0]);
            }
        }
        stride *= 2;
    }
    Ok((0..n).map(|node| have[rank_of(node)].expect("all ranks covered")).collect())
}

/// All-reduce (sum) of one word per node via recursive doubling:
/// `log₂ N` exchange rounds (N must be a power of two). Returns every
/// node's result — all equal to the global sum.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two or inputs are fewer
/// than the node count.
pub fn allreduce_sum(m: &mut Machine, inputs: &[u32]) -> Result<Vec<u32>, ProtocolError> {
    let n = m.num_nodes();
    assert!(n.is_power_of_two(), "recursive doubling needs a power-of-two node count");
    assert!(inputs.len() >= n, "one input per node");
    let mut acc: Vec<u32> = inputs[..n].to_vec();
    let mut stride = 1;
    while stride < n {
        // Each pair exchanges partial sums.
        for node in 0..n {
            let peer = node ^ stride;
            if node < peer {
                m.am4_send(NodeId::new(node), NodeId::new(peer), COLLECTIVE_TAG, [acc[node], 0, 0, 0])?;
                m.am4_send(NodeId::new(peer), NodeId::new(node), COLLECTIVE_TAG, [acc[peer], 0, 0, 0])?;
            }
        }
        let mut incoming = vec![0u32; n];
        for (node, slot) in incoming.iter_mut().enumerate() {
            let got = deliver_all(m, NodeId::new(node), 1)?;
            *slot = got[0][0];
        }
        for node in 0..n {
            acc[node] = acc[node].wrapping_add(incoming[node]);
        }
        stride *= 2;
    }
    Ok(acc)
}

/// Barrier: an all-reduce of nothing. Completes only when every node
/// has participated.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two.
pub fn barrier(m: &mut Machine) -> Result<(), ProtocolError> {
    let zeros = vec![0u32; m.num_nodes()];
    allreduce_sum(m, &zeros).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use timego_am::CmamConfig;
    use timego_ni::share;

    fn machine(nodes: usize) -> Machine {
        Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default())
    }

    #[test]
    fn broadcast_reaches_every_node() {
        for nodes in [1usize, 2, 3, 5, 8] {
            let mut m = machine(nodes);
            let seen = broadcast(&mut m, NodeId::new(0), [7, 8, 9, 10]).unwrap();
            assert_eq!(seen.len(), nodes);
            assert!(seen.iter().all(|v| *v == [7, 8, 9, 10]), "nodes={nodes}");
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let mut m = machine(6);
        let seen = broadcast(&mut m, NodeId::new(4), [1, 2, 3, 4]).unwrap();
        assert!(seen.iter().all(|v| *v == [1, 2, 3, 4]));
    }

    #[test]
    fn broadcast_cost_is_one_round_trip_per_edge() {
        let mut m = machine(8);
        m.reset_costs();
        broadcast(&mut m, NodeId::new(0), [0; 4]).unwrap();
        let total: u64 = (0..8).map(|i| m.cpu(NodeId::new(i)).snapshot().total()).sum();
        // A binomial tree over 8 nodes has 7 edges; each edge is one
        // Table 1 send (20) + receive (27).
        assert_eq!(total, 7 * 47);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let mut m = machine(8);
        let inputs: Vec<u32> = (1..=8).collect();
        let out = allreduce_sum(&mut m, &inputs).unwrap();
        assert_eq!(out, vec![36; 8]);
    }

    #[test]
    fn allreduce_over_real_network() {
        let mut m = Machine::new(share(scenarios::cm5_deterministic(4, 2)), 4, CmamConfig::default());
        let out = allreduce_sum(&mut m, &[10, 20, 30, 40]).unwrap();
        assert_eq!(out, vec![100; 4]);
    }

    #[test]
    fn barrier_completes() {
        let mut m = machine(4);
        barrier(&mut m).unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn allreduce_rejects_non_power_of_two() {
        let mut m = machine(3);
        let _ = allreduce_sum(&mut m, &[1, 2, 3]);
    }
}
