//! Collectives from single-packet active messages: binomial-tree
//! broadcast, recursive-doubling all-reduce, and a barrier.
//!
//! The CM-5 had a dedicated control network for these; on the data
//! network they are what applications build from `CMAM_4`, and each
//! tree edge costs exactly one Table 1 round (20 + 27 instructions).
//!
//! Since the engine gained run-after dependencies, the collectives are
//! *dependency DAGs*: every tree edge is one [`Engine::submit_am4_after`]
//! operation, released by the delivery that fed its sender. Independent
//! subtrees overlap freely instead of marching in lockstep rounds — the
//! per-feature instruction bill is unchanged (same edges, same Table 1
//! shapes), only wall-cycles compress. Three entry points per
//! collective:
//!
//! * `submit_*` — build the DAG on a caller-owned [`Engine`] (compose
//!   with other traffic), then harvest with the matching `*_results`.
//! * the blocking names ([`broadcast`], [`allreduce_sum`], [`barrier`])
//!   — thin run-to-completion wrappers: fresh engine, submit, run,
//!   harvest. Drop-in replacements for the old blocking loops, pinned
//!   cost-identical by the Table 1 edge-count tests below.
//! * `*_phased` — the pre-dependency baseline: one engine run per tree
//!   round with a full barrier between rounds. The bench report
//!   compares these against the DAGs to measure what run-after overlap
//!   buys.

use timego_am::{Engine, Machine, OpId, OpOutcome, ProtocolError, RecoveryPolicy, Tags};
use timego_netsim::NodeId;

/// Tag used by collective packets (user range).
pub const COLLECTIVE_TAG: u8 = Tags::USER_BASE + 7;

/// Harvest one am4 outcome, surfacing the operation's failure.
fn take_am4(eng: &mut Engine, id: OpId) -> Result<[u32; 4], ProtocolError> {
    match eng.take_outcome(id).expect("collective op ran to completion") {
        Ok(OpOutcome::Am4(words)) => Ok(words),
        Ok(other) => unreachable!("am4 submission yielded {other:?}"),
        Err(e) => Err(e),
    }
}

/// Keep the most informative failure: a root-cause error (timeout,
/// refused injection) beats the `DependencyFailed` echoes downstream
/// of it.
fn keep_root_cause(slot: &mut Option<ProtocolError>, e: ProtocolError) {
    let echo = matches!(e, ProtocolError::DependencyFailed { .. });
    match slot {
        None => *slot = Some(e),
        Some(ProtocolError::DependencyFailed { .. }) if !echo => *slot = Some(e),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Broadcast.
// ---------------------------------------------------------------------

/// A submitted broadcast DAG: the handle for harvesting per-node
/// results after the engine run.
pub struct BroadcastDag {
    value: [u32; 4],
    root: usize,
    /// `(receiver node, op that delivers to it)` — one entry per tree
    /// edge; every non-root node appears exactly once.
    edges: Vec<(usize, OpId)>,
}

/// Submit a binomial-tree broadcast of `value` from `root` as a
/// dependency DAG on `eng`: each relay edge runs after the edge that
/// delivered the value to its sender, so independent subtrees overlap.
/// Nothing moves until the caller pumps the engine.
///
/// # Errors
///
/// [`ProtocolError::BadTransfer`] if a dependency id is rejected
/// (cannot happen for ids minted by `eng` itself).
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn submit_broadcast(
    eng: &mut Engine,
    m: &Machine,
    root: NodeId,
    value: [u32; 4],
) -> Result<BroadcastDag, ProtocolError> {
    let n = m.num_nodes();
    assert!(root.index() < n);
    // Rank space rotated so the root is rank 0.
    let node_of = |rank: usize| (rank + root.index()) % n;

    // deliverer[rank]: the op that delivers the value to that rank.
    let mut deliverer: Vec<Option<OpId>> = vec![None; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut stride = 1;
    while stride < n {
        for rank in 0..stride.min(n) {
            let peer = rank + stride;
            if peer < n {
                let after: Vec<OpId> = deliverer[rank].into_iter().collect();
                let id = eng.submit_am4_after(
                    m,
                    NodeId::new(node_of(rank)),
                    NodeId::new(node_of(peer)),
                    COLLECTIVE_TAG,
                    value,
                    &after,
                )?;
                deliverer[peer] = Some(id);
                edges.push((node_of(peer), id));
            }
        }
        stride *= 2;
    }
    Ok(BroadcastDag { value, root: root.index(), edges })
}

/// Harvest a finished broadcast: the value as seen at every node (the
/// root sees what it sent; every other node sees the words its edge op
/// actually delivered).
///
/// # Errors
///
/// The root cause when any edge failed ([`ProtocolError::Timeout`] from
/// the edge itself, in preference to downstream
/// [`ProtocolError::DependencyFailed`] echoes).
pub fn broadcast_results(
    eng: &mut Engine,
    dag: &BroadcastDag,
    num_nodes: usize,
) -> Result<Vec<[u32; 4]>, ProtocolError> {
    let mut seen = vec![[0u32; 4]; num_nodes];
    seen[dag.root] = dag.value;
    let mut failure = None;
    for &(node, id) in &dag.edges {
        match take_am4(eng, id) {
            Ok(words) => seen[node] = words,
            Err(e) => keep_root_cause(&mut failure, e),
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(seen),
    }
}

/// Broadcast four words from `root` to every node with a binomial tree:
/// `⌈log₂ N⌉` rounds, each node relays once. Returns the value as seen
/// at every node (for verification).
///
/// A thin run-to-completion wrapper over [`submit_broadcast`] on a
/// fresh engine — cost-identical to the old blocking loop (one Table 1
/// round per tree edge, pinned by test).
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if a relay starves.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn broadcast(
    m: &mut Machine,
    root: NodeId,
    value: [u32; 4],
) -> Result<Vec<[u32; 4]>, ProtocolError> {
    let mut eng = Engine::new();
    let dag = submit_broadcast(&mut eng, m, root, value)?;
    eng.run(m);
    broadcast_results(&mut eng, &dag, m.num_nodes())
}

/// [`submit_broadcast`] with an engine-native [`RecoveryPolicy`] on
/// every tree edge: an edge felled by a node crash-restart (or a
/// watchdog) is parked and re-executed by the engine itself, and — the
/// DAG-aware part — its dependent subtree stays held and releases when
/// the recovered edge finally delivers, instead of cascading
/// `DependencyFailed`. Each edge carries a unique delivery token, so a
/// duplicate from a superseded execution can never satisfy (or corrupt)
/// another edge's delivery.
///
/// # Errors
///
/// [`ProtocolError::BadTransfer`] if a dependency id is rejected
/// (cannot happen for ids minted by `eng` itself).
///
/// # Panics
///
/// Panics if `root` is out of range or `recovery.max_executions` is
/// zero.
pub fn submit_broadcast_recovering(
    eng: &mut Engine,
    m: &mut Machine,
    root: NodeId,
    value: [u32; 4],
    recovery: &RecoveryPolicy,
) -> Result<BroadcastDag, ProtocolError> {
    let n = m.num_nodes();
    assert!(root.index() < n);
    let node_of = |rank: usize| (rank + root.index()) % n;

    let mut deliverer: Vec<Option<OpId>> = vec![None; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut stride = 1;
    while stride < n {
        for rank in 0..stride.min(n) {
            let peer = rank + stride;
            if peer < n {
                let after: Vec<OpId> = deliverer[rank].into_iter().collect();
                let id = eng.submit_am4_recovering_after(
                    m,
                    NodeId::new(node_of(rank)),
                    NodeId::new(node_of(peer)),
                    COLLECTIVE_TAG,
                    value,
                    recovery,
                    &after,
                )?;
                deliverer[peer] = Some(id);
                edges.push((node_of(peer), id));
            }
        }
        stride *= 2;
    }
    Ok(BroadcastDag { value, root: root.index(), edges })
}

/// Blocking self-healing broadcast: [`submit_broadcast_recovering`] on
/// a fresh engine, run to completion. Returns the per-node values plus
/// the total number of edge re-executions the engine performed (zero on
/// a clean run, whose cost is identical to [`broadcast`]).
///
/// # Errors
///
/// The root-cause error once some edge's recovery budget is exhausted.
///
/// # Panics
///
/// Panics if `root` is out of range or `recovery.max_executions` is
/// zero.
pub fn broadcast_recovering(
    m: &mut Machine,
    root: NodeId,
    value: [u32; 4],
    recovery: &RecoveryPolicy,
) -> Result<(Vec<[u32; 4]>, u32), ProtocolError> {
    let mut eng = Engine::new();
    let dag = submit_broadcast_recovering(&mut eng, m, root, value, recovery)?;
    eng.run(m);
    let re_executions = dag.edges.iter().map(|&(_, id)| eng.recovery_executions(id)).sum();
    broadcast_results(&mut eng, &dag, m.num_nodes()).map(|seen| (seen, re_executions))
}

/// The pre-dependency baseline: the same binomial tree, but one engine
/// run per round with a full barrier between rounds (no cross-round
/// overlap). Relays forward the words actually delivered to them.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if a relay starves.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn broadcast_phased(
    m: &mut Machine,
    root: NodeId,
    value: [u32; 4],
) -> Result<Vec<[u32; 4]>, ProtocolError> {
    let n = m.num_nodes();
    assert!(root.index() < n);
    let rank_of = |node: usize| (node + n - root.index()) % n;
    let node_of = |rank: usize| (rank + root.index()) % n;

    let mut have: Vec<Option<[u32; 4]>> = vec![None; n];
    have[0] = Some(value);
    let mut stride = 1;
    while stride < n {
        let mut eng = Engine::new();
        let mut round = Vec::new();
        for (rank, held) in have.iter().enumerate().take(stride.min(n)) {
            let peer = rank + stride;
            if peer < n {
                let v = held.expect("sender holds the value by round r");
                let id = eng.submit_am4(
                    m,
                    NodeId::new(node_of(rank)),
                    NodeId::new(node_of(peer)),
                    COLLECTIVE_TAG,
                    v,
                )?;
                round.push((peer, id));
            }
        }
        eng.run(m);
        for (peer, id) in round {
            have[peer] = Some(take_am4(&mut eng, id)?);
        }
        stride *= 2;
    }
    Ok((0..n).map(|node| have[rank_of(node)].expect("all ranks covered")).collect())
}

// ---------------------------------------------------------------------
// All-reduce.
// ---------------------------------------------------------------------

/// A submitted all-reduce DAG: the handle for harvesting per-node sums
/// after the engine run.
pub struct AllreduceDag {
    inputs: Vec<u32>,
    /// `recv[round][node]`: the op that delivers `node`'s partial for
    /// that exchange round.
    recv: Vec<Vec<OpId>>,
}

/// Submit a recursive-doubling all-reduce (sum of one word per node) as
/// a dependency DAG on `eng`: in each round every node exchanges
/// partials with `node ^ stride`, and a node's round-`r` send runs
/// after the delivery that completed its round-`r-1` partial. Payloads
/// carry the deterministically predicted partials; harvesting sums the
/// *actually delivered* words, so the result is honest about what moved
/// on the wire. Nothing moves until the caller pumps the engine.
///
/// # Errors
///
/// [`ProtocolError::BadTransfer`] if a dependency id is rejected
/// (cannot happen for ids minted by `eng` itself).
///
/// # Panics
///
/// Panics if the node count is not a power of two or inputs are fewer
/// than the node count.
pub fn submit_allreduce(
    eng: &mut Engine,
    m: &Machine,
    inputs: &[u32],
) -> Result<AllreduceDag, ProtocolError> {
    let n = m.num_nodes();
    assert!(n.is_power_of_two(), "recursive doubling needs a power-of-two node count");
    assert!(inputs.len() >= n, "one input per node");
    let mut acc: Vec<u32> = inputs[..n].to_vec();
    let mut recv: Vec<Vec<OpId>> = Vec::new();
    // prev[node]: the op whose delivery completed node's previous round.
    let mut prev: Vec<Option<OpId>> = vec![None; n];
    let mut stride = 1;
    while stride < n {
        let mut this: Vec<Option<OpId>> = vec![None; n];
        for node in 0..n {
            let peer = node ^ stride;
            let after: Vec<OpId> = prev[node].into_iter().collect();
            let id = eng.submit_am4_after(
                m,
                NodeId::new(node),
                NodeId::new(peer),
                COLLECTIVE_TAG,
                [acc[node], 0, 0, 0],
                &after,
            )?;
            this[peer] = Some(id);
        }
        // Predicted partials for the next round's payloads.
        let snapshot = acc.clone();
        for node in 0..n {
            acc[node] = acc[node].wrapping_add(snapshot[node ^ stride]);
        }
        recv.push(this.into_iter().map(|id| id.expect("every node is someone's peer")).collect());
        prev = recv.last().expect("just pushed").iter().copied().map(Some).collect();
        stride *= 2;
    }
    Ok(AllreduceDag { inputs: inputs[..n].to_vec(), recv })
}

/// Harvest a finished all-reduce: every node's sum, accumulated from
/// the words its exchange ops actually delivered.
///
/// # Errors
///
/// The root cause when any exchange failed (in preference to downstream
/// [`ProtocolError::DependencyFailed`] echoes).
pub fn allreduce_results(
    eng: &mut Engine,
    dag: &AllreduceDag,
) -> Result<Vec<u32>, ProtocolError> {
    let mut acc = dag.inputs.clone();
    let mut failure = None;
    for round in &dag.recv {
        for (node, &id) in round.iter().enumerate() {
            match take_am4(eng, id) {
                Ok(words) => acc[node] = acc[node].wrapping_add(words[0]),
                Err(e) => keep_root_cause(&mut failure, e),
            }
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(acc),
    }
}

/// All-reduce (sum) of one word per node via recursive doubling:
/// `log₂ N` exchange rounds (N must be a power of two). Returns every
/// node's result — all equal to the global sum.
///
/// A thin run-to-completion wrapper over [`submit_allreduce`] on a
/// fresh engine — cost-identical to the old blocking loop (exactly N
/// Table 1 rounds per exchange round).
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two or inputs are fewer
/// than the node count.
pub fn allreduce_sum(m: &mut Machine, inputs: &[u32]) -> Result<Vec<u32>, ProtocolError> {
    let mut eng = Engine::new();
    let dag = submit_allreduce(&mut eng, m, inputs)?;
    eng.run(m);
    allreduce_results(&mut eng, &dag)
}

/// [`submit_allreduce`] with an engine-native [`RecoveryPolicy`] on
/// every exchange edge: an exchange felled by a node crash-restart is
/// parked and re-executed inside the engine, its later-round dependents
/// stay held until the recovered exchange delivers, and per-edge
/// delivery tokens keep superseded duplicates from satisfying any other
/// edge.
///
/// # Errors
///
/// [`ProtocolError::BadTransfer`] if a dependency id is rejected
/// (cannot happen for ids minted by `eng` itself).
///
/// # Panics
///
/// Panics if the node count is not a power of two, inputs are fewer
/// than the node count, or `recovery.max_executions` is zero.
pub fn submit_allreduce_recovering(
    eng: &mut Engine,
    m: &mut Machine,
    inputs: &[u32],
    recovery: &RecoveryPolicy,
) -> Result<AllreduceDag, ProtocolError> {
    let n = m.num_nodes();
    assert!(n.is_power_of_two(), "recursive doubling needs a power-of-two node count");
    assert!(inputs.len() >= n, "one input per node");
    let mut acc: Vec<u32> = inputs[..n].to_vec();
    let mut recv: Vec<Vec<OpId>> = Vec::new();
    let mut prev: Vec<Option<OpId>> = vec![None; n];
    let mut stride = 1;
    while stride < n {
        let mut this: Vec<Option<OpId>> = vec![None; n];
        for node in 0..n {
            let peer = node ^ stride;
            let after: Vec<OpId> = prev[node].into_iter().collect();
            let id = eng.submit_am4_recovering_after(
                m,
                NodeId::new(node),
                NodeId::new(peer),
                COLLECTIVE_TAG,
                [acc[node], 0, 0, 0],
                recovery,
                &after,
            )?;
            this[peer] = Some(id);
        }
        let snapshot = acc.clone();
        for node in 0..n {
            acc[node] = acc[node].wrapping_add(snapshot[node ^ stride]);
        }
        recv.push(this.into_iter().map(|id| id.expect("every node is someone's peer")).collect());
        prev = recv.last().expect("just pushed").iter().copied().map(Some).collect();
        stride *= 2;
    }
    Ok(AllreduceDag { inputs: inputs[..n].to_vec(), recv })
}

/// Blocking self-healing all-reduce: [`submit_allreduce_recovering`] on
/// a fresh engine, run to completion. Returns every node's sum plus the
/// total number of exchange re-executions the engine performed (zero on
/// a clean run, whose cost is identical to [`allreduce_sum`]).
///
/// # Errors
///
/// The root-cause error once some exchange's recovery budget is
/// exhausted.
///
/// # Panics
///
/// Panics if the node count is not a power of two, inputs are fewer
/// than the node count, or `recovery.max_executions` is zero.
pub fn allreduce_sum_recovering(
    m: &mut Machine,
    inputs: &[u32],
    recovery: &RecoveryPolicy,
) -> Result<(Vec<u32>, u32), ProtocolError> {
    let mut eng = Engine::new();
    let dag = submit_allreduce_recovering(&mut eng, m, inputs, recovery)?;
    eng.run(m);
    let re_executions = dag
        .recv
        .iter()
        .flat_map(|round| round.iter())
        .map(|&id| eng.recovery_executions(id))
        .sum();
    allreduce_results(&mut eng, &dag).map(|acc| (acc, re_executions))
}

/// The pre-dependency baseline: the same recursive doubling, but one
/// engine run per exchange round with a full barrier between rounds.
/// Partials are accumulated from the words actually delivered.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two or inputs are fewer
/// than the node count.
pub fn allreduce_phased(m: &mut Machine, inputs: &[u32]) -> Result<Vec<u32>, ProtocolError> {
    let n = m.num_nodes();
    assert!(n.is_power_of_two(), "recursive doubling needs a power-of-two node count");
    assert!(inputs.len() >= n, "one input per node");
    let mut acc: Vec<u32> = inputs[..n].to_vec();
    let mut stride = 1;
    while stride < n {
        let mut eng = Engine::new();
        let mut recv: Vec<Option<OpId>> = vec![None; n];
        for (node, &a) in acc.iter().enumerate() {
            let peer = node ^ stride;
            let id = eng.submit_am4(
                m,
                NodeId::new(node),
                NodeId::new(peer),
                COLLECTIVE_TAG,
                [a, 0, 0, 0],
            )?;
            recv[peer] = Some(id);
        }
        eng.run(m);
        for node in 0..n {
            let id = recv[node].expect("every node is someone's peer");
            let words = take_am4(&mut eng, id)?;
            acc[node] = acc[node].wrapping_add(words[0]);
        }
        stride *= 2;
    }
    Ok(acc)
}

// ---------------------------------------------------------------------
// Barrier.
// ---------------------------------------------------------------------

/// Barrier: an all-reduce of nothing. Completes only when every node
/// has participated.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two.
pub fn barrier(m: &mut Machine) -> Result<(), ProtocolError> {
    let zeros = vec![0u32; m.num_nodes()];
    allreduce_sum(m, &zeros).map(|_| ())
}

/// The pre-dependency barrier baseline (round-serial all-reduce of
/// zeros), for the bench comparison.
///
/// # Errors
///
/// [`ProtocolError::Timeout`] if an exchange starves.
///
/// # Panics
///
/// Panics if the node count is not a power of two.
pub fn barrier_phased(m: &mut Machine) -> Result<(), ProtocolError> {
    let zeros = vec![0u32; m.num_nodes()];
    allreduce_phased(m, &zeros).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use timego_am::CmamConfig;
    use timego_cost::Feature;
    use timego_ni::share;

    fn machine(nodes: usize) -> Machine {
        Machine::new(share(scenarios::table_in_order(nodes)), nodes, CmamConfig::default())
    }

    #[test]
    fn broadcast_reaches_every_node() {
        for nodes in [1usize, 2, 3, 5, 8] {
            let mut m = machine(nodes);
            let seen = broadcast(&mut m, NodeId::new(0), [7, 8, 9, 10]).unwrap();
            assert_eq!(seen.len(), nodes);
            assert!(seen.iter().all(|v| *v == [7, 8, 9, 10]), "nodes={nodes}");
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let mut m = machine(6);
        let seen = broadcast(&mut m, NodeId::new(4), [1, 2, 3, 4]).unwrap();
        assert!(seen.iter().all(|v| *v == [1, 2, 3, 4]));
    }

    #[test]
    fn broadcast_cost_is_one_round_trip_per_edge() {
        let mut m = machine(8);
        m.reset_costs();
        broadcast(&mut m, NodeId::new(0), [0; 4]).unwrap();
        let total: u64 = (0..8).map(|i| m.cpu(NodeId::new(i)).snapshot().total()).sum();
        // A binomial tree over 8 nodes has 7 edges; each edge is one
        // Table 1 send (20) + receive (27). The engine-native DAG pays
        // exactly the blocking loop's bill: no idle polls (receives are
        // peek-gated), no extra instructions from scheduling.
        assert_eq!(total, 7 * 47);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let mut m = machine(8);
        let inputs: Vec<u32> = (1..=8).collect();
        let out = allreduce_sum(&mut m, &inputs).unwrap();
        assert_eq!(out, vec![36; 8]);
    }

    #[test]
    fn allreduce_over_real_network() {
        let mut m =
            Machine::new(share(scenarios::cm5_deterministic(4, 2)), 4, CmamConfig::default());
        let out = allreduce_sum(&mut m, &[10, 20, 30, 40]).unwrap();
        assert_eq!(out, vec![100; 4]);
    }

    #[test]
    fn barrier_completes() {
        let mut m = machine(4);
        barrier(&mut m).unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn allreduce_rejects_non_power_of_two() {
        let mut m = machine(3);
        let _ = allreduce_sum(&mut m, &[1, 2, 3]);
    }

    /// The DAG form and the round-serial phased form agree on results —
    /// including over a real (latency-bearing, adaptive) network.
    #[test]
    fn dag_matches_phased_results() {
        for nodes in [4usize, 8, 16] {
            let inputs: Vec<u32> = (0..nodes as u32).map(|i| i * 3 + 1).collect();
            let mut a = machine(nodes);
            let mut b = machine(nodes);
            assert_eq!(
                allreduce_sum(&mut a, &inputs).unwrap(),
                allreduce_phased(&mut b, &inputs).unwrap(),
                "allreduce, {nodes} nodes"
            );
            let mut a = machine(nodes);
            let mut b = machine(nodes);
            assert_eq!(
                broadcast(&mut a, NodeId::new(1), [9, 9, 9, 9]).unwrap(),
                broadcast_phased(&mut b, NodeId::new(1), [9, 9, 9, 9]).unwrap(),
                "broadcast, {nodes} nodes"
            );
        }
        let mut a = Machine::new(share(scenarios::cm5_deterministic(8, 2)), 8, CmamConfig::default());
        let mut b = Machine::new(share(scenarios::cm5_deterministic(8, 2)), 8, CmamConfig::default());
        let inputs: Vec<u32> = (1..=8).collect();
        assert_eq!(
            allreduce_sum(&mut a, &inputs).unwrap(),
            allreduce_phased(&mut b, &inputs).unwrap()
        );
    }

    /// Run-after overlap changes wall-cycles, never the per-feature
    /// instruction bill: every node's per-feature totals are identical
    /// between the DAG and the phased baseline.
    #[test]
    fn dag_and_phased_bills_are_per_feature_identical() {
        let nodes = 16;
        let inputs: Vec<u32> = (0..nodes as u32).collect();

        let mut dag = machine(nodes);
        dag.reset_costs();
        allreduce_sum(&mut dag, &inputs).unwrap();
        let mut phased = machine(nodes);
        phased.reset_costs();
        allreduce_phased(&mut phased, &inputs).unwrap();
        for i in 0..nodes {
            for f in Feature::ALL {
                assert_eq!(
                    dag.cpu(NodeId::new(i)).snapshot().feature_total(f),
                    phased.cpu(NodeId::new(i)).snapshot().feature_total(f),
                    "allreduce node {i}, {f:?}"
                );
            }
        }

        let mut dag = machine(nodes);
        dag.reset_costs();
        broadcast(&mut dag, NodeId::new(0), [5; 4]).unwrap();
        let mut phased = machine(nodes);
        phased.reset_costs();
        broadcast_phased(&mut phased, NodeId::new(0), [5; 4]).unwrap();
        for i in 0..nodes {
            for f in Feature::ALL {
                assert_eq!(
                    dag.cpu(NodeId::new(i)).snapshot().feature_total(f),
                    phased.cpu(NodeId::new(i)).snapshot().feature_total(f),
                    "broadcast node {i}, {f:?}"
                );
            }
        }
    }

    /// On a latency-bearing network the DAG's cross-round overlap
    /// finishes in fewer wall-cycles than the phased baseline.
    #[test]
    fn dag_overlap_compresses_wall_cycles() {
        let nodes = 16;
        let inputs: Vec<u32> = (0..nodes as u32).collect();
        let mut a = Machine::new(
            share(scenarios::cm5_deterministic(nodes, 2)),
            nodes,
            CmamConfig::default(),
        );
        let t0 = a.network().borrow().now();
        allreduce_sum(&mut a, &inputs).unwrap();
        let dag_cycles = a.network().borrow().now() - t0;
        let mut b = Machine::new(
            share(scenarios::cm5_deterministic(nodes, 2)),
            nodes,
            CmamConfig::default(),
        );
        let t0 = b.network().borrow().now();
        allreduce_phased(&mut b, &inputs).unwrap();
        let phased_cycles = b.network().borrow().now() - t0;
        assert!(
            dag_cycles <= phased_cycles,
            "DAG {dag_cycles} should not exceed phased {phased_cycles}"
        );
    }

    /// The submit/harvest split composes: two broadcasts from different
    /// roots share one engine run.
    #[test]
    fn two_collectives_share_one_engine() {
        let mut m = machine(8);
        let mut eng = Engine::new();
        let d1 = submit_broadcast(&mut eng, &m, NodeId::new(0), [1; 4]).unwrap();
        let d2 = submit_broadcast(&mut eng, &m, NodeId::new(3), [2; 4]).unwrap();
        eng.run(&mut m);
        let s1 = broadcast_results(&mut eng, &d1, 8).unwrap();
        let s2 = broadcast_results(&mut eng, &d2, 8).unwrap();
        assert!(s1.iter().all(|v| *v == [1; 4]));
        assert!(s2.iter().all(|v| *v == [2; 4]));
    }
}
