//! Deterministic payload generators, so every experiment can verify
//! end-to-end data integrity.

use timego_netsim::SimRng;

/// A well-mixed deterministic pattern of `words` words; distinct seeds
/// give distinct streams.
pub fn mixed(words: usize, seed: u64) -> Vec<u32> {
    (0..words as u64)
        .map(|i| {
            let x = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((x >> 32) ^ x) as u32
        })
        .collect()
}

/// A ramp (0, 1, 2, …) — easy to eyeball in examples.
pub fn ramp(words: usize) -> Vec<u32> {
    (0..words as u32).collect()
}

/// Uniformly random words from a seeded generator.
pub fn random(words: usize, seed: u64) -> Vec<u32> {
    let mut rng = SimRng::new(seed);
    (0..words).map(|_| rng.gen_u32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_is_deterministic_and_seed_sensitive() {
        assert_eq!(mixed(16, 1), mixed(16, 1));
        assert_ne!(mixed(16, 1), mixed(16, 2));
    }

    #[test]
    fn ramp_counts_up() {
        assert_eq!(ramp(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_is_reproducible() {
        assert_eq!(random(8, 42), random(8, 42));
    }
}
