//! The parallel sharded substrate: many [`SwitchedNetwork`] shards
//! stepped by a worker pool behind one [`Network`] front.
//!
//! PR 7's self-profiling showed the readiness-driven scheduler spending
//! ~86% of its wall time in the single-threaded `substrate_step` phase
//! at 4096-node permutation. This module attacks that share by
//! partitioning the node space into contiguous *shards*, each a
//! self-contained [`SwitchedNetwork`] over its own fat tree with its own
//! clock, RNG streams, and fault plane. Intra-shard traffic never leaves
//! its shard; cross-shard traffic rides *bounded boundary queues* with a
//! fixed crossing latency.
//!
//! ## Why any thread count produces bit-identical results
//!
//! Two parameters are deliberately kept apart:
//!
//! * **`shards` is a model parameter.** Changing it changes the
//!   simulated machine (smaller subnets, boundary crossings) and
//!   therefore the results — exactly like changing a topology.
//! * **`threads` is an execution resource.** It must never change any
//!   observable result, and the design makes that structural rather
//!   than probabilistic: cross-shard packets are injected *only* by the
//!   (single-threaded) protocol layer between `advance` calls, and a
//!   packet in flight inside a shard can never emit into another shard.
//!   An `advance(n)` is therefore embarrassingly parallel — each worker
//!   steps whole shards to completion with no mid-advance exchanges —
//!   and the conservative-sync condition ("a shard may advance past `t`
//!   only once its neighbors' emissions for `t` are published") is
//!   satisfied trivially: all emissions for the window were published
//!   before the window began, with `cross_latency >= 1` as lookahead.
//!
//! The merge points are all deterministic: wake notifications are
//! reduced in ascending global node-id order, statistics are absorbed
//! shard-by-shard in index order, and restarts come from a single
//! global fault schedule. No result ever depends on which worker
//! stepped which shard first.
//!
//! With `shards == 1` the front delegates everything to the one subnet
//! (same seed, same ids, pass-through wake order), making it byte-for-
//! byte identical to a plain [`SwitchedNetwork`] — which is how the
//! scheduler-equivalence soak pins the sharded substrate against the
//! unsharded one.
//!
//! ## Example
//!
//! ```
//! use timego_netsim::{Network, NodeId, Packet, ShardedConfig, ShardedNetwork};
//!
//! // 16 nodes in 4 shards, stepped by 2 worker threads.
//! let mut net = ShardedNetwork::new(16, ShardedConfig {
//!     shards: 4,
//!     threads: 2,
//!     ..ShardedConfig::default()
//! });
//! // Node 1 and node 9 live in different shards: the packet crosses a
//! // boundary queue instead of a fat tree, but software can't tell.
//! net.try_inject(Packet::new(NodeId::new(1), NodeId::new(9), 7, 0, vec![42])).unwrap();
//! net.drain(1_000);
//! let got = net.try_receive(NodeId::new(9)).expect("delivered");
//! assert_eq!(got.src(), NodeId::new(1));
//! assert_eq!(got.data(), &[42]);
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::fault::{FaultConfig, FaultSchedule};
use crate::id::{NodeId, PacketId};
use crate::network::{Guarantees, InjectError, Network, RxMeta, WakeSet};
use crate::packet::Packet;
use crate::rng::splitmix64;
use crate::stats::{NetStats, NodeOccupancy};
use crate::switched::{SwitchedConfig, SwitchedNetwork};
use crate::time::Time;
use crate::topology::FatTree;

/// Configuration for [`ShardedNetwork`].
///
/// `shards` changes the simulated machine; `threads` only changes how
/// fast the host steps it (results are identical for every thread
/// count — see the [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Number of shards the node space is partitioned into (≥ 1). A
    /// *model* parameter: each shard is its own fat-tree subnet, and
    /// cross-shard traffic pays `cross_latency` instead of tree hops.
    /// `shards == 1` is exactly a plain [`SwitchedNetwork`].
    pub shards: usize,
    /// Worker threads stepping shards during [`Network::advance`]
    /// (≥ 1, clamped to `shards`). A pure *execution* parameter: every
    /// thread count produces bit-identical results. The calling thread
    /// participates as one of the workers, so `threads == 1` spawns no
    /// OS threads at all.
    pub threads: usize,
    /// Cycles a cross-shard packet spends in its boundary queue before
    /// delivery (≥ 1) — the conservative-sync lookahead. Stands in for
    /// the fat-tree hops the packet no longer takes.
    pub cross_latency: u64,
    /// Template configuration for each shard's subnet. Probabilistic
    /// faults apply per shard (independent derived RNG streams);
    /// outage/crash windows are routed to the shard owning their node;
    /// the same faults also govern the boundary path under global ids.
    pub switched: SwitchedConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            threads: 1,
            cross_latency: 8,
            switched: SwitchedConfig::default(),
        }
    }
}

/// One shard: a subnet over shard-local node ids plus the boundary
/// ingress machinery feeding it cross-shard traffic.
#[derive(Debug)]
struct ShardCell {
    /// The shard's own switched network, routing over local ids
    /// `0..len` (its fat tree may be larger; the excess ports idle).
    subnet: SwitchedNetwork<FatTree>,
    /// First global node id of this shard.
    base: usize,
    /// Cross-shard packets in transit to this shard, keyed by absolute
    /// due cycle. Values preserve engine injection order, so delivery
    /// order within a cycle is deterministic.
    ingress: BTreeMap<u64, VecDeque<Packet>>,
    /// Total packets in `ingress`.
    ingress_len: usize,
    /// Per local node: boundary packets accepted but not yet received
    /// by software (calendar + `brx`). Bounds boundary buffering: when
    /// it reaches the rx capacity, further cross-shard injections to
    /// that node backpressure.
    pending_to: Vec<usize>,
    /// Boundary receive queues, one per local node. Drained *before*
    /// the subnet's rx queues (fixed priority, so receive order never
    /// depends on timing).
    brx: Vec<VecDeque<Packet>>,
    /// Statistics for the boundary deliveries this shard performed,
    /// under **global** node ids.
    ingress_stats: NetStats,
    /// Wake marks for boundary deliveries (local ids; the subnet keeps
    /// its own wake set for intra-shard deliveries).
    wake: WakeSet,
}

/// Shared state between the front and its workers.
#[derive(Debug)]
struct Pool {
    cells: Vec<Mutex<ShardCell>>,
    ctl: Mutex<Ctl>,
    /// Signals workers that a new advance window was dispatched.
    work: Condvar,
    /// Signals the front that the last claimed shard finished.
    done: Condvar,
}

#[derive(Debug)]
struct Ctl {
    /// Next unclaimed shard index of the current window (`== cells.len()`
    /// when nothing is claimable).
    next: usize,
    /// Shards claimed but not yet finished this window.
    remaining: usize,
    /// Cycles to step each shard this window.
    cycles: u64,
    shutdown: bool,
}

/// A [`SwitchedNetwork`] sharded across worker threads — see the
/// [module docs](self) for the design and the determinism argument.
///
/// Implements [`Network`] over **global** node ids; internally each
/// shard routes over local ids and every packet crossing the front is
/// remapped, so software never observes the partitioning.
///
/// The aggregate [`stats`](Network::stats) carry exact scalar counters,
/// order verdicts, and latency histograms reduced over all shards; the
/// per-node occupancy table at that level is intentionally empty (it
/// would cost O(nodes) per advance to maintain) — use
/// [`merged_occupancy`](ShardedNetwork::merged_occupancy) to compute it
/// on demand.
pub struct ShardedNetwork {
    nodes: usize,
    threads: usize,
    cross_latency: u64,
    boundary_capacity: usize,
    shard_of: Vec<usize>,
    base: Vec<usize>,
    pool: Arc<Pool>,
    workers: Vec<JoinHandle<()>>,
    now: Time,
    next_id: u64,
    pair_seq: HashMap<(NodeId, NodeId), u64>,
    /// The full fault mix under global ids: decides cross-shard packet
    /// fates and answers all restart queries. Engine-thread only.
    boundary_faults: FaultSchedule,
    /// Boundary-path injection-side counters (global ids).
    boundary_stats: NetStats,
    /// Cached aggregate, refreshed after every mutation.
    merged: NetStats,
    in_flight_cache: usize,
}

fn fat_tree_for(nodes: usize) -> FatTree {
    let mut levels = 1u32;
    while 4usize.pow(levels) < nodes {
        levels += 1;
    }
    FatTree::new(4, levels as usize, 2)
}

/// Derive shard `s`'s subnet seed. With one shard the template seed is
/// used untouched (exact identity with the unsharded substrate); with
/// more, each shard gets a decorrelated stream.
fn shard_seed(seed: u64, shard: usize, shards: usize) -> u64 {
    if shards == 1 {
        seed
    } else {
        splitmix64(seed ^ splitmix64(0x5AAD_ED00 ^ shard as u64))
    }
}

/// Restrict a fault mix to one shard: probabilistic faults copy (each
/// shard draws from its own stream), scripted windows are kept only for
/// nodes the shard owns and remapped to local ids.
fn shard_fault(cfg: &FaultConfig, base: usize, len: usize) -> FaultConfig {
    let owns = |n: NodeId| n.index() >= base && n.index() < base + len;
    FaultConfig {
        outages: cfg
            .outages
            .iter()
            .filter(|w| owns(w.node))
            .map(|w| crate::fault::OutageWindow { node: NodeId::new(w.node.index() - base), ..*w })
            .collect(),
        crashes: cfg
            .crashes
            .iter()
            .filter(|w| owns(w.node))
            .map(|w| crate::fault::CrashWindow { node: NodeId::new(w.node.index() - base), ..*w })
            .collect(),
        ..cfg.clone()
    }
}

/// Step one shard through `cycles` cycles: advance the subnet, then
/// deliver every boundary packet that came due, in due-cycle order and
/// injection order within a cycle. Runs on worker threads; touches
/// nothing outside the cell.
fn step_cell(cell: &mut ShardCell, cycles: u64) {
    for _ in 0..cycles {
        cell.subnet.advance(1);
        let now = cell.subnet.now();
        while let Some((&due, _)) = cell.ingress.first_key_value() {
            if due > now.cycles() {
                break;
            }
            let batch = cell.ingress.remove(&due).expect("key just observed");
            for packet in batch {
                deliver_boundary(cell, packet, now);
            }
        }
    }
}

/// Complete one boundary delivery: CRC-drop corrupted packets at the
/// receiving NI, otherwise enqueue on the node's boundary rx queue and
/// mark its wake. `pending_to` already counts the packet; a corrupt
/// drop releases it here, a delivery releases it when software receives.
fn deliver_boundary(cell: &mut ShardCell, packet: Packet, now: Time) {
    cell.ingress_len -= 1;
    let local = packet.dst().index() - cell.base;
    if packet.is_corrupted() {
        cell.pending_to[local] -= 1;
        cell.ingress_stats.dropped_corrupt += 1;
        return;
    }
    let (src, dst) = (packet.src(), packet.dst());
    let seq = packet.pair_seq().expect("stamped at injection");
    let injected = packet.injected_at();
    cell.brx[local].push_back(packet);
    cell.wake.mark(NodeId::new(local));
    let depth = cell.brx[local].len();
    cell.ingress_stats.record_delivery(src, dst, seq, injected, now, depth);
}

fn worker_loop(pool: &Pool) {
    let mut ctl = lock(&pool.ctl);
    loop {
        if ctl.shutdown {
            return;
        }
        if ctl.next < pool.cells.len() {
            let i = ctl.next;
            ctl.next += 1;
            let cycles = ctl.cycles;
            drop(ctl);
            step_cell(&mut lock(&pool.cells[i]), cycles);
            ctl = lock(&pool.ctl);
            ctl.remaining -= 1;
            if ctl.remaining == 0 {
                pool.done.notify_all();
            }
        } else {
            ctl = pool.work.wait(ctl).expect("pool lock poisoned");
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().expect("pool lock poisoned")
}

impl ShardedNetwork {
    /// Build a sharded network over `nodes` nodes.
    ///
    /// Nodes are partitioned into `cfg.shards` contiguous ranges (as
    /// even as possible); each range gets a fat-tree subnet sized for
    /// it. `cfg.threads - 1` worker threads are spawned (the caller's
    /// thread is the remaining worker) and joined on drop.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `cfg.shards` is zero, `cfg.shards > nodes`,
    /// or `cfg.cross_latency` is zero.
    pub fn new(nodes: usize, cfg: ShardedConfig) -> Self {
        assert!(nodes >= 1, "need at least one node");
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.shards <= nodes, "cannot have more shards than nodes");
        assert!(cfg.cross_latency >= 1, "boundary crossing takes at least 1 cycle");
        let shards = cfg.shards;
        let threads = cfg.threads.max(1).min(shards);

        let mut shard_of = Vec::with_capacity(nodes);
        let mut base = Vec::with_capacity(shards);
        let (q, r) = (nodes / shards, nodes % shards);
        let mut cells = Vec::with_capacity(shards);
        let mut start = 0usize;
        for s in 0..shards {
            let len = q + usize::from(s < r);
            base.push(start);
            shard_of.extend(std::iter::repeat_n(s, len));
            let sub_cfg = SwitchedConfig {
                seed: shard_seed(cfg.switched.seed, s, shards),
                fault: if shards == 1 {
                    cfg.switched.fault.clone()
                } else {
                    shard_fault(&cfg.switched.fault, start, len)
                },
                ..cfg.switched.clone()
            };
            cells.push(Mutex::new(ShardCell {
                subnet: SwitchedNetwork::new(fat_tree_for(len), sub_cfg),
                base: start,
                ingress: BTreeMap::new(),
                ingress_len: 0,
                pending_to: vec![0; len],
                brx: (0..len).map(|_| VecDeque::new()).collect(),
                ingress_stats: NetStats::new(),
                wake: WakeSet::new(len),
            }));
            start += len;
        }

        let pool = Arc::new(Pool {
            cells,
            ctl: Mutex::new(Ctl { next: shards, remaining: 0, cycles: 0, shutdown: false }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || worker_loop(&pool))
            })
            .collect();

        let boundary_faults = FaultSchedule::new(cfg.switched.fault.clone(), cfg.switched.seed);
        let mut net = ShardedNetwork {
            nodes,
            threads,
            cross_latency: cfg.cross_latency,
            boundary_capacity: cfg.switched.rx_queue_capacity,
            shard_of,
            base,
            pool,
            workers,
            now: Time::ZERO,
            next_id: 0,
            pair_seq: HashMap::new(),
            boundary_faults,
            boundary_stats: NetStats::new(),
            merged: NetStats::new(),
            in_flight_cache: 0,
        };
        net.refresh();
        net
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.pool.cells.len()
    }

    /// Worker threads stepping the shards (including the caller's).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shard owning global node `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()]
    }

    /// The per-node occupancy table reduced over every shard (and the
    /// boundary path), indexed by global node id. Computed on demand —
    /// the trait-level [`stats`](Network::stats) deliberately leave it
    /// empty to keep the per-advance aggregate O(shards).
    pub fn merged_occupancy(&self) -> Vec<NodeOccupancy> {
        let mut tmp = NetStats::new();
        for (s, cell) in self.pool.cells.iter().enumerate() {
            let cell = lock(cell);
            tmp.absorb_per_node_offset(cell.subnet.stats(), self.base[s]);
            // Boundary stats are already under global ids.
            tmp.absorb_per_node_offset(&cell.ingress_stats, 0);
        }
        let mut table = tmp.occupancy_table().to_vec();
        table.resize(self.nodes, NodeOccupancy::default());
        table
    }

    fn local(&self, node: NodeId) -> (usize, usize) {
        let s = self.shard_of[node.index()];
        (s, node.index() - self.base[s])
    }

    /// Recompute the aggregate statistics and in-flight count. O(shards)
    /// — each shard contributes its counters, histogram, and in-flight
    /// totals in index order (a fixed reduction order, so the aggregate
    /// never depends on worker interleaving).
    fn refresh(&mut self) {
        let mut merged = NetStats::new();
        merged.absorb(&self.boundary_stats);
        let mut in_flight = self.boundary_faults.held_count();
        for cell in &self.pool.cells {
            let cell = lock(cell);
            merged.absorb(cell.subnet.stats());
            merged.absorb(&cell.ingress_stats);
            in_flight += cell.subnet.in_flight() + cell.ingress_len;
        }
        self.merged = merged;
        self.in_flight_cache = in_flight;
    }

    /// Re-enter boundary packets the reorder fault released: they join
    /// their destination shard's ingress calendar a fresh crossing away.
    /// Like the unsharded substrate's held packets, they bypass the
    /// capacity check (conceptually they are already inside the fabric).
    fn release_boundary_holds(&mut self) {
        if self.boundary_faults.held_count() == 0 {
            return;
        }
        let now = self.now;
        for packet in self.boundary_faults.take_released(now) {
            let (ds, ldst) = self.local(packet.dst());
            let due = now.cycles() + self.cross_latency;
            let mut cell = lock(&self.pool.cells[ds]);
            cell.ingress.entry(due).or_default().push_back(packet);
            cell.ingress_len += 1;
            cell.pending_to[ldst] += 1;
        }
    }
}

impl Network for ShardedNetwork {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn now(&self) -> Time {
        self.now
    }

    fn advance(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.now += cycles;
        if self.workers.is_empty() {
            for cell in &self.pool.cells {
                step_cell(&mut lock(cell), cycles);
            }
        } else {
            {
                let mut ctl = lock(&self.pool.ctl);
                ctl.next = 0;
                ctl.remaining = self.pool.cells.len();
                ctl.cycles = cycles;
                self.pool.work.notify_all();
            }
            // The calling thread is worker 0: claim shards alongside
            // the spawned workers, then wait out the stragglers.
            let mut ctl = lock(&self.pool.ctl);
            loop {
                if ctl.next < self.pool.cells.len() {
                    let i = ctl.next;
                    ctl.next += 1;
                    drop(ctl);
                    step_cell(&mut lock(&self.pool.cells[i]), cycles);
                    ctl = lock(&self.pool.ctl);
                    ctl.remaining -= 1;
                    if ctl.remaining == 0 {
                        self.pool.done.notify_all();
                    }
                } else if ctl.remaining > 0 {
                    ctl = self.pool.done.wait(ctl).expect("pool lock poisoned");
                } else {
                    break;
                }
            }
        }
        self.release_boundary_holds();
        self.refresh();
    }

    fn try_inject(&mut self, mut packet: Packet) -> Result<(), InjectError> {
        let (src, dst) = (packet.src(), packet.dst());
        if dst.index() >= self.nodes {
            return Err(InjectError::BadDestination(dst));
        }
        if src.index() >= self.nodes {
            return Err(InjectError::BadDestination(src));
        }
        let (ss, lsrc) = self.local(src);
        let (ds, ldst) = self.local(dst);

        if ss == ds {
            // Intra-shard (including loopback): the shard's subnet does
            // everything — routing, faults, stats — over local ids.
            packet.set_endpoints(NodeId::new(lsrc), NodeId::new(ldst));
            let out = lock(&self.pool.cells[ss]).subnet.try_inject(packet);
            self.refresh();
            return out;
        }

        // Cross-shard: the boundary path. Fault fate first (mirroring
        // the unsharded substrate, which draws faults before checking
        // capacity), under global ids so windows and probabilities read
        // exactly like the flat network's.
        let faults = self.boundary_faults.on_inject(src, dst, self.now, &mut self.boundary_stats);

        if faults.vanish {
            // Lost outright: software paid for a successful injection.
            self.boundary_stats.injected += 1;
            self.refresh();
            return Ok(());
        }

        if faults.hold {
            // Reorder burst: park it so later crossings overtake it.
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            self.boundary_stats.injected += 1;
            self.boundary_faults.hold(packet, self.now);
            self.refresh();
            return Ok(());
        }

        {
            let mut cell = lock(&self.pool.cells[ds]);
            if cell.pending_to[ldst] >= self.boundary_capacity {
                drop(cell);
                self.boundary_stats.backpressure += 1;
                self.refresh();
                return Err(InjectError::Backpressure);
            }

            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            let duplicate = faults.duplicate.then(|| packet.clone());
            if faults.corrupt {
                packet.corrupt();
            }
            let due = self.now.cycles() + self.cross_latency + faults.extra_delay;
            cell.ingress.entry(due).or_default().push_back(packet);
            cell.ingress_len += 1;
            cell.pending_to[ldst] += 1;
            self.boundary_stats.injected += 1;

            // Link-level retry duplication: a second, identical copy
            // with its own pair sequence, if the boundary has room.
            if let Some(mut dup) = duplicate {
                if cell.pending_to[ldst] < self.boundary_capacity {
                    let seq = self.pair_seq.get_mut(&(src, dst)).expect("pair just stamped");
                    dup.stamp(PacketId::new(self.next_id), *seq, self.now);
                    self.next_id += 1;
                    *seq += 1;
                    let dup_due = self.now.cycles() + self.cross_latency;
                    cell.ingress.entry(dup_due).or_default().push_back(dup);
                    cell.ingress_len += 1;
                    cell.pending_to[ldst] += 1;
                    self.boundary_stats.duplicated += 1;
                }
            }
        }

        // Accepted traffic pushes reorder-held packets toward release.
        self.boundary_faults.note_injection();
        self.release_boundary_holds();
        self.refresh();
        Ok(())
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        if node.index() >= self.nodes {
            return None;
        }
        let (s, local) = self.local(node);
        let base = self.base[s];
        let mut cell = lock(&self.pool.cells[s]);
        // Boundary queue first — a fixed priority, so what software
        // observes never depends on shard timing.
        if let Some(p) = cell.brx[local].pop_front() {
            cell.pending_to[local] -= 1;
            return Some(p);
        }
        cell.subnet.try_receive(NodeId::new(local)).map(|mut p| {
            let (ls, ld) = (p.src().index(), p.dst().index());
            p.set_endpoints(NodeId::new(base + ls), NodeId::new(base + ld));
            p
        })
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        if node.index() >= self.nodes {
            return None;
        }
        let (s, local) = self.local(node);
        let base = self.base[s];
        let mut cell = lock(&self.pool.cells[s]);
        if let Some(p) = cell.brx[local].front() {
            return Some(RxMeta::of(p));
        }
        cell.subnet.rx_peek(NodeId::new(local)).map(|meta| RxMeta {
            src: NodeId::new(base + meta.src.index()),
            ..meta
        })
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        if node.index() >= self.nodes {
            return 0;
        }
        let (s, local) = self.local(node);
        let cell = lock(&self.pool.cells[s]);
        cell.brx[local].len() + cell.subnet.rx_pending(NodeId::new(local))
    }

    fn in_flight(&self) -> usize {
        self.in_flight_cache
    }

    fn stats(&self) -> &NetStats {
        &self.merged
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees::RAW
    }

    fn restarts(&self, node: NodeId) -> u32 {
        self.boundary_faults.restarts(node, self.now)
    }

    fn restarts_hint(&self) -> u64 {
        self.boundary_faults.restarts_total(self.now)
    }

    fn next_restart_at(&self) -> Option<Time> {
        self.boundary_faults.next_restart_after(self.now)
    }

    fn take_delivered(&mut self) -> Vec<NodeId> {
        if self.pool.cells.len() == 1 {
            // Exact pass-through (boundary wake is necessarily empty):
            // the unsharded substrate's wake order, byte for byte.
            return lock(&self.pool.cells[0]).subnet.take_delivered();
        }
        let mut nodes = Vec::new();
        for (s, cell) in self.pool.cells.iter().enumerate() {
            let mut cell = lock(cell);
            let base = self.base[s];
            for n in cell.subnet.take_delivered() {
                nodes.push(NodeId::new(base + n.index()));
            }
            for n in cell.wake.take() {
                nodes.push(NodeId::new(base + n.index()));
            }
        }
        // Canonical merge order: ascending global node id, independent
        // of shard iteration and worker interleaving alike.
        nodes.sort_unstable_by_key(|n| n.index());
        nodes.dedup();
        nodes
    }
}

impl Drop for ShardedNetwork {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        match self.pool.ctl.lock() {
            Ok(mut ctl) => ctl.shutdown = true,
            Err(poisoned) => poisoned.into_inner().shutdown = true,
        }
        self.pool.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ShardedNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNetwork")
            .field("nodes", &self.nodes)
            .field("shards", &self.pool.cells.len())
            .field("threads", &self.threads)
            .field("now", &self.now)
            .field("in_flight", &self.in_flight_cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashWindow;
    use crate::switched::RouteStrategy;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
        Packet::new(n(src), n(dst), 1, seq, vec![seq; 4])
    }

    fn cfg(shards: usize, threads: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            threads,
            cross_latency: 4,
            switched: SwitchedConfig {
                rx_queue_capacity: 64,
                link_queue_capacity: 16,
                seed: 77,
                ..SwitchedConfig::default()
            },
        }
    }

    #[test]
    fn cross_shard_traffic_delivers_with_global_ids() {
        let mut net = ShardedNetwork::new(16, cfg(4, 1));
        assert_eq!(net.shard_of(n(1)), 0);
        assert_eq!(net.shard_of(n(9)), 2);
        net.try_inject(pkt(1, 9, 5)).unwrap();
        assert_eq!(net.in_flight(), 1);
        assert!(net.drain(1_000));
        let got = net.try_receive(n(9)).expect("delivered");
        assert_eq!(got.src(), n(1));
        assert_eq!(got.dst(), n(9));
        assert_eq!(got.header(), 5);
        assert_eq!(net.stats().delivered, 1);
        assert!(net.stats().latency.mean() >= 4.0, "crossing pays cross_latency");
    }

    #[test]
    fn intra_shard_traffic_remaps_both_ways() {
        let mut net = ShardedNetwork::new(16, cfg(4, 1));
        // 12 and 15 both live in shard 3 (locals 0 and 3).
        net.try_inject(pkt(12, 15, 9)).unwrap();
        assert!(net.drain(1_000));
        let meta = net.rx_peek(n(15)).expect("peekable");
        assert_eq!(meta.src, n(12), "peek reports the global source");
        let got = net.try_receive(n(15)).expect("delivered");
        assert_eq!((got.src(), got.dst()), (n(12), n(15)));
    }

    #[test]
    fn single_shard_is_identical_to_plain_switched() {
        let template = SwitchedConfig {
            strategy: RouteStrategy::Adaptive { candidates: 4 },
            rx_queue_capacity: 64,
            link_queue_capacity: 16,
            seed: 99,
            fault: FaultConfig {
                duplicate_prob: 0.1,
                delay_jitter: 6,
                corruption_prob: 0.05,
                ..FaultConfig::default()
            },
            ..SwitchedConfig::default()
        };
        let mut flat = SwitchedNetwork::new(fat_tree_for(16), template.clone());
        let mut sharded = ShardedNetwork::new(
            16,
            ShardedConfig { shards: 1, threads: 1, cross_latency: 4, switched: template },
        );
        let mut flat_rx = Vec::new();
        let mut shard_rx = Vec::new();
        let mut flat_wakes = Vec::new();
        let mut shard_wakes = Vec::new();
        for s in 0..120u32 {
            let p = pkt((s as usize) % 8, 8 + (s as usize) % 8, s);
            assert_eq!(flat.try_inject(p.clone()).is_ok(), sharded.try_inject(p).is_ok());
            flat.advance(2);
            sharded.advance(2);
            flat_wakes.push(flat.take_delivered());
            shard_wakes.push(sharded.take_delivered());
            for i in 0..16 {
                while let Some(p) = flat.try_receive(n(i)) {
                    flat_rx.push((i, p.header(), p.pair_seq()));
                }
                while let Some(p) = sharded.try_receive(n(i)) {
                    shard_rx.push((i, p.header(), p.pair_seq()));
                }
            }
        }
        assert_eq!(flat_rx, shard_rx, "one shard must be byte-identical to flat");
        assert_eq!(flat_wakes, shard_wakes, "wake order passes through unsorted");
        let (a, b) = (flat.stats(), sharded.stats());
        assert_eq!(
            (a.injected, a.delivered, a.dropped_corrupt, a.duplicated),
            (b.injected, b.delivered, b.dropped_corrupt, b.duplicated)
        );
        assert_eq!(a.latency.count(), b.latency.count());
        assert_eq!(a.order.in_order(), b.order.in_order());
    }

    #[test]
    fn results_are_invariant_across_thread_counts() {
        let run = |threads: usize| {
            let mut net = ShardedNetwork::new(
                16,
                ShardedConfig {
                    switched: SwitchedConfig {
                        fault: FaultConfig {
                            duplicate_prob: 0.08,
                            delay_jitter: 5,
                            reorder_prob: 0.1,
                            ..FaultConfig::default()
                        },
                        ..cfg(4, threads).switched
                    },
                    ..cfg(4, threads)
                },
            );
            let mut rx = Vec::new();
            let mut wakes = Vec::new();
            for s in 0..200u32 {
                // A mix of intra-shard and cross-shard pairs.
                let src = (s as usize) % 16;
                let dst = (src + 1 + (s as usize) % 11) % 16;
                let _ = net.try_inject(pkt(src, dst, s));
                net.advance(1 + (s as u64) % 3);
                wakes.push(net.take_delivered());
                for i in 0..16 {
                    while let Some(p) = net.try_receive(n(i)) {
                        rx.push((i, p.src().index(), p.header()));
                    }
                }
            }
            net.drain(10_000);
            let st = net.stats().clone();
            (
                rx,
                wakes,
                st.injected,
                st.delivered,
                st.duplicated,
                st.reordered,
                st.latency.count(),
                net.now().cycles(),
            )
        };
        let t1 = run(1);
        assert_eq!(t1, run(2), "2 threads must match 1 thread bit for bit");
        assert_eq!(t1, run(4), "4 threads must match 1 thread bit for bit");
    }

    #[test]
    fn wake_merge_is_in_ascending_node_order() {
        let mut net = ShardedNetwork::new(16, cfg(4, 2));
        // Cross-shard injections toward descending destinations.
        for (i, dst) in [15usize, 2, 9, 6].into_iter().enumerate() {
            net.try_inject(pkt((dst + 5) % 16, dst, i as u32)).unwrap();
        }
        net.drain(1_000);
        let wakes = net.take_delivered();
        assert!(!wakes.is_empty());
        let mut sorted = wakes.clone();
        sorted.sort_unstable_by_key(|n| n.index());
        assert_eq!(wakes, sorted, "merged wakes must come out in node-id order");
    }

    #[test]
    fn boundary_queue_backpressures_when_full() {
        let mut net = ShardedNetwork::new(
            8,
            ShardedConfig {
                shards: 2,
                threads: 1,
                cross_latency: 2,
                switched: SwitchedConfig { rx_queue_capacity: 3, ..SwitchedConfig::default() },
            },
        );
        // Node 6 lives in shard 1; never drain it.
        let mut accepted = 0;
        for s in 0..32u32 {
            if net.try_inject(pkt(0, 6, s)).is_ok() {
                accepted += 1;
            }
            net.advance(4);
        }
        assert_eq!(accepted, 3, "bounded boundary buffering must refuse the rest");
        assert!(net.stats().backpressure > 0);
        // Draining the node frees boundary space again.
        while net.try_receive(n(6)).is_some() {}
        assert!(net.try_inject(pkt(0, 6, 99)).is_ok());
    }

    #[test]
    fn crash_window_silences_cross_shard_traffic_and_reports_restart() {
        let mut net = ShardedNetwork::new(
            16,
            ShardedConfig {
                switched: SwitchedConfig {
                    fault: FaultConfig {
                        crashes: vec![CrashWindow { node: n(9), start: 0, end: 50 }],
                        ..FaultConfig::default()
                    },
                    ..cfg(4, 1).switched
                },
                ..cfg(4, 1)
            },
        );
        net.try_inject(pkt(1, 9, 0)).unwrap(); // crossing into the dead node
        assert_eq!(net.stats().crash_drops, 1);
        assert_eq!(net.restarts(n(9)), 0);
        assert_eq!(net.next_restart_at(), Some(Time::from_cycles(50)));
        net.advance(60);
        assert_eq!(net.restarts(n(9)), 1, "restart visible once the window closes");
        assert_eq!(net.restarts_hint(), 1);
        net.try_inject(pkt(1, 9, 1)).unwrap();
        assert!(net.drain(1_000));
        assert_eq!(net.stats().delivered, 1, "traffic flows after the restart");
    }

    #[test]
    fn merged_occupancy_reduces_over_shards_and_boundary() {
        let mut net = ShardedNetwork::new(16, cfg(4, 1));
        net.try_inject(pkt(1, 2, 0)).unwrap(); // intra-shard
        net.try_inject(pkt(1, 9, 1)).unwrap(); // cross-shard
        assert!(net.drain(1_000));
        let occ = net.merged_occupancy();
        assert_eq!(occ.len(), 16);
        assert_eq!(occ[1].delivered_from, 2);
        assert_eq!(occ[2].delivered_to, 1);
        assert_eq!(occ[9].delivered_to, 1);
        // Trait-level per-node table is documented empty.
        assert!(net.stats().occupancy_table().is_empty());
    }

    #[test]
    fn uneven_partitions_cover_every_node() {
        let mut net = ShardedNetwork::new(10, ShardedConfig { shards: 3, ..cfg(3, 1) });
        for dst in 0..10 {
            net.try_inject(pkt((dst + 3) % 10, dst, dst as u32)).unwrap();
        }
        assert!(net.drain(10_000));
        assert_eq!(net.stats().delivered, 10);
        for dst in 0..10 {
            assert!(net.try_receive(n(dst)).is_some(), "node {dst} got its packet");
        }
    }
}
