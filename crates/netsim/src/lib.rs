//! # timego-netsim — routing-network substrates
//!
//! Discrete, cycle-stepped packet-network simulators for the `timego`
//! reproduction of Karamcheti & Chien (ASPLOS 1994). The paper's software
//! overheads are consequences of three *network features*:
//!
//! * **arbitrary delivery order** — adaptive/multipath routing lets
//!   packets between the same pair of nodes overtake each other;
//! * **finite buffering** — network and node buffers are bounded, so
//!   injection can be refused (backpressure) and unextracted packets can
//!   stall the network;
//! * **fault detection without fault tolerance** — corrupted packets are
//!   detected (CRC) and discarded, never repaired.
//!
//! This crate provides three interchangeable substrates behind the
//! [`Network`] trait:
//!
//! * [`SwitchedNetwork`] — a CM-5-like store-and-forward network over a
//!   pluggable [`Topology`] (fat tree, mesh, torus) with deterministic,
//!   adaptive, or randomized minimal routing, bounded link and receive
//!   queues, and probabilistic packet corruption. Adaptive and randomized
//!   routing genuinely reorder packets; deterministic routing preserves
//!   per-pair order.
//! * [`CrNetwork`] — a Compressionless-Routing-like substrate (§4 of the
//!   paper): per-pair in-order delivery, header rejection with automatic
//!   hardware retry (end-to-end flow control), and packet-level hardware
//!   retransmission of corrupted packets (fault tolerance).
//! * [`ScriptedNetwork`] — an instant, reliable network whose delivery
//!   order follows a [`DeliveryScript`]. The paper's Table 2 assumes
//!   *exactly half* the packets of a stream arrive out of order;
//!   [`DeliveryScript::AlternateSwap`] reproduces that assumption
//!   deterministically, which is how the table-regeneration benches run.
//!
//! [`ShardedNetwork`] wraps many [`SwitchedNetwork`] shards behind the
//! same trait and steps them on a worker pool; its results are
//! bit-identical for every thread count (see the [`sharded`] module
//! docs for the argument).
//!
//! ## Example
//!
//! ```
//! use timego_netsim::{Network, NodeId, Packet, ScriptedNetwork, DeliveryScript};
//!
//! let mut net = ScriptedNetwork::new(2, DeliveryScript::InOrder);
//! let src = NodeId::new(0);
//! let dst = NodeId::new(1);
//! net.try_inject(Packet::new(src, dst, 7, 0, vec![1, 2, 3, 4])).unwrap();
//! net.advance(1);
//! let got = net.try_receive(dst).expect("delivered");
//! assert_eq!(got.data(), &[1, 2, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cr;
mod dual;
mod fault;
mod id;
mod network;
mod packet;
pub mod rng;
mod scripted;
pub mod sharded;
mod stats;
mod switched;
mod time;
pub mod topology;
mod trace;
mod wormhole;

pub use cr::{CrConfig, CrNetwork};
pub use dual::DualNetwork;
pub use fault::{CrashWindow, FaultConfig, FaultSchedule, OutageWindow};
pub use id::{NodeId, PacketId};
pub use network::{Guarantees, InjectError, Network, RxMeta, WakeSet};
pub use packet::Packet;
pub use rng::SimRng;
pub use scripted::{DeliveryScript, ScriptedNetwork};
pub use sharded::{ShardedConfig, ShardedNetwork};
pub use stats::{LatencyStats, NetStats, NodeOccupancy, OrderTracker};
pub use switched::{RouteStrategy, SwappedContext, SwitchedConfig, SwitchedNetwork};
pub use time::Time;
pub use topology::{FatTree, Hypercube, LinkId, Mesh2D, Topology, Torus2D};
pub use trace::{TraceBuffer, TraceEvent, TraceKind};
pub use wormhole::{CrMode, VcDiscipline, WormholeConfig, WormholeNetwork};
