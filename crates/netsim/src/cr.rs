//! The Compressionless-Routing-like substrate (§4 of the paper).
//!
//! Compressionless Routing exploits flow-control backpressure so that a
//! message must begin arriving at its destination before it has fully
//! entered the network. Three consequences matter to software:
//!
//! * **order-preserving transmission** — packets of one `(src, dst)`
//!   pair cannot overtake each other;
//! * **deadlock freedom independent of acceptance** — a destination that
//!   cannot absorb a packet *rejects the header*; the path is torn down
//!   and the NI retries later, so a stuck receiver never wedges the
//!   network (this is hardware end-to-end flow control);
//! * **packet-level fault tolerance** — acceptance of the last flit acts
//!   as an implicit end-to-end acknowledgement; a corrupted packet is
//!   killed and retransmitted by hardware.
//!
//! The model here is behavioral: per-pair FIFO channels with a bounded
//! in-flight window (the held path), delivery latency, probabilistic
//! corruption repaired by hardware retransmission, and rejection +
//! backoff when the destination buffer is full. Software on top of this
//! substrate observes [`Guarantees::HIGH_LEVEL`].

use std::collections::{HashMap, VecDeque};

use crate::id::{NodeId, PacketId};
use crate::network::{Guarantees, InjectError, Network, RxMeta, WakeSet};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::Time;

/// Configuration for [`CrNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrConfig {
    /// Number of attached nodes.
    pub nodes: usize,
    /// Delivery latency in cycles (header launch to last flit).
    pub base_latency: u64,
    /// Maximum packets in flight per `(src, dst)` pair — the capacity of
    /// the held wormhole path. Injection beyond this backpressures.
    pub pair_window: usize,
    /// Packets a node's receive queue holds before headers are rejected.
    pub rx_queue_capacity: usize,
    /// Cycles before a rejected header is retried by the NI.
    pub reject_backoff: u64,
    /// Probability a packet is corrupted in flight. The hardware
    /// detects, kills, and retransmits it (software never notices).
    pub corruption_prob: f64,
    /// Extra cycles a hardware retransmission costs.
    pub retransmit_penalty: u64,
    /// RNG seed.
    pub seed: u64,
}

impl CrConfig {
    /// A reasonable default for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        CrConfig {
            nodes,
            base_latency: 6,
            pair_window: 4,
            rx_queue_capacity: 16,
            reject_backoff: 8,
            corruption_prob: 0.0,
            retransmit_penalty: 12,
            seed: 0xC0FFEE,
        }
    }
}

#[derive(Debug, Clone)]
struct CrTransit {
    packet: Packet,
    deliver_at: Time,
}

/// A Compressionless-Routing-like network: in-order, reliable,
/// flow-controlled packet delivery.
#[derive(Debug, Clone)]
pub struct CrNetwork {
    cfg: CrConfig,
    now: Time,
    pairs: HashMap<(NodeId, NodeId), VecDeque<CrTransit>>,
    rx: Vec<VecDeque<Packet>>,
    next_id: u64,
    pair_seq: HashMap<(NodeId, NodeId), u64>,
    in_flight: usize,
    stats: NetStats,
    rng: SimRng,
    wake: WakeSet,
}

impl CrNetwork {
    /// Build a CR network.
    ///
    /// # Panics
    ///
    /// Panics if `nodes`, `pair_window` or `rx_queue_capacity` is zero.
    pub fn new(cfg: CrConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.pair_window >= 1, "pair window must be at least 1");
        assert!(cfg.rx_queue_capacity >= 1, "rx queue must hold at least 1 packet");
        let rx = (0..cfg.nodes).map(|_| VecDeque::new()).collect();
        let rng = SimRng::new(cfg.seed);
        let wake = WakeSet::new(cfg.nodes);
        CrNetwork {
            cfg,
            now: Time::ZERO,
            pairs: HashMap::new(),
            rx,
            next_id: 0,
            pair_seq: HashMap::new(),
            in_flight: 0,
            stats: NetStats::new(),
            rng,
            wake,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CrConfig {
        &self.cfg
    }

    fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        let cap = self.cfg.rx_queue_capacity;
        let backoff = self.cfg.reject_backoff;
        let mut delivered: Vec<Packet> = Vec::new();
        for queue in self.pairs.values_mut() {
            // In-order: only the head of a pair channel may complete.
            while let Some(head) = queue.front() {
                if head.deliver_at > now {
                    break;
                }
                let dst = head.packet.dst().index();
                let room = cap - self_rx_len(&self.rx, dst).min(cap);
                let pending_here = delivered
                    .iter()
                    .filter(|p| p.dst().index() == dst)
                    .count();
                if pending_here < room {
                    let t = queue.pop_front().expect("head exists");
                    delivered.push(t.packet);
                } else {
                    // Header rejected: tear down, automatic NI retry.
                    self.stats.rejects += 1;
                    queue.front_mut().expect("head exists").deliver_at = now + backoff;
                    break;
                }
            }
        }
        for packet in delivered {
            self.in_flight -= 1;
            let (src, dst) = (packet.src(), packet.dst());
            let seq = packet.pair_seq().expect("stamped at injection");
            let injected = packet.injected_at();
            self.rx[dst.index()].push_back(packet);
            self.wake.mark(dst);
            let depth = self.rx[dst.index()].len();
            self.stats
                .record_delivery(src, dst, seq, injected, self.now, depth);
        }
        self.pairs.retain(|_, q| !q.is_empty());
    }
}

fn self_rx_len(rx: &[VecDeque<Packet>], node: usize) -> usize {
    rx[node].len()
}

impl Network for CrNetwork {
    fn num_nodes(&self) -> usize {
        self.cfg.nodes
    }

    fn now(&self) -> Time {
        self.now
    }

    fn advance(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn try_inject(&mut self, mut packet: Packet) -> Result<(), InjectError> {
        let (src, dst) = (packet.src(), packet.dst());
        if dst.index() >= self.cfg.nodes {
            return Err(InjectError::BadDestination(dst));
        }
        if src.index() >= self.cfg.nodes {
            return Err(InjectError::BadDestination(src));
        }
        let queue = self.pairs.entry((src, dst)).or_default();
        if queue.len() >= self.cfg.pair_window {
            self.stats.backpressure += 1;
            return Err(InjectError::Backpressure);
        }
        let seq = self.pair_seq.entry((src, dst)).or_insert(0);
        packet.stamp(PacketId::new(self.next_id), *seq, self.now);
        self.next_id += 1;
        *seq += 1;

        let mut deliver_at = self.now + self.cfg.base_latency;
        // Hardware fault tolerance: corruption is detected via the
        // killed-path mechanism and the packet is retransmitted — it
        // just takes longer. Retransmissions can themselves be hit.
        while self.cfg.corruption_prob > 0.0 && self.rng.gen_bool(self.cfg.corruption_prob) {
            self.stats.hw_retransmits += 1;
            deliver_at += self.cfg.retransmit_penalty;
        }
        packet.repair();

        queue.push_back(CrTransit { packet, deliver_at });
        self.in_flight += 1;
        self.stats.injected += 1;
        Ok(())
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        self.rx.get(node.index())?.front().map(RxMeta::of)
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        self.rx.get_mut(node.index())?.pop_front()
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        self.rx.get(node.index()).map_or(0, VecDeque::len)
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn take_delivered(&mut self) -> Vec<NodeId> {
        self.wake.take()
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees::HIGH_LEVEL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
        Packet::new(n(src), n(dst), 1, seq, vec![seq; 4])
    }

    fn net(nodes: usize) -> CrNetwork {
        CrNetwork::new(CrConfig::new(nodes))
    }

    #[test]
    fn delivers_in_order_always() {
        let mut net = net(4);
        let mut sent = 0u32;
        let mut got = Vec::new();
        while sent < 100 || net.in_flight() > 0 {
            if sent < 100 && net.try_inject(pkt(0, 3, sent)).is_ok() {
                sent += 1;
            }
            net.advance(1);
            while let Some(p) = net.try_receive(n(3)) {
                got.push(p.header());
            }
        }
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "strictly in order");
        assert_eq!(net.stats().order.out_of_order(), 0);
    }

    #[test]
    fn window_backpressures_injection() {
        let mut net = net(2);
        let mut accepted = 0;
        for s in 0..32u32 {
            if net.try_inject(pkt(0, 1, s)).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, net.config().pair_window as u32);
        assert!(net.stats().backpressure > 0);
    }

    #[test]
    fn corruption_is_repaired_by_hardware() {
        let mut net = CrNetwork::new(CrConfig {
            corruption_prob: 0.4,
            seed: 5,
            ..CrConfig::new(2)
        });
        let mut sent = 0u32;
        let mut got = Vec::new();
        while sent < 200 || net.in_flight() > 0 {
            if sent < 200 && net.try_inject(pkt(0, 1, sent)).is_ok() {
                sent += 1;
            }
            net.advance(1);
            while let Some(p) = net.try_receive(n(1)) {
                assert!(!p.is_corrupted());
                got.push(p.header());
            }
        }
        // Reliable: every packet arrives, in order, despite corruption.
        assert_eq!(got.len(), 200);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(net.stats().hw_retransmits > 20, "{}", net.stats());
        assert_eq!(net.stats().dropped_corrupt, 0);
    }

    #[test]
    fn full_receiver_causes_rejects_not_deadlock() {
        let mut net = CrNetwork::new(CrConfig {
            rx_queue_capacity: 2,
            pair_window: 8,
            ..CrConfig::new(3)
        });
        // Node 1 never polls; node 0 keeps sending to it.
        for s in 0..8u32 {
            net.try_inject(pkt(0, 1, s)).unwrap();
        }
        net.advance(200);
        assert!(net.stats().rejects > 0, "headers should be rejected");
        // Crucially, traffic between *other* nodes still flows — the
        // stuck receiver does not wedge the network.
        net.try_inject(pkt(0, 2, 0)).unwrap();
        net.advance(200);
        assert!(net.try_receive(n(2)).is_some());
        // And when node 1 finally polls, everything drains in order.
        let mut got = Vec::new();
        for _ in 0..10_000 {
            while let Some(p) = net.try_receive(n(1)) {
                got.push(p.header());
            }
            if got.len() == 8 {
                break;
            }
            net.advance(1);
        }
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_pairs_progress_independently() {
        let mut net = net(4);
        net.try_inject(pkt(0, 1, 0)).unwrap();
        net.try_inject(pkt(2, 3, 0)).unwrap();
        net.advance(net.config().base_latency + 1);
        assert!(net.try_receive(n(1)).is_some());
        assert!(net.try_receive(n(3)).is_some());
    }

    #[test]
    fn guarantees_are_high_level() {
        let net = net(2);
        assert_eq!(net.guarantees(), Guarantees::HIGH_LEVEL);
    }

    #[test]
    fn bad_destination_is_rejected() {
        let mut net = net(2);
        assert!(matches!(
            net.try_inject(pkt(0, 5, 0)),
            Err(InjectError::BadDestination(_))
        ));
    }
}
