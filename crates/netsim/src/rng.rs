//! A small, self-contained deterministic PRNG.
//!
//! The simulator needs randomness for routing choices, fault schedules
//! and workload generation, and it needs the streams to be
//! bit-reproducible across platforms and builds (fault schedules are
//! part of experiment identity). A seeded xoshiro256** generator with
//! splitmix64 state expansion gives both without any external
//! dependency.

/// One splitmix64 step: maps any 64-bit value to a well-mixed 64-bit
/// value. Used for seeding and for cheap stateless hashing (e.g.
/// deterministic per-attempt retry jitter).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator seeded via splitmix64.
///
/// Identical seeds produce identical streams on every platform; the
/// generator is `Clone`, so a schedule can be forked and replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Build a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        SimRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound` (`0` when `bound <= 1`). Uses
    /// Lemire's multiply-shift reduction with rejection, so the result
    /// is unbiased.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        if bound <= 1 {
            return 0;
        }
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
            // Rejected to stay unbiased; draw again.
        }
    }

    /// A uniform value in `0..=bound` (inclusive).
    pub fn gen_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            return self.next_u64();
        }
        self.gen_index((bound + 1) as usize) as u64
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform `u32`.
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_pinned_across_builds() {
        // Fault schedules are part of experiment identity: the first
        // outputs for seed 0 must never change.
        let mut r = SimRng::new(0);
        assert_eq!(r.next_u64(), 11091344671253066420);
        assert_eq!(r.next_u64(), 13793997310169335082);
        assert_eq!(r.next_u64(), 1900383378846508768);
    }

    #[test]
    fn gen_index_in_range_and_covers() {
        let mut r = SimRng::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_index(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        assert_eq!(r.gen_index(0), 0);
        assert_eq!(r.gen_index(1), 0);
    }

    #[test]
    fn gen_inclusive_hits_both_ends() {
        let mut r = SimRng::new(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..300 {
            match r.gen_inclusive(3) {
                0 => lo = true,
                3 => hi = true,
                v => assert!(v <= 3),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "seed 13 moves something");
    }

    #[test]
    fn splitmix_is_stateless_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
