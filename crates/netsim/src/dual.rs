//! Two physical networks presented as one — the CM-5's paired data
//! networks.
//!
//! Footnote 6 of the paper: *"The CMAM round-trip protocol using the
//! two separate CM-5 networks however is safe."* Request/reply traffic
//! on a single finite-buffer network can deadlock: every node's receive
//! queue fills with requests, replies cannot be injected, and no one
//! can drain anything. Splitting requests and replies onto independent
//! networks breaks the cycle: replies always have a clear channel.
//!
//! [`DualNetwork`] composes any two [`Network`]s and routes injections
//! by hardware tag: tags at or above `reply_tag_min` ride the reply
//! network. Receives drain the reply network first (reply priority),
//! which is what makes round-trip protocols safe to run from within a
//! handler.

use crate::id::NodeId;
use crate::network::{Guarantees, InjectError, Network, RxMeta};
use crate::packet::Packet;
use crate::stats::NetStats;
use crate::time::Time;

/// Two independent networks behind one [`Network`] interface, with
/// tag-based traffic splitting.
#[derive(Debug)]
pub struct DualNetwork<A, B> {
    request: A,
    reply: B,
    reply_tag_min: u8,
    merged: NetStats,
}

impl<A: Network, B: Network> DualNetwork<A, B> {
    /// Compose `request` and `reply` networks; packets with
    /// `tag >= reply_tag_min` use the reply network.
    ///
    /// # Panics
    ///
    /// Panics if the two networks disagree on node count.
    pub fn new(request: A, reply: B, reply_tag_min: u8) -> Self {
        assert_eq!(
            request.num_nodes(),
            reply.num_nodes(),
            "both networks must connect the same nodes"
        );
        DualNetwork {
            request,
            reply,
            reply_tag_min,
            merged: NetStats::new(),
        }
    }

    /// The request-side network and its statistics.
    pub fn request_side(&self) -> &A {
        &self.request
    }

    /// The reply-side network and its statistics.
    pub fn reply_side(&self) -> &B {
        &self.reply
    }

    /// The tag threshold routing onto the reply network.
    pub fn reply_tag_min(&self) -> u8 {
        self.reply_tag_min
    }

    fn refresh_merged(&mut self) {
        let a = self.request.stats();
        let b = self.reply.stats();
        // Scalar statistics merge; delivery-order accounting stays
        // per-side (each side numbers its own pair sequences), so use
        // `request_side()`/`reply_side()` for order statistics.
        self.merged.injected = a.injected + b.injected;
        self.merged.delivered = a.delivered + b.delivered;
        self.merged.backpressure = a.backpressure + b.backpressure;
        self.merged.dropped_corrupt = a.dropped_corrupt + b.dropped_corrupt;
        self.merged.hw_retransmits = a.hw_retransmits + b.hw_retransmits;
        self.merged.rejects = a.rejects + b.rejects;
        self.merged.dropped_fault = a.dropped_fault + b.dropped_fault;
        self.merged.duplicated = a.duplicated + b.duplicated;
        self.merged.reordered = a.reordered + b.reordered;
        self.merged.jitter_delayed = a.jitter_delayed + b.jitter_delayed;
        self.merged.outage_drops = a.outage_drops + b.outage_drops;
        self.merged.crash_drops = a.crash_drops + b.crash_drops;
        self.merged.merge_per_node(a, b);
    }
}

impl<A: Network, B: Network> Network for DualNetwork<A, B> {
    fn num_nodes(&self) -> usize {
        self.request.num_nodes()
    }

    fn now(&self) -> Time {
        self.request.now()
    }

    fn advance(&mut self, cycles: u64) {
        self.request.advance(cycles);
        self.reply.advance(cycles);
        self.refresh_merged();
    }

    fn try_inject(&mut self, packet: Packet) -> Result<(), InjectError> {
        let out = if packet.tag() >= self.reply_tag_min {
            self.reply.try_inject(packet)
        } else {
            self.request.try_inject(packet)
        };
        self.refresh_merged();
        out
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        // Reply priority: drain replies before requests, so a node
        // blocked injecting can always make progress on incoming
        // replies first.
        let got = self
            .reply
            .try_receive(node)
            .or_else(|| self.request.try_receive(node));
        if got.is_some() {
            self.refresh_merged();
        }
        got
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        // Mirror try_receive's reply priority.
        self.reply
            .rx_peek(node)
            .or_else(|| self.request.rx_peek(node))
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        self.request.rx_pending(node) + self.reply.rx_pending(node)
    }

    fn in_flight(&self) -> usize {
        self.request.in_flight() + self.reply.in_flight()
    }

    fn stats(&self) -> &NetStats {
        &self.merged
    }

    fn guarantees(&self) -> Guarantees {
        let a = self.request.guarantees();
        let b = self.reply.guarantees();
        Guarantees {
            in_order: a.in_order && b.in_order,
            reliable: a.reliable && b.reliable,
            flow_controlled: a.flow_controlled && b.flow_controlled,
        }
    }

    fn restarts(&self, node: NodeId) -> u32 {
        // A crash window scripted on either side means the node was
        // down; both sides normally script the same windows, so take
        // the larger count rather than double-counting.
        self.request.restarts(node).max(self.reply.restarts(node))
    }

    fn restarts_hint(&self) -> u64 {
        // Sum of the sides is a valid change detector even though the
        // per-node counter above takes the max: any per-node change
        // moves at least one side's total.
        self.request.restarts_hint() + self.reply.restarts_hint()
    }

    fn next_restart_at(&self) -> Option<Time> {
        // Earliest across both sides: a restart on either side must not
        // be jumped over.
        match (self.request.next_restart_at(), self.reply.next_restart_at()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn take_delivered(&mut self) -> Vec<NodeId> {
        // Union of both sides' wake sets; a node delivered to on both
        // sides appears once.
        let mut nodes = self.request.take_delivered();
        for n in self.reply.take_delivered() {
            if !nodes.contains(&n) {
                nodes.push(n);
            }
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switched::{SwitchedConfig, SwitchedNetwork};
    use crate::topology::Mesh2D;

    const REPLY_MIN: u8 = 128;

    fn tight() -> SwitchedNetwork<Mesh2D> {
        SwitchedNetwork::new(
            Mesh2D::new(2, 1),
            SwitchedConfig {
                link_queue_capacity: 4,
                rx_queue_capacity: 4,
                ..SwitchedConfig::default()
            },
        )
    }

    fn pkt(src: usize, dst: usize, tag: u8, seq: u32) -> Packet {
        Packet::new(NodeId::new(src), NodeId::new(dst), tag, seq, vec![seq; 4])
    }

    /// The classic fetch-deadlock workload: both nodes first flood each
    /// other with requests until the network saturates, then serve —
    /// where "serving" a request means the handler must inject the
    /// reply before the node extracts anything else. On one
    /// finite-buffer network the replies get trapped behind the stuck
    /// requests and everything wedges; on split networks replies always
    /// drain. Returns (requests completed, finished without wedging).
    fn run_request_reply(net: &mut dyn Network, rounds: u32) -> (u32, bool) {
        let mut requests_sent = [0u32; 2];

        // Flood phase: pump requests until the network refuses for a
        // sustained stretch (saturation) or everything is accepted.
        let mut stuck = 0;
        while stuck < 50 && (requests_sent[0] < rounds || requests_sent[1] < rounds) {
            let mut progressed = false;
            for (me, sent) in requests_sent.iter_mut().enumerate() {
                if *sent < rounds && net.try_inject(pkt(me, 1 - me, 1, *sent)).is_ok() {
                    *sent += 1;
                    progressed = true;
                }
            }
            net.advance(1);
            stuck = if progressed { 0 } else { stuck + 1 };
        }

        // Serve phase. A fetch reply carries data and spans two
        // packets; the handler must inject the whole reply before the
        // node may extract anything else (it can issue at most one
        // packet per cycle).
        const REPLY_PACKETS: u32 = 2;
        let total: u32 = requests_sent.iter().sum();
        let mut reply_pkts_owed = [0u32; 2];
        let mut reply_pkts_got = 0u32;
        for _ in 0..20_000 {
            for me in 0..2usize {
                let peer = 1 - me;
                if reply_pkts_owed[me] > 0 {
                    if net.try_inject(pkt(me, peer, REPLY_MIN, 0)).is_ok() {
                        reply_pkts_owed[me] -= 1;
                    }
                    continue; // still inside the handler either way
                }
                if let Some(p) = net.try_receive(NodeId::new(me)) {
                    if p.tag() >= REPLY_MIN {
                        reply_pkts_got += 1;
                    } else {
                        reply_pkts_owed[me] += REPLY_PACKETS;
                    }
                }
                if requests_sent[me] < rounds
                    && net.try_inject(pkt(me, peer, 1, requests_sent[me])).is_ok()
                {
                    requests_sent[me] += 1;
                }
            }
            net.advance(1);
            let completed = reply_pkts_got / REPLY_PACKETS;
            if completed >= total && requests_sent.iter().sum::<u32>() == completed {
                return (completed, true);
            }
        }
        (reply_pkts_got / REPLY_PACKETS, false)
    }

    #[test]
    fn single_network_request_reply_wedges() {
        let mut net = tight();
        let (completed, done) = run_request_reply(&mut net, 64);
        assert!(
            !done,
            "expected the single tight network to wedge, but {completed} completed"
        );
    }

    #[test]
    fn dual_network_request_reply_completes() {
        let mut net = DualNetwork::new(tight(), tight(), REPLY_MIN);
        let (completed, done) = run_request_reply(&mut net, 64);
        assert!(done, "dual networks must not wedge ({completed} completed)");
        assert_eq!(completed, 128, "all 2×64 requests served");
    }

    #[test]
    fn tags_route_to_the_right_side() {
        let mut net = DualNetwork::new(tight(), tight(), REPLY_MIN);
        net.try_inject(pkt(0, 1, 1, 0)).unwrap();
        net.try_inject(pkt(0, 1, 200, 0)).unwrap();
        assert_eq!(net.request_side().stats().injected, 1);
        assert_eq!(net.reply_side().stats().injected, 1);
        assert_eq!(net.stats().injected, 2);
    }

    #[test]
    fn replies_have_receive_priority() {
        let mut net = DualNetwork::new(tight(), tight(), REPLY_MIN);
        net.try_inject(pkt(0, 1, 1, 7)).unwrap();
        net.try_inject(pkt(0, 1, 200, 9)).unwrap();
        net.drain(10_000);
        let first = net.try_receive(NodeId::new(1)).expect("delivered");
        assert_eq!(first.tag(), 200, "reply drains first");
        let second = net.try_receive(NodeId::new(1)).expect("delivered");
        assert_eq!(second.tag(), 1);
    }

    #[test]
    fn merged_stats_track_both_sides() {
        let mut net = DualNetwork::new(tight(), tight(), REPLY_MIN);
        net.try_inject(pkt(0, 1, 1, 0)).unwrap();
        net.try_inject(pkt(1, 0, 200, 0)).unwrap();
        net.advance(100);
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.rx_pending(NodeId::new(1)), 1);
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn mismatched_node_counts_panic() {
        let a = tight();
        let b = SwitchedNetwork::new(Mesh2D::new(3, 1), SwitchedConfig::default());
        let _ = DualNetwork::new(a, b, REPLY_MIN);
    }
}
