//! Identifier newtypes.

use std::fmt;

/// Identifies a processing node (a leaf of the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Construct from a raw node index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw node index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

/// Globally unique packet identifier, assigned at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Construct from a raw id (used by the network implementations).
    pub(crate) const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(3);
        assert_eq!(n.index(), 3);
        assert_eq!(NodeId::from(3), n);
        assert_eq!(n.to_string(), "n3");
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(PacketId::new(9).to_string(), "pkt9");
        assert_eq!(PacketId::new(9).raw(), 9);
    }
}
