//! Network topologies and minimal-path enumeration.
//!
//! A topology exposes its links as a dense index space and produces
//! minimal paths (sequences of [`LinkId`]s) between node pairs. The
//! switched network stores one bounded FIFO per link; route *strategies*
//! (deterministic / adaptive / randomized) choose among the candidate
//! paths a topology offers, which is where delivery-order behavior comes
//! from: a single canonical path per pair preserves order, multipath
//! routing does not.

use crate::rng::SimRng;

use crate::id::NodeId;

/// Identifies one directed link (a bounded FIFO) in a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) usize);

impl LinkId {
    /// Dense index of this link.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A network topology: a set of nodes, a set of directed links, and
/// minimal paths between nodes.
pub trait Topology {
    /// Number of attached (leaf) nodes.
    fn num_nodes(&self) -> usize;

    /// Number of directed links.
    fn num_links(&self) -> usize;

    /// The single deterministic minimal path from `src` to `dst`
    /// (empty for `src == dst`). Routing all of a pair's traffic on this
    /// path preserves delivery order.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    fn canonical_path(&self, src: NodeId, dst: NodeId) -> Vec<LinkId>;

    /// Up to `max` distinct-ish minimal paths from `src` to `dst`,
    /// sampled with `rng`. Always includes at least one path. Multipath
    /// (adaptive/randomized) routing picks among these, which is what
    /// makes delivery order arbitrary.
    fn candidate_paths(&self, src: NodeId, dst: NodeId, rng: &mut dyn FnMut(usize) -> usize, max: usize)
        -> Vec<Vec<LinkId>>;

    /// Human-readable description.
    fn describe(&self) -> String;

    /// Longest minimal path length in hops.
    fn diameter(&self) -> usize;
}

/// Sample helper: adapts a [`SimRng`] to the `FnMut(usize) -> usize`
/// bound used by [`Topology::candidate_paths`] (returns a uniform value
/// in `0..bound`).
pub fn rng_fn(rng: &mut SimRng) -> impl FnMut(usize) -> usize + '_ {
    move |bound| rng.gen_index(bound)
}

// ---------------------------------------------------------------------
// Fat tree (CM-5-like)
// ---------------------------------------------------------------------

/// A `k`-ary fat tree with `levels` switch levels and `fatness` parallel
/// up-channels per switch port — an abstraction of the CM-5 data
/// network. Leaves are the nodes; a packet climbs to the lowest common
/// ancestor level and descends. The up-channel choice at each level is
/// where multipath (and hence reordering) comes from; down paths are
/// unique.
#[derive(Debug, Clone)]
pub struct FatTree {
    arity: usize,
    levels: usize,
    fatness: usize,
    nodes: usize,
    up_base: Vec<usize>,
    down_base: Vec<usize>,
    num_links: usize,
}

impl FatTree {
    /// Build a fat tree. `arity ≥ 2`, `levels ≥ 1`, `fatness ≥ 1`;
    /// nodes = `arity^levels`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or `arity < 2`.
    pub fn new(arity: usize, levels: usize, fatness: usize) -> Self {
        assert!(arity >= 2, "fat tree arity must be at least 2");
        assert!(levels >= 1, "fat tree needs at least one level");
        assert!(fatness >= 1, "fatness must be at least 1");
        let nodes = arity.pow(levels as u32);
        // Link id layout: for each level l in 1..=levels, first the up
        // links (groups(l) * fatness of them, where groups(l) =
        // nodes / arity^l subtree-entry points... up links are per
        // *child* position: each of the nodes/arity^(l-1) level-(l-1)
        // units has `fatness` channels up to its level-l parent), then
        // the down links (one per level-(l-1) unit).
        let mut up_base = vec![0; levels + 1];
        let mut down_base = vec![0; levels + 1];
        let mut next = 0;
        for l in 1..=levels {
            let units = nodes / arity.pow((l - 1) as u32);
            up_base[l] = next;
            next += units * fatness;
            down_base[l] = next;
            next += units;
        }
        FatTree {
            arity,
            levels,
            fatness,
            nodes,
            up_base,
            down_base,
            num_links: next,
        }
    }

    /// The CM-5-scale default used in tests and examples: 4-ary, 3
    /// levels (64 nodes), fatness 2.
    pub fn cm5ish() -> Self {
        FatTree::new(4, 3, 2)
    }

    /// Parallel up-channels per port.
    pub fn fatness(&self) -> usize {
        self.fatness
    }

    fn ancestor_level(&self, src: usize, dst: usize) -> usize {
        let mut l = 0;
        let mut s = src;
        let mut d = dst;
        while s != d {
            s /= self.arity;
            d /= self.arity;
            l += 1;
        }
        l
    }

    fn up_link(&self, level: usize, unit: usize, channel: usize) -> LinkId {
        LinkId(self.up_base[level] + unit * self.fatness + channel)
    }

    fn down_link(&self, level: usize, unit: usize) -> LinkId {
        LinkId(self.down_base[level] + unit)
    }

    fn path_with_channels(&self, src: usize, dst: usize, mut channel: impl FnMut(usize) -> usize) -> Vec<LinkId> {
        let a = self.ancestor_level(src, dst);
        let mut path = Vec::with_capacity(2 * a);
        for l in 1..=a {
            let unit = src / self.arity.pow((l - 1) as u32);
            path.push(self.up_link(l, unit, channel(l)));
        }
        for l in (1..=a).rev() {
            let unit = dst / self.arity.pow((l - 1) as u32);
            path.push(self.down_link(l, unit));
        }
        path
    }

    fn check(&self, n: NodeId) {
        assert!(
            n.index() < self.nodes,
            "node {n} out of range for {} leaves",
            self.nodes
        );
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn num_links(&self) -> usize {
        self.num_links
    }

    fn canonical_path(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.check(src);
        self.check(dst);
        // Deterministic channel choice: a per-pair hash, so distinct
        // pairs spread over channels but one pair always uses one path.
        let h = src.index().wrapping_mul(31).wrapping_add(dst.index());
        self.path_with_channels(src.index(), dst.index(), |l| (h + l) % self.fatness)
    }

    fn candidate_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        rng: &mut dyn FnMut(usize) -> usize,
        max: usize,
    ) -> Vec<Vec<LinkId>> {
        self.check(src);
        self.check(dst);
        if src == dst {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        out.push(self.canonical_path(src, dst));
        while out.len() < max.max(1) {
            let p = self.path_with_channels(src.index(), dst.index(), |_| rng(self.fatness));
            out.push(p);
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "{}-ary fat tree, {} levels, fatness {} ({} nodes, {} links)",
            self.arity, self.levels, self.fatness, self.nodes, self.num_links
        )
    }

    fn diameter(&self) -> usize {
        2 * self.levels
    }
}

// ---------------------------------------------------------------------
// 2-D mesh and torus
// ---------------------------------------------------------------------

/// Axis move for grid topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    XPlus,
    XMinus,
    YPlus,
    YMinus,
}

/// A `w × h` 2-D mesh with bidirectional links between neighbors.
/// Canonical routing is dimension order (X then Y); candidate paths are
/// random minimal interleavings of the required X and Y moves.
#[derive(Debug, Clone)]
pub struct Mesh2D {
    w: usize,
    h: usize,
}

impl Mesh2D {
    /// Build a `w × h` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "mesh dimensions must be nonzero");
        Mesh2D { w, h }
    }

    fn coords(&self, n: usize) -> (usize, usize) {
        (n % self.w, n / self.w)
    }

    // Link layout: east (x,y)->(x+1,y): (w-1)*h; then west; then north
    // (y+1); then south.
    fn east(&self, x: usize, y: usize) -> LinkId {
        LinkId(y * (self.w - 1) + x)
    }

    fn west(&self, x: usize, y: usize) -> LinkId {
        // west link leaving (x, y) toward (x-1, y), indexed by (x-1, y)
        LinkId((self.w - 1) * self.h + y * (self.w - 1) + (x - 1))
    }

    fn north(&self, x: usize, y: usize) -> LinkId {
        LinkId(2 * (self.w - 1) * self.h + y * self.w + x)
    }

    fn south(&self, x: usize, y: usize) -> LinkId {
        LinkId(2 * (self.w - 1) * self.h + (self.h - 1) * self.w + (y - 1) * self.w + x)
    }

    fn moves(&self, src: usize, dst: usize) -> Vec<Move> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut m = Vec::new();
        if dx >= sx {
            m.extend(std::iter::repeat_n(Move::XPlus, dx - sx));
        } else {
            m.extend(std::iter::repeat_n(Move::XMinus, sx - dx));
        }
        if dy >= sy {
            m.extend(std::iter::repeat_n(Move::YPlus, dy - sy));
        } else {
            m.extend(std::iter::repeat_n(Move::YMinus, sy - dy));
        }
        m
    }

    fn walk(&self, src: usize, moves: &[Move]) -> Vec<LinkId> {
        let (mut x, mut y) = self.coords(src);
        let mut path = Vec::with_capacity(moves.len());
        for m in moves {
            match m {
                Move::XPlus => {
                    path.push(self.east(x, y));
                    x += 1;
                }
                Move::XMinus => {
                    path.push(self.west(x, y));
                    x -= 1;
                }
                Move::YPlus => {
                    path.push(self.north(x, y));
                    y += 1;
                }
                Move::YMinus => {
                    path.push(self.south(x, y));
                    y -= 1;
                }
            }
        }
        path
    }

    fn check(&self, n: NodeId) {
        assert!(n.index() < self.w * self.h, "node {n} out of range");
    }
}

impl Topology for Mesh2D {
    fn num_nodes(&self) -> usize {
        self.w * self.h
    }

    fn num_links(&self) -> usize {
        2 * (self.w - 1) * self.h + 2 * (self.h - 1) * self.w
    }

    fn canonical_path(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.check(src);
        self.check(dst);
        // Dimension-order: the move list is already X-then-Y.
        let moves = self.moves(src.index(), dst.index());
        self.walk(src.index(), &moves)
    }

    fn candidate_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        rng: &mut dyn FnMut(usize) -> usize,
        max: usize,
    ) -> Vec<Vec<LinkId>> {
        self.check(src);
        self.check(dst);
        if src == dst {
            return vec![Vec::new()];
        }
        let base = self.moves(src.index(), dst.index());
        let mut out = vec![self.canonical_path(src, dst)];
        while out.len() < max.max(1) {
            // Random minimal interleaving: Fisher–Yates over the move
            // multiset (per-axis order is irrelevant since moves along
            // one axis are identical).
            let mut moves = base.clone();
            for i in (1..moves.len()).rev() {
                moves.swap(i, rng(i + 1));
            }
            out.push(self.walk(src.index(), &moves));
        }
        out
    }

    fn describe(&self) -> String {
        format!("{}x{} mesh ({} nodes, {} links)", self.w, self.h, self.num_nodes(), self.num_links())
    }

    fn diameter(&self) -> usize {
        (self.w - 1) + (self.h - 1)
    }
}

/// A `w × h` 2-D torus: a mesh with wraparound links. Per axis the
/// shorter way around is taken (ties go the positive direction).
#[derive(Debug, Clone)]
pub struct Torus2D {
    w: usize,
    h: usize,
}

impl Torus2D {
    /// Build a `w × h` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(w: usize, h: usize) -> Self {
        assert!(w > 0 && h > 0, "torus dimensions must be nonzero");
        Torus2D { w, h }
    }

    fn coords(&self, n: usize) -> (usize, usize) {
        (n % self.w, n / self.w)
    }

    // Link layout: x+ links (one per node), x- links, y+ links, y- links.
    fn link(&self, x: usize, y: usize, m: Move) -> LinkId {
        let n = y * self.w + x;
        let stride = self.w * self.h;
        match m {
            Move::XPlus => LinkId(n),
            Move::XMinus => LinkId(stride + n),
            Move::YPlus => LinkId(2 * stride + n),
            Move::YMinus => LinkId(3 * stride + n),
        }
    }

    fn axis_moves(len: usize, from: usize, to: usize, plus: Move, minus: Move) -> Vec<Move> {
        let fwd = (to + len - from) % len;
        let bwd = (from + len - to) % len;
        if fwd <= bwd {
            std::iter::repeat_n(plus, fwd).collect()
        } else {
            std::iter::repeat_n(minus, bwd).collect()
        }
    }

    fn moves(&self, src: usize, dst: usize) -> Vec<Move> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut m = Torus2D::axis_moves(self.w, sx, dx, Move::XPlus, Move::XMinus);
        m.extend(Torus2D::axis_moves(self.h, sy, dy, Move::YPlus, Move::YMinus));
        m
    }

    fn walk(&self, src: usize, moves: &[Move]) -> Vec<LinkId> {
        let (mut x, mut y) = self.coords(src);
        let mut path = Vec::with_capacity(moves.len());
        for m in moves {
            path.push(self.link(x, y, *m));
            match m {
                Move::XPlus => x = (x + 1) % self.w,
                Move::XMinus => x = (x + self.w - 1) % self.w,
                Move::YPlus => y = (y + 1) % self.h,
                Move::YMinus => y = (y + self.h - 1) % self.h,
            }
        }
        path
    }

    fn check(&self, n: NodeId) {
        assert!(n.index() < self.w * self.h, "node {n} out of range");
    }
}

impl Topology for Torus2D {
    fn num_nodes(&self) -> usize {
        self.w * self.h
    }

    fn num_links(&self) -> usize {
        4 * self.w * self.h
    }

    fn canonical_path(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.check(src);
        self.check(dst);
        let moves = self.moves(src.index(), dst.index());
        self.walk(src.index(), &moves)
    }

    fn candidate_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        rng: &mut dyn FnMut(usize) -> usize,
        max: usize,
    ) -> Vec<Vec<LinkId>> {
        self.check(src);
        self.check(dst);
        if src == dst {
            return vec![Vec::new()];
        }
        let base = self.moves(src.index(), dst.index());
        let mut out = vec![self.canonical_path(src, dst)];
        while out.len() < max.max(1) {
            let mut moves = base.clone();
            for i in (1..moves.len()).rev() {
                moves.swap(i, rng(i + 1));
            }
            out.push(self.walk(src.index(), &moves));
        }
        out
    }

    fn describe(&self) -> String {
        format!("{}x{} torus ({} nodes, {} links)", self.w, self.h, self.num_nodes(), self.num_links())
    }

    fn diameter(&self) -> usize {
        self.w / 2 + self.h / 2
    }
}

// ---------------------------------------------------------------------
// Hypercube
// ---------------------------------------------------------------------

/// A `d`-dimensional binary hypercube (`2^d` nodes). Each node has one
/// link per dimension; minimal routing fixes differing address bits.
/// Canonical routing fixes bits from least- to most-significant
/// (dimension order, deadlock-free); candidates fix them in random
/// order (multipath).
#[derive(Debug, Clone)]
pub struct Hypercube {
    dims: usize,
}

impl Hypercube {
    /// Build a `dims`-dimensional hypercube.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero or the cube would exceed `usize` bits.
    pub fn new(dims: usize) -> Self {
        assert!(dims >= 1, "hypercube needs at least one dimension");
        assert!(dims < usize::BITS as usize, "hypercube too large");
        Hypercube { dims }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    fn link(&self, node: usize, dim: usize) -> LinkId {
        LinkId(node * self.dims + dim)
    }

    fn walk(&self, src: usize, dims_order: &[usize]) -> Vec<LinkId> {
        let mut at = src;
        let mut path = Vec::with_capacity(dims_order.len());
        for &d in dims_order {
            path.push(self.link(at, d));
            at ^= 1 << d;
        }
        path
    }

    fn differing_dims(&self, src: usize, dst: usize) -> Vec<usize> {
        (0..self.dims).filter(|d| (src ^ dst) & (1 << d) != 0).collect()
    }

    fn check(&self, n: NodeId) {
        assert!(n.index() < self.num_nodes(), "node {n} out of range");
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1 << self.dims
    }

    fn num_links(&self) -> usize {
        self.num_nodes() * self.dims
    }

    fn canonical_path(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.check(src);
        self.check(dst);
        let dims = self.differing_dims(src.index(), dst.index());
        self.walk(src.index(), &dims)
    }

    fn candidate_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        rng: &mut dyn FnMut(usize) -> usize,
        max: usize,
    ) -> Vec<Vec<LinkId>> {
        self.check(src);
        self.check(dst);
        if src == dst {
            return vec![Vec::new()];
        }
        let base = self.differing_dims(src.index(), dst.index());
        let mut out = vec![self.canonical_path(src, dst)];
        while out.len() < max.max(1) {
            let mut dims = base.clone();
            for i in (1..dims.len()).rev() {
                dims.swap(i, rng(i + 1));
            }
            out.push(self.walk(src.index(), &dims));
        }
        out
    }

    fn describe(&self) -> String {
        format!(
            "{}-cube ({} nodes, {} links)",
            self.dims,
            self.num_nodes(),
            self.num_links()
        )
    }

    fn diameter(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn path_links_valid(topo: &dyn Topology, path: &[LinkId]) {
        for l in path {
            assert!(l.index() < topo.num_links(), "link {} out of range", l.index());
        }
    }

    #[test]
    fn fat_tree_shape() {
        let ft = FatTree::new(4, 3, 2);
        assert_eq!(ft.num_nodes(), 64);
        assert!(ft.num_links() > 0);
        assert_eq!(ft.diameter(), 6);
        assert!(ft.describe().contains("fat tree"));
    }

    #[test]
    fn fat_tree_sibling_path_is_short() {
        let ft = FatTree::new(4, 3, 2);
        // Nodes 0 and 1 share a level-1 parent: one hop up, one down.
        let p = ft.canonical_path(n(0), n(1));
        assert_eq!(p.len(), 2);
        // Nodes 0 and 63 only meet at the root: 3 up + 3 down.
        let p = ft.canonical_path(n(0), n(63));
        assert_eq!(p.len(), 6);
        path_links_valid(&ft, &p);
    }

    #[test]
    fn fat_tree_self_path_is_empty() {
        let ft = FatTree::new(2, 2, 1);
        assert!(ft.canonical_path(n(3), n(3)).is_empty());
    }

    #[test]
    fn fat_tree_canonical_is_stable_candidates_vary() {
        let ft = FatTree::new(4, 3, 4);
        let a = ft.canonical_path(n(5), n(60));
        let b = ft.canonical_path(n(5), n(60));
        assert_eq!(a, b);
        let mut rng = SimRng::new(1);
        let mut f = rng_fn(&mut rng);
        let cands = ft.candidate_paths(n(5), n(60), &mut f, 8);
        assert_eq!(cands.len(), 8);
        assert!(
            cands.iter().any(|c| *c != a),
            "with fatness 4 some sampled path should differ"
        );
        for c in &cands {
            assert_eq!(c.len(), a.len(), "all candidates are minimal");
            path_links_valid(&ft, c);
        }
    }

    #[test]
    fn mesh_dor_path_lengths() {
        let m = Mesh2D::new(4, 4);
        assert_eq!(m.num_nodes(), 16);
        assert_eq!(m.num_links(), 2 * 3 * 4 + 2 * 3 * 4);
        assert_eq!(m.diameter(), 6);
        // (0,0) -> (3,3): 6 hops.
        let p = m.canonical_path(n(0), n(15));
        assert_eq!(p.len(), 6);
        path_links_valid(&m, &p);
        // (3,3) -> (0,0) uses west/south links, also 6 hops.
        let p = m.canonical_path(n(15), n(0));
        assert_eq!(p.len(), 6);
        path_links_valid(&m, &p);
    }

    #[test]
    fn mesh_candidates_are_minimal_interleavings() {
        let m = Mesh2D::new(4, 4);
        let mut rng = SimRng::new(7);
        let mut f = rng_fn(&mut rng);
        let cands = m.candidate_paths(n(0), n(15), &mut f, 6);
        assert_eq!(cands.len(), 6);
        assert!(cands.iter().any(|c| *c != cands[0]));
        for c in &cands {
            assert_eq!(c.len(), 6);
            path_links_valid(&m, c);
        }
    }

    #[test]
    fn mesh_link_ids_are_distinct_per_direction() {
        let m = Mesh2D::new(3, 3);
        let east = m.canonical_path(n(0), n(1));
        let west = m.canonical_path(n(1), n(0));
        assert_ne!(east, west);
    }

    #[test]
    fn torus_wraps_the_short_way() {
        let t = Torus2D::new(8, 8);
        assert_eq!(t.num_links(), 4 * 64);
        // (0,0) -> (7,0): one hop backwards via wraparound.
        let p = t.canonical_path(n(0), n(7));
        assert_eq!(p.len(), 1);
        // (0,0) -> (4,0): distance 4 either way; goes positive.
        let p = t.canonical_path(n(0), n(4));
        assert_eq!(p.len(), 4);
        path_links_valid(&t, &p);
        assert_eq!(t.diameter(), 8);
    }

    #[test]
    fn torus_candidates_valid() {
        let t = Torus2D::new(4, 4);
        let mut rng = SimRng::new(3);
        let mut f = rng_fn(&mut rng);
        for c in t.candidate_paths(n(1), n(14), &mut f, 5) {
            path_links_valid(&t, &c);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let m = Mesh2D::new(2, 2);
        m.canonical_path(n(0), n(99));
    }

    #[test]
    fn hypercube_shape_and_paths() {
        let h = Hypercube::new(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_links(), 64);
        assert_eq!(h.diameter(), 4);
        // 0b0000 -> 0b1111: Hamming distance 4.
        let p = h.canonical_path(n(0), n(15));
        assert_eq!(p.len(), 4);
        path_links_valid(&h, &p);
        // Adjacent nodes: one hop.
        assert_eq!(h.canonical_path(n(0), n(8)).len(), 1);
        assert!(h.canonical_path(n(5), n(5)).is_empty());
        assert!(h.describe().contains("cube"));
    }

    #[test]
    fn hypercube_candidates_are_minimal_and_varied() {
        let h = Hypercube::new(5);
        let mut rng = SimRng::new(2);
        let mut f = rng_fn(&mut rng);
        let cands = h.candidate_paths(n(0), n(31), &mut f, 8);
        assert_eq!(cands.len(), 8);
        assert!(cands.iter().any(|c| *c != cands[0]));
        for c in &cands {
            assert_eq!(c.len(), 5);
            path_links_valid(&h, c);
        }
    }

    #[test]
    fn hypercube_canonical_is_dimension_ordered() {
        let h = Hypercube::new(3);
        // 0 -> 7 fixes bit 0 (link 0·3+0), then bit 1 from node 1
        // (link 1·3+1), then bit 2 from node 3 (link 3·3+2).
        let p = h.canonical_path(n(0), n(7));
        assert_eq!(p, vec![LinkId(0), LinkId(4), LinkId(11)]);
    }
}
