//! The hardware packet.

use std::fmt;

use crate::id::{NodeId, PacketId};
use crate::time::Time;

/// A hardware network packet.
///
/// Modeled on the CM-5's five-word packet: one *header* word (the
/// messaging layer uses it for an offset or sequence number) plus up to a
/// few payload words, along with the routing envelope (source,
/// destination, tag). The `tag` selects the handler at the receiving node,
/// exactly like the CM-5 NI's hardware message tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    src: NodeId,
    dst: NodeId,
    tag: u8,
    header: u32,
    data: Vec<u32>,
    // Envelope fields maintained by the network:
    id: Option<PacketId>,
    pair_seq: Option<u64>,
    injected_at: Option<Time>,
    corrupted: bool,
}

impl Packet {
    /// Build a packet. `tag` selects the receive handler; `header` is the
    /// extra non-payload word (offset/sequence number); `data` is the
    /// payload.
    pub fn new(src: NodeId, dst: NodeId, tag: u8, header: u32, data: Vec<u32>) -> Self {
        Packet {
            src,
            dst,
            tag,
            header,
            data,
            id: None,
            pair_seq: None,
            injected_at: None,
            corrupted: false,
        }
    }

    /// Sending node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Hardware message tag (handler selector).
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// The header word (offset or sequence number).
    pub fn header(&self) -> u32 {
        self.header
    }

    /// Payload words.
    pub fn data(&self) -> &[u32] {
        &self.data
    }

    /// Payload length in words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty (pure control packet).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Unique id assigned by the network at injection, if injected.
    pub fn id(&self) -> Option<PacketId> {
        self.id
    }

    /// Injection sequence number within the `(src, dst)` pair, assigned
    /// by the network at injection. Delivery order can be compared
    /// against this to detect reordering.
    pub fn pair_seq(&self) -> Option<u64> {
        self.pair_seq
    }

    /// When the packet was injected, if injected.
    pub fn injected_at(&self) -> Option<Time> {
        self.injected_at
    }

    /// Whether the packet was corrupted in flight. A detect-only network
    /// discards such packets at the receiving NI; callers of
    /// [`crate::Network::try_receive`] never observe them.
    pub fn is_corrupted(&self) -> bool {
        self.corrupted
    }

    pub(crate) fn stamp(&mut self, id: PacketId, pair_seq: u64, at: Time) {
        self.id = Some(id);
        self.pair_seq = Some(pair_seq);
        self.injected_at = Some(at);
    }

    /// Rewrite the routing envelope's endpoints. Used by the sharded
    /// substrate to translate between global node ids (what software
    /// sees) and shard-local ids (what a shard's subnet routes over);
    /// every packet crossing the translation boundary is remapped both
    /// ways, so software only ever observes global ids.
    pub(crate) fn set_endpoints(&mut self, src: NodeId, dst: NodeId) {
        self.src = src;
        self.dst = dst;
    }

    pub(crate) fn corrupt(&mut self) {
        self.corrupted = true;
    }

    pub(crate) fn repair(&mut self) {
        self.corrupted = false;
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}→{} tag={} hdr={} [{} words]",
            self.src,
            self.dst,
            self.tag,
            self.header,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Packet::new(NodeId::new(0), NodeId::new(1), 3, 42, vec![1, 2]);
        assert_eq!(p.src().index(), 0);
        assert_eq!(p.dst().index(), 1);
        assert_eq!(p.tag(), 3);
        assert_eq!(p.header(), 42);
        assert_eq!(p.data(), &[1, 2]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.id().is_none());
        assert!(!p.is_corrupted());
    }

    #[test]
    fn stamping_and_corruption() {
        let mut p = Packet::new(NodeId::new(0), NodeId::new(1), 0, 0, vec![]);
        assert!(p.is_empty());
        p.stamp(PacketId::new(7), 2, Time::from_cycles(5));
        assert_eq!(p.id().unwrap().raw(), 7);
        assert_eq!(p.pair_seq(), Some(2));
        assert_eq!(p.injected_at(), Some(Time::from_cycles(5)));
        p.corrupt();
        assert!(p.is_corrupted());
        p.repair();
        assert!(!p.is_corrupted());
    }
}
