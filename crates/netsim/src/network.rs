//! The substrate-independent network interface.

use std::error::Error;
use std::fmt;

use crate::id::NodeId;
use crate::packet::Packet;
use crate::stats::NetStats;
use crate::time::Time;

/// What a network guarantees to the software above it. The messaging
/// layer consults this to decide which software protocol machinery is
/// required (Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guarantees {
    /// Packets between one `(src, dst)` pair are delivered in injection
    /// order.
    pub in_order: bool,
    /// Every accepted packet is eventually delivered uncorrupted.
    pub reliable: bool,
    /// Injection acceptance implies the destination can absorb the packet
    /// (end-to-end flow control / deadlock freedom independent of
    /// acceptance guarantees).
    pub flow_controlled: bool,
}

impl Guarantees {
    /// A CM-5-like network: none of the high-level guarantees.
    pub const RAW: Guarantees = Guarantees {
        in_order: false,
        reliable: false,
        flow_controlled: false,
    };

    /// A Compressionless-Routing-like network: all three guarantees.
    pub const HIGH_LEVEL: Guarantees = Guarantees {
        in_order: true,
        reliable: true,
        flow_controlled: true,
    };
}

/// Envelope metadata of the packet at the head of a node's receive
/// buffer, surfaced by [`Network::rx_peek`] without consuming it.
///
/// This is the substrate's "non-blocking poll" surface: an event-driven
/// messaging layer inspects the head to decide *which* protocol state
/// machine should pay for the receive, then latches it through the NI as
/// usual. Peeking is free (pure harness introspection) — all modeled
/// costs are still charged by the NI register operations that actually
/// consume the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxMeta {
    /// Sending node.
    pub src: NodeId,
    /// Hardware message tag (handler selector).
    pub tag: u8,
    /// The header word (offset or sequence number).
    pub header: u32,
}

impl RxMeta {
    /// Extract the envelope metadata from a delivered packet.
    pub fn of(packet: &Packet) -> Self {
        RxMeta {
            src: packet.src(),
            tag: packet.tag(),
            header: packet.header(),
        }
    }
}

/// Why an injection attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectError {
    /// The injection port (first-hop queue or held path) is full; retry
    /// after advancing the network. This is what the software sees as a
    /// "send not ok" NI status.
    Backpressure,
    /// The destination node does not exist.
    BadDestination(NodeId),
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::Backpressure => write!(f, "injection refused: backpressure"),
            InjectError::BadDestination(n) => write!(f, "no such destination node {n}"),
        }
    }
}

impl Error for InjectError {}

/// A per-node delivery recorder backing precise
/// [`Network::take_delivered`] implementations.
///
/// Substrates call [`WakeSet::mark`] at every receive-queue push; the
/// mark bitmap deduplicates, so the pending list is bounded by the node
/// count no matter how long a blocking (non-engine) caller goes without
/// taking the set.
#[derive(Debug, Clone, Default)]
pub struct WakeSet {
    marked: Vec<bool>,
    nodes: Vec<NodeId>,
}

impl WakeSet {
    /// An empty wake set over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        WakeSet { marked: vec![false; num_nodes], nodes: Vec::new() }
    }

    /// Record a delivery at `node` (idempotent until taken).
    pub fn mark(&mut self, node: NodeId) {
        if !self.marked[node.index()] {
            self.marked[node.index()] = true;
            self.nodes.push(node);
        }
    }

    /// Drain the recorded nodes, clearing the marks.
    pub fn take(&mut self) -> Vec<NodeId> {
        for n in &self.nodes {
            self.marked[n.index()] = false;
        }
        std::mem::take(&mut self.nodes)
    }
}

/// A packet-switched network connecting `num_nodes` nodes.
///
/// All the substrates (switched CM-5-like, Compressionless-Routing-like,
/// scripted, and the parallel sharded front) implement this trait; the
/// NI and messaging layers are generic over it. Implementations may
/// step packets on worker threads internally (see
/// [`sharded`](crate::sharded)), but the trait itself is a
/// single-threaded surface: one caller injects, receives, and advances.
///
/// # Example
///
/// The inject → advance → peek → receive cycle every substrate obeys:
///
/// ```
/// use timego_netsim::{DeliveryScript, Network, NodeId, Packet, ScriptedNetwork};
///
/// let mut net = ScriptedNetwork::new(4, DeliveryScript::InOrder);
/// let (src, dst) = (NodeId::new(0), NodeId::new(3));
/// net.try_inject(Packet::new(src, dst, 7, 99, vec![1, 2])).unwrap();
/// net.advance(1);
/// assert_eq!(net.take_delivered(), vec![dst]); // the scheduler's wake set
///
/// let meta = net.rx_peek(dst).expect("head visible before paying to receive");
/// assert_eq!((meta.src, meta.tag, meta.header), (src, 7, 99));
/// let got = net.try_receive(dst).expect("delivered");
/// assert_eq!(got.data(), &[1, 2]);
/// assert_eq!(net.stats().delivered, 1);
/// ```
pub trait Network {
    /// Number of attached nodes.
    fn num_nodes(&self) -> usize;

    /// Current simulated time.
    fn now(&self) -> Time;

    /// Advance simulated time by `cycles`, moving packets through the
    /// network.
    fn advance(&mut self, cycles: u64);

    /// Attempt to inject a packet at its source node.
    ///
    /// # Errors
    ///
    /// [`InjectError::Backpressure`] if the network cannot accept the
    /// packet right now, [`InjectError::BadDestination`] if the
    /// destination is out of range.
    fn try_inject(&mut self, packet: Packet) -> Result<(), InjectError>;

    /// Pop the next delivered packet waiting at `node`'s receive buffer,
    /// if any. Corrupted packets on detect-only substrates are discarded
    /// internally (counted in [`NetStats::dropped_corrupt`]) and never
    /// surface here.
    fn try_receive(&mut self, node: NodeId) -> Option<Packet>;

    /// Envelope metadata of the packet [`try_receive`](Network::try_receive)
    /// would return next for `node`, without consuming it. Must be
    /// consistent with `try_receive`: if this returns `Some`, an
    /// immediate `try_receive` returns that packet. Takes `&mut self`
    /// because substrates that release held packets on receive (e.g. the
    /// scripted network's liveness flush) do the same here.
    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta>;

    /// Packets currently waiting in `node`'s receive buffer.
    fn rx_pending(&self, node: NodeId) -> usize;

    /// Packets accepted but not yet delivered or dropped.
    fn in_flight(&self) -> usize;

    /// Aggregate statistics.
    fn stats(&self) -> &NetStats;

    /// The delivery guarantees this substrate provides.
    fn guarantees(&self) -> Guarantees;

    /// How many times `node` has crashed and restarted so far (scripted
    /// crash-restart faults). Substrates without a crash plane never
    /// restart anything; the protocol layer polls this to detect peer
    /// restarts and erase stale endpoint state.
    fn restarts(&self, node: NodeId) -> u32 {
        let _ = node;
        0
    }

    /// Drain the set of nodes that have received packets since the last
    /// call — the scheduler's wake set. A node appears at most once per
    /// call; the set is cumulative across [`advance`](Network::advance)
    /// calls until taken.
    ///
    /// The default derives the set from current receive-queue depths
    /// (`rx_pending > 0`), which is *conservative*: a node whose queue
    /// was drained between calls may be missed, but every node with
    /// something pending is always reported, which is what a
    /// readiness-driven scheduler needs (it re-checks queues on wake
    /// anyway). Substrates with an internal delivery step override this
    /// with a precise per-delivery record.
    fn take_delivered(&mut self) -> Vec<NodeId> {
        (0..self.num_nodes())
            .filter(|&i| self.rx_pending(NodeId::new(i)) > 0)
            .map(NodeId::new)
            .collect()
    }

    /// A cheap change-detector over [`restarts`](Network::restarts):
    /// any value that changes whenever some node's restart counter
    /// does. Callers compare against the last value they saw to skip
    /// the per-node scan on the (overwhelmingly common) quanta where
    /// nothing crashed. The default sums all per-node counters.
    fn restarts_hint(&self) -> u64 {
        (0..self.num_nodes()).map(|i| self.restarts(NodeId::new(i)) as u64).sum()
    }

    /// The earliest scripted crash-restart strictly after the current
    /// cycle, if the substrate knows of one. Event-driven schedulers
    /// clamp idle clock-jumps here so the restart is observed on
    /// exactly the cycle its window closes — jumping past it would
    /// defer the peers' `SessionReset` detection. Substrates without a
    /// crash plane have nothing to clamp to.
    fn next_restart_at(&self) -> Option<Time> {
        None
    }

    /// Advance until the network is drained (nothing in flight) or
    /// `max_cycles` have elapsed; returns `true` if drained. Default
    /// implementation steps one cycle at a time.
    ///
    /// Note that on finite-buffer substrates a drain can fail simply
    /// because no one is extracting packets at the destinations — see
    /// [`drain_extracting`](Network::drain_extracting).
    fn drain(&mut self, max_cycles: u64) -> bool {
        let mut elapsed = 0;
        while self.in_flight() > 0 && elapsed < max_cycles {
            self.advance(1);
            elapsed += 1;
        }
        self.in_flight() == 0
    }

    /// Like [`drain`](Network::drain), but every node's receive queue is
    /// emptied (and the packets discarded) as time advances, so finite
    /// receive buffers cannot wedge the drain. Returns `true` if the
    /// network emptied. Useful for harnesses that only care about
    /// delivery statistics.
    fn drain_extracting(&mut self, max_cycles: u64) -> bool {
        let mut elapsed = 0;
        while self.in_flight() > 0 && elapsed < max_cycles {
            self.advance(1);
            elapsed += 1;
            for i in 0..self.num_nodes() {
                while self.try_receive(NodeId::new(i)).is_some() {}
            }
        }
        self.in_flight() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn guarantee_presets() {
        assert!(!Guarantees::RAW.in_order);
        assert!(Guarantees::HIGH_LEVEL.reliable);
        assert!(Guarantees::HIGH_LEVEL.flow_controlled);
    }

    #[test]
    fn inject_error_display() {
        assert!(InjectError::Backpressure.to_string().contains("backpressure"));
        assert!(InjectError::BadDestination(NodeId::new(9))
            .to_string()
            .contains("n9"));
    }
}
