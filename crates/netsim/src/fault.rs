//! The unified fault-injection plane.
//!
//! The paper's fault-tolerance overheads exist because real networks
//! *detect* errors without *masking* them: packets are dropped,
//! duplicated by link-level retry, delayed, reordered by adaptive
//! routing, and whole nodes or links blink out. [`FaultConfig`]
//! describes such a fault mix; [`FaultSchedule`] turns it into a
//! seeded, fully deterministic per-packet decision stream that the
//! substrates ([`crate::SwitchedNetwork`], [`crate::WormholeNetwork`],
//! and through them [`crate::DualNetwork`]) consult at injection time.
//!
//! The schedule owns its own RNG, seeded independently of the routing
//! RNG, so enabling faults never perturbs routing decisions and a
//! fault-free configuration draws no random numbers at all.

use crate::id::NodeId;
use crate::packet::Packet;
use crate::rng::{splitmix64, SimRng};
use crate::stats::NetStats;
use crate::time::Time;

/// A scripted outage: every packet injected while `now` is inside
/// `[start, end)` whose source or destination is `node` is silently
/// discarded (the node is down — nothing it sends or should receive
/// gets through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The node that is down.
    pub node: NodeId,
    /// First cycle of the outage (inclusive).
    pub start: u64,
    /// First cycle after the outage (exclusive).
    pub end: u64,
}

impl OutageWindow {
    /// Does this window silence `src → dst` traffic at `now`?
    #[must_use]
    pub fn silences(&self, src: NodeId, dst: NodeId, now: Time) -> bool {
        let t = now.cycles();
        t >= self.start && t < self.end && (self.node == src || self.node == dst)
    }
}

/// A scripted node crash with restart: the node is dead during
/// `[start, end)` — every packet it sends or should receive is silently
/// discarded, exactly like an [`OutageWindow`] — and at `end` it comes
/// back *with amnesia*. Unlike an outage (where the node resumes with
/// its protocol state intact), a restart means every piece of endpoint
/// protocol state held for the node (segment tables, RPC reply caches,
/// stream cursors) must be erased by the protocol layer. Peers observe
/// that a restart happened via [`FaultSchedule::restarts`] and fail
/// their in-flight sessions fast with a retryable error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The node that crashes.
    pub node: NodeId,
    /// First cycle of the crash (inclusive) — the node goes dark here.
    pub start: u64,
    /// First cycle after the crash (exclusive) — the node restarts
    /// here, with all its endpoint protocol state erased.
    pub end: u64,
}

impl CrashWindow {
    /// Does this window silence `src → dst` traffic at `now`?
    #[must_use]
    pub fn silences(&self, src: NodeId, dst: NodeId, now: Time) -> bool {
        let t = now.cycles();
        t >= self.start && t < self.end && (self.node == src || self.node == dst)
    }

    /// Has the node already crashed *and restarted* by `now`?
    #[must_use]
    pub fn restarted_by(&self, now: Time) -> bool {
        now.cycles() >= self.end
    }
}

/// A fault mix: per-packet probabilities plus scripted outages.
///
/// The default is fault-free. All probabilities are evaluated
/// independently per packet by a [`FaultSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a packet is corrupted in flight. Corruption is
    /// *detected* (CRC) at delivery and the packet discarded — the
    /// paper's detect-only fault model.
    pub corruption_prob: f64,
    /// Probability a packet is silently dropped (lost outright, no
    /// detection possible at the network layer).
    pub drop_prob: f64,
    /// Probability a packet is duplicated (link-level retry after a
    /// lost acknowledgement delivers the same packet twice).
    pub duplicate_prob: f64,
    /// Maximum extra delivery delay in cycles; each packet draws a
    /// uniform jitter in `0..=delay_jitter`. Zero disables.
    pub delay_jitter: u64,
    /// Probability a packet is held back so later traffic overtakes it
    /// (a bounded reorder burst).
    pub reorder_prob: f64,
    /// How many subsequent injections overtake a held packet before it
    /// is released (it is also released after a bounded cycle count,
    /// so a held packet never hangs an idle network).
    pub reorder_depth: u64,
    /// Scripted node outage windows.
    pub outages: Vec<OutageWindow>,
    /// Scripted node crash-restart windows. A crash silences traffic
    /// like an outage *and* counts as a restart once the window closes,
    /// signalling the protocol layer to erase the node's endpoint state.
    pub crashes: Vec<CrashWindow>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            corruption_prob: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay_jitter: 0,
            reorder_prob: 0.0,
            reorder_depth: 4,
            outages: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A fault-free configuration (same as `Default`).
    #[must_use]
    pub fn clean() -> Self {
        FaultConfig::default()
    }

    /// True if any fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.corruption_prob > 0.0
            || self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.delay_jitter > 0
            || self.reorder_prob > 0.0
            || !self.outages.is_empty()
            || !self.crashes.is_empty()
    }
}

/// What the schedule decided for one injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct InjectFaults {
    /// Discard the packet silently (outage or random loss). Counters
    /// are already updated; the substrate just drops it.
    pub(crate) vanish: bool,
    /// Flip the packet's CRC so delivery discards it.
    pub(crate) corrupt: bool,
    /// Inject a second, identical copy.
    pub(crate) duplicate: bool,
    /// Extra delivery delay in cycles.
    pub(crate) extra_delay: u64,
    /// Hold the packet back for a reorder burst.
    pub(crate) hold: bool,
}

impl InjectFaults {
    pub(crate) const NONE: InjectFaults = InjectFaults {
        vanish: false,
        corrupt: false,
        duplicate: false,
        extra_delay: 0,
        hold: false,
    };
}

/// A packet held back by the reorder fault, waiting for later traffic
/// to overtake it.
#[derive(Debug, Clone)]
struct HeldPacket {
    packet: Packet,
    /// Released once this many further injections have happened…
    injections_remaining: u64,
    /// …or at this time, whichever comes first.
    release_at: Time,
}

/// The seeded, deterministic fault decision stream for one substrate.
///
/// Construction is cheap; a fault-free schedule makes no RNG draws, so
/// adding the plane to a substrate changes nothing when faults are off.
///
/// One schedule serves one decision site: each switched subnet owns its
/// own (per-shard streams in the sharded substrate), and the sharded
/// front keeps an additional engine-thread-only schedule under global
/// node ids for the cross-shard boundary path and all restart queries —
/// schedules are never shared across threads.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    cfg: FaultConfig,
    rng: SimRng,
    held: Vec<HeldPacket>,
}

impl FaultSchedule {
    /// Build a schedule from a fault mix and the substrate seed. The
    /// fault RNG stream is decorrelated from the routing stream derived
    /// from the same seed.
    #[must_use]
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultSchedule {
            cfg,
            rng: SimRng::new(splitmix64(seed ^ 0xFA_17_5C_8E_D0_1E_55_AA)),
            held: Vec::new(),
        }
    }

    /// The fault mix this schedule executes.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Packets currently held back by the reorder fault.
    #[must_use]
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// How many times `node` has crashed *and restarted* by `now`.
    ///
    /// The protocol layer compares this monotonic counter against its
    /// own remembered value to detect a restart it has not yet absorbed
    /// (and then erases the node's endpoint protocol state). On a
    /// crash-free schedule this is always zero and costs nothing.
    #[must_use]
    pub fn restarts(&self, node: NodeId, now: Time) -> u32 {
        self.cfg
            .crashes
            .iter()
            .filter(|w| w.node == node && w.restarted_by(now))
            .count() as u32
    }

    /// Total restarts across *all* nodes by `now` — a change detector
    /// for [`crate::Network::restarts_hint`]. O(#crash windows), which
    /// is O(1) on the usual crash-free schedule.
    #[must_use]
    pub fn restarts_total(&self, now: Time) -> u64 {
        self.cfg.crashes.iter().filter(|w| w.restarted_by(now)).count() as u64
    }

    /// The earliest scripted restart strictly after `now` (the first
    /// cycle some crashed node comes back), if any. Event-driven
    /// schedulers clamp idle clock-jumps here so a restart is observed
    /// on exactly the cycle its window closes.
    pub fn next_restart_after(&self, now: Time) -> Option<Time> {
        self.cfg
            .crashes
            .iter()
            .map(|w| w.end)
            .filter(|&end| end > now.cycles())
            .min()
            .map(Time::from_cycles)
    }

    /// Decide the faults for one packet being injected now, updating
    /// the per-fault counters. Corruption is decided here but counted
    /// at delivery (where detection happens), matching the existing
    /// `dropped_corrupt` accounting.
    pub(crate) fn on_inject(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: Time,
        stats: &mut NetStats,
    ) -> InjectFaults {
        if !self.cfg.is_active() {
            return InjectFaults::NONE;
        }
        if self.cfg.outages.iter().any(|w| w.silences(src, dst, now)) {
            stats.outage_drops += 1;
            return InjectFaults { vanish: true, ..InjectFaults::NONE };
        }
        if self.cfg.crashes.iter().any(|w| w.silences(src, dst, now)) {
            stats.crash_drops += 1;
            return InjectFaults { vanish: true, ..InjectFaults::NONE };
        }
        if self.cfg.drop_prob > 0.0 && self.rng.gen_bool(self.cfg.drop_prob) {
            stats.dropped_fault += 1;
            return InjectFaults { vanish: true, ..InjectFaults::NONE };
        }
        let corrupt = self.cfg.corruption_prob > 0.0 && self.rng.gen_bool(self.cfg.corruption_prob);
        let duplicate = self.cfg.duplicate_prob > 0.0 && self.rng.gen_bool(self.cfg.duplicate_prob);
        let extra_delay = if self.cfg.delay_jitter > 0 {
            self.rng.gen_inclusive(self.cfg.delay_jitter)
        } else {
            0
        };
        let hold = self.cfg.reorder_prob > 0.0 && self.rng.gen_bool(self.cfg.reorder_prob);
        // `duplicated` is counted by the substrate when the extra copy
        // actually enters the network (it may find no buffer space).
        if extra_delay > 0 {
            stats.jitter_delayed += 1;
        }
        if hold {
            stats.reordered += 1;
        }
        InjectFaults { vanish: false, corrupt, duplicate, extra_delay, hold }
    }

    /// Park a packet for a reorder burst. It re-emerges from
    /// [`FaultSchedule::take_released`] after `reorder_depth` further
    /// injections or a bounded number of cycles, whichever comes first.
    pub(crate) fn hold(&mut self, packet: Packet, now: Time) {
        let depth = self.cfg.reorder_depth.max(1);
        self.held.push(HeldPacket {
            packet,
            injections_remaining: depth,
            // Liveness valve: even if traffic stops dead, the held
            // packet rejoins the network soon after.
            release_at: now + (4 * depth + 8),
        });
    }

    /// Note that another packet entered the network (advancing held
    /// packets toward release).
    pub(crate) fn note_injection(&mut self) {
        for h in &mut self.held {
            h.injections_remaining = h.injections_remaining.saturating_sub(1);
        }
    }

    /// Take every held packet now due for release (by overtake count or
    /// by deadline).
    pub(crate) fn take_released(&mut self, now: Time) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].injections_remaining == 0 || now >= self.held[i].release_at {
                out.push(self.held.swap_remove(i).packet);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Put a released packet back (e.g. the re-entry queue was full);
    /// it retries promptly.
    pub(crate) fn hold_again(&mut self, packet: Packet, now: Time) {
        self.held.push(HeldPacket {
            packet,
            injections_remaining: 0,
            release_at: now + 1,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pkt() -> Packet {
        Packet::new(n(0), n(1), 1, 0, vec![1, 2, 3, 4])
    }

    #[test]
    fn clean_schedule_decides_nothing_and_draws_nothing() {
        let mut s = FaultSchedule::new(FaultConfig::clean(), 1);
        let snapshot = s.rng.clone();
        let mut stats = NetStats::new();
        for _ in 0..100 {
            assert_eq!(s.on_inject(n(0), n(1), Time::ZERO, &mut stats), InjectFaults::NONE);
        }
        assert_eq!(s.rng, snapshot, "no RNG draws on the clean path");
        assert_eq!(stats.dropped_fault + stats.reordered + stats.jitter_delayed, 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.2,
            delay_jitter: 5,
            reorder_prob: 0.2,
            ..FaultConfig::default()
        };
        let mut a = FaultSchedule::new(cfg.clone(), 9);
        let mut b = FaultSchedule::new(cfg, 9);
        let mut sa = NetStats::new();
        let mut sb = NetStats::new();
        for _ in 0..200 {
            assert_eq!(
                a.on_inject(n(0), n(1), Time::ZERO, &mut sa),
                b.on_inject(n(0), n(1), Time::ZERO, &mut sb)
            );
        }
    }

    #[test]
    fn drop_probability_is_roughly_honored() {
        let cfg = FaultConfig { drop_prob: 0.3, ..FaultConfig::default() };
        let mut s = FaultSchedule::new(cfg, 3);
        let mut stats = NetStats::new();
        for _ in 0..10_000 {
            s.on_inject(n(0), n(1), Time::ZERO, &mut stats);
        }
        assert!(
            (2_600..3_400).contains(&(stats.dropped_fault as usize)),
            "{}",
            stats.dropped_fault
        );
    }

    #[test]
    fn outage_silences_only_its_node_and_window() {
        let cfg = FaultConfig {
            outages: vec![OutageWindow { node: n(1), start: 10, end: 20 }],
            ..FaultConfig::default()
        };
        let mut s = FaultSchedule::new(cfg, 0);
        let mut stats = NetStats::new();
        let inside = Time::from_cycles(15);
        let outside = Time::from_cycles(25);
        assert!(s.on_inject(n(0), n(1), inside, &mut stats).vanish, "dst down");
        assert!(s.on_inject(n(1), n(2), inside, &mut stats).vanish, "src down");
        assert!(!s.on_inject(n(0), n(2), inside, &mut stats).vanish, "bystanders fine");
        assert!(!s.on_inject(n(0), n(1), outside, &mut stats).vanish, "window over");
        assert_eq!(stats.outage_drops, 2);
    }

    #[test]
    fn crash_silences_its_window_and_counts_a_restart_after() {
        let cfg = FaultConfig {
            crashes: vec![CrashWindow { node: n(1), start: 10, end: 20 }],
            ..FaultConfig::default()
        };
        let mut s = FaultSchedule::new(cfg, 0);
        let mut stats = NetStats::new();
        let inside = Time::from_cycles(15);
        let after = Time::from_cycles(20);
        assert!(s.on_inject(n(0), n(1), inside, &mut stats).vanish, "dst crashed");
        assert!(s.on_inject(n(1), n(2), inside, &mut stats).vanish, "src crashed");
        assert!(!s.on_inject(n(0), n(2), inside, &mut stats).vanish, "bystanders fine");
        assert!(!s.on_inject(n(0), n(1), after, &mut stats).vanish, "restarted");
        assert_eq!(stats.crash_drops, 2);
        assert_eq!(stats.outage_drops, 0, "crash drops are their own counter");

        // The restart becomes visible exactly when the window closes,
        // and only for the crashed node.
        assert_eq!(s.restarts(n(1), Time::from_cycles(19)), 0);
        assert_eq!(s.restarts(n(1), after), 1);
        assert_eq!(s.restarts(n(0), after), 0);
    }

    #[test]
    fn held_packets_release_by_overtake_or_deadline() {
        let cfg = FaultConfig { reorder_prob: 1.0, reorder_depth: 2, ..FaultConfig::default() };
        let mut s = FaultSchedule::new(cfg, 0);
        s.hold(pkt(), Time::ZERO);
        assert!(s.take_released(Time::ZERO).is_empty());
        s.note_injection();
        assert!(s.take_released(Time::ZERO).is_empty());
        s.note_injection();
        assert_eq!(s.take_released(Time::ZERO).len(), 1, "overtaken twice");

        // Deadline release with no traffic at all.
        s.hold(pkt(), Time::ZERO);
        assert!(s.take_released(Time::from_cycles(5)).is_empty());
        assert_eq!(s.take_released(Time::from_cycles(1_000)).len(), 1);
        assert_eq!(s.held_count(), 0);
    }
}
