//! An instant, reliable network with scripted delivery order.
//!
//! The paper's Table 2 measurements are made under controlled
//! assumptions — most importantly that *half the packets of an
//! indefinite-sequence stream arrive out of order*. Real multipath
//! routing produces some other, load-dependent fraction, so the
//! table-regeneration harness runs the protocols over this substrate:
//! zero latency, no loss, unbounded buffering, and a delivery-order
//! policy chosen by [`DeliveryScript`].
//!
//! [`DeliveryScript::AlternateSwap`] delivers packets `1, 0, 3, 2, 5, 4,
//! …`: every odd-numbered packet arrives before its predecessor, so for
//! an even packet count exactly half the packets are out of order —
//! precisely the paper's assumption.

use std::collections::{HashMap, VecDeque};

use crate::id::{NodeId, PacketId};
use crate::network::{Guarantees, InjectError, Network, RxMeta};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::Time;

/// Delivery-order policy of a [`ScriptedNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryScript {
    /// Deliver in injection order (models an in-order network).
    InOrder,
    /// Deliver adjacent pairs swapped (`1, 0, 3, 2, …`) — exactly half
    /// of an even-length stream arrives out of order, the paper's
    /// Table 2 assumption for the indefinite-sequence protocol.
    AlternateSwap,
    /// Buffer `window` packets per pair and release them in a random
    /// permutation (seeded; deterministic for a given seed).
    WindowShuffle {
        /// Packets buffered before each shuffled release.
        window: usize,
    },
}

#[derive(Debug, Default)]
struct PairBuffer {
    held: Vec<Packet>,
}

/// Zero-latency, loss-free network whose delivery order follows a
/// [`DeliveryScript`].
#[derive(Debug)]
pub struct ScriptedNetwork {
    nodes: usize,
    script: DeliveryScript,
    now: Time,
    rx: Vec<VecDeque<Packet>>,
    buffers: HashMap<(NodeId, NodeId), PairBuffer>,
    next_id: u64,
    pair_seq: HashMap<(NodeId, NodeId), u64>,
    held_count: usize,
    stats: NetStats,
    rng: SimRng,
}

impl ScriptedNetwork {
    /// Build a scripted network over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or a [`DeliveryScript::WindowShuffle`]
    /// window is zero.
    pub fn new(nodes: usize, script: DeliveryScript) -> Self {
        ScriptedNetwork::with_seed(nodes, script, 0xC0FFEE)
    }

    /// Build with an explicit RNG seed (only [`DeliveryScript::WindowShuffle`]
    /// consumes randomness).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or a shuffle window is zero.
    pub fn with_seed(nodes: usize, script: DeliveryScript, seed: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        if let DeliveryScript::WindowShuffle { window } = script {
            assert!(window >= 1, "shuffle window must be at least 1");
        }
        ScriptedNetwork {
            nodes,
            script,
            now: Time::ZERO,
            rx: (0..nodes).map(|_| VecDeque::new()).collect(),
            buffers: HashMap::new(),
            next_id: 0,
            pair_seq: HashMap::new(),
            held_count: 0,
            stats: NetStats::new(),
            rng: SimRng::new(seed),
        }
    }

    /// The active delivery script.
    pub fn script(&self) -> DeliveryScript {
        self.script
    }

    fn deliver(&mut self, packet: Packet) {
        let (src, dst) = (packet.src(), packet.dst());
        let seq = packet.pair_seq().expect("stamped at injection");
        let injected = packet.injected_at();
        self.rx[dst.index()].push_back(packet);
        let depth = self.rx[dst.index()].len();
        self.stats
            .record_delivery(src, dst, seq, injected, self.now, depth);
    }

    /// Release every held packet destined for `node` (used when a stream
    /// ends with a packet still buffered by the script). Passing `None`
    /// flushes every pair.
    fn flush_node(&mut self, node: Option<NodeId>) {
        let keys: Vec<(NodeId, NodeId)> = self
            .buffers
            .iter()
            .filter(|((_, dst), b)| node.is_none_or(|n| *dst == n) && !b.held.is_empty())
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let mut held = std::mem::take(
                &mut self.buffers.get_mut(&key).expect("key just listed").held,
            );
            if matches!(self.script, DeliveryScript::WindowShuffle { .. }) {
                self.rng.shuffle(&mut held);
            }
            self.held_count -= held.len();
            for p in held {
                self.deliver(p);
            }
        }
    }
}

impl Network for ScriptedNetwork {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn now(&self) -> Time {
        self.now
    }

    fn advance(&mut self, cycles: u64) {
        self.now += cycles;
        // Time passing delivers whatever the script was still holding —
        // a trailing odd packet of an AlternateSwap stream, or a partial
        // shuffle window. Without this, an odd-length stream would
        // strand its last packet until a receive-side probe.
        if cycles > 0 && self.held_count > 0 {
            self.flush_node(None);
        }
    }

    fn try_inject(&mut self, mut packet: Packet) -> Result<(), InjectError> {
        let (src, dst) = (packet.src(), packet.dst());
        if dst.index() >= self.nodes {
            return Err(InjectError::BadDestination(dst));
        }
        if src.index() >= self.nodes {
            return Err(InjectError::BadDestination(src));
        }
        let seq = self.pair_seq.entry((src, dst)).or_insert(0);
        let this_seq = *seq;
        packet.stamp(PacketId::new(self.next_id), this_seq, self.now);
        self.next_id += 1;
        *seq += 1;
        self.stats.injected += 1;

        match self.script {
            DeliveryScript::InOrder => self.deliver(packet),
            DeliveryScript::AlternateSwap => {
                if this_seq.is_multiple_of(2) {
                    self.buffers.entry((src, dst)).or_default().held.push(packet);
                    self.held_count += 1;
                } else {
                    self.deliver(packet);
                    let buf = self.buffers.entry((src, dst)).or_default();
                    if let Some(held) = buf.held.pop() {
                        self.held_count -= 1;
                        self.deliver(held);
                    }
                }
            }
            DeliveryScript::WindowShuffle { window } => {
                let buf = self.buffers.entry((src, dst)).or_default();
                buf.held.push(packet);
                self.held_count += 1;
                if buf.held.len() >= window {
                    let mut held = std::mem::take(&mut buf.held);
                    self.rng.shuffle(&mut held);
                    self.held_count -= held.len();
                    for p in held {
                        self.deliver(p);
                    }
                }
            }
        }
        Ok(())
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        // Mirror try_receive's liveness flush so the peeked head is
        // exactly what try_receive would pop.
        if self.rx.get(node.index())?.is_empty() && self.held_count > 0 {
            self.flush_node(Some(node));
        }
        self.rx.get(node.index())?.front().map(RxMeta::of)
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        if self.rx.get(node.index())?.is_empty() && self.held_count > 0 {
            // Liveness: a stream may end while the script still holds a
            // packet (e.g. odd-length AlternateSwap) — release it rather
            // than strand it.
            self.flush_node(Some(node));
        }
        self.rx.get_mut(node.index())?.pop_front()
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        self.rx.get(node.index()).map_or(0, VecDeque::len)
    }

    fn in_flight(&self) -> usize {
        self.held_count
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn guarantees(&self) -> Guarantees {
        Guarantees {
            in_order: matches!(self.script, DeliveryScript::InOrder),
            reliable: true,
            flow_controlled: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
        Packet::new(n(src), n(dst), 1, seq, vec![seq])
    }

    fn inject_burst(net: &mut ScriptedNetwork, count: u32) {
        for s in 0..count {
            net.try_inject(pkt(0, 1, s)).unwrap();
        }
    }

    fn receive_all(net: &mut ScriptedNetwork, node: NodeId) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(p) = net.try_receive(node) {
            out.push(p.header());
        }
        out
    }

    #[test]
    fn in_order_script_preserves_order() {
        let mut net = ScriptedNetwork::new(2, DeliveryScript::InOrder);
        inject_burst(&mut net, 10);
        assert_eq!(receive_all(&mut net, n(1)), (0..10).collect::<Vec<_>>());
        assert_eq!(net.stats().order.out_of_order(), 0);
    }

    #[test]
    fn alternate_swap_is_exactly_half_out_of_order() {
        let mut net = ScriptedNetwork::new(2, DeliveryScript::AlternateSwap);
        inject_burst(&mut net, 8);
        assert_eq!(receive_all(&mut net, n(1)), vec![1, 0, 3, 2, 5, 4, 7, 6]);
        assert_eq!(net.stats().order.out_of_order(), 4);
        assert_eq!(net.stats().order.in_order(), 4);
    }

    #[test]
    fn alternate_swap_flushes_trailing_packet() {
        let mut net = ScriptedNetwork::new(2, DeliveryScript::AlternateSwap);
        inject_burst(&mut net, 5); // packet 4 is held
        assert_eq!(net.in_flight(), 1);
        let got = receive_all(&mut net, n(1));
        assert_eq!(got, vec![1, 0, 3, 2, 4]);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn window_shuffle_delivers_everything() {
        let mut net =
            ScriptedNetwork::with_seed(2, DeliveryScript::WindowShuffle { window: 4 }, 9);
        inject_burst(&mut net, 10); // 2 packets left held, flushed on read
        let mut got = receive_all(&mut net, n(1));
        assert_eq!(got.len(), 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pairs_are_independent() {
        let mut net = ScriptedNetwork::new(3, DeliveryScript::AlternateSwap);
        net.try_inject(pkt(0, 2, 100)).unwrap();
        net.try_inject(pkt(1, 2, 200)).unwrap();
        // Both held (seq 0 per pair); a read flushes both.
        let got = receive_all(&mut net, n(2));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn stats_count_latency_zero() {
        let mut net = ScriptedNetwork::new(2, DeliveryScript::InOrder);
        net.advance(10);
        inject_burst(&mut net, 3);
        assert_eq!(net.stats().latency.mean(), 0.0);
        assert_eq!(net.stats().delivered, 3);
    }

    #[test]
    fn bad_destination_is_rejected() {
        let mut net = ScriptedNetwork::new(2, DeliveryScript::InOrder);
        assert!(net.try_inject(pkt(0, 7, 0)).is_err());
    }
}
