//! The CM-5-like store-and-forward switched network.
//!
//! One bounded FIFO per directed link; a packet occupies the head of a
//! link for `link_latency` cycles, then moves to the next link on its
//! path (or the destination's receive queue) if there is space, otherwise
//! it blocks — finite buffering with backpressure all the way to the
//! injection port. Multipath route strategies reorder packets; corrupted
//! packets are detected (CRC) at the receiving NI and silently discarded,
//! never repaired — exactly the three network features whose software
//! cost the paper measures.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::fault::{FaultConfig, FaultSchedule};
use crate::id::{NodeId, PacketId};
use crate::network::{Guarantees, InjectError, Network, RxMeta, WakeSet};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::Time;
use crate::topology::{rng_fn, LinkId, Topology};
use crate::trace::{TraceBuffer, TraceEvent, TraceKind};

/// How the network chooses among minimal paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteStrategy {
    /// One fixed path per `(src, dst)` pair. Preserves per-pair delivery
    /// order (at the cost of load imbalance).
    Deterministic,
    /// Pick the least-loaded of `candidates` sampled minimal paths
    /// (multipath adaptive routing — reorders).
    Adaptive {
        /// Minimal paths sampled per injection.
        candidates: usize,
    },
    /// Pick uniformly among `candidates` sampled minimal paths
    /// (randomized routing — reorders).
    Randomized {
        /// Minimal paths sampled per injection.
        candidates: usize,
    },
}

/// Configuration for [`SwitchedNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchedConfig {
    /// Cycles a packet occupies a link (≥ 1).
    pub link_latency: u64,
    /// Packets a link queue can hold (≥ 1).
    pub link_queue_capacity: usize,
    /// Packets a node's receive queue can hold before the network backs
    /// up (≥ 1) — the finite node buffering of §2.2.
    pub rx_queue_capacity: usize,
    /// Path-selection strategy.
    pub strategy: RouteStrategy,
    /// Virtual channels per link (≥ 1). With more than one, packets on
    /// the *same* physical path can overtake each other — the second
    /// source of arbitrary delivery order §2.2 names (after multipath
    /// routing), and a reason even deterministic routing cannot promise
    /// order on such hardware.
    pub virtual_channels: usize,
    /// Fault injection (see [`FaultConfig`]); executed by a
    /// [`FaultSchedule`] seeded from `seed`.
    pub fault: FaultConfig,
    /// RNG seed (the simulation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SwitchedConfig {
    fn default() -> Self {
        SwitchedConfig {
            link_latency: 2,
            link_queue_capacity: 4,
            rx_queue_capacity: 16,
            strategy: RouteStrategy::Deterministic,
            virtual_channels: 1,
            fault: FaultConfig::default(),
            seed: 0xC0FFEE,
        }
    }
}

#[derive(Debug, Clone)]
struct Transit {
    packet: Packet,
    path: Vec<LinkId>,
    hop: usize,
    vc: usize,
    ready_at: Time,
    /// Fault-plane delay jitter still to be applied, consumed the first
    /// time the packet reaches a queue head.
    jitter: u64,
}

#[derive(Debug, Clone, Default)]
struct Link {
    // One FIFO per virtual channel; the physical link serves the VC
    // heads round-robin, one packet movement per cycle.
    queues: Vec<VecDeque<Transit>>,
    rr: usize,
}

impl Link {
    fn with_vcs(vcs: usize) -> Self {
        Link {
            queues: (0..vcs).map(|_| VecDeque::new()).collect(),
            rr: 0,
        }
    }

    fn occupancy(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// In-flight network state saved by [`SwitchedNetwork::swap_out`]
/// during a timesharing context switch.
#[derive(Debug)]
pub struct SwappedContext {
    transits: Vec<Transit>,
}

impl SwappedContext {
    /// Packets held in this context.
    pub fn len(&self) -> usize {
        self.transits.len()
    }

    /// Whether the context holds no packets.
    pub fn is_empty(&self) -> bool {
        self.transits.is_empty()
    }
}

/// A CM-5-like packet-switched network over a [`Topology`].
#[derive(Debug, Clone)]
pub struct SwitchedNetwork<T> {
    topo: T,
    cfg: SwitchedConfig,
    links: Vec<Link>,
    rx: Vec<VecDeque<Packet>>,
    now: Time,
    next_id: u64,
    pair_seq: HashMap<(NodeId, NodeId), u64>,
    in_flight: usize,
    last_progress: Time,
    stats: NetStats,
    trace: Option<TraceBuffer>,
    rng: SimRng,
    faults: FaultSchedule,
    wake: WakeSet,
    // Links with at least one queued packet, in ascending index order.
    // `step` scans only these instead of every link in the topology; on
    // a large, mostly-idle fabric that is the difference between O(L)
    // and O(occupied) per cycle. Scanning a link with empty queues is a
    // no-op (no head to move, `rr` untouched), so skipping empty links
    // is trace-exact.
    occupied: BTreeSet<usize>,
    // Reusable snapshot buffer for the per-cycle scan.
    scan: Vec<usize>,
}

impl<T: Topology> SwitchedNetwork<T> {
    /// Build a network over `topo` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `link_latency`, `link_queue_capacity` or
    /// `rx_queue_capacity` is zero.
    pub fn new(topo: T, cfg: SwitchedConfig) -> Self {
        assert!(cfg.link_latency >= 1, "link latency must be at least 1 cycle");
        assert!(cfg.link_queue_capacity >= 1, "link queues must hold at least 1 packet");
        assert!(cfg.rx_queue_capacity >= 1, "rx queues must hold at least 1 packet");
        assert!(cfg.virtual_channels >= 1, "need at least one virtual channel");
        let links = (0..topo.num_links())
            .map(|_| Link::with_vcs(cfg.virtual_channels))
            .collect();
        let rx = (0..topo.num_nodes()).map(|_| VecDeque::new()).collect();
        let rng = SimRng::new(cfg.seed);
        let faults = FaultSchedule::new(cfg.fault.clone(), cfg.seed);
        let wake = WakeSet::new(topo.num_nodes());
        SwitchedNetwork {
            topo,
            cfg,
            links,
            rx,
            now: Time::ZERO,
            next_id: 0,
            pair_seq: HashMap::new(),
            in_flight: 0,
            last_progress: Time::ZERO,
            stats: NetStats::new(),
            trace: None,
            rng,
            faults,
            wake,
            occupied: BTreeSet::new(),
            scan: Vec::new(),
        }
    }

    /// The fault schedule driving this network's fault plane.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Start recording packet events into a ring of `capacity` entries
    /// (see [`TraceBuffer`]). Tracing is off by default.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    fn record_trace(&mut self, packet: Option<crate::id::PacketId>, src: NodeId, dst: NodeId, kind: TraceKind) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent { time: self.now, packet, src, dst, kind });
        }
    }

    /// Suspend the network for a timesharing context switch: every
    /// in-flight packet is extracted from the links into an opaque
    /// context (the CM-5's "all-fall-down" mode, where packets drop out
    /// of the network to be saved by the operating system).
    ///
    /// Receive queues are node-local state and are left in place.
    pub fn swap_out(&mut self) -> SwappedContext {
        let mut transits = Vec::new();
        for link in &mut self.links {
            for q in &mut link.queues {
                transits.extend(q.drain(..));
            }
        }
        self.occupied.clear();
        self.in_flight -= transits.len();
        SwappedContext { transits }
    }

    /// Resume a previously swapped context: the saved packets are
    /// reinjected at the hop where they fell, in an **arbitrary order**
    /// — this is the delivery-order hazard §2.2 attributes to
    /// timesharing, and it happens even under deterministic routing.
    /// Reinjection bypasses link-queue capacity (the OS owns the
    /// buffers during the swap).
    pub fn swap_in(&mut self, mut context: SwappedContext) {
        self.rng.shuffle(&mut context.transits);
        self.in_flight += context.transits.len();
        for mut transit in context.transits.drain(..) {
            let li = transit.path[transit.hop].index();
            let vc = transit.vc;
            transit.ready_at = if self.links[li].queues[vc].is_empty() {
                self.now + self.cfg.link_latency
            } else {
                Time::from_cycles(u64::MAX)
            };
            self.links[li].queues[vc].push_back(transit);
            self.occupied.insert(li);
        }
        self.last_progress = self.now;
    }

    /// The topology this network routes over.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> &SwitchedConfig {
        &self.cfg
    }

    /// Cycles since any packet last moved or was delivered. A large
    /// value while packets are [in flight](Network::in_flight) indicates
    /// the network is stalled — e.g. a destination has stopped
    /// extracting packets and backpressure has propagated (the
    /// deadlock/overflow hazard of §2.2).
    pub fn stalled_for(&self) -> u64 {
        self.now.since(self.last_progress)
    }

    fn choose_path(&mut self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        match self.cfg.strategy {
            RouteStrategy::Deterministic => self.topo.canonical_path(src, dst),
            RouteStrategy::Adaptive { candidates } => {
                let cands = {
                    let mut f = rng_fn(&mut self.rng);
                    self.topo.candidate_paths(src, dst, &mut f, candidates.max(1))
                };
                cands
                    .into_iter()
                    .min_by_key(|p| {
                        p.iter()
                            .map(|l| self.links[l.index()].occupancy())
                            .sum::<usize>()
                    })
                    .expect("candidate_paths returns at least one path")
            }
            RouteStrategy::Randomized { candidates } => {
                let mut cands = {
                    let mut f = rng_fn(&mut self.rng);
                    self.topo.candidate_paths(src, dst, &mut f, candidates.max(1))
                };
                let pick = self.rng.gen_index(cands.len());
                cands.swap_remove(pick)
            }
        }
    }

    fn deliver(&mut self, transit: Transit) {
        let packet = transit.packet;
        self.in_flight -= 1;
        self.last_progress = self.now;
        let (src, dst, id) = (packet.src(), packet.dst(), packet.id());
        if packet.is_corrupted() {
            // CRC check at the receiving NI: detect and discard.
            self.stats.dropped_corrupt += 1;
            self.record_trace(id, src, dst, TraceKind::DropCorrupt);
            return;
        }
        let seq = packet.pair_seq().expect("stamped at injection");
        let injected = packet.injected_at();
        self.rx[dst.index()].push_back(packet);
        self.wake.mark(dst);
        let depth = self.rx[dst.index()].len();
        self.stats
            .record_delivery(src, dst, seq, injected, self.now, depth);
        self.record_trace(id, src, dst, TraceKind::Deliver);
    }

    fn step(&mut self) {
        self.now += 1;
        self.release_due_holds();
        if self.occupied.is_empty() {
            return;
        }
        let vcs = self.cfg.virtual_channels;
        // Move at most one packet per physical link per cycle: the
        // round-robin scan over virtual-channel heads finds the first
        // one whose traversal completed and whose next buffer has
        // space. A ready head on another VC can thereby overtake a
        // blocked one — that is exactly how virtual channels break
        // delivery order.
        //
        // Only occupied links are visited, in ascending index order —
        // the same order the full scan would reach them. A link that
        // *becomes* occupied mid-scan (a head moved onto it) holds only
        // packets with `ready_at > now`, so the full scan's visit to it
        // would be a no-op; a link occupied at snapshot time cannot
        // empty before its visit (only its own visit pops it).
        let mut scan = std::mem::take(&mut self.scan);
        scan.clear();
        scan.extend(self.occupied.iter().copied());
        for &li in &scan {
            let start = self.links[li].rr;
            for k in 0..vcs {
                let vc = (start + k) % vcs;
                if self.try_move_head(li, vc) {
                    self.links[li].rr = (vc + 1) % vcs;
                    break;
                }
            }
        }
        self.scan = scan;
    }

    /// Attempt to move the head of `(link, vc)`; returns whether a
    /// packet moved (or was delivered/dropped).
    fn try_move_head(&mut self, li: usize, vc: usize) -> bool {
        let Some(head) = self.links[li].queues[vc].front() else {
            return false;
        };
        if head.ready_at > self.now {
            return false;
        }
        let last_hop = head.hop + 1 == head.path.len();
        if last_hop {
            let dst = head.packet.dst().index();
            let corrupt = head.packet.is_corrupted();
            if corrupt || self.rx[dst].len() < self.cfg.rx_queue_capacity {
                let transit = self.links[li].queues[vc].pop_front().expect("head exists");
                if self.links[li].occupancy() == 0 {
                    self.occupied.remove(&li);
                }
                self.deliver(transit);
                self.wake_new_head(li, vc);
                return true;
            }
            false // destination buffer full — block in place
        } else {
            let next = head.path[head.hop + 1].index();
            if next != li && self.links[next].queues[vc].len() < self.cfg.link_queue_capacity {
                let mut transit = self.links[li].queues[vc].pop_front().expect("head exists");
                if self.links[li].occupancy() == 0 {
                    self.occupied.remove(&li);
                }
                self.occupied.insert(next);
                transit.hop += 1;
                transit.ready_at = if self.links[next].queues[vc].is_empty() {
                    self.now + self.cfg.link_latency
                } else {
                    Time::from_cycles(u64::MAX)
                };
                let (tid, tsrc, tdst) = (
                    transit.packet.id(),
                    transit.packet.src(),
                    transit.packet.dst(),
                );
                self.links[next].queues[vc].push_back(transit);
                self.last_progress = self.now;
                self.wake_new_head(li, vc);
                self.record_trace(tid, tsrc, tdst, TraceKind::Hop(LinkId(next)));
                return true;
            }
            false
        }
    }

    fn wake_new_head(&mut self, li: usize, vc: usize) {
        if let Some(new_head) = self.links[li].queues[vc].front_mut() {
            if new_head.ready_at == Time::from_cycles(u64::MAX) {
                new_head.ready_at = self.now + self.cfg.link_latency + new_head.jitter;
                new_head.jitter = 0;
            }
        }
    }

    /// Put one packet (already stamped and counted) onto the first hop
    /// of a freshly chosen path. Returns `false` if the first-hop queue
    /// is full.
    fn enqueue_on_path(&mut self, packet: Packet, jitter: u64) -> bool {
        let (src, dst) = (packet.src(), packet.dst());
        let path = self.choose_path(src, dst);
        let first = path[0].index();
        let vc = if self.cfg.virtual_channels == 1 {
            0
        } else {
            self.rng.gen_index(self.cfg.virtual_channels)
        };
        if self.links[first].queues[vc].len() >= self.cfg.link_queue_capacity {
            return false;
        }
        let (ready_at, pending_jitter) = if self.links[first].queues[vc].is_empty() {
            (self.now + self.cfg.link_latency + jitter, 0)
        } else {
            (Time::from_cycles(u64::MAX), jitter)
        };
        self.links[first].queues[vc].push_back(Transit {
            packet,
            path,
            hop: 0,
            vc,
            ready_at,
            jitter: pending_jitter,
        });
        self.occupied.insert(first);
        true
    }

    /// Re-enter any reorder-held packets that are now due. They were
    /// counted in `in_flight` when first accepted, so only the queue
    /// entry happens here.
    fn release_due_holds(&mut self) {
        if self.faults.held_count() == 0 {
            return;
        }
        let now = self.now;
        for packet in self.faults.take_released(now) {
            if self.enqueue_on_path(packet.clone(), 0) {
                self.last_progress = now;
            } else {
                self.faults.hold_again(packet, now);
            }
        }
    }
}

impl<T: Topology> Network for SwitchedNetwork<T> {
    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    fn now(&self) -> Time {
        self.now
    }

    fn advance(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn try_inject(&mut self, mut packet: Packet) -> Result<(), InjectError> {
        let (src, dst) = (packet.src(), packet.dst());
        if dst.index() >= self.num_nodes() {
            return Err(InjectError::BadDestination(dst));
        }
        if src.index() >= self.num_nodes() {
            return Err(InjectError::BadDestination(src));
        }

        // Loopback: straight into the local receive queue.
        if src == dst {
            if self.rx[dst.index()].len() >= self.cfg.rx_queue_capacity {
                self.stats.backpressure += 1;
                return Err(InjectError::Backpressure);
            }
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            self.stats.injected += 1;
            let pseq = packet.pair_seq().expect("just stamped");
            let injected = packet.injected_at();
            self.rx[dst.index()].push_back(packet);
            self.wake.mark(dst);
            let depth = self.rx[dst.index()].len();
            self.stats
                .record_delivery(src, dst, pseq, injected, self.now, depth);
            return Ok(());
        }

        // The fault plane decides this packet's fate up front (its RNG
        // stream is independent of the routing stream).
        let faults = self.faults.on_inject(src, dst, self.now, &mut self.stats);

        if faults.vanish {
            // Lost outright (random drop or outage): software paid for
            // a successful injection, the packet just never arrives.
            // The pair sequence is *not* advanced — the order tracker
            // only reasons about packets that can still be delivered.
            self.stats.injected += 1;
            self.record_trace(None, src, dst, TraceKind::Inject);
            return Ok(());
        }

        if faults.hold {
            // Reorder burst: park the packet so later traffic overtakes
            // it. Held packets bypass the first-hop queue (they are,
            // conceptually, stuck inside the fabric), so no
            // backpressure applies.
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            self.stats.injected += 1;
            self.in_flight += 1;
            self.last_progress = self.now;
            self.record_trace(Some(PacketId::new(self.next_id - 1)), src, dst, TraceKind::Inject);
            self.faults.hold(packet, self.now);
            return Ok(());
        }

        let path = self.choose_path(src, dst);
        let first = path[0].index();
        // Hardware assigns the virtual channel; software has no say.
        let vc = if self.cfg.virtual_channels == 1 {
            0
        } else {
            self.rng.gen_index(self.cfg.virtual_channels)
        };
        if self.links[first].queues[vc].len() >= self.cfg.link_queue_capacity {
            self.stats.backpressure += 1;
            self.record_trace(None, src, dst, TraceKind::Backpressure);
            return Err(InjectError::Backpressure);
        }

        let seq = self.pair_seq.entry((src, dst)).or_insert(0);
        packet.stamp(PacketId::new(self.next_id), *seq, self.now);
        self.next_id += 1;
        *seq += 1;
        let duplicate = faults.duplicate.then(|| packet.clone());
        if faults.corrupt {
            packet.corrupt();
        }
        let (ready_at, jitter) = if self.links[first].queues[vc].is_empty() {
            (self.now + self.cfg.link_latency + faults.extra_delay, 0)
        } else {
            (Time::from_cycles(u64::MAX), faults.extra_delay)
        };
        self.links[first].queues[vc].push_back(Transit {
            packet,
            path,
            hop: 0,
            vc,
            ready_at,
            jitter,
        });
        self.occupied.insert(first);
        self.in_flight += 1;
        self.stats.injected += 1;
        self.last_progress = self.now;
        self.record_trace(Some(PacketId::new(self.next_id - 1)), src, dst, TraceKind::Inject);

        // Link-level retry duplication: a second, identical copy enters
        // on its own (freshly routed) path with its own pair sequence,
        // if the fabric has room for it.
        if let Some(mut dup) = duplicate {
            let next_seq = *self.pair_seq.get(&(src, dst)).expect("pair just stamped");
            dup.stamp(PacketId::new(self.next_id), next_seq, self.now);
            if self.enqueue_on_path(dup, 0) {
                self.next_id += 1;
                *self.pair_seq.get_mut(&(src, dst)).expect("pair just stamped") += 1;
                self.in_flight += 1;
                self.stats.duplicated += 1;
            }
        }

        // Accepted traffic pushes reorder-held packets toward release.
        self.faults.note_injection();
        self.release_due_holds();
        Ok(())
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        self.rx.get(node.index())?.front().map(RxMeta::of)
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        self.rx.get_mut(node.index())?.pop_front()
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        self.rx.get(node.index()).map_or(0, VecDeque::len)
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn guarantees(&self) -> Guarantees {
        // Deterministic single-path routing happens to preserve per-pair
        // order in this model, but the CM-5-like substrate promises
        // nothing to software.
        Guarantees::RAW
    }

    fn restarts(&self, node: NodeId) -> u32 {
        self.faults.restarts(node, self.now)
    }

    fn restarts_hint(&self) -> u64 {
        self.faults.restarts_total(self.now)
    }

    fn next_restart_at(&self) -> Option<Time> {
        self.faults.next_restart_after(self.now)
    }

    fn take_delivered(&mut self) -> Vec<NodeId> {
        self.wake.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::OutageWindow;
    use crate::topology::{FatTree, Mesh2D};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
        Packet::new(n(src), n(dst), 1, seq, vec![seq; 4])
    }

    fn drain_all<T: Topology>(net: &mut SwitchedNetwork<T>, node: NodeId) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some(p) = net.try_receive(node) {
            out.push(p);
        }
        out
    }

    #[test]
    fn delivers_a_packet_end_to_end() {
        let mut net = SwitchedNetwork::new(Mesh2D::new(4, 4), SwitchedConfig::default());
        net.try_inject(pkt(0, 15, 7)).unwrap();
        assert_eq!(net.in_flight(), 1);
        assert!(net.drain(1_000));
        let got = net.try_receive(n(15)).expect("delivered");
        assert_eq!(got.header(), 7);
        assert_eq!(got.data(), &[7, 7, 7, 7]);
        assert_eq!(net.stats().delivered, 1);
        assert!(net.stats().latency.mean() > 0.0);
    }

    #[test]
    fn loopback_delivers_immediately() {
        let mut net = SwitchedNetwork::new(Mesh2D::new(2, 2), SwitchedConfig::default());
        net.try_inject(pkt(1, 1, 3)).unwrap();
        assert_eq!(net.rx_pending(n(1)), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn deterministic_routing_preserves_pair_order() {
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 3, 4),
            SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                link_queue_capacity: 64,
                rx_queue_capacity: 1024,
                ..SwitchedConfig::default()
            },
        );
        for s in 0..50 {
            // Inject with pauses so injection never hits backpressure.
            while net.try_inject(pkt(0, 63, s)).is_err() {
                net.advance(1);
            }
        }
        assert!(net.drain(100_000));
        let got = drain_all(&mut net, n(63));
        assert_eq!(got.len(), 50);
        let seqs: Vec<u32> = got.iter().map(Packet::header).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted, "deterministic routing must not reorder");
        assert_eq!(net.stats().order.out_of_order(), 0);
    }

    #[test]
    fn adaptive_routing_reorders_under_load() {
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 3, 4),
            SwitchedConfig {
                strategy: RouteStrategy::Adaptive { candidates: 4 },
                link_queue_capacity: 64,
                rx_queue_capacity: 4096,
                seed: 42,
                ..SwitchedConfig::default()
            },
        );
        // Cross traffic to skew queue lengths.
        for s in 0..200u32 {
            let _ = net.try_inject(pkt((s as usize) % 16, 48 + (s as usize) % 16, s));
        }
        for s in 0..200u32 {
            while net.try_inject(pkt(0, 63, s)).is_err() {
                net.advance(1);
            }
            net.advance(1);
        }
        assert!(net.drain(1_000_000));
        assert!(
            net.stats().order.out_of_order() > 0,
            "adaptive multipath routing should reorder some packets: {}",
            net.stats()
        );
    }

    #[test]
    fn corrupted_packets_are_detected_and_dropped() {
        let mut net = SwitchedNetwork::new(
            Mesh2D::new(4, 4),
            SwitchedConfig {
                fault: FaultConfig { corruption_prob: 0.5, ..FaultConfig::default() },
                rx_queue_capacity: 4096,
                link_queue_capacity: 64,
                seed: 7,
                ..SwitchedConfig::default()
            },
        );
        for s in 0..100u32 {
            while net.try_inject(pkt(0, 15, s)).is_err() {
                net.advance(1);
            }
            net.advance(1);
        }
        assert!(net.drain(1_000_000));
        let (dropped, delivered) = (net.stats().dropped_corrupt, net.stats().delivered);
        assert!(dropped > 10, "expected many CRC drops: {}", net.stats());
        assert_eq!(delivered + dropped, 100);
        // Software never sees a corrupted packet.
        let got = drain_all(&mut net, n(15));
        assert!(got.iter().all(|p| !p.is_corrupted()));
        assert_eq!(got.len() as u64, delivered);
    }

    #[test]
    fn full_receive_queue_backpressures_to_injection() {
        // Tiny buffers, destination never polls: the network must fill
        // up and refuse injections rather than drop packets.
        let mut net = SwitchedNetwork::new(
            Mesh2D::new(2, 1),
            SwitchedConfig {
                link_queue_capacity: 2,
                rx_queue_capacity: 2,
                ..SwitchedConfig::default()
            },
        );
        let mut accepted = 0;
        for s in 0..64u32 {
            if net.try_inject(pkt(0, 1, s)).is_ok() {
                accepted += 1;
            }
            net.advance(4);
        }
        assert!(accepted < 64, "finite buffering must eventually refuse");
        assert!(net.stats().backpressure > 0);
        // Everything in flight is stuck behind the full rx queue.
        net.advance(1_000);
        assert!(net.stalled_for() >= 1_000, "network should be stalled");
        assert!(net.in_flight() > 0);
        // Extracting packets restores progress (overflow safety is the
        // *software's* job — polling is what keeps the CM-5 alive).
        let _ = net.try_receive(n(1));
        let _ = net.try_receive(n(1));
        net.advance(100);
        assert!(net.stalled_for() < 100);
    }

    #[test]
    fn no_packets_are_lost_without_faults() {
        let mut net = SwitchedNetwork::new(
            FatTree::new(2, 4, 2),
            SwitchedConfig {
                strategy: RouteStrategy::Randomized { candidates: 3 },
                link_queue_capacity: 8,
                rx_queue_capacity: 4096,
                seed: 11,
                ..SwitchedConfig::default()
            },
        );
        let total = 300u32;
        let mut sent = 0;
        while sent < total {
            let s = sent;
            if net
                .try_inject(pkt((s as usize) % 8, 8 + (s as usize) % 8, s))
                .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
        }
        assert!(net.drain(1_000_000));
        let delivered: usize = (0..net.num_nodes())
            .map(|i| {
                let node = n(i);
                let mut c = 0;
                while net.try_receive(node).is_some() {
                    c += 1;
                }
                c
            })
            .sum();
        assert_eq!(delivered as u32, total);
    }

    #[test]
    fn bad_destination_is_rejected() {
        let mut net = SwitchedNetwork::new(Mesh2D::new(2, 2), SwitchedConfig::default());
        let err = net.try_inject(pkt(0, 99, 0)).unwrap_err();
        assert_eq!(err, InjectError::BadDestination(n(99)));
    }

    #[test]
    fn virtual_channels_reorder_even_on_one_path() {
        // Deterministic routing, one fixed path — but two virtual
        // channels let packets overtake (the §2.2 claim about Dally-
        // style virtual channels).
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 3, 1),
            SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                virtual_channels: 4,
                link_queue_capacity: 16,
                rx_queue_capacity: 4096,
                seed: 21,
                ..SwitchedConfig::default()
            },
        );
        for s in 0..200u32 {
            while net.try_inject(pkt(0, 63, s)).is_err() {
                net.advance(1);
            }
        }
        assert!(net.drain(1_000_000));
        assert_eq!(net.stats().delivered, 200);
        assert!(
            net.stats().order.out_of_order() > 0,
            "virtual channels should reorder: {}",
            net.stats()
        );
    }

    #[test]
    fn single_vc_deterministic_stays_in_order() {
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 3, 1),
            SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                virtual_channels: 1,
                link_queue_capacity: 16,
                rx_queue_capacity: 4096,
                seed: 21,
                ..SwitchedConfig::default()
            },
        );
        for s in 0..200u32 {
            while net.try_inject(pkt(0, 63, s)).is_err() {
                net.advance(1);
            }
        }
        assert!(net.drain(1_000_000));
        assert_eq!(net.stats().order.out_of_order(), 0);
    }

    #[test]
    fn timesharing_swap_preserves_packets_but_not_order() {
        // Deterministic routing would deliver in order — but a network
        // swap mid-flight (timesharing) reinjects in arbitrary order,
        // the third delivery-order hazard §2.2 names.
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 3, 1),
            SwitchedConfig {
                strategy: RouteStrategy::Deterministic,
                link_queue_capacity: 32,
                rx_queue_capacity: 4096,
                seed: 13,
                ..SwitchedConfig::default()
            },
        );
        let mut sent = 0u32;
        while sent < 100 {
            if net.try_inject(pkt(0, 63, sent)).is_ok() {
                sent += 1;
            } else {
                net.advance(1);
            }
        }
        net.advance(3);
        let ctx = net.swap_out();
        assert!(ctx.len() > 10, "plenty of packets were in flight");
        assert!(!ctx.is_empty());
        assert_eq!(net.in_flight(), 0);
        // ... another application's time slice passes ...
        net.advance(50);
        net.swap_in(ctx);
        assert!(net.drain(1_000_000));
        assert_eq!(net.stats().delivered, 100, "nothing lost across the swap");
        assert!(
            net.stats().order.out_of_order() > 0,
            "swap/restore reorders even deterministic routing: {}",
            net.stats()
        );
    }

    #[test]
    fn empty_swap_roundtrip_is_a_noop() {
        let mut net = SwitchedNetwork::new(Mesh2D::new(2, 2), SwitchedConfig::default());
        let ctx = net.swap_out();
        assert!(ctx.is_empty());
        net.swap_in(ctx);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn tracing_records_the_packets_journey() {
        use crate::trace::TraceKind;
        let mut net = SwitchedNetwork::new(Mesh2D::new(4, 1), SwitchedConfig::default());
        net.enable_tracing(256);
        net.try_inject(pkt(0, 3, 5)).unwrap();
        assert!(net.drain(1_000));
        let trace = net.trace().expect("tracing enabled");
        let id = trace
            .events()
            .find(|e| e.kind == TraceKind::Inject)
            .and_then(|e| e.packet)
            .expect("inject recorded");
        let journey = trace.journey(id);
        // inject + 2 intermediate hops + deliver on a 3-hop path.
        assert!(journey.contains("inject"));
        assert_eq!(journey.matches("hop link#").count(), 2);
        assert!(journey.trim_end().ends_with("deliver"));
        assert_eq!(trace.of_packet(id).len(), 4);
    }

    #[test]
    fn tracing_is_off_by_default_and_free() {
        let mut net = SwitchedNetwork::new(Mesh2D::new(2, 1), SwitchedConfig::default());
        assert!(net.trace().is_none());
        net.try_inject(pkt(0, 1, 0)).unwrap();
        net.drain(100);
        assert!(net.trace().is_none());
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = || {
            let mut net = SwitchedNetwork::new(
                FatTree::new(4, 2, 3),
                SwitchedConfig {
                    strategy: RouteStrategy::Randomized { candidates: 3 },
                    seed: 99,
                    rx_queue_capacity: 4096,
                    link_queue_capacity: 16,
                    ..SwitchedConfig::default()
                },
            );
            for s in 0..50u32 {
                while net.try_inject(pkt(0, 15, s)).is_err() {
                    net.advance(1);
                }
                net.advance(1);
            }
            net.drain(1_000_000);
            let mut order = Vec::new();
            while let Some(p) = net.try_receive(n(15)) {
                order.push(p.header());
            }
            order
        };
        assert_eq!(run(), run());
    }

    fn faulty_net(fault: FaultConfig, seed: u64) -> SwitchedNetwork<Mesh2D> {
        SwitchedNetwork::new(
            Mesh2D::new(4, 4),
            SwitchedConfig {
                fault,
                rx_queue_capacity: 4096,
                link_queue_capacity: 64,
                seed,
                ..SwitchedConfig::default()
            },
        )
    }

    fn pump(net: &mut SwitchedNetwork<Mesh2D>, count: u32) {
        for s in 0..count {
            while net.try_inject(pkt(0, 15, s)).is_err() {
                net.advance(1);
            }
            net.advance(1);
        }
        assert!(net.drain(1_000_000));
    }

    #[test]
    fn fault_plane_drops_packets_silently() {
        let mut net = faulty_net(
            FaultConfig { drop_prob: 0.3, ..FaultConfig::default() },
            19,
        );
        pump(&mut net, 100);
        let s = net.stats().clone();
        assert!(s.dropped_fault > 10, "{s}");
        assert_eq!(s.delivered + s.dropped_fault, 100, "{s}");
        assert_eq!(drain_all(&mut net, n(15)).len() as u64, s.delivered);
    }

    #[test]
    fn fault_plane_duplicates_packets() {
        let mut net = faulty_net(
            FaultConfig { duplicate_prob: 0.4, ..FaultConfig::default() },
            23,
        );
        pump(&mut net, 100);
        let s = net.stats();
        assert!(s.duplicated > 10, "{s}");
        assert_eq!(s.delivered, 100 + s.duplicated, "every copy arrives: {s}");
        let got = drain_all(&mut net, n(15));
        // Some header value must appear twice — software really does
        // see the duplicate.
        let mut seen = std::collections::HashMap::new();
        for p in &got {
            *seen.entry(p.header()).or_insert(0u32) += 1;
        }
        assert!(seen.values().any(|&c| c >= 2));
    }

    #[test]
    fn fault_plane_reorders_deterministic_routing() {
        let mut net = faulty_net(
            FaultConfig { reorder_prob: 0.2, reorder_depth: 3, ..FaultConfig::default() },
            31,
        );
        pump(&mut net, 100);
        let s = net.stats();
        assert_eq!(s.delivered, 100, "nothing lost: {s}");
        assert!(s.reordered > 5, "{s}");
        assert!(
            s.order.out_of_order() > 0,
            "held packets must be overtaken: {s}"
        );
    }

    #[test]
    fn fault_plane_jitter_delays_but_loses_nothing() {
        let mut net = faulty_net(
            FaultConfig { delay_jitter: 24, ..FaultConfig::default() },
            37,
        );
        pump(&mut net, 50);
        let s = net.stats();
        assert_eq!(s.delivered, 50, "{s}");
        assert!(s.jitter_delayed > 10, "{s}");
    }

    #[test]
    fn outage_window_silences_traffic_then_recovers() {
        let mut net = faulty_net(
            FaultConfig {
                outages: vec![OutageWindow { node: n(15), start: 0, end: 40 }],
                ..FaultConfig::default()
            },
            41,
        );
        pump(&mut net, 60);
        let s = net.stats();
        assert!(s.outage_drops > 0, "{s}");
        assert_eq!(s.delivered + s.outage_drops, 60, "{s}");
        assert!(s.delivered > 0, "traffic resumes after the window: {s}");
    }

    #[test]
    fn full_fault_mix_is_deterministic_per_seed() {
        let run = || {
            let mut net = faulty_net(
                FaultConfig {
                    corruption_prob: 0.05,
                    drop_prob: 0.05,
                    duplicate_prob: 0.1,
                    delay_jitter: 8,
                    reorder_prob: 0.1,
                    reorder_depth: 4,
                    outages: vec![OutageWindow { node: n(3), start: 5, end: 25 }],
                    crashes: Vec::new(),
                },
                77,
            );
            for s in 0..80u32 {
                let d = if s % 4 == 0 { 3 } else { 15 };
                while net.try_inject(pkt(0, d, s)).is_err() {
                    net.advance(1);
                }
                net.advance(1);
            }
            assert!(net.drain(1_000_000));
            let mut order: Vec<u32> = drain_all(&mut net, n(15)).iter().map(Packet::header).collect();
            order.extend(drain_all(&mut net, n(3)).iter().map(Packet::header));
            (order, format!("{}", net.stats()))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn occupied_set_tracks_queued_links_exactly() {
        let mut net = SwitchedNetwork::new(
            FatTree::new(4, 2, 2),
            SwitchedConfig {
                strategy: RouteStrategy::Adaptive { candidates: 4 },
                fault: FaultConfig { delay_jitter: 4, duplicate_prob: 0.1, ..FaultConfig::default() },
                seed: 5,
                ..SwitchedConfig::default()
            },
        );
        let check = |net: &SwitchedNetwork<FatTree>| {
            let truth: std::collections::BTreeSet<usize> = (0..net.links.len())
                .filter(|&li| net.links[li].occupancy() > 0)
                .collect();
            assert_eq!(net.occupied, truth, "occupied index out of sync with link queues");
        };
        for s in 0..60u32 {
            let _ = net.try_inject(pkt((s as usize) % 16, (s as usize * 7 + 3) % 16, s));
            check(&net);
            net.advance(1 + (s as u64) % 2);
            check(&net);
        }
        assert!(net.drain(10_000));
        check(&net);
        assert!(net.occupied.is_empty(), "drained network has no queued links");
    }
}
