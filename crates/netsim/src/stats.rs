//! Network statistics: delivery counts, reordering, latency.

use std::collections::HashMap;
use std::fmt;

use crate::id::NodeId;
use crate::time::Time;

/// Running latency summary (cycles from injection to delivery), with a
/// logarithmic histogram for percentile estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    // buckets[k] counts latencies in [2^(k-1), 2^k) (bucket 0: latency 0).
    buckets: [u64; 33],
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 33],
        }
    }
}

impl LatencyStats {
    fn bucket_index(latency: u64) -> usize {
        if latency == 0 {
            0
        } else {
            ((64 - latency.leading_zeros()) as usize).min(32)
        }
    }

    /// Record one delivery latency.
    pub fn record(&mut self, latency: u64) {
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count += 1;
        self.sum += latency;
        self.buckets[Self::bucket_index(latency)] += 1;
    }

    /// Approximate latency at quantile `q` (0.0–1.0): the upper bound
    /// of the logarithmic histogram bucket containing that quantile.
    /// Returns 0 if nothing has been recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        let last = self.buckets.len() - 1;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The top bucket is a catch-all for [2^31, ∞); its only
                // honest upper bound is the recorded maximum.
                let upper = if k == 0 {
                    0
                } else if k == last {
                    self.max
                } else {
                    (1u64 << k) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// The lower and upper bounds of the histogram bucket containing
    /// quantile `q`: the true quantile of the recorded values is
    /// guaranteed to lie in `[lo, hi]`. [`quantile`](Self::quantile)
    /// reports `hi` (capped at the recorded maximum), so its error is
    /// at most one power-of-two bucket width — this holds at every
    /// `q`, including the deep-tail p999 the serving reports lean on
    /// (`hi ≤ 2·lo + 1` for any non-catch-all bucket; the catch-all
    /// top bucket is honestly bounded by the recorded maximum).
    /// Returns `(0, 0)` if nothing has been recorded.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        let last = self.buckets.len() - 1;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (lo, hi) = if k == 0 {
                    (0, 0)
                } else if k == last {
                    // Catch-all bucket: open-ended above, so the upper
                    // bound is the recorded maximum.
                    (1u64 << (k - 1), self.max)
                } else {
                    (1u64 << (k - 1), (1u64 << k) - 1)
                };
                return (lo.min(self.max), hi.min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// Number of recorded deliveries.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or 0 if nothing recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum recorded latency (0 if nothing recorded).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Maximum recorded latency (0 if nothing recorded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another summary into this one: counts and histogram buckets
    /// add, the extrema combine. The merged summary is exactly what a
    /// single recorder observing both delivery streams would hold, so
    /// composite substrates (dual, sharded) can aggregate per-side
    /// summaries without losing quantile fidelity.
    pub(crate) fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={} p50={} p95={} p99={} p999={}",
            self.count,
            self.mean(),
            self.min,
            self.max,
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.quantile(0.999)
        )
    }
}

/// Tracks, per `(src, dst)` pair, whether deliveries respect injection
/// order.
///
/// A delivered packet is counted *out of order* when some packet injected
/// earlier on the same pair has not yet been delivered — exactly the
/// condition that forces the receiving messaging layer to buffer it.
#[derive(Debug, Clone, Default)]
pub struct OrderTracker {
    // For each pair: next pair_seq expected in order, plus the set of
    // early-delivered seqs awaiting their predecessors.
    state: HashMap<(NodeId, NodeId), PairOrder>,
    in_order: u64,
    out_of_order: u64,
}

#[derive(Debug, Clone, Default)]
struct PairOrder {
    next_expected: u64,
    early: Vec<u64>,
}

impl OrderTracker {
    /// New, empty tracker.
    pub fn new() -> Self {
        OrderTracker::default()
    }

    /// Record the delivery of packet `pair_seq` on `(src, dst)`; returns
    /// `true` if it arrived in order.
    pub fn record(&mut self, src: NodeId, dst: NodeId, pair_seq: u64) -> bool {
        let entry = self.state.entry((src, dst)).or_default();
        if pair_seq == entry.next_expected {
            entry.next_expected += 1;
            // Drain any buffered successors that are now in sequence.
            entry.early.sort_unstable();
            while let Some(pos) = entry
                .early
                .iter()
                .position(|&s| s == entry.next_expected)
            {
                entry.early.swap_remove(pos);
                entry.next_expected += 1;
            }
            self.in_order += 1;
            true
        } else {
            entry.early.push(pair_seq);
            self.out_of_order += 1;
            false
        }
    }

    /// Deliveries that arrived in injection order.
    pub fn in_order(&self) -> u64 {
        self.in_order
    }

    /// Deliveries that arrived ahead of an earlier-injected packet.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Fraction of deliveries that were out of order, in `[0, 1]`.
    pub fn ooo_fraction(&self) -> f64 {
        let total = self.in_order + self.out_of_order;
        if total == 0 {
            0.0
        } else {
            self.out_of_order as f64 / total as f64
        }
    }

    /// Fold another tracker's *verdict counts* into this one. Per-pair
    /// sequencing state is deliberately not merged: composite substrates
    /// (dual, sharded) partition `(src, dst)` pairs disjointly across
    /// their parts, so every pair's in/out-of-order verdicts were made
    /// by exactly one side and the counts add without double judgment.
    pub(crate) fn absorb_counts(&mut self, other: &OrderTracker) {
        self.in_order += other.in_order;
        self.out_of_order += other.out_of_order;
    }
}

/// Per-node delivery/occupancy accounting, for studying how concurrent
/// traffic loads individual endpoints (hot receivers, queue build-up).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeOccupancy {
    /// Packets delivered *to* this node (it was the destination).
    pub delivered_to: u64,
    /// Packets this node injected that were delivered somewhere.
    pub delivered_from: u64,
    /// High-water mark of this node's receive queue depth, sampled at
    /// each delivery (after the packet is enqueued).
    pub peak_rx_depth: usize,
}

/// Aggregate statistics for one network instance.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// Packets accepted for injection.
    pub injected: u64,
    /// Packets handed to software at their destination.
    pub delivered: u64,
    /// Injection attempts refused with backpressure.
    pub backpressure: u64,
    /// Corrupted packets detected and discarded at the receiving NI
    /// (detect-only substrates).
    pub dropped_corrupt: u64,
    /// Packets corrupted in flight but repaired by hardware
    /// retransmission (CR substrate).
    pub hw_retransmits: u64,
    /// Header rejections followed by automatic hardware retry (CR
    /// substrate end-to-end flow control).
    pub rejects: u64,
    /// Packets silently lost by the fault plane (random drop).
    pub dropped_fault: u64,
    /// Packets delivered twice by the fault plane (link-level retry
    /// duplication); each counts one extra delivery.
    pub duplicated: u64,
    /// Packets held back by the fault plane so later traffic overtakes
    /// them (reorder bursts).
    pub reordered: u64,
    /// Packets given extra delivery delay by the fault plane.
    pub jitter_delayed: u64,
    /// Packets discarded because an endpoint was inside a scripted
    /// outage window.
    pub outage_drops: u64,
    /// Packets discarded because an endpoint was inside a scripted
    /// crash-restart window (the node was down and will come back with
    /// its endpoint protocol state erased).
    pub crash_drops: u64,
    /// Delivery-order accounting.
    pub order: OrderTracker,
    /// Injection→delivery latency.
    pub latency: LatencyStats,
    // Per-node occupancy, grown on demand (indexed by NodeId).
    per_node: Vec<NodeOccupancy>,
}

impl NetStats {
    /// New, empty statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Record a successful delivery. `rx_depth` is the destination's
    /// receive-queue depth *after* enqueueing the packet, used for the
    /// per-node occupancy high-water mark.
    pub(crate) fn record_delivery(
        &mut self,
        src: NodeId,
        dst: NodeId,
        pair_seq: u64,
        injected_at: Option<Time>,
        now: Time,
        rx_depth: usize,
    ) {
        self.delivered += 1;
        self.order.record(src, dst, pair_seq);
        if let Some(at) = injected_at {
            self.latency.record(now.since(at));
        }
        self.node_mut(src).delivered_from += 1;
        let to = self.node_mut(dst);
        to.delivered_to += 1;
        to.peak_rx_depth = to.peak_rx_depth.max(rx_depth);
    }

    fn node_mut(&mut self, node: NodeId) -> &mut NodeOccupancy {
        let i = node.index();
        if self.per_node.len() <= i {
            self.per_node.resize(i + 1, NodeOccupancy::default());
        }
        &mut self.per_node[i]
    }

    /// Per-node delivery/occupancy accounting for `node` (zeroes if the
    /// node has seen no traffic).
    pub fn occupancy(&self, node: NodeId) -> NodeOccupancy {
        self.per_node.get(node.index()).copied().unwrap_or_default()
    }

    /// Per-node occupancy table, indexed by node (may be shorter than
    /// the node count if trailing nodes saw no traffic).
    pub fn occupancy_table(&self) -> &[NodeOccupancy] {
        &self.per_node
    }

    /// Fold another instance's aggregate counters into this one: scalar
    /// counters and order verdicts add, the latency histograms merge.
    /// The per-node table is *not* absorbed (composite substrates index
    /// it differently per part — see
    /// [`absorb_per_node_offset`](Self::absorb_per_node_offset)).
    pub(crate) fn absorb(&mut self, other: &NetStats) {
        self.injected += other.injected;
        self.delivered += other.delivered;
        self.backpressure += other.backpressure;
        self.dropped_corrupt += other.dropped_corrupt;
        self.hw_retransmits += other.hw_retransmits;
        self.rejects += other.rejects;
        self.dropped_fault += other.dropped_fault;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.jitter_delayed += other.jitter_delayed;
        self.outage_drops += other.outage_drops;
        self.crash_drops += other.crash_drops;
        self.order.absorb_counts(&other.order);
        self.latency.merge(&other.latency);
    }

    /// Fold another instance's per-node table into this one, shifting
    /// its indices by `offset` (a sharded substrate's shard-local node
    /// `i` is global node `offset + i`): delivery counts add, high-water
    /// marks take the maximum.
    pub(crate) fn absorb_per_node_offset(&mut self, other: &NetStats, offset: usize) {
        for (i, occ) in other.per_node.iter().enumerate() {
            if *occ == NodeOccupancy::default() {
                continue;
            }
            let slot = self.node_mut(NodeId::new(offset + i));
            slot.delivered_to += occ.delivered_to;
            slot.delivered_from += occ.delivered_from;
            slot.peak_rx_depth = slot.peak_rx_depth.max(occ.peak_rx_depth);
        }
    }

    /// Overwrite this instance's per-node table with the elementwise
    /// merge of two sides (used by composite networks): delivery counts
    /// add, high-water marks take the maximum.
    pub(crate) fn merge_per_node(&mut self, a: &NetStats, b: &NetStats) {
        let len = a.per_node.len().max(b.per_node.len());
        self.per_node.clear();
        self.per_node.resize(len, NodeOccupancy::default());
        for (i, slot) in self.per_node.iter_mut().enumerate() {
            let x = a.per_node.get(i).copied().unwrap_or_default();
            let y = b.per_node.get(i).copied().unwrap_or_default();
            slot.delivered_to = x.delivered_to + y.delivered_to;
            slot.delivered_from = x.delivered_from + y.delivered_from;
            slot.peak_rx_depth = x.peak_rx_depth.max(y.peak_rx_depth);
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} delivered {} (ooo {:.1}%) backpressure {} corrupt-drops {} hw-retx {} rejects {} \
             fault-drops {} dup {} reorder {} jitter {} outage-drops {} crash-drops {} latency[{}]",
            self.injected,
            self.delivered,
            self.order.ooo_fraction() * 100.0,
            self.backpressure,
            self.dropped_corrupt,
            self.hw_retransmits,
            self.rejects,
            self.dropped_fault,
            self.duplicated,
            self.reordered,
            self.jitter_delayed,
            self.outage_drops,
            self.crash_drops,
            self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn latency_summary() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), 0.0);
        l.record(10);
        l.record(20);
        l.record(3);
        assert_eq!(l.count(), 3);
        assert_eq!(l.min(), 3);
        assert_eq!(l.max(), 20);
        assert!((l.mean() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn latency_quantiles_bound_the_distribution() {
        let mut l = LatencyStats::default();
        for v in 1..=1000u64 {
            l.record(v);
        }
        assert_eq!(l.quantile(1.0), 1000); // capped at max
        let p50 = l.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 bucket bound: {p50}");
        let p01 = l.quantile(0.01);
        assert!(p01 <= 15, "p01 bucket bound: {p01}");
        assert!(l.quantile(0.5) <= l.quantile(0.95));
    }

    #[test]
    fn latency_quantile_of_empty_is_zero() {
        let l = LatencyStats::default();
        assert_eq!(l.quantile(0.5), 0);
    }

    #[test]
    fn latency_zero_values_hit_bucket_zero() {
        let mut l = LatencyStats::default();
        l.record(0);
        l.record(0);
        assert_eq!(l.quantile(0.9), 0);
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut l = LatencyStats::default();
        let mut rng = crate::rng::SimRng::new(99);
        for _ in 0..500 {
            l.record(rng.next_u64() % 100_000);
        }
        let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            assert!(
                l.quantile(w[0]) <= l.quantile(w[1]),
                "quantile must be non-decreasing: q{} -> {}, q{} -> {}",
                w[0],
                l.quantile(w[0]),
                w[1],
                l.quantile(w[1])
            );
        }
    }

    #[test]
    fn single_sample_distribution_is_that_sample() {
        for v in [0u64, 1, 7, 1023, 1024, u64::MAX / 2] {
            let mut l = LatencyStats::default();
            l.record(v);
            for q in [0.0, 0.5, 0.99, 1.0] {
                assert_eq!(l.quantile(q), v, "one sample of {v} at q={q}");
            }
            let (lo, hi) = l.quantile_bounds(0.5);
            assert!(lo <= v && v <= hi, "{lo} <= {v} <= {hi}");
        }
    }

    #[test]
    fn quantile_bounds_bracket_the_exact_percentile() {
        // Seeded property test: for many random distributions and many
        // quantiles, the histogram's bucket bounds must bracket the
        // exact percentile of the recorded values, and the reported
        // quantile must equal the (max-capped) upper bound.
        for seed in 0..20u64 {
            let mut rng = crate::rng::SimRng::new(seed);
            let n = 1 + rng.gen_index(400);
            let mut values = Vec::with_capacity(n);
            let mut l = LatencyStats::default();
            for _ in 0..n {
                // Mix magnitudes so samples span many buckets.
                let shift = rng.gen_index(40) as u32;
                let v = rng.next_u64() >> (24 + shift % 40);
                values.push(v);
                l.record(v);
            }
            values.sort_unstable();
            for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
                // Exact percentile with the same ceil(n*q) rank rule.
                let rank = ((n as f64 * q).ceil().max(1.0) as usize).min(n);
                let exact = values[rank - 1];
                let (lo, hi) = l.quantile_bounds(q);
                assert!(
                    lo <= exact && exact <= hi,
                    "seed {seed} q {q}: exact {exact} outside [{lo}, {hi}]"
                );
                assert_eq!(
                    l.quantile(q),
                    hi.min(l.max()),
                    "seed {seed} q {q}: quantile() must be the capped upper bound"
                );
            }
        }
    }

    #[test]
    fn display_includes_percentiles() {
        let mut l = LatencyStats::default();
        for v in [1u64, 2, 3, 100] {
            l.record(v);
        }
        let s = l.to_string();
        assert!(s.contains("p50="), "{s}");
        assert!(s.contains("p95="), "{s}");
        assert!(s.contains("p99="), "{s}");
        assert!(s.contains("p999="), "{s}");
    }

    #[test]
    fn p999_bucket_resolution_honesty() {
        // Deep-tail honesty: with enough samples for p999 to resolve
        // (n >> 1000), the bracket returned by `quantile_bounds(0.999)`
        // must contain the exact rank-ceil(0.999 n) value, the reported
        // p999 must be the max-capped upper bound, and the bracket
        // must be no wider than one power-of-two bucket — the
        // resolution this histogram honestly has in the tail.
        for seed in [7u64, 19, 71] {
            let mut rng = crate::rng::SimRng::new(seed);
            let n = 5000usize;
            let mut values = Vec::with_capacity(n);
            let mut l = LatencyStats::default();
            for i in 0..n {
                // Body latencies ~[64, 1088); the last ~0.3% land a
                // long tail two decades up, so p999 sits in the tail.
                let v = if i % 347 == 0 {
                    50_000 + rng.next_u64() % 100_000
                } else {
                    64 + rng.next_u64() % 1024
                };
                values.push(v);
                l.record(v);
            }
            values.sort_unstable();
            let rank = ((n as f64 * 0.999).ceil() as usize).min(n);
            let exact = values[rank - 1];
            let (lo, hi) = l.quantile_bounds(0.999);
            assert!(
                lo <= exact && exact <= hi,
                "seed {seed}: exact p999 {exact} outside [{lo}, {hi}]"
            );
            assert_eq!(l.quantile(0.999), hi.min(l.max()), "seed {seed}");
            // One-bucket bracket width: hi ≤ 2·lo + 1 (or the
            // max-capped catch-all, which is tighter still).
            assert!(
                hi <= 2 * lo + 1 || hi == l.max(),
                "seed {seed}: bracket [{lo}, {hi}] wider than one bucket"
            );
        }
    }

    #[test]
    fn order_tracker_in_order_stream() {
        let mut t = OrderTracker::new();
        for s in 0..10 {
            assert!(t.record(n(0), n(1), s));
        }
        assert_eq!(t.in_order(), 10);
        assert_eq!(t.out_of_order(), 0);
        assert_eq!(t.ooo_fraction(), 0.0);
    }

    #[test]
    fn order_tracker_alternate_swap_is_half_ooo() {
        // Delivery order 1,0,3,2,5,4,... : every odd-seq packet arrives
        // before its predecessor, i.e. exactly half are out of order.
        let mut t = OrderTracker::new();
        for base in (0..8).step_by(2) {
            assert!(!t.record(n(0), n(1), base + 1));
            assert!(t.record(n(0), n(1), base));
        }
        assert!((t.ooo_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn order_tracker_drains_early_buffer() {
        let mut t = OrderTracker::new();
        assert!(!t.record(n(0), n(1), 2));
        assert!(!t.record(n(0), n(1), 1));
        assert!(t.record(n(0), n(1), 0)); // releases 1 and 2
        assert!(t.record(n(0), n(1), 3)); // next expected is now 3
    }

    #[test]
    fn order_tracker_separates_pairs() {
        let mut t = OrderTracker::new();
        assert!(t.record(n(0), n(1), 0));
        assert!(t.record(n(2), n(1), 0));
        assert!(!t.record(n(0), n(1), 2));
        assert!(t.record(n(2), n(1), 1));
    }
}
