//! Simulated time in network cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in network cycles since simulation
/// start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);

    /// Construct from a raw cycle count.
    pub const fn from_cycles(cycles: u64) -> Self {
        Time(cycles)
    }

    /// The raw cycle count.
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Cycles elapsed since `earlier` (saturating).
    pub fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Time {
    type Output = Time;
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + 5;
        assert_eq!(t.cycles(), 5);
        assert_eq!(t - Time::from_cycles(2), 3);
        assert_eq!(t.since(Time::from_cycles(10)), 0); // saturates
        let mut u = t;
        u += 7;
        assert_eq!(u.cycles(), 12);
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_cycles(42).to_string(), "42cyc");
    }
}
