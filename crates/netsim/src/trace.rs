//! Packet-event tracing: a bounded event log for debugging and for
//! explaining *why* a run behaved as it did (which hops a packet took,
//! where it was refused, when it was dropped).

use std::collections::VecDeque;
use std::fmt;

use crate::id::{NodeId, PacketId};
use crate::time::Time;
use crate::topology::LinkId;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Accepted into the network at its source.
    Inject,
    /// Moved across a link (store-and-forward hop).
    Hop(LinkId),
    /// Handed to the destination's receive queue.
    Deliver,
    /// Corrupted in flight, detected by CRC at the NI, and discarded.
    DropCorrupt,
    /// Injection refused with backpressure (no packet id assigned).
    Backpressure,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Time,
    /// The packet involved (`None` for refused injections, which never
    /// received an id).
    pub packet: Option<PacketId>,
    /// The packet's source.
    pub src: NodeId,
    /// The packet's destination.
    pub dst: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            TraceKind::Inject => "inject".to_string(),
            TraceKind::Hop(l) => format!("hop link#{}", l.index()),
            TraceKind::Deliver => "deliver".to_string(),
            TraceKind::DropCorrupt => "drop (CRC)".to_string(),
            TraceKind::Backpressure => "refused (backpressure)".to_string(),
        };
        let id = self
            .packet
            .map_or_else(|| "-".to_string(), |p| p.to_string());
        write!(f, "[{}] {} {}→{} {}", self.time, id, self.src, self.dst, what)
    }
}

/// A bounded ring of trace events; old events are discarded once the
/// capacity is reached.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs capacity");
        TraceBuffer {
            capacity,
            events: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All retained events concerning `packet`, oldest first.
    pub fn of_packet(&self, packet: PacketId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.packet == Some(packet))
            .collect()
    }

    /// Render one packet's journey as text, one event per line.
    pub fn journey(&self, packet: PacketId) -> String {
        let mut out = String::new();
        for e in self.of_packet(packet) {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, id: Option<u64>, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: Time::from_cycles(t),
            packet: id.map(crate::id::PacketId::new),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            kind,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut b = TraceBuffer::new(2);
        b.push(ev(1, Some(1), TraceKind::Inject));
        b.push(ev(2, Some(1), TraceKind::Deliver));
        b.push(ev(3, Some(2), TraceKind::Inject));
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.events().next().unwrap().time.cycles(), 2);
    }

    #[test]
    fn journey_filters_by_packet() {
        let mut b = TraceBuffer::new(16);
        b.push(ev(1, Some(7), TraceKind::Inject));
        b.push(ev(2, Some(8), TraceKind::Inject));
        b.push(ev(3, Some(7), TraceKind::Hop(LinkId(4))));
        b.push(ev(9, Some(7), TraceKind::Deliver));
        let j = b.journey(crate::id::PacketId::new(7));
        assert_eq!(j.lines().count(), 3);
        assert!(j.contains("hop link#4"));
        assert!(j.contains("deliver"));
        assert!(!j.contains("pkt8"));
    }

    #[test]
    fn display_formats_every_kind() {
        assert!(ev(0, None, TraceKind::Backpressure).to_string().contains("refused"));
        assert!(ev(0, Some(1), TraceKind::DropCorrupt).to_string().contains("CRC"));
        assert!(ev(5, Some(1), TraceKind::Inject).to_string().contains("5cyc"));
    }
}
