//! Flit-level wormhole routing — the switching discipline the paper's
//! networks actually use, including a faithful Compressionless Routing
//! mode.
//!
//! A packet travels as a *worm*: a head flit that allocates channels
//! hop by hop, body flits that follow through the reserved chain, and a
//! tail that releases each channel as it passes. Channels have small
//! flit buffers; when the head blocks, the body *compresses* into those
//! buffers and, if they fill, backpressure holds flits at the source.
//! Three classic consequences, all observable here:
//!
//! * **path holding** — a blocked worm pins a chain of channels, so
//!   congestion spreads (and a non-draining receiver wedges paths);
//! * **deadlock** — cyclic channel dependencies (e.g. dimension-order
//!   routing across a torus's wraparound links) can deadlock outright;
//!   the dateline virtual-channel discipline
//!   ([`VcDiscipline::Dateline`]) breaks the cycle;
//! * **Compressionless Routing** ([`WormholeConfig::cr`]) — because a
//!   worm longer than its path must begin arriving before it fully
//!   leaves the source, the source can detect a blocked or corrupted
//!   delivery (no "compression relief"), *kill* the path, and
//!   retransmit. That yields deadlock freedom independent of packet
//!   acceptance, packet-level fault tolerance, and — with per-pair
//!   injection serialization — in-order delivery: exactly the
//!   high-level services of the paper's §4.

use std::collections::HashMap;

use crate::fault::{FaultConfig, FaultSchedule};
use crate::id::{NodeId, PacketId};
use crate::network::{Guarantees, InjectError, Network, RxMeta, WakeSet};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::stats::NetStats;
use crate::time::Time;
use crate::topology::{LinkId, Topology};

/// Virtual-channel assignment discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcDiscipline {
    /// Every worm uses VC 0 of each link. Susceptible to deadlock on
    /// topologies with cyclic channel dependencies (torus wrap links).
    Single,
    /// Worms start on VC 0 and switch to VC 1 at a *dateline* (modeled
    /// as: a worm whose path wraps uses VC 1 throughout) — the standard
    /// torus deadlock-avoidance scheme. Requires ≥ 2 VCs.
    Dateline,
    /// Random VC per worm (throughput, not safety).
    Random,
}

/// Compressionless-Routing mode parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrMode {
    /// Cycles a worm may sit completely blocked before the source
    /// detects the lack of compression relief and kills the path.
    pub kill_timeout: u64,
    /// Cycles before a killed worm is retried.
    pub retry_backoff: u64,
    /// Pad the worm so it is at least as long (in flits) as its path,
    /// guaranteeing the head must begin arriving before the tail leaves
    /// the source (the CR invariant).
    pub pad_to_path: bool,
}

impl Default for CrMode {
    fn default() -> Self {
        CrMode {
            kill_timeout: 32,
            retry_backoff: 16,
            pad_to_path: true,
        }
    }
}

/// Configuration of a [`WormholeNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct WormholeConfig {
    /// Flit buffer depth per (link, VC) channel (≥ 1).
    pub flit_buffer: usize,
    /// Virtual channels per physical link (≥ 1).
    pub virtual_channels: usize,
    /// VC assignment discipline.
    pub discipline: VcDiscipline,
    /// Completed packets a node's receive queue holds.
    pub rx_queue_capacity: usize,
    /// Fault plane (see [`FaultConfig`]), executed by a seeded
    /// [`FaultSchedule`]. Corruption: without CR the packet is dropped
    /// at the receiving NI (detect-only); with CR the tail
    /// acknowledgement fails and the source retransmits. Under CR the
    /// duplicate/reorder faults are suppressed (the substrate's
    /// in-order guarantee is part of its contract).
    pub fault: FaultConfig,
    /// Compressionless Routing mode; `None` is a plain wormhole network.
    pub cr: Option<CrMode>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            flit_buffer: 2,
            virtual_channels: 1,
            discipline: VcDiscipline::Single,
            rx_queue_capacity: 16,
            fault: FaultConfig::default(),
            cr: None,
            seed: 0xC0FFEE,
        }
    }
}

/// A channel is one virtual channel of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ChannelId {
    link: LinkId,
    vc: usize,
}

#[derive(Debug, Clone)]
struct Worm {
    packet: Packet,
    path: Vec<LinkId>,
    vc: usize,
    /// Next path index the head will try to allocate; `path.len()`
    /// means the head has reached the destination.
    head_idx: usize,
    /// Channels currently held, oldest (tail-most) first, with the
    /// number of flits buffered in each.
    chain: Vec<(ChannelId, usize)>,
    /// Flits not yet injected at the source.
    at_source: usize,
    /// Flits delivered into the destination's assembly buffer.
    delivered: usize,
    /// Total flits (head + body + tail).
    total_flits: usize,
    blocked_since: Option<Time>,
    corrupted: bool,
    retries: u64,
    retry_at: Option<Time>,
}

impl Worm {
    fn fully_delivered(&self) -> bool {
        self.delivered == self.total_flits
    }
}

/// A flit-level wormhole-routed network over a [`Topology`].
#[derive(Debug, Clone)]
pub struct WormholeNetwork<T> {
    topo: T,
    cfg: WormholeConfig,
    owners: HashMap<ChannelId, u64>,
    worms: HashMap<u64, Worm>,
    order: Vec<u64>, // processing order (injection order)
    rx: Vec<std::collections::VecDeque<Packet>>,
    now: Time,
    next_id: u64,
    pair_seq: HashMap<(NodeId, NodeId), u64>,
    pair_active: HashMap<(NodeId, NodeId), u64>, // CR serialization
    last_progress: Time,
    stats: NetStats,
    kills: u64,
    rng: SimRng,
    faults: FaultSchedule,
    wake: WakeSet,
}

impl<T: Topology> WormholeNetwork<T> {
    /// Build a wormhole network.
    ///
    /// # Panics
    ///
    /// Panics if buffers/VCs are zero, or [`VcDiscipline::Dateline`] is
    /// requested with fewer than 2 virtual channels.
    pub fn new(topo: T, cfg: WormholeConfig) -> Self {
        assert!(cfg.flit_buffer >= 1, "flit buffer must hold at least one flit");
        assert!(cfg.virtual_channels >= 1, "need at least one virtual channel");
        if cfg.discipline == VcDiscipline::Dateline {
            assert!(
                cfg.virtual_channels >= 2,
                "dateline discipline needs at least two virtual channels"
            );
        }
        let rx = (0..topo.num_nodes()).map(|_| Default::default()).collect();
        let rng = SimRng::new(cfg.seed);
        let faults = FaultSchedule::new(cfg.fault.clone(), cfg.seed);
        let wake = WakeSet::new(topo.num_nodes());
        WormholeNetwork {
            topo,
            cfg,
            owners: HashMap::new(),
            worms: HashMap::new(),
            order: Vec::new(),
            rx,
            now: Time::ZERO,
            next_id: 0,
            pair_seq: HashMap::new(),
            pair_active: HashMap::new(),
            last_progress: Time::ZERO,
            stats: NetStats::new(),
            kills: 0,
            rng,
            faults,
            wake,
        }
    }

    /// The fault schedule driving this network's fault plane.
    pub fn fault_schedule(&self) -> &FaultSchedule {
        &self.faults
    }

    /// The active configuration.
    pub fn config(&self) -> &WormholeConfig {
        &self.cfg
    }

    /// Paths killed and retried by Compressionless Routing (0 outside
    /// CR mode).
    pub fn kills(&self) -> u64 {
        self.kills
    }

    /// Cycles since any flit moved. A large value with worms in flight
    /// means wedged — on a plain wormhole network, possibly true
    /// deadlock.
    pub fn stalled_for(&self) -> u64 {
        self.now.since(self.last_progress)
    }

    fn flits_for(&self, payload_words: usize, path_len: usize) -> usize {
        // head + one flit per two payload words + tail.
        let base = 2 + payload_words.div_ceil(2);
        match self.cfg.cr {
            Some(cr) if cr.pad_to_path => base.max(path_len + 1),
            _ => base,
        }
    }

    fn pick_vc(&mut self, path: &[LinkId], src: NodeId, dst: NodeId) -> usize {
        match self.cfg.discipline {
            VcDiscipline::Single => 0,
            VcDiscipline::Random => self.rng.gen_index(self.cfg.virtual_channels),
            VcDiscipline::Dateline => {
                // Wrapping worms (canonical torus paths whose first link
                // differs in direction class) ride VC 1. We approximate
                // "crosses the dateline" as: the path's links are not
                // monotone in index — cheap and adequate for the torus
                // topologies here, where wrap links have the highest
                // indices per direction block.
                let wraps = path
                    .windows(2)
                    .any(|w| w[1].index() < w[0].index())
                    || (src.index() > dst.index());
                usize::from(wraps)
            }
        }
    }

    /// Build a worm for `packet` if its injection channel is free.
    /// `stamped` packets (re-entering from a reorder hold) keep their
    /// sequence number; fresh ones are stamped here, after the channel
    /// check, so a refused injection never consumes a sequence slot.
    /// `delay` postpones the head's first allocation attempt
    /// (fault-plane jitter). On refusal the packet is handed back.
    fn spawn_worm(
        &mut self,
        mut packet: Packet,
        stamped: bool,
        corrupted: bool,
        delay: u64,
    ) -> Result<(), Packet> {
        let (src, dst) = (packet.src(), packet.dst());
        let path = self.topo.canonical_path(src, dst);
        let vc = self.pick_vc(&path, src, dst);
        // The injection port is the first channel: refuse if held.
        let first = ChannelId { link: path[0], vc };
        if self.owners.contains_key(&first) {
            return Err(packet);
        }
        if !stamped {
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
        }
        let total_flits = self.flits_for(packet.len(), path.len());
        let id = self.next_id;
        self.next_id += 1;
        let worm = Worm {
            packet,
            path,
            vc,
            head_idx: 0,
            chain: Vec::new(),
            at_source: total_flits,
            delivered: 0,
            total_flits,
            blocked_since: None,
            corrupted,
            retries: 0,
            retry_at: (delay > 0).then(|| self.now + delay),
        };
        self.worms.insert(id, worm);
        self.order.push(id);
        if self.cfg.cr.is_some() {
            self.pair_active.insert((src, dst), id);
        }
        Ok(())
    }

    /// Re-inject packets whose reorder hold has expired.
    fn release_due_holds(&mut self) {
        for p in self.faults.take_released(self.now) {
            if let Err(p) = self.spawn_worm(p, true, false, 0) {
                self.faults.hold_again(p, self.now);
            }
        }
    }

    fn step(&mut self) {
        self.now += 1;
        self.release_due_holds();
        let ids: Vec<u64> = self.order.clone();
        for id in ids {
            self.step_worm(id);
        }
        self.worms.retain(|_, w| !(w.fully_delivered() && w.chain.is_empty()));
        let alive: std::collections::HashSet<u64> = self.worms.keys().copied().collect();
        self.order.retain(|id| alive.contains(id));
        self.pair_active.retain(|_, id| alive.contains(id));
    }

    fn step_worm(&mut self, id: u64) {
        let Some(worm) = self.worms.get(&id) else { return };

        // Waiting out a retry backoff?
        if let Some(at) = worm.retry_at {
            if self.now >= at {
                self.worms.get_mut(&id).expect("exists").retry_at = None;
            }
            return;
        }

        let mut progressed = false;

        // 1. Head allocation: try to grab the next channel.
        let (head_idx, path_len) = (worm.head_idx, worm.path.len());
        if head_idx < path_len {
            let ch = ChannelId {
                link: worm.path[head_idx],
                vc: worm.vc,
            };
            if let std::collections::hash_map::Entry::Vacant(e) = self.owners.entry(ch) {
                e.insert(id);
                let w = self.worms.get_mut(&id).expect("exists");
                w.chain.push((ch, 0));
                w.head_idx += 1;
                progressed = true;
            }
        }

        // 2. Flit movement, head-most first: drain into the destination,
        //    shuffle forward through the chain, feed from the source.
        let w = self.worms.get_mut(&id).expect("exists");
        let at_dest = w.head_idx == w.path.len() && !w.chain.is_empty();
        if at_dest {
            // The head channel delivers one flit per cycle into the
            // packet assembly at the destination (free of the rx-queue
            // bound until the packet completes).
            let last = w.chain.len() - 1;
            if w.chain[last].1 > 0 {
                w.chain[last].1 -= 1;
                w.delivered += 1;
                progressed = true;
            }
        }
        // Forward flits between adjacent held channels.
        let buf = self.cfg.flit_buffer;
        let w = self.worms.get_mut(&id).expect("exists");
        for i in (1..w.chain.len()).rev() {
            if w.chain[i - 1].1 > 0 && w.chain[i].1 < buf {
                w.chain[i - 1].1 -= 1;
                w.chain[i].1 += 1;
                progressed = true;
            }
        }
        // Feed from the source into the first held channel.
        if !w.chain.is_empty() && w.at_source > 0 && w.chain[0].1 < buf {
            w.chain[0].1 += 1;
            w.at_source -= 1;
            progressed = true;
        }
        // Degenerate loopback-like case: zero-length path (src == dst
        // is handled at injection, so chain empties only by delivery).
        // 3. Tail release: once the source is empty, trailing channels
        //    with no buffered flits have been fully passed.
        let mut released = Vec::new();
        let w = self.worms.get_mut(&id).expect("exists");
        if w.at_source == 0 {
            while w.chain.len() > 1 && w.chain[0].1 == 0 {
                released.push(w.chain.remove(0).0);
            }
            if w.fully_delivered() {
                while let Some((ch, f)) = w.chain.first() {
                    debug_assert_eq!(*f, 0);
                    let _ = f;
                    released.push(*ch);
                    w.chain.remove(0);
                }
            }
        }
        for ch in &released {
            self.owners.remove(ch);
        }
        if !released.is_empty() {
            progressed = true;
        }

        // 4. Completion: all flits delivered.
        let (done, corrupted, dst) = {
            let w = self.worms.get(&id).expect("exists");
            (
                w.fully_delivered() && w.chain.is_empty() && w.delivered > 0,
                w.corrupted,
                w.packet.dst(),
            )
        };
        if done {
            if corrupted && self.cfg.cr.is_none() {
                // Detect-only: CRC failure at the NI, packet dropped
                // (the worm is consumed and reaped by `step`).
                self.stats.dropped_corrupt += 1;
                self.last_progress = self.now;
                return;
            }
            if corrupted {
                // CR: the tail acknowledgement fails; kill and retry.
                self.kill_worm(id, "corruption");
                return;
            }
            if self.rx[dst.index()].len() < self.cfg.rx_queue_capacity {
                let packet = self.worms.get(&id).expect("exists").packet.clone();
                let (src, seq, injected) = (
                    packet.src(),
                    packet.pair_seq().expect("stamped"),
                    packet.injected_at(),
                );
                self.rx[dst.index()].push_back(packet);
                self.wake.mark(dst);
                let depth = self.rx[dst.index()].len();
                self.stats
                    .record_delivery(src, dst, seq, injected, self.now, depth);
                self.last_progress = self.now;
            } else if self.cfg.cr.is_some() {
                // Rejection: the destination cannot absorb the packet;
                // tear down and retry later (end-to-end flow control).
                self.stats.rejects += 1;
                self.kill_worm(id, "rejection");
            } else {
                // Plain wormhole: the completed packet waits, holding
                // its final channel as the reassembly slot; delivery is
                // retried next cycle (head-of-line blocking).
                let ch = {
                    let w = self.worms.get_mut(&id).expect("exists");
                    let ch = ChannelId { link: w.path[w.path.len() - 1], vc: w.vc };
                    w.delivered = w.total_flits - 1;
                    w.chain.push((ch, 1));
                    ch
                };
                self.owners.insert(ch, id);
            }
            return;
        }

        // 5. Blocked-time accounting and CR kill detection.
        if progressed {
            let w = self.worms.get_mut(&id).expect("exists");
            w.blocked_since = None;
            self.last_progress = self.now;
        } else {
            let since = {
                let w = self.worms.get_mut(&id).expect("exists");
                *w.blocked_since.get_or_insert(self.now)
            };
            if let Some(cr) = self.cfg.cr {
                if self.now.since(since) >= cr.kill_timeout {
                    self.kill_worm(id, "no compression relief");
                }
            }
        }
    }

    /// Tear down a worm's path and schedule a retransmission from the
    /// source (Compressionless Routing's kill mechanism).
    fn kill_worm(&mut self, id: u64, _reason: &str) {
        let cr = self.cfg.cr.expect("kill only happens in CR mode");
        // Jittered backoff: symmetric retries would re-create the same
        // cyclic allocation forever (livelock); randomization breaks the
        // symmetry, as in the CR paper's probabilistic progress argument.
        let jitter = self.rng.gen_inclusive(cr.retry_backoff.max(1));
        // A retransmission may be corrupted again, independently.
        let prob = self.cfg.fault.corruption_prob;
        let corrupted_again = prob > 0.0 && self.rng.gen_bool(prob);
        let Some(w) = self.worms.get_mut(&id) else { return };
        let released: Vec<ChannelId> = w.chain.drain(..).map(|(ch, _)| ch).collect();
        w.head_idx = 0;
        w.at_source = w.total_flits;
        w.delivered = 0;
        w.blocked_since = None;
        w.retries += 1;
        w.retry_at = Some(self.now + cr.retry_backoff + jitter);
        w.corrupted = corrupted_again;
        for ch in released {
            self.owners.remove(&ch);
        }
        self.kills += 1;
        self.stats.hw_retransmits += 1;
        self.last_progress = self.now;
    }
}

impl<T: Topology> Network for WormholeNetwork<T> {
    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    fn now(&self) -> Time {
        self.now
    }

    fn advance(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn try_inject(&mut self, mut packet: Packet) -> Result<(), InjectError> {
        let (src, dst) = (packet.src(), packet.dst());
        if dst.index() >= self.num_nodes() {
            return Err(InjectError::BadDestination(dst));
        }
        if src.index() >= self.num_nodes() {
            return Err(InjectError::BadDestination(src));
        }
        if src == dst {
            if self.rx[dst.index()].len() >= self.cfg.rx_queue_capacity {
                self.stats.backpressure += 1;
                return Err(InjectError::Backpressure);
            }
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            self.stats.injected += 1;
            let pseq = packet.pair_seq().expect("stamped");
            let injected = packet.injected_at();
            self.rx[dst.index()].push_back(packet);
            self.wake.mark(dst);
            let depth = self.rx[dst.index()].len();
            self.stats
                .record_delivery(src, dst, pseq, injected, self.now, depth);
            return Ok(());
        }

        // CR serializes worms per pair: in-order delivery needs the
        // previous worm to finish before the next enters.
        if self.cfg.cr.is_some() && self.pair_active.contains_key(&(src, dst)) {
            self.stats.backpressure += 1;
            return Err(InjectError::Backpressure);
        }

        let faults = self.faults.on_inject(src, dst, self.now, &mut self.stats);
        if faults.vanish {
            // Lost before a worm ever forms. The packet was never
            // stamped, so surviving per-pair sequence numbers stay
            // contiguous for the order tracker.
            self.stats.injected += 1;
            return Ok(());
        }
        if faults.hold && self.cfg.cr.is_none() {
            // Reorder burst: stamp now (the packet keeps its place in
            // the pair sequence) but let later traffic overtake it.
            // Suppressed under CR, whose contract is in-order delivery.
            let seq = self.pair_seq.entry((src, dst)).or_insert(0);
            packet.stamp(PacketId::new(self.next_id), *seq, self.now);
            self.next_id += 1;
            *seq += 1;
            self.stats.injected += 1;
            self.faults.hold(packet, self.now);
            return Ok(());
        }

        let dup = (faults.duplicate && self.cfg.cr.is_none()).then(|| packet.clone());
        if self.spawn_worm(packet, false, faults.corrupt, faults.extra_delay).is_err() {
            self.stats.backpressure += 1;
            return Err(InjectError::Backpressure);
        }
        self.stats.injected += 1;
        if let Some(dup) = dup {
            // Link-level retry ghost: a second worm carrying the same
            // payload under the next sequence number.
            if self.spawn_worm(dup, false, false, 0).is_ok() {
                self.stats.duplicated += 1;
            }
        }
        self.faults.note_injection();
        self.release_due_holds();
        self.last_progress = self.now;
        Ok(())
    }

    fn rx_peek(&mut self, node: NodeId) -> Option<RxMeta> {
        self.rx.get(node.index())?.front().map(RxMeta::of)
    }

    fn try_receive(&mut self, node: NodeId) -> Option<Packet> {
        self.rx.get_mut(node.index())?.pop_front()
    }

    fn rx_pending(&self, node: NodeId) -> usize {
        self.rx.get(node.index()).map_or(0, |q| q.len())
    }

    fn in_flight(&self) -> usize {
        self.worms.len() + self.faults.held_count()
    }

    fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn guarantees(&self) -> Guarantees {
        if self.cfg.cr.is_some() {
            Guarantees::HIGH_LEVEL
        } else {
            Guarantees::RAW
        }
    }

    fn restarts(&self, node: NodeId) -> u32 {
        self.faults.restarts(node, self.now)
    }

    fn restarts_hint(&self) -> u64 {
        self.faults.restarts_total(self.now)
    }

    fn next_restart_at(&self) -> Option<Time> {
        self.faults.next_restart_after(self.now)
    }

    fn take_delivered(&mut self) -> Vec<NodeId> {
        self.wake.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Mesh2D, Torus2D};

    fn pkt(src: usize, dst: usize, seq: u32) -> Packet {
        Packet::new(NodeId::new(src), NodeId::new(dst), 1, seq, vec![seq; 4])
    }

    fn mesh(cfg: WormholeConfig) -> WormholeNetwork<Mesh2D> {
        WormholeNetwork::new(Mesh2D::new(4, 4), cfg)
    }

    #[test]
    fn delivers_a_packet_flit_by_flit() {
        let mut net = mesh(WormholeConfig::default());
        net.try_inject(pkt(0, 15, 9)).unwrap();
        assert_eq!(net.in_flight(), 1);
        assert!(net.drain(10_000));
        let got = net.try_receive(NodeId::new(15)).expect("delivered");
        assert_eq!(got.data(), &[9, 9, 9, 9]);
        // 6 hops at ~1 flit/cycle: latency must exceed the hop count.
        assert!(net.stats().latency.mean() > 6.0);
    }

    #[test]
    fn worms_preserve_pair_order() {
        let mut net = mesh(WormholeConfig::default());
        let mut sent = 0u32;
        let mut got = Vec::new();
        while sent < 40 || net.in_flight() > 0 {
            if sent < 40 && net.try_inject(pkt(0, 15, sent)).is_ok() {
                sent += 1;
            }
            net.advance(1);
            while let Some(p) = net.try_receive(NodeId::new(15)) {
                got.push(p.header());
            }
        }
        assert_eq!(got.len(), 40);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn blocked_receiver_holds_paths() {
        // Node 5 never drains; with a tiny rx queue the worms to it
        // stay wedged holding channels, and stall time grows.
        let mut net = mesh(WormholeConfig {
            rx_queue_capacity: 1,
            ..WormholeConfig::default()
        });
        for s in 0..4u32 {
            let _ = net.try_inject(pkt(0, 5, s));
            net.advance(20);
        }
        net.advance(500);
        assert!(net.in_flight() > 0, "worms should be wedged behind the full rx");
        assert!(net.stalled_for() > 100);
    }

    #[test]
    fn torus_dor_without_vcs_deadlocks() {
        // Four nodes around a 4x1 torus ring, each sending 2 hops
        // forward: the wraparound closes a cyclic channel dependency
        // and the worms (padded long by their flit count) deadlock.
        let mut net = WormholeNetwork::new(
            Torus2D::new(4, 1),
            WormholeConfig {
                flit_buffer: 1,
                ..WormholeConfig::default()
            },
        );
        for s in 0..4usize {
            let d = (s + 2) % 4;
            let p = Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]);
            net.try_inject(p).unwrap();
        }
        net.advance(2_000);
        assert!(net.in_flight() > 0, "expected deadlock");
        assert!(
            net.stalled_for() > 1_500,
            "no flit should move once the cycle closes (stalled {})",
            net.stalled_for()
        );
    }

    #[test]
    fn dateline_vcs_break_the_torus_deadlock() {
        let mut net = WormholeNetwork::new(
            Torus2D::new(4, 1),
            WormholeConfig {
                flit_buffer: 1,
                virtual_channels: 2,
                discipline: VcDiscipline::Dateline,
                ..WormholeConfig::default()
            },
        );
        for s in 0..4usize {
            let d = (s + 2) % 4;
            let p = Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]);
            net.try_inject(p).unwrap();
        }
        assert!(net.drain_extracting(20_000), "dateline VCs must drain the ring");
        assert_eq!(net.stats().delivered, 4);
    }

    #[test]
    fn cr_mode_breaks_the_same_deadlock_by_killing() {
        // Same deadlock-prone workload, single VC — but Compressionless
        // Routing detects the lack of compression relief, kills paths,
        // and retries until everything delivers.
        let mut net = WormholeNetwork::new(
            Torus2D::new(4, 1),
            WormholeConfig {
                flit_buffer: 1,
                cr: Some(CrMode::default()),
                ..WormholeConfig::default()
            },
        );
        // Inject all four in the same cycle so the cyclic allocation
        // actually forms (distinct pairs, distinct first channels).
        for s in 0..4usize {
            let d = (s + 2) % 4;
            net.try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]))
                .unwrap();
        }
        assert!(net.drain_extracting(50_000), "CR must resolve the deadlock");
        assert_eq!(net.stats().delivered, 4);
        assert!(net.kills() > 0, "resolution should have used kills");
    }

    #[test]
    fn cr_mode_retransmits_corrupted_worms() {
        let mut net = mesh(WormholeConfig {
            fault: FaultConfig { corruption_prob: 0.3, ..FaultConfig::default() },
            cr: Some(CrMode::default()),
            seed: 11,
            ..WormholeConfig::default()
        });
        let mut sent = 0u32;
        let mut got = Vec::new();
        while sent < 50 || net.in_flight() > 0 {
            if sent < 50 && net.try_inject(pkt(0, 15, sent)).is_ok() {
                sent += 1;
            }
            net.advance(1);
            while let Some(p) = net.try_receive(NodeId::new(15)) {
                assert!(!p.is_corrupted());
                got.push(p.header());
            }
        }
        assert_eq!(got.len(), 50, "reliable despite corruption");
        assert!(got.windows(2).all(|w| w[0] < w[1]), "and in order");
        assert!(net.stats().hw_retransmits > 5);
        assert_eq!(net.stats().dropped_corrupt, 0);
    }

    #[test]
    fn plain_mode_drops_corrupted_worms() {
        let mut net = mesh(WormholeConfig {
            fault: FaultConfig { corruption_prob: 0.4, ..FaultConfig::default() },
            seed: 3,
            // Room for every packet: nothing must block on the receive
            // queue while the source is still injecting.
            rx_queue_capacity: 64,
            ..WormholeConfig::default()
        });
        let mut sent = 0u32;
        while sent < 50 {
            if net.try_inject(pkt(0, 15, sent)).is_ok() {
                sent += 1;
            }
            net.advance(1);
        }
        assert!(net.drain_extracting(50_000));
        let st = net.stats();
        assert!(st.dropped_corrupt > 5, "{st}");
        assert_eq!(st.delivered + st.dropped_corrupt, 50);
    }

    #[test]
    fn cr_rejection_on_full_receiver_keeps_network_live() {
        let mut net = mesh(WormholeConfig {
            rx_queue_capacity: 1,
            cr: Some(CrMode::default()),
            ..WormholeConfig::default()
        });
        // Fill node 5's queue and keep pushing: headers get rejected,
        // paths killed, but traffic to node 10 still flows.
        for s in 0..3u32 {
            let _ = net.try_inject(pkt(0, 5, s));
            net.advance(60);
        }
        net.try_inject(pkt(4, 10, 0)).unwrap();
        let mut delivered_other = false;
        for _ in 0..2_000 {
            net.advance(1);
            if net.try_receive(NodeId::new(10)).is_some() {
                delivered_other = true;
                break;
            }
        }
        assert!(delivered_other, "CR must not let a stuck receiver wedge others");
        assert!(net.stats().rejects > 0 || net.kills() > 0);
    }

    #[test]
    fn cr_guarantees_are_high_level_plain_are_raw() {
        assert_eq!(mesh(WormholeConfig::default()).guarantees(), Guarantees::RAW);
        assert_eq!(
            mesh(WormholeConfig { cr: Some(CrMode::default()), ..WormholeConfig::default() })
                .guarantees(),
            Guarantees::HIGH_LEVEL
        );
    }

    #[test]
    fn loopback_and_bad_destination() {
        let mut net = mesh(WormholeConfig::default());
        net.try_inject(pkt(3, 3, 1)).unwrap();
        assert_eq!(net.rx_pending(NodeId::new(3)), 1);
        assert!(net.try_inject(pkt(0, 99, 0)).is_err());
    }
}
