//! The memory-mapped network-interface port.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use timego_cost::{CostHandle, Fine};
use timego_netsim::{InjectError, Network, NodeId, Packet, RxMeta};

use crate::memory::{Addr, Memory};

/// A network shared between the NI ports of its nodes. The simulator is
/// single-threaded, so this is `Rc<RefCell<…>>`.
pub type SharedNetwork = Rc<RefCell<dyn Network>>;

/// Wrap a network for sharing among [`NiPort`]s.
pub fn share<N: Network + 'static>(network: N) -> SharedNetwork {
    Rc::new(RefCell::new(network))
}

/// One node's view of the network interface.
///
/// The port models the CM-5 NI's register map. Each method that touches
/// a register records exactly one `dev`-class instruction into the
/// node's cost recorder, under the fine category the paper's Table 1
/// uses for that access:
///
/// | method | register | fine category |
/// |---|---|---|
/// | [`load_send_status`](NiPort::load_send_status) | send status | check NI status |
/// | [`stage_envelope`](NiPort::stage_envelope) | send setup (dest, tag, header) | NI setup |
/// | [`push_payload2`](NiPort::push_payload2) / [`push_payload1`](NiPort::push_payload1) | send FIFO | write to NI |
/// | [`commit_send`](NiPort::commit_send) | send status | check NI status |
/// | [`poll_status`](NiPort::poll_status) | receive status | check NI status |
/// | [`latch_rx`](NiPort::latch_rx) | receive latch + tag | check NI status |
/// | [`read_header`](NiPort::read_header) | receive FIFO | read from NI |
/// | [`read_payload2`](NiPort::read_payload2) / [`read_payload1`](NiPort::read_payload1) | receive FIFO | read from NI |
pub struct NiPort {
    node: NodeId,
    net: SharedNetwork,
    cpu: CostHandle,
    staged: Option<Staged>,
    latched: Option<Latched>,
}

#[derive(Debug, Clone)]
struct Staged {
    dst: NodeId,
    tag: u8,
    header: u32,
    payload: Vec<u32>,
}

#[derive(Debug, Clone)]
struct Latched {
    packet: Packet,
    read_pos: usize,
}

impl NiPort {
    /// A port for `node` on `net`, recording device costs into `cpu`.
    pub fn new(node: NodeId, net: SharedNetwork, cpu: CostHandle) -> Self {
        NiPort {
            node,
            net,
            cpu,
            staged: None,
            latched: None,
        }
    }

    /// The node this port belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's cost recorder.
    pub fn cpu(&self) -> &CostHandle {
        &self.cpu
    }

    /// The shared network (for harness code that needs to drive or
    /// inspect it; protocol code only uses the register methods).
    pub fn network(&self) -> &SharedNetwork {
        &self.net
    }

    /// Advance the underlying network by `cycles`. Free of instruction
    /// cost — time passes, the processor does not execute.
    pub fn advance(&self, cycles: u64) {
        self.net.borrow_mut().advance(cycles);
    }

    // --- send side -----------------------------------------------------

    /// Load the send-status register (1 `dev`). On the real machine this
    /// tells the sender whether the NI can accept another packet; the
    /// model is optimistic and the authoritative answer comes from
    /// [`commit_send`](NiPort::commit_send).
    pub fn load_send_status(&mut self) -> bool {
        self.cpu.dev(Fine::CheckStatus, 1);
        true
    }

    /// Store the send-setup registers: destination node, message tag and
    /// the header word (offset / sequence number) in one store (1 `dev`).
    /// Begins a new packet, discarding any previously staged one.
    pub fn stage_envelope(&mut self, dst: NodeId, tag: u8, header: u32) {
        self.cpu.dev(Fine::NiSetup, 1);
        self.staged = Some(Staged {
            dst,
            tag,
            header,
            payload: Vec::with_capacity(4),
        });
    }

    /// Store two payload words into the send FIFO with one double-word
    /// store (1 `dev`).
    ///
    /// # Panics
    ///
    /// Panics if no envelope is staged.
    pub fn push_payload2(&mut self, w0: u32, w1: u32) {
        self.cpu.dev(Fine::WriteNi, 1);
        let staged = self.staged.as_mut().expect("stage_envelope before push_payload");
        staged.payload.push(w0);
        staged.payload.push(w1);
    }

    /// Store one payload word into the send FIFO (1 `dev`).
    ///
    /// # Panics
    ///
    /// Panics if no envelope is staged.
    pub fn push_payload1(&mut self, w: u32) {
        self.cpu.dev(Fine::WriteNi, 1);
        let staged = self.staged.as_mut().expect("stage_envelope before push_payload");
        staged.payload.push(w);
    }

    /// Store a DMA descriptor (1 `dev`): the NI's DMA engine fetches
    /// `words` payload words directly from node memory — **without CPU
    /// memory instructions** — and loads them into the send FIFO. This
    /// models the "DMA hardware can reduce the cost of moving large
    /// amounts of data" discussion in the paper's §5.
    ///
    /// # Panics
    ///
    /// Panics if no envelope is staged or the address range is out of
    /// bounds.
    pub fn dma_stage_payload(&mut self, mem: &Memory, addr: Addr, words: usize) {
        self.cpu.dev(Fine::NiSetup, 1);
        let staged = self.staged.as_mut().expect("stage_envelope before dma_stage_payload");
        staged.payload.extend_from_slice(mem.peek(addr, words));
    }

    /// Load the send-status register to commit and confirm the send
    /// (1 `dev`). Returns `true` if the network accepted the packet;
    /// on `false` (backpressure) the staged packet is discarded and the
    /// software must re-stage it, exactly as on the CM-5.
    ///
    /// # Panics
    ///
    /// Panics if no packet is staged.
    pub fn commit_send(&mut self) -> bool {
        self.cpu.dev(Fine::CheckStatus, 1);
        let staged = self.staged.take().expect("nothing staged to send");
        let packet = Packet::new(self.node, staged.dst, staged.tag, staged.header, staged.payload);
        match self.net.borrow_mut().try_inject(packet) {
            Ok(()) => true,
            Err(InjectError::Backpressure) => false,
            Err(e @ InjectError::BadDestination(_)) => {
                panic!("protocol bug: {e}")
            }
        }
    }

    // --- receive side ----------------------------------------------------

    /// Load the receive-status register (1 `dev`): is a packet waiting?
    pub fn poll_status(&mut self) -> bool {
        self.cpu.dev(Fine::CheckStatus, 1);
        let net = self.net.borrow();
        net.rx_pending(self.node) > 0 || self.latched.is_some()
    }

    /// Envelope metadata (source, tag, header) of the packet the next
    /// [`latch_rx`](NiPort::latch_rx) would pop — the already-latched
    /// packet if one is held, otherwise the head of the network's
    /// receive queue. Free of modeled cost: this is the harness-level
    /// dispatch surface an event-driven scheduler uses to decide *which*
    /// protocol state machine should pay for the receive; the machine
    /// that consumes the packet still pays every NI register access.
    pub fn rx_peek(&mut self) -> Option<RxMeta> {
        if let Some(l) = &self.latched {
            return Some(RxMeta::of(&l.packet));
        }
        self.net.borrow_mut().rx_peek(self.node)
    }

    /// Pop the next waiting packet into the receive latch and load its
    /// source/tag word for handler vectoring (1 `dev`). Returns `None`
    /// if nothing is waiting.
    ///
    /// # Panics
    ///
    /// Panics if a latched packet has not been fully consumed — that is
    /// a protocol bug, the latch is a single register set.
    pub fn latch_rx(&mut self) -> Option<(NodeId, u8)> {
        self.cpu.dev(Fine::CheckStatus, 1);
        assert!(
            self.latched.is_none(),
            "protocol bug: latching over an unconsumed packet"
        );
        let packet = self.net.borrow_mut().try_receive(self.node)?;
        let meta = (packet.src(), packet.tag());
        self.latched = Some(Latched { packet, read_pos: 0 });
        Some(meta)
    }

    /// Load the latched packet's header word (1 `dev`).
    ///
    /// # Panics
    ///
    /// Panics if no packet is latched.
    pub fn read_header(&mut self) -> u32 {
        self.cpu.dev(Fine::ReadNi, 1);
        self.latched.as_ref().expect("no packet latched").packet.header()
    }

    /// Load the next two payload words with one double-word load
    /// (1 `dev`). Missing words read as zero (short packets).
    ///
    /// # Panics
    ///
    /// Panics if no packet is latched.
    pub fn read_payload2(&mut self) -> (u32, u32) {
        self.cpu.dev(Fine::ReadNi, 1);
        let latched = self.latched.as_mut().expect("no packet latched");
        let d = latched.packet.data();
        let w0 = d.get(latched.read_pos).copied().unwrap_or(0);
        let w1 = d.get(latched.read_pos + 1).copied().unwrap_or(0);
        latched.read_pos += 2;
        self.maybe_release();
        (w0, w1)
    }

    /// Load the next payload word (1 `dev`).
    ///
    /// # Panics
    ///
    /// Panics if no packet is latched.
    pub fn read_payload1(&mut self) -> u32 {
        self.cpu.dev(Fine::ReadNi, 1);
        let latched = self.latched.as_mut().expect("no packet latched");
        let w = latched.packet.data().get(latched.read_pos).copied().unwrap_or(0);
        latched.read_pos += 1;
        self.maybe_release();
        w
    }

    /// Payload words remaining unread in the latch.
    pub fn latched_remaining(&self) -> usize {
        self.latched
            .as_ref()
            .map_or(0, |l| l.packet.len().saturating_sub(l.read_pos))
    }

    /// Discard the latched packet without reading the rest of it (free:
    /// the NI advances past it on the next status access).
    pub fn drop_latched(&mut self) {
        self.latched = None;
    }

    fn maybe_release(&mut self) {
        if let Some(l) = &self.latched {
            if l.read_pos >= l.packet.len() {
                self.latched = None;
            }
        }
    }
}

impl fmt::Debug for NiPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NiPort")
            .field("node", &self.node)
            .field("staged", &self.staged)
            .field("latched", &self.latched)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_cost::{Class, Feature};
    use timego_netsim::{DeliveryScript, ScriptedNetwork};

    fn pair() -> (NiPort, NiPort) {
        let net = share(ScriptedNetwork::new(2, DeliveryScript::InOrder));
        let a = NiPort::new(NodeId::new(0), net.clone(), CostHandle::new());
        let b = NiPort::new(NodeId::new(1), net, CostHandle::new());
        (a, b)
    }

    #[test]
    fn send_receive_roundtrip_with_exact_dev_costs() {
        let (mut tx, mut rx) = pair();
        tx.stage_envelope(NodeId::new(1), 3, 99);
        tx.push_payload2(1, 2);
        tx.push_payload2(3, 4);
        assert!(tx.commit_send());
        // 1 setup + 2 payload + 1 commit = 4 dev instructions.
        assert_eq!(tx.cpu().snapshot().class_total(Class::Dev), 4);

        assert!(rx.poll_status());
        let (src, tag) = rx.latch_rx().expect("waiting");
        assert_eq!(src, NodeId::new(0));
        assert_eq!(tag, 3);
        assert_eq!(rx.read_header(), 99);
        assert_eq!(rx.read_payload2(), (1, 2));
        assert_eq!(rx.read_payload2(), (3, 4));
        // 1 poll + 1 latch + 1 header + 2 payload = 5 dev instructions.
        assert_eq!(rx.cpu().snapshot().class_total(Class::Dev), 5);
        // Fully consumed: latch released.
        assert_eq!(rx.latched_remaining(), 0);
        assert!(!rx.poll_status());
    }

    #[test]
    fn costs_attribute_to_current_feature() {
        let (mut tx, _rx) = pair();
        tx.cpu().clone().with_feature(Feature::FaultTol, |_| {
            tx.stage_envelope(NodeId::new(1), 1, 0);
            tx.push_payload1(5);
            assert!(tx.commit_send());
        });
        let v = tx.cpu().snapshot();
        assert_eq!(v.feature_total(Feature::FaultTol), 3);
        assert_eq!(v.feature_total(Feature::Base), 0);
    }

    #[test]
    fn latch_empty_returns_none_but_costs_a_load() {
        let (_tx, mut rx) = pair();
        assert!(rx.latch_rx().is_none());
        assert_eq!(rx.cpu().snapshot().class_total(Class::Dev), 1);
    }

    #[test]
    fn short_packet_reads_zero_padding() {
        let (mut tx, mut rx) = pair();
        tx.stage_envelope(NodeId::new(1), 1, 7);
        tx.push_payload1(42);
        assert!(tx.commit_send());
        rx.latch_rx().unwrap();
        assert_eq!(rx.read_payload2(), (42, 0));
    }

    #[test]
    fn drop_latched_discards_rest() {
        let (mut tx, mut rx) = pair();
        tx.stage_envelope(NodeId::new(1), 1, 0);
        tx.push_payload2(1, 2);
        assert!(tx.commit_send());
        rx.latch_rx().unwrap();
        assert_eq!(rx.latched_remaining(), 2);
        rx.drop_latched();
        assert_eq!(rx.latched_remaining(), 0);
        assert!(rx.latch_rx().is_none());
    }

    #[test]
    #[should_panic(expected = "stage_envelope")]
    fn payload_without_envelope_panics() {
        let (mut tx, _rx) = pair();
        tx.push_payload2(1, 2);
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn double_latch_panics() {
        let (mut tx, mut rx) = pair();
        for _ in 0..2 {
            tx.stage_envelope(NodeId::new(1), 1, 0);
            tx.push_payload1(1);
            assert!(tx.commit_send());
        }
        rx.latch_rx().unwrap();
        let _ = rx.latch_rx();
    }

    #[test]
    fn load_send_status_costs_one_dev() {
        let (mut tx, _rx) = pair();
        assert!(tx.load_send_status());
        assert_eq!(tx.cpu().snapshot().class_total(Class::Dev), 1);
    }
}
