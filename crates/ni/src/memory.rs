//! Word-addressed node memory with `mem`-class cost accounting.

use std::fmt;

use timego_cost::CostHandle;

/// A word address in node memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub usize);

impl Addr {
    /// The address `offset` words past this one.
    pub const fn offset(self, words: usize) -> Addr {
        Addr(self.0 + words)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{:#x}", self.0)
    }
}

/// Node memory. Loads and stores cost one `mem` instruction each; the
/// SPARC-style double-word variants move two words per instruction,
/// which is how `n` payload words cost `n/2` memory operations in the
/// paper's accounting.
///
/// Allocation itself is free, matching the paper: *"we exclude the
/// actual allocation cost since our interest is only in the protocol
/// costs."*
///
/// Backing storage is materialized lazily as the bump allocator hands
/// addresses out: `capacity` is a logical limit, so a large-memory
/// machine with many mostly-idle nodes costs what its nodes actually
/// allocate, not `nodes x capacity`. (Eagerly zeroing every node's full
/// address space made big-fleet machine construction page-fault-bound.)
#[derive(Debug, Clone)]
pub struct Memory {
    /// Physical words, always exactly `brk` long: newly allocated
    /// regions appear zeroed, matching the eager all-zero layout.
    words: Vec<u32>,
    capacity: usize,
    brk: usize,
    cpu: CostHandle,
}

impl Memory {
    /// Memory of `capacity` words, all zero.
    pub fn new(capacity: usize, cpu: CostHandle) -> Self {
        Memory {
            words: Vec::new(),
            capacity,
            brk: 0,
            cpu,
        }
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate `words` words (bump allocator; free of instruction
    /// cost, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if memory is exhausted.
    pub fn alloc(&mut self, words: usize) -> Addr {
        assert!(
            self.brk + words <= self.capacity,
            "node memory exhausted: {} + {} > {}",
            self.brk,
            words,
            self.capacity
        );
        let a = Addr(self.brk);
        self.brk += words;
        self.words.resize(self.brk, 0);
        a
    }

    /// Load one word (1 `mem` instruction). Unallocated words below
    /// `capacity` read as zero, exactly as in the eager all-zero
    /// layout — protocol padding reads past a buffer's end rely on it.
    ///
    /// # Panics
    ///
    /// Panics on an address at or past `capacity`.
    pub fn load(&self, addr: Addr) -> u32 {
        self.cpu.mem_load(1);
        assert!(addr.0 < self.capacity, "load past memory capacity: {addr}");
        self.words.get(addr.0).copied().unwrap_or(0)
    }

    /// Store one word (1 `mem` instruction).
    ///
    /// # Panics
    ///
    /// Panics on an address outside allocated memory.
    pub fn store(&mut self, addr: Addr, value: u32) {
        self.cpu.mem_store(1);
        self.words[addr.0] = value;
    }

    /// Load two consecutive words with one double-word instruction
    /// (1 `mem` instruction). Unallocated words below `capacity` read
    /// as zero (see [`Memory::load`]).
    ///
    /// # Panics
    ///
    /// Panics on an address pair reaching past `capacity`.
    pub fn load2(&self, addr: Addr) -> (u32, u32) {
        self.cpu.mem_load(1);
        assert!(addr.0 + 1 < self.capacity, "load past memory capacity: {addr}");
        (
            self.words.get(addr.0).copied().unwrap_or(0),
            self.words.get(addr.0 + 1).copied().unwrap_or(0),
        )
    }

    /// Store two consecutive words with one double-word instruction
    /// (1 `mem` instruction).
    ///
    /// # Panics
    ///
    /// Panics on an address outside allocated memory.
    pub fn store2(&mut self, addr: Addr, w0: u32, w1: u32) {
        self.cpu.mem_store(1);
        self.words[addr.0] = w0;
        self.words[addr.0 + 1] = w1;
    }

    /// Read a region without cost accounting — for harness verification
    /// only, never called by protocol code.
    pub fn peek(&self, addr: Addr, words: usize) -> &[u32] {
        &self.words[addr.0..addr.0 + words]
    }

    /// Write a region without cost accounting — for harness setup (e.g.
    /// filling a source buffer with test data), never called by protocol
    /// code.
    pub fn poke(&mut self, addr: Addr, data: &[u32]) {
        self.words[addr.0..addr.0 + data.len()].copy_from_slice(data);
    }

    /// The node's cost recorder handle.
    pub fn cpu(&self) -> &CostHandle {
        &self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timego_cost::{Class, CostHandle};

    #[test]
    fn loads_and_stores_cost_mem_instructions() {
        let cpu = CostHandle::new();
        let mut mem = Memory::new(64, cpu.clone());
        let a = mem.alloc(4);
        mem.store(a, 7);
        mem.store2(a.offset(2), 8, 9);
        assert_eq!(mem.load(a), 7);
        assert_eq!(mem.load2(a.offset(2)), (8, 9));
        let v = cpu.snapshot();
        assert_eq!(v.class_total(Class::Mem), 4);
        assert_eq!(v.total(), 4);
    }

    #[test]
    fn peek_poke_are_free() {
        let cpu = CostHandle::new();
        let mut mem = Memory::new(16, cpu.clone());
        let a = mem.alloc(3);
        mem.poke(a, &[1, 2, 3]);
        assert_eq!(mem.peek(a, 3), &[1, 2, 3]);
        assert!(cpu.snapshot().is_empty());
    }

    #[test]
    fn alloc_bumps() {
        let mut mem = Memory::new(10, CostHandle::new());
        let a = mem.alloc(4);
        let b = mem.alloc(4);
        assert_eq!(b.0 - a.0, 4);
        assert_eq!(mem.capacity(), 10);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_past_capacity_panics() {
        let mut mem = Memory::new(4, CostHandle::new());
        mem.alloc(5);
    }

    #[test]
    fn addr_offset_and_display() {
        let a = Addr(16);
        assert_eq!(a.offset(4), Addr(20));
        assert_eq!(a.to_string(), "@0x10");
    }
}
