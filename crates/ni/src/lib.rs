//! # timego-ni — the node machine model
//!
//! Models the parts of a CM-5-like node that messaging software touches:
//!
//! * [`NiPort`] — the memory-mapped network interface (Figure 2 of the
//!   paper): staging registers and FIFOs for sending, a receive latch
//!   with tag dispatch, and status registers. **Every register access is
//!   one `dev`-class instruction**, recorded into the node's
//!   [`CostHandle`](timego_cost::CostHandle) as a side effect of doing
//!   the real work (injecting into / extracting from the underlying
//!   [`Network`](timego_netsim::Network)).
//! * [`Memory`] — word-addressed node memory with double-word transfer
//!   operations; every access is one `mem`-class instruction.
//!
//! The cost conventions mirror the paper's measured CMAM code paths
//! (see `DESIGN.md §3`): a packet send is one NI-setup store
//! (destination + tag + header), `n/2` double-word payload stores, and a
//! status load that both confirms the send and tests for incoming
//! packets; a packet receive is one latch/tag load, one header load and
//! `n/2` double-word payload loads.
//!
//! ## Example
//!
//! ```
//! use timego_netsim::{DeliveryScript, NodeId, ScriptedNetwork};
//! use timego_ni::{share, NiPort};
//! use timego_cost::CostHandle;
//!
//! let net = share(ScriptedNetwork::new(2, DeliveryScript::InOrder));
//! let mut tx = NiPort::new(NodeId::new(0), net.clone(), CostHandle::new());
//! let mut rx = NiPort::new(NodeId::new(1), net, CostHandle::new());
//!
//! tx.stage_envelope(NodeId::new(1), 5, 0);
//! tx.push_payload2(10, 20);
//! assert!(tx.commit_send());
//!
//! assert!(rx.poll_status());
//! let (src, tag) = rx.latch_rx().expect("packet waiting");
//! assert_eq!((src.index(), tag), (0, 5));
//! assert_eq!(rx.read_payload2(), (10, 20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod port;

pub use memory::{Addr, Memory};
pub use port::{share, NiPort, SharedNetwork};
