//! The three classification axes of the paper's cost accounting, plus the
//! source/destination endpoint label used by every table.

use std::fmt;

/// Instruction cost class — the "cost hierarchy prevalent in existing
/// machines" of Appendix A.
///
/// `reg` instructions are expected to be cheapest; `mem` instructions
/// traverse the cache/memory hierarchy; `dev` instructions are loads and
/// stores to memory-mapped devices (the network interface) and are the most
/// expensive (the paper's example CM-5 model charges 5 cycles each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// Register-based instruction (arithmetic, compares, branches).
    Reg,
    /// Load or store to ordinary memory.
    Mem,
    /// Load or store to a memory-mapped device (the NI).
    Dev,
}

impl Class {
    /// All classes, in table order (`reg`, `mem`, `dev`).
    pub const ALL: [Class; 3] = [Class::Reg, Class::Mem, Class::Dev];

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The lower-case label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Class::Reg => "reg",
            Class::Mem => "mem",
            Class::Dev => "dev",
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Messaging-layer feature an instruction is attributed to (the rows of
/// Table 2).
///
/// `Base` is the irreducible data-movement cost; the other three are the
/// *software overhead* the paper traces back to network features
/// (arbitrary delivery order, finite buffering, detect-only fault
/// handling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Feature {
    /// Base cost: single-packet injections/extractions and the
    /// loads/stores that move user data up and down the memory hierarchy.
    Base,
    /// Buffer management: preallocation handshakes and segment
    /// association/disassociation (deadlock/overflow safety).
    BufferMgmt,
    /// In-order delivery: offsets or sequence numbers, plus buffering and
    /// draining of packets that arrive out of transmission order.
    InOrder,
    /// Fault tolerance: source buffering of in-flight data and
    /// acknowledgement traffic enabling retransmission.
    FaultTol,
}

impl Feature {
    /// All features, in the paper's table order.
    pub const ALL: [Feature; 4] = [
        Feature::Base,
        Feature::BufferMgmt,
        Feature::InOrder,
        Feature::FaultTol,
    ];

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The row label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Feature::Base => "Base Cost",
            Feature::BufferMgmt => "Buffer Mgmt.",
            Feature::InOrder => "In-order Del.",
            Feature::FaultTol => "Fault-toler.",
        }
    }

    /// Whether this feature counts as messaging-layer *overhead*
    /// (everything except [`Feature::Base`]).
    pub fn is_overhead(self) -> bool {
        !matches!(self, Feature::Base)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fine-grained functional category (the rows of Table 1, plus generic
/// categories for the multi-packet protocol bodies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Fine {
    /// Procedure call/return overhead (register saves, the call itself).
    CallReturn,
    /// Preparing the NI for a send: computing the mapped address, staging
    /// the destination node number and message tag.
    NiSetup,
    /// Stores of payload words into the NI send FIFO.
    WriteNi,
    /// Loads of payload words from the NI receive FIFO.
    ReadNi,
    /// Loads of NI status/control registers (send-ok polling, receive
    /// polling, tag vectoring).
    CheckStatus,
    /// Branches and loop control.
    ControlFlow,
    /// Generic register arithmetic (pointer/offset/sequence updates).
    RegOp,
    /// Loads from ordinary memory (user buffers, protocol state).
    MemLoad,
    /// Stores to ordinary memory (user buffers, protocol state).
    MemStore,
    /// Invoking the user's message handler (dispatch cost).
    Handler,
}

impl Fine {
    /// All fine categories, in display order.
    pub const ALL: [Fine; 10] = [
        Fine::CallReturn,
        Fine::NiSetup,
        Fine::WriteNi,
        Fine::ReadNi,
        Fine::CheckStatus,
        Fine::ControlFlow,
        Fine::RegOp,
        Fine::MemLoad,
        Fine::MemStore,
        Fine::Handler,
    ];

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The row label used in Table 1 (generic categories get descriptive
    /// labels of the same style).
    pub fn label(self) -> &'static str {
        match self {
            Fine::CallReturn => "Call/Return",
            Fine::NiSetup => "NI setup",
            Fine::WriteNi => "Write to NI",
            Fine::ReadNi => "Read from NI",
            Fine::CheckStatus => "Check NI status",
            Fine::ControlFlow => "Control flow",
            Fine::RegOp => "Register ops",
            Fine::MemLoad => "Memory loads",
            Fine::MemStore => "Memory stores",
            Fine::Handler => "Handler dispatch",
        }
    }
}

impl fmt::Display for Fine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which end of a transfer a cost was incurred on (the columns of every
/// table in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// The sending node.
    Source,
    /// The receiving node.
    Destination,
}

impl Endpoint {
    /// Both endpoints, in table order.
    pub const ALL: [Endpoint; 2] = [Endpoint::Source, Endpoint::Destination];

    /// Dense index for array storage.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Source => "Source",
            Endpoint::Destination => "Destination",
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, c) in Class::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        for (i, f) in Fine::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        for (i, e) in Endpoint::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn only_base_is_not_overhead() {
        assert!(!Feature::Base.is_overhead());
        assert!(Feature::BufferMgmt.is_overhead());
        assert!(Feature::InOrder.is_overhead());
        assert!(Feature::FaultTol.is_overhead());
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(Class::Dev.label(), "dev");
        assert_eq!(Feature::InOrder.label(), "In-order Del.");
        assert_eq!(Fine::CheckStatus.label(), "Check NI status");
        assert_eq!(Endpoint::Destination.label(), "Destination");
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(Class::Reg.to_string(), "reg");
        assert_eq!(Feature::Base.to_string(), "Base Cost");
        assert_eq!(Fine::NiSetup.to_string(), "NI setup");
        assert_eq!(Endpoint::Source.to_string(), "Source");
    }
}
