//! Weighted cycle models (Appendix A of the paper).
//!
//! The body of the paper uses a unit-cost model (every instruction costs
//! 1). Appendix A notes that the `reg`/`mem`/`dev` classification "enables
//! the messaging overhead to be characterized in terms of cycle counts
//! using a simple weighted cost model", giving as an example a CM-5 model
//! where `reg` and `mem` instructions cost 1 cycle and `dev` instructions
//! cost 5.

use std::fmt;

use crate::axes::{Class, Feature};
use crate::vector::{CostVector, FeatureCost};

/// A per-class cycle weighting applied to instruction counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleModel {
    /// Cycles per register instruction.
    pub reg: u64,
    /// Cycles per memory load/store.
    pub mem: u64,
    /// Cycles per device (NI) load/store.
    pub dev: u64,
}

impl CycleModel {
    /// The unit-cost model used in the body of the paper (all weights 1):
    /// cycles equal instruction counts.
    pub const UNIT: CycleModel = CycleModel { reg: 1, mem: 1, dev: 1 };

    /// The example CM-5 model from Appendix A: `reg` and `mem` cost 1
    /// cycle, `dev` costs 5.
    pub const CM5: CycleModel = CycleModel { reg: 1, mem: 1, dev: 5 };

    /// A model for a hypothetical machine with an on-chip NI where device
    /// access is as cheap as a cache hit but memory has grown relatively
    /// more expensive (used by the "improved network interfaces"
    /// discussion in §5: lowering the base cost *raises* the relative
    /// weight of protocol overhead).
    pub const ONCHIP_NI: CycleModel = CycleModel { reg: 1, mem: 2, dev: 1 };

    /// Construct a custom model.
    pub const fn new(reg: u64, mem: u64, dev: u64) -> Self {
        CycleModel { reg, mem, dev }
    }

    /// Weight for one class.
    pub fn weight(&self, class: Class) -> u64 {
        match class {
            Class::Reg => self.reg,
            Class::Mem => self.mem,
            Class::Dev => self.dev,
        }
    }

    /// Cycles for a `(reg, mem, dev)` triple.
    pub fn cycles(&self, cost: FeatureCost) -> u64 {
        cost.reg * self.reg + cost.mem * self.mem + cost.dev * self.dev
    }

    /// Total cycles for a full cost vector.
    pub fn total_cycles(&self, vector: &CostVector) -> u64 {
        Feature::ALL
            .iter()
            .map(|f| self.cycles(vector.feature(*f)))
            .sum()
    }

    /// Cycles attributed to messaging-layer overhead (non-base features).
    pub fn overhead_cycles(&self, vector: &CostVector) -> u64 {
        Feature::ALL
            .iter()
            .filter(|f| f.is_overhead())
            .map(|f| self.cycles(vector.feature(*f)))
            .sum()
    }

    /// Overhead fraction under this weighting, in `[0, 1]`.
    pub fn overhead_fraction(&self, vector: &CostVector) -> f64 {
        let total = self.total_cycles(vector);
        if total == 0 {
            0.0
        } else {
            self.overhead_cycles(vector) as f64 / total as f64
        }
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::UNIT
    }
}

impl fmt::Display for CycleModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reg={} mem={} dev={}", self.reg, self.mem, self.dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::{Class, Feature, Fine};

    #[test]
    fn unit_model_equals_instruction_count() {
        let mut v = CostVector::new();
        v.record(Feature::Base, Fine::WriteNi, Class::Dev, 2);
        v.record(Feature::InOrder, Fine::RegOp, Class::Reg, 3);
        assert_eq!(CycleModel::UNIT.total_cycles(&v), v.total());
    }

    #[test]
    fn cm5_model_weights_dev_by_five() {
        let mut v = CostVector::new();
        v.record(Feature::Base, Fine::WriteNi, Class::Dev, 2);
        v.record(Feature::Base, Fine::MemLoad, Class::Mem, 1);
        v.record(Feature::Base, Fine::RegOp, Class::Reg, 4);
        assert_eq!(CycleModel::CM5.total_cycles(&v), 2 * 5 + 1 + 4);
    }

    #[test]
    fn overhead_fraction_shifts_with_weights() {
        let mut v = CostVector::new();
        // base: dev-heavy; overhead: reg-heavy
        v.record(Feature::Base, Fine::WriteNi, Class::Dev, 10);
        v.record(Feature::InOrder, Fine::RegOp, Class::Reg, 10);
        let unit = CycleModel::UNIT.overhead_fraction(&v);
        let cm5 = CycleModel::CM5.overhead_fraction(&v);
        assert!((unit - 0.5).abs() < 1e-12);
        // weighting dev up makes the (dev-heavy) base dominate
        assert!(cm5 < unit);
    }

    #[test]
    fn triple_cycles() {
        let c = FeatureCost::new(3, 2, 1);
        assert_eq!(CycleModel::new(1, 10, 100).cycles(c), 3 + 20 + 100);
        assert_eq!(CycleModel::CM5.weight(Class::Dev), 5);
    }
}
