//! Dense cost tensors: counts indexed by `(feature, class)` and by fine
//! category.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::axes::{Class, Feature, Fine};

/// A `(reg, mem, dev)` triple of instruction counts — one cell group of
/// the paper's Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FeatureCost {
    /// Register-based instructions.
    pub reg: u64,
    /// Loads/stores to ordinary memory.
    pub mem: u64,
    /// Loads/stores to memory-mapped devices.
    pub dev: u64,
}

impl FeatureCost {
    /// A zero triple.
    pub const ZERO: FeatureCost = FeatureCost { reg: 0, mem: 0, dev: 0 };

    /// Construct from explicit per-class counts.
    pub const fn new(reg: u64, mem: u64, dev: u64) -> Self {
        FeatureCost { reg, mem, dev }
    }

    /// Total instruction count (`reg + mem + dev`) — the unit-cost model
    /// used in the body of the paper.
    pub const fn total(&self) -> u64 {
        self.reg + self.mem + self.dev
    }

    /// Count for one class.
    pub fn class(&self, class: Class) -> u64 {
        match class {
            Class::Reg => self.reg,
            Class::Mem => self.mem,
            Class::Dev => self.dev,
        }
    }

    /// Mutable count for one class.
    pub fn class_mut(&mut self, class: Class) -> &mut u64 {
        match class {
            Class::Reg => &mut self.reg,
            Class::Mem => &mut self.mem,
            Class::Dev => &mut self.dev,
        }
    }

    /// Scale every class count by `k` (e.g. per-packet cost × packets).
    pub const fn scaled(&self, k: u64) -> FeatureCost {
        FeatureCost {
            reg: self.reg * k,
            mem: self.mem * k,
            dev: self.dev * k,
        }
    }
}

impl Add for FeatureCost {
    type Output = FeatureCost;
    fn add(self, rhs: FeatureCost) -> FeatureCost {
        FeatureCost {
            reg: self.reg + rhs.reg,
            mem: self.mem + rhs.mem,
            dev: self.dev + rhs.dev,
        }
    }
}

impl AddAssign for FeatureCost {
    fn add_assign(&mut self, rhs: FeatureCost) {
        self.reg += rhs.reg;
        self.mem += rhs.mem;
        self.dev += rhs.dev;
    }
}

impl Sub for FeatureCost {
    type Output = FeatureCost;
    fn sub(self, rhs: FeatureCost) -> FeatureCost {
        FeatureCost {
            reg: self.reg - rhs.reg,
            mem: self.mem - rhs.mem,
            dev: self.dev - rhs.dev,
        }
    }
}

impl fmt::Display for FeatureCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (reg {}, mem {}, dev {})",
            self.total(),
            self.reg,
            self.mem,
            self.dev
        )
    }
}

/// A full cost tensor for one node: counts by `(feature, class)` plus a
/// parallel fine-category histogram.
///
/// All of the paper's tables are projections of this structure:
/// Table 1 is the fine histogram, Table 2 the per-feature totals, Table 3
/// the `(feature, class)` matrix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostVector {
    by_feature: [FeatureCost; Feature::ALL.len()],
    by_fine: [u64; Fine::ALL.len()],
}

impl CostVector {
    /// An empty vector.
    pub fn new() -> Self {
        CostVector::default()
    }

    /// Record `count` instructions of fine category `fine` and cost class
    /// `class`, attributed to `feature`.
    pub fn record(&mut self, feature: Feature, fine: Fine, class: Class, count: u64) {
        *self.by_feature[feature.index()].class_mut(class) += count;
        self.by_fine[fine.index()] += count;
    }

    /// The `(reg, mem, dev)` triple attributed to `feature`.
    pub fn feature(&self, feature: Feature) -> FeatureCost {
        self.by_feature[feature.index()]
    }

    /// Total instructions attributed to `feature`.
    pub fn feature_total(&self, feature: Feature) -> u64 {
        self.by_feature[feature.index()].total()
    }

    /// Total instructions of `class` across all features.
    pub fn class_total(&self, class: Class) -> u64 {
        Feature::ALL
            .iter()
            .map(|f| self.by_feature[f.index()].class(class))
            .sum()
    }

    /// Total instructions of fine category `fine`.
    pub fn fine_total(&self, fine: Fine) -> u64 {
        self.by_fine[fine.index()]
    }

    /// Grand total instruction count.
    pub fn total(&self) -> u64 {
        Feature::ALL.iter().map(|f| self.feature_total(*f)).sum()
    }

    /// Total *overhead* instructions (everything not [`Feature::Base`]).
    pub fn overhead_total(&self) -> u64 {
        Feature::ALL
            .iter()
            .filter(|f| f.is_overhead())
            .map(|f| self.feature_total(*f))
            .sum()
    }

    /// Fraction of the total cost that is messaging-layer overhead, in
    /// `[0, 1]`. Returns 0 for an empty vector.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.overhead_total() as f64 / total as f64
        }
    }

    /// The summed `(reg, mem, dev)` triple across all features.
    pub fn class_triple(&self) -> FeatureCost {
        Feature::ALL
            .iter()
            .fold(FeatureCost::ZERO, |acc, f| acc + self.by_feature[f.index()])
    }

    /// Whether no instructions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0 && self.by_fine.iter().all(|&c| c == 0)
    }
}

impl Add for CostVector {
    type Output = CostVector;
    fn add(mut self, rhs: CostVector) -> CostVector {
        self += rhs;
        self
    }
}

impl AddAssign for CostVector {
    fn add_assign(&mut self, rhs: CostVector) {
        for f in Feature::ALL {
            self.by_feature[f.index()] += rhs.by_feature[f.index()];
        }
        for f in Fine::ALL {
            self.by_fine[f.index()] += rhs.by_fine[f.index()];
        }
    }
}

impl Sub for CostVector {
    type Output = CostVector;
    /// Cell-wise difference. Panics on underflow (debug builds), so only
    /// subtract an earlier snapshot of the *same* recorder from a later one.
    fn sub(mut self, rhs: CostVector) -> CostVector {
        for f in Feature::ALL {
            let cell = &mut self.by_feature[f.index()];
            *cell = *cell - rhs.by_feature[f.index()];
        }
        for f in Fine::ALL {
            self.by_fine[f.index()] -= rhs.by_fine[f.index()];
        }
        self
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} ({} base + {} overhead)",
            self.total(),
            self.feature_total(Feature::Base),
            self.overhead_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_cost_arithmetic() {
        let a = FeatureCost::new(1, 2, 3);
        let b = FeatureCost::new(10, 20, 30);
        assert_eq!((a + b).total(), 66);
        assert_eq!((b - a), FeatureCost::new(9, 18, 27));
        assert_eq!(a.scaled(4), FeatureCost::new(4, 8, 12));
        assert_eq!(a.class(Class::Dev), 3);
    }

    #[test]
    fn record_and_project() {
        let mut v = CostVector::new();
        v.record(Feature::Base, Fine::WriteNi, Class::Dev, 2);
        v.record(Feature::Base, Fine::ControlFlow, Class::Reg, 3);
        v.record(Feature::InOrder, Fine::RegOp, Class::Reg, 5);
        v.record(Feature::FaultTol, Fine::MemStore, Class::Mem, 4);

        assert_eq!(v.total(), 14);
        assert_eq!(v.feature_total(Feature::Base), 5);
        assert_eq!(v.overhead_total(), 9);
        assert_eq!(v.class_total(Class::Reg), 8);
        assert_eq!(v.class_total(Class::Mem), 4);
        assert_eq!(v.class_total(Class::Dev), 2);
        assert_eq!(v.fine_total(Fine::WriteNi), 2);
        assert_eq!(v.feature(Feature::FaultTol), FeatureCost::new(0, 4, 0));
        assert!((v.overhead_fraction() - 9.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn vectors_add() {
        let mut a = CostVector::new();
        a.record(Feature::Base, Fine::ReadNi, Class::Dev, 1);
        let mut b = CostVector::new();
        b.record(Feature::Base, Fine::ReadNi, Class::Dev, 2);
        let sum = a + b;
        assert_eq!(sum.fine_total(Fine::ReadNi), 3);
        assert_eq!(sum.class_triple(), FeatureCost::new(0, 0, 3));
    }

    #[test]
    fn vectors_subtract() {
        let mut later = CostVector::new();
        later.record(Feature::Base, Fine::ReadNi, Class::Dev, 5);
        later.record(Feature::FaultTol, Fine::RegOp, Class::Reg, 7);
        let mut earlier = CostVector::new();
        earlier.record(Feature::Base, Fine::ReadNi, Class::Dev, 2);
        let delta = later.clone() - earlier.clone();
        assert_eq!(delta.fine_total(Fine::ReadNi), 3);
        assert_eq!(delta.feature_total(Feature::FaultTol), 7);
        assert_eq!(earlier + delta, later);
    }

    #[test]
    fn empty_vector_behaves() {
        let v = CostVector::new();
        assert!(v.is_empty());
        assert_eq!(v.overhead_fraction(), 0.0);
        assert_eq!(v.total(), 0);
    }
}
