//! # timego-cost — instruction-count cost model
//!
//! This crate is the measurement substrate of the `timego` reproduction of
//! Karamcheti & Chien, *"Software Overhead in Messaging Layers: Where Does
//! the Time Go?"* (ASPLOS 1994).
//!
//! The paper characterizes messaging-layer cost as **dynamic instruction
//! counts**, classified along three orthogonal axes:
//!
//! * [`Feature`] — which user communication service the instruction pays
//!   for: base data movement, buffer management, in-order delivery, or
//!   fault tolerance (Table 2 of the paper).
//! * [`Class`] — the cost hierarchy of the instruction: register
//!   operation (`reg`), memory load/store (`mem`), or load/store to a
//!   memory-mapped device (`dev`) (Appendix A / Table 3).
//! * [`Fine`] — the fine-grained functional category: call/return, NI
//!   setup, write to NI, read from NI, check NI status, control flow, …
//!   (Table 1).
//!
//! Protocol code in the `timego-am` crate performs its work through costed
//! operations: every NI register access, every memory-buffer access, and
//! every annotated register operation records one entry into a
//! [`CostRecorder`]. Summing a recorder yields exactly the numbers the
//! paper reports, and the [`analytic`] module provides the closed-form
//! generalizations (`n` = packet payload words, `p` = packets per message)
//! behind Figure 8.
//!
//! ## Example
//!
//! ```
//! use timego_cost::{CostHandle, Feature, Fine, Class};
//!
//! let cpu = CostHandle::new();
//! cpu.with_feature(Feature::InOrder, |cpu| {
//!     cpu.reg(Fine::RegOp, 2); // e.g. increment + store a packet offset
//! });
//! let snapshot = cpu.snapshot();
//! assert_eq!(snapshot.feature_total(Feature::InOrder), 2);
//! assert_eq!(snapshot.class_total(Class::Reg), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axes;
mod recorder;
mod vector;

pub mod analytic;
pub mod cycles;
pub mod export;
pub mod latency;
pub mod table;

pub use axes::{Class, Endpoint, Feature, Fine};
pub use recorder::{CostHandle, CostRecorder};
pub use vector::{CostVector, FeatureCost};
