//! The per-node cost recorder and its shared handle.
//!
//! Every simulated node owns one recorder. Protocol code (in `timego-am`)
//! and the NI model (in `timego-ni`) share a [`CostHandle`] to it; NI
//! register accesses record `dev` instructions as a side effect of doing
//! the real work, memory-buffer accesses record `mem` instructions, and
//! register arithmetic is recorded through explicit annotations calibrated
//! against the paper's measured code paths.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::axes::{Class, Feature, Fine};
use crate::vector::CostVector;

/// Accumulates instruction counts for one node, with a current-feature
/// attribution context.
#[derive(Debug, Clone)]
pub struct CostRecorder {
    vector: CostVector,
    feature: Option<Feature>,
    enabled: bool,
}

impl Default for CostRecorder {
    fn default() -> Self {
        CostRecorder::new()
    }
}

impl CostRecorder {
    /// New, enabled recorder attributing to [`Feature::Base`] by default.
    pub fn new() -> Self {
        CostRecorder {
            vector: CostVector::new(),
            feature: None,
            enabled: true,
        }
    }

    /// The feature currently being attributed ([`Feature::Base`] unless a
    /// scope has been entered).
    pub fn current_feature(&self) -> Feature {
        self.feature.unwrap_or(Feature::Base)
    }

    /// Set the attribution feature, returning the previous setting so the
    /// caller can restore it (see [`CostHandle::with_feature`] for the
    /// scoped version).
    pub fn set_feature(&mut self, feature: Option<Feature>) -> Option<Feature> {
        std::mem::replace(&mut self.feature, feature)
    }

    /// Stop recording (costed operations become free). Useful for harness
    /// code that drives the protocols without wanting to measure itself.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Resume recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record `count` instructions of the given fine category and class
    /// under the current feature.
    pub fn record(&mut self, fine: Fine, class: Class, count: u64) {
        if self.enabled && count > 0 {
            self.vector.record(self.current_feature(), fine, class, count);
        }
    }

    /// The accumulated costs.
    pub fn vector(&self) -> &CostVector {
        &self.vector
    }

    /// Reset all counts (feature context and enablement are preserved).
    pub fn reset(&mut self) {
        self.vector = CostVector::new();
    }

    /// Take the accumulated costs, leaving the recorder empty.
    pub fn take(&mut self) -> CostVector {
        std::mem::take(&mut self.vector)
    }
}

/// A cheaply clonable, shared handle to a [`CostRecorder`].
///
/// The simulator is single-threaded; the handle is `Rc<RefCell<…>>` based
/// and therefore intentionally not `Send`.
///
/// # Example
///
/// ```
/// use timego_cost::{CostHandle, Feature, Fine};
///
/// let cpu = CostHandle::new();
/// cpu.call(3); // procedure-call overhead, 3 reg instructions
/// cpu.with_feature(Feature::FaultTol, |cpu| cpu.mem_store(2));
/// assert_eq!(cpu.snapshot().total(), 5);
/// ```
#[derive(Clone, Default)]
pub struct CostHandle {
    inner: Rc<RefCell<CostRecorder>>,
}

impl CostHandle {
    /// New handle to a fresh recorder.
    pub fn new() -> Self {
        CostHandle {
            inner: Rc::new(RefCell::new(CostRecorder::new())),
        }
    }

    /// Record `count` register instructions of category `fine`.
    pub fn reg(&self, fine: Fine, count: u64) {
        self.inner.borrow_mut().record(fine, Class::Reg, count);
    }

    /// Record procedure call/return overhead (`count` reg instructions).
    pub fn call(&self, count: u64) {
        self.reg(Fine::CallReturn, count);
    }

    /// Record control-flow instructions (branches, loop tests).
    pub fn ctrl(&self, count: u64) {
        self.reg(Fine::ControlFlow, count);
    }

    /// Record generic register arithmetic.
    pub fn reg_op(&self, count: u64) {
        self.reg(Fine::RegOp, count);
    }

    /// Record handler-dispatch instructions.
    pub fn handler(&self, count: u64) {
        self.reg(Fine::Handler, count);
    }

    /// Record `count` loads from ordinary memory.
    pub fn mem_load(&self, count: u64) {
        self.inner.borrow_mut().record(Fine::MemLoad, Class::Mem, count);
    }

    /// Record `count` stores to ordinary memory.
    pub fn mem_store(&self, count: u64) {
        self.inner.borrow_mut().record(Fine::MemStore, Class::Mem, count);
    }

    /// Record `count` device (NI) instructions of category `fine`.
    /// Normally called by the NI model, not by protocol code.
    pub fn dev(&self, fine: Fine, count: u64) {
        self.inner.borrow_mut().record(fine, Class::Dev, count);
    }

    /// Record with full control over all three axes.
    pub fn record(&self, fine: Fine, class: Class, count: u64) {
        self.inner.borrow_mut().record(fine, class, count);
    }

    /// Run `body` with costs attributed to `feature`, restoring the
    /// previous attribution afterwards (scopes nest).
    pub fn with_feature<T>(&self, feature: Feature, body: impl FnOnce(&CostHandle) -> T) -> T {
        let prev = self.inner.borrow_mut().set_feature(Some(feature));
        let out = body(self);
        self.inner.borrow_mut().set_feature(prev);
        out
    }

    /// The feature currently being attributed.
    pub fn current_feature(&self) -> Feature {
        self.inner.borrow().current_feature()
    }

    /// Run `body` with recording suppressed (for harness-internal work).
    pub fn without_recording<T>(&self, body: impl FnOnce(&CostHandle) -> T) -> T {
        let was = self.inner.borrow().is_enabled();
        self.inner.borrow_mut().disable();
        let out = body(self);
        if was {
            self.inner.borrow_mut().enable();
        }
        out
    }

    /// A copy of the accumulated costs.
    pub fn snapshot(&self) -> CostVector {
        self.inner.borrow().vector().clone()
    }

    /// Reset accumulated costs to zero.
    pub fn reset(&self) {
        self.inner.borrow_mut().reset();
    }

    /// Take the accumulated costs, leaving the recorder empty.
    pub fn take(&self) -> CostVector {
        self.inner.borrow_mut().take()
    }
}

impl fmt::Debug for CostHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CostHandle")
            .field("recorder", &*self.inner.borrow())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axes::Feature;

    #[test]
    fn records_under_current_feature() {
        let h = CostHandle::new();
        h.reg_op(2); // Base by default
        h.with_feature(Feature::InOrder, |h| {
            h.reg_op(3);
            h.with_feature(Feature::FaultTol, |h| h.mem_store(1));
            h.reg_op(1); // back to InOrder after nested scope
        });
        let v = h.snapshot();
        assert_eq!(v.feature_total(Feature::Base), 2);
        assert_eq!(v.feature_total(Feature::InOrder), 4);
        assert_eq!(v.feature_total(Feature::FaultTol), 1);
    }

    #[test]
    fn disable_suppresses_recording() {
        let h = CostHandle::new();
        h.without_recording(|h| h.reg_op(100));
        h.reg_op(1);
        assert_eq!(h.snapshot().total(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = CostHandle::new();
        let b = a.clone();
        a.mem_load(2);
        b.mem_store(3);
        assert_eq!(a.snapshot().total(), 5);
        assert_eq!(b.snapshot().total(), 5);
    }

    #[test]
    fn take_empties_recorder() {
        let h = CostHandle::new();
        h.reg_op(7);
        let v = h.take();
        assert_eq!(v.total(), 7);
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn zero_count_records_nothing() {
        let h = CostHandle::new();
        h.reg_op(0);
        assert!(h.snapshot().is_empty());
    }
}
