//! Closed-form cost models (the generalized formulas of Figure 8).
//!
//! The paper parameterizes its measured CMAM costs by the hardware packet
//! payload size `n` (words per packet) and the number of packets per
//! message `p`. This module captures those formulas, reverse-engineered
//! from Tables 1–3 so that at `n = 4` they reproduce the published counts
//! *exactly* (see `DESIGN.md §3` for the derivation). The simulated
//! protocols in `timego-am` are cross-validated against these closed forms
//! by the integration test suite.
//!
//! Conventions:
//!
//! * `n` must be even (the SPARC moves payload with double-word
//!   loads/stores, so `n/2` memory/device operations move `n` words);
//! * a hardware packet carries `n` payload words plus one header word
//!   (the CM-5's 5-word packet at `n = 4`);
//! * for the indefinite-sequence protocol, the paper assumes half the
//!   packets arrive out of order and one acknowledgement per packet;
//!   both are adjustable here ([`IndefiniteOpts`]).

use std::error::Error;
use std::fmt;

use crate::axes::{Endpoint, Feature, Fine};
use crate::vector::FeatureCost;

/// Message shape: packet payload size and packet count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgShape {
    n: u64,
    p: u64,
}

/// Error constructing a [`MsgShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// Packet payload size was zero or odd (payload moves in double
    /// words).
    BadPacketWords(u64),
    /// Message had zero packets / zero words.
    EmptyMessage,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::BadPacketWords(n) => {
                write!(f, "packet payload must be even and nonzero, got {n}")
            }
            ShapeError::EmptyMessage => write!(f, "message must contain at least one packet"),
        }
    }
}

impl Error for ShapeError {}

impl MsgShape {
    /// Shape from explicit packet payload size `n` (words, even, ≥ 2) and
    /// packet count `p` (≥ 1).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `n` is zero or odd, or `p` is zero.
    pub fn new(n: u64, p: u64) -> Result<Self, ShapeError> {
        if n == 0 || !n.is_multiple_of(2) {
            return Err(ShapeError::BadPacketWords(n));
        }
        if p == 0 {
            return Err(ShapeError::EmptyMessage);
        }
        Ok(MsgShape { n, p })
    }

    /// Shape for a `message_words`-word message split into `n`-word
    /// packets (`p = ⌈message_words / n⌉`).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `n` is zero or odd, or the message is
    /// empty.
    pub fn for_message(message_words: u64, n: u64) -> Result<Self, ShapeError> {
        if n == 0 || !n.is_multiple_of(2) {
            return Err(ShapeError::BadPacketWords(n));
        }
        if message_words == 0 {
            return Err(ShapeError::EmptyMessage);
        }
        Ok(MsgShape {
            n,
            p: message_words.div_ceil(n),
        })
    }

    /// The paper's canonical shape: 4 payload words per packet.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::EmptyMessage`] if `message_words` is zero.
    pub fn paper(message_words: u64) -> Result<Self, ShapeError> {
        MsgShape::for_message(message_words, 4)
    }

    /// Payload words per packet (`n`).
    pub fn packet_words(&self) -> u64 {
        self.n
    }

    /// Packets per message (`p`).
    pub fn packets(&self) -> u64 {
        self.p
    }

    /// Total payload capacity of the message (`n · p` words).
    pub fn message_words(&self) -> u64 {
        self.n * self.p
    }

    /// Double-word operations needed to move one packet payload (`n/2`).
    pub fn dwords(&self) -> u64 {
        self.n / 2
    }
}

/// Costs of one protocol execution, split by endpoint and feature — the
/// shape of one block of Table 2/3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCost {
    cells: [[FeatureCost; Feature::ALL.len()]; Endpoint::ALL.len()],
}

impl ProtocolCost {
    /// An all-zero cost table.
    pub fn new() -> Self {
        ProtocolCost::default()
    }

    /// The `(reg, mem, dev)` triple for one cell.
    pub fn get(&self, endpoint: Endpoint, feature: Feature) -> FeatureCost {
        self.cells[endpoint.index()][feature.index()]
    }

    /// Overwrite one cell.
    pub fn set(&mut self, endpoint: Endpoint, feature: Feature, cost: FeatureCost) {
        self.cells[endpoint.index()][feature.index()] = cost;
    }

    /// Add into one cell.
    pub fn add(&mut self, endpoint: Endpoint, feature: Feature, cost: FeatureCost) {
        self.cells[endpoint.index()][feature.index()] += cost;
    }

    /// Total instructions at one endpoint (a Table 2 column total).
    pub fn endpoint_total(&self, endpoint: Endpoint) -> u64 {
        Feature::ALL
            .iter()
            .map(|f| self.get(endpoint, *f).total())
            .sum()
    }

    /// Total instructions for one feature across both endpoints (a
    /// Table 2 row total).
    pub fn feature_total(&self, feature: Feature) -> u64 {
        Endpoint::ALL
            .iter()
            .map(|e| self.get(*e, feature).total())
            .sum()
    }

    /// Grand total (the Table 2 bottom-right cell).
    pub fn total(&self) -> u64 {
        Endpoint::ALL.iter().map(|e| self.endpoint_total(*e)).sum()
    }

    /// Total of the non-base features.
    pub fn overhead_total(&self) -> u64 {
        Feature::ALL
            .iter()
            .filter(|f| f.is_overhead())
            .map(|f| self.feature_total(*f))
            .sum()
    }

    /// Messaging-layer overhead as a fraction of the total, in `[0, 1]`.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.overhead_total() as f64 / total as f64
        }
    }

    /// Per-endpoint `(reg, mem, dev)` class totals (a Table 3 column
    /// total).
    pub fn endpoint_classes(&self, endpoint: Endpoint) -> FeatureCost {
        Feature::ALL
            .iter()
            .fold(FeatureCost::ZERO, |acc, f| acc + self.get(endpoint, *f))
    }
}

/// Options for the indefinite-sequence (stream) protocol model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndefiniteOpts {
    /// Number of packets arriving out of transmission order. The paper
    /// assumes `p / 2`.
    pub ooo_packets: u64,
    /// Acknowledge every `ack_period` packets (`1` = the paper's
    /// per-packet acknowledgement; larger values are the paper's "group
    /// acknowledgements" variant).
    pub ack_period: u64,
}

impl IndefiniteOpts {
    /// The paper's assumptions for a `p`-packet stream: half the packets
    /// out of order, one acknowledgement per packet.
    pub fn paper(shape: MsgShape) -> Self {
        IndefiniteOpts {
            ooo_packets: shape.packets() / 2,
            ack_period: 1,
        }
    }

    /// Group acknowledgements every `period` packets, other assumptions
    /// unchanged.
    pub fn with_ack_period(shape: MsgShape, period: u64) -> Self {
        IndefiniteOpts {
            ooo_packets: shape.packets() / 2,
            ack_period: period.max(1),
        }
    }
}

// ---------------------------------------------------------------------
// Single-packet delivery (Table 1)
// ---------------------------------------------------------------------

/// Table 1 rows for one endpoint: `(fine category, instruction count)`.
///
/// Source: call/return 3, NI setup 5, write to NI 2, check status 7,
/// control flow 3 (total 20). Destination: call/return 10, read from NI
/// 3, check status 12, control flow 2 (total 27).
pub fn single_packet_fine(endpoint: Endpoint) -> Vec<(Fine, u64)> {
    match endpoint {
        Endpoint::Source => vec![
            (Fine::CallReturn, 3),
            (Fine::NiSetup, 5),
            (Fine::WriteNi, 2),
            (Fine::CheckStatus, 7),
            (Fine::ControlFlow, 3),
        ],
        Endpoint::Destination => vec![
            (Fine::CallReturn, 10),
            (Fine::ReadNi, 3),
            (Fine::CheckStatus, 12),
            (Fine::ControlFlow, 2),
        ],
    }
}

/// The single-packet delivery cost table (base feature only): 20
/// instructions at the source, 27 at the destination.
pub fn single_packet() -> ProtocolCost {
    let mut c = ProtocolCost::new();
    // Class split: source = 15 reg + 5 dev (1 dev NI-setup store, 2 dev
    // payload stores, 2 dev status loads); destination = 22 reg + 5 dev
    // (1 dev receive poll, 1 dev latch/tag load, 1 dev header load,
    // 2 dev payload loads) — the same shape as the finite-sequence
    // protocol's final-acknowledgement receive in Table 3.
    c.set(Endpoint::Source, Feature::Base, FeatureCost::new(15, 0, 5));
    c.set(
        Endpoint::Destination,
        Feature::Base,
        FeatureCost::new(22, 0, 5),
    );
    c
}

// ---------------------------------------------------------------------
// Finite-sequence, multi-packet delivery (CMAM)
// ---------------------------------------------------------------------

/// CMAM finite-sequence multi-packet delivery (the `CMAM_xfer` protocol
/// of §3.2): preallocation handshake, offset-carrying packets, one final
/// acknowledgement.
///
/// At `n = 4` this reproduces Table 2/3 exactly: e.g. for a 1024-word
/// message (`p = 256`) the total is 11 737 instructions, 6 221 at the
/// source and 5 516 at the destination.
pub fn cmam_finite(shape: MsgShape) -> ProtocolCost {
    let p = shape.packets();
    let d = shape.dwords();
    let mut c = ProtocolCost::new();

    // Base: per packet the source spends 15 reg (loop + send inline), d
    // mem loads from the user buffer and d + 3 dev ops (1 NI-setup store,
    // d payload stores, 2 status loads); plus a 2 reg + 1 mem call
    // prologue. The destination mirrors it with 12 reg, d mem stores into
    // the segment and d + 2 dev ops, plus an 18-instruction
    // poll-entry/handler epilogue (14 reg + 3 mem + 1 dev).
    c.set(
        Endpoint::Source,
        Feature::Base,
        FeatureCost::new(15 * p + 2, d * p + 1, (d + 3) * p),
    );
    c.set(
        Endpoint::Destination,
        Feature::Base,
        FeatureCost::new(12 * p + 14, d * p + 3, (d + 2) * p + 1),
    );

    // Buffer management: the request/reply handshake (steps 1–3) plus
    // segment association and disassociation (steps 2 and 5). Constant in
    // message size — Table 2 shows the same 47/101 at 16 and 1024 words.
    c.set(
        Endpoint::Source,
        Feature::BufferMgmt,
        FeatureCost::new(36, 1, 10),
    );
    c.set(
        Endpoint::Destination,
        Feature::BufferMgmt,
        FeatureCost::new(79, 12, 10),
    );

    // In-order delivery: each packet carries an offset into the target
    // buffer. Source: increment + store the offset (2 reg/packet).
    // Destination: extract the offset and decrement the expected-packet
    // count (3 reg/packet + 1).
    c.set(Endpoint::Source, Feature::InOrder, FeatureCost::new(2 * p, 0, 0));
    c.set(
        Endpoint::Destination,
        Feature::InOrder,
        FeatureCost::new(3 * p + 1, 0, 0),
    );

    // Fault tolerance: one completion acknowledgement. Receiving it costs
    // the source 27 (22 reg + 5 dev); sending it costs the destination 20
    // (14 reg + 1 mem + 5 dev).
    c.set(Endpoint::Source, Feature::FaultTol, FeatureCost::new(22, 0, 5));
    c.set(
        Endpoint::Destination,
        Feature::FaultTol,
        FeatureCost::new(14, 1, 5),
    );

    c
}

// ---------------------------------------------------------------------
// Indefinite-sequence, multi-packet delivery (CMAM)
// ---------------------------------------------------------------------

/// CMAM indefinite-sequence multi-packet delivery (the stream/socket
/// protocol of §3.2): per-packet sequence numbers, receiver buffering of
/// out-of-order packets, source buffering and acknowledgements.
///
/// With [`IndefiniteOpts::paper`] assumptions at `n = 4` this reproduces
/// Table 2/3 exactly: 481 instructions for 16 words, 29 965 for 1024.
pub fn cmam_indefinite(shape: MsgShape, opts: IndefiniteOpts) -> ProtocolCost {
    let p = shape.packets();
    let d = shape.dwords();
    let ooo = opts.ooo_packets.min(p);
    let inorder = p - ooo;
    let acks = p.div_ceil(opts.ack_period.max(1));
    let mut c = ProtocolCost::new();

    // Base: register-to-register user view — per packet the source spends
    // 14 reg, 1 mem (channel-state load) and d + 3 dev; the destination
    // 10 reg and d + 2 dev per packet plus a 13-instruction poll entry.
    c.set(
        Endpoint::Source,
        Feature::Base,
        FeatureCost::new(14 * p, p, (d + 3) * p),
    );
    c.set(
        Endpoint::Destination,
        Feature::Base,
        FeatureCost::new(10 * p + 12, 0, (d + 2) * p + 1),
    );

    // In-order delivery. Source: generate and attach a sequence number
    // (2 reg + 3 mem per packet — the channel sequence state lives in
    // memory). Destination: an in-sequence packet costs a 6-reg sequence
    // check; an out-of-order packet is buffered and later drained
    // (29 reg + (2n + 15) mem covering the word-granularity copy in, the
    // sorted insert, the reload and the unlink).
    c.set(
        Endpoint::Source,
        Feature::InOrder,
        FeatureCost::new(2 * p, 3 * p, 0),
    );
    c.set(
        Endpoint::Destination,
        Feature::InOrder,
        FeatureCost::new(6 * inorder + 29 * ooo, (2 * shape.packet_words() + 15) * ooo, 0),
    );

    // Fault tolerance. Source: buffer every outgoing packet pending
    // acknowledgement (4 reg + d mem per packet) and process each
    // acknowledgement (18 reg + 5 dev). Destination: send each
    // acknowledgement (a 20-instruction single-packet send).
    c.set(
        Endpoint::Source,
        Feature::FaultTol,
        FeatureCost::new(4 * p + 18 * acks, d * p, 5 * acks),
    );
    c.set(
        Endpoint::Destination,
        Feature::FaultTol,
        FeatureCost::new(14 * acks, acks, 5 * acks),
    );

    c
}

// ---------------------------------------------------------------------
// High-level-network (Compressionless Routing) variants (§4)
// ---------------------------------------------------------------------

/// Finite-sequence delivery on the high-level (CR) network: the hardware
/// provides ordering, flow control and reliability, so only base data
/// movement plus a trivial buffer-table insertion remain (Figure 5).
pub fn hl_finite(shape: MsgShape) -> ProtocolCost {
    let p = shape.packets();
    let d = shape.dwords();
    let mut c = ProtocolCost::new();

    // Source base is identical to the CMAM implementation (the NI is the
    // same); the destination is slightly cheaper — fewer branches in the
    // reception code and a specialized last-packet handler (§4.1).
    c.set(
        Endpoint::Source,
        Feature::Base,
        FeatureCost::new(15 * p + 2, d * p + 1, (d + 3) * p),
    );
    c.set(
        Endpoint::Destination,
        Feature::Base,
        FeatureCost::new(12 * p + 4, d * p + 1, (d + 2) * p + 1),
    );

    // Buffer management shrinks to storing the allocated buffer pointer
    // in a table keyed by the incoming message (6 reg + 2 mem).
    c.set(
        Endpoint::Destination,
        Feature::BufferMgmt,
        FeatureCost::new(6, 2, 0),
    );

    c
}

/// Indefinite-sequence delivery on the high-level (CR) network:
/// implemented "essentially for free on top of multiple single-packet
/// transmissions" (Figure 7) — exactly the CMAM base cost, nothing else.
pub fn hl_indefinite(shape: MsgShape) -> ProtocolCost {
    let p = shape.packets();
    let d = shape.dwords();
    let mut c = ProtocolCost::new();
    c.set(
        Endpoint::Source,
        Feature::Base,
        FeatureCost::new(14 * p, p, (d + 3) * p),
    );
    c.set(
        Endpoint::Destination,
        Feature::Base,
        FeatureCost::new(10 * p + 12, 0, (d + 2) * p + 1),
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(words: u64) -> MsgShape {
        MsgShape::paper(words).unwrap()
    }

    #[test]
    fn shape_validation() {
        assert!(MsgShape::new(3, 4).is_err());
        assert!(MsgShape::new(0, 4).is_err());
        assert!(MsgShape::new(4, 0).is_err());
        assert!(MsgShape::for_message(0, 4).is_err());
        let s = MsgShape::for_message(17, 4).unwrap();
        assert_eq!(s.packets(), 5); // ceil(17/4)
        assert_eq!(s.message_words(), 20);
    }

    #[test]
    fn single_packet_matches_table1() {
        let c = single_packet();
        assert_eq!(c.endpoint_total(Endpoint::Source), 20);
        assert_eq!(c.endpoint_total(Endpoint::Destination), 27);
        assert_eq!(c.total(), 47);
        let src: u64 = single_packet_fine(Endpoint::Source).iter().map(|(_, n)| n).sum();
        let dst: u64 = single_packet_fine(Endpoint::Destination)
            .iter()
            .map(|(_, n)| n)
            .sum();
        assert_eq!(src, 20);
        assert_eq!(dst, 27);
    }

    #[test]
    fn cmam_finite_16_words_matches_table3() {
        // Reconstructed finite-sequence 16-word block (see DESIGN.md §3).
        let c = cmam_finite(shape(16));
        assert_eq!(c.get(Endpoint::Source, Feature::Base), FeatureCost::new(62, 9, 20));
        assert_eq!(
            c.get(Endpoint::Destination, Feature::Base),
            FeatureCost::new(62, 11, 17)
        );
        assert_eq!(
            c.get(Endpoint::Source, Feature::BufferMgmt),
            FeatureCost::new(36, 1, 10)
        );
        assert_eq!(
            c.get(Endpoint::Destination, Feature::BufferMgmt),
            FeatureCost::new(79, 12, 10)
        );
        assert_eq!(c.get(Endpoint::Source, Feature::InOrder).total(), 8);
        assert_eq!(c.get(Endpoint::Destination, Feature::InOrder).total(), 13);
        assert_eq!(c.get(Endpoint::Source, Feature::FaultTol).total(), 27);
        assert_eq!(c.get(Endpoint::Destination, Feature::FaultTol).total(), 20);
        // Table 3 printed column totals.
        assert_eq!(c.endpoint_classes(Endpoint::Source), FeatureCost::new(128, 10, 35));
        assert_eq!(
            c.endpoint_classes(Endpoint::Destination),
            FeatureCost::new(168, 24, 32)
        );
        assert_eq!(c.endpoint_total(Endpoint::Source), 173);
        assert_eq!(c.endpoint_total(Endpoint::Destination), 224);
        assert_eq!(c.total(), 397);
    }

    #[test]
    fn cmam_finite_1024_words_matches_table2_and_3() {
        let c = cmam_finite(shape(1024));
        assert_eq!(c.get(Endpoint::Source, Feature::Base).total(), 5635);
        assert_eq!(c.get(Endpoint::Destination, Feature::Base).total(), 4626);
        assert_eq!(c.feature_total(Feature::Base), 10261);
        assert_eq!(c.feature_total(Feature::BufferMgmt), 148);
        assert_eq!(c.get(Endpoint::Source, Feature::InOrder).total(), 512);
        assert_eq!(c.get(Endpoint::Destination, Feature::InOrder).total(), 769);
        assert_eq!(c.feature_total(Feature::FaultTol), 47);
        assert_eq!(c.endpoint_total(Endpoint::Source), 6221);
        assert_eq!(c.endpoint_total(Endpoint::Destination), 5516);
        assert_eq!(c.total(), 11737);
        // Table 3 class detail.
        assert_eq!(
            c.get(Endpoint::Source, Feature::Base),
            FeatureCost::new(3842, 513, 1280)
        );
        assert_eq!(
            c.get(Endpoint::Destination, Feature::Base),
            FeatureCost::new(3086, 515, 1025)
        );
        assert_eq!(c.endpoint_classes(Endpoint::Source), FeatureCost::new(4412, 514, 1295));
        assert_eq!(
            c.endpoint_classes(Endpoint::Destination),
            FeatureCost::new(3948, 528, 1040)
        );
    }

    #[test]
    fn cmam_indefinite_16_words_matches_table2() {
        let s = shape(16);
        let c = cmam_indefinite(s, IndefiniteOpts::paper(s));
        assert_eq!(c.get(Endpoint::Source, Feature::Base).total(), 80);
        assert_eq!(c.get(Endpoint::Destination, Feature::Base).total(), 69);
        assert_eq!(c.get(Endpoint::Source, Feature::InOrder).total(), 20);
        assert_eq!(c.get(Endpoint::Destination, Feature::InOrder).total(), 116);
        assert_eq!(c.get(Endpoint::Source, Feature::FaultTol).total(), 116);
        assert_eq!(c.get(Endpoint::Destination, Feature::FaultTol).total(), 80);
        assert_eq!(c.endpoint_total(Endpoint::Source), 216);
        assert_eq!(c.endpoint_total(Endpoint::Destination), 265);
        assert_eq!(c.total(), 481);
    }

    #[test]
    fn cmam_indefinite_1024_words_matches_table2_and_3() {
        let s = shape(1024);
        let c = cmam_indefinite(s, IndefiniteOpts::paper(s));
        assert_eq!(c.get(Endpoint::Source, Feature::Base).total(), 5120);
        assert_eq!(c.get(Endpoint::Destination, Feature::Base).total(), 3597);
        assert_eq!(c.get(Endpoint::Source, Feature::InOrder).total(), 1280);
        assert_eq!(c.get(Endpoint::Destination, Feature::InOrder).total(), 7424);
        assert_eq!(c.get(Endpoint::Source, Feature::FaultTol).total(), 7424);
        assert_eq!(c.get(Endpoint::Destination, Feature::FaultTol).total(), 5120);
        assert_eq!(c.endpoint_total(Endpoint::Source), 13824);
        assert_eq!(c.endpoint_total(Endpoint::Destination), 16141);
        assert_eq!(c.total(), 29965);
        // Table 3 class detail.
        assert_eq!(
            c.get(Endpoint::Source, Feature::Base),
            FeatureCost::new(3584, 256, 1280)
        );
        assert_eq!(
            c.get(Endpoint::Destination, Feature::Base),
            FeatureCost::new(2572, 0, 1025)
        );
        assert_eq!(
            c.get(Endpoint::Source, Feature::InOrder),
            FeatureCost::new(512, 768, 0)
        );
        assert_eq!(
            c.get(Endpoint::Destination, Feature::InOrder),
            FeatureCost::new(4480, 2944, 0)
        );
        assert_eq!(
            c.get(Endpoint::Source, Feature::FaultTol),
            FeatureCost::new(5632, 512, 1280)
        );
        assert_eq!(
            c.get(Endpoint::Destination, Feature::FaultTol),
            FeatureCost::new(3584, 256, 1280)
        );
    }

    #[test]
    fn indefinite_overhead_fraction_is_seventy_percent() {
        // §3.2: "in-order delivery and fault-tolerance functionality
        // accounts for ~70% of the end-to-end costs, and this fraction is
        // independent of the total volume of data transmitted."
        for words in [16, 64, 256, 1024, 4096] {
            let s = shape(words);
            let c = cmam_indefinite(s, IndefiniteOpts::paper(s));
            let frac = c.overhead_fraction();
            assert!((0.65..0.75).contains(&frac), "words={words} frac={frac}");
        }
    }

    #[test]
    fn group_acks_keep_overhead_significant() {
        // §3.2: "the overhead remains significant (~40–50%) even if group
        // acknowledgements are employed."
        let s = shape(1024);
        let c = cmam_indefinite(s, IndefiniteOpts::with_ack_period(s, 16));
        let frac = c.overhead_fraction();
        assert!(frac > 0.40, "group-ack overhead fraction {frac}");
        assert!(frac < c
            .overhead_fraction()
            .max(cmam_indefinite(s, IndefiniteOpts::paper(s)).overhead_fraction()));
    }

    #[test]
    fn hl_indefinite_matches_figure6() {
        // Figure 6 right: the HL bars equal the CMAM base costs exactly.
        for words in [16, 1024] {
            let s = shape(words);
            let hl = hl_indefinite(s);
            let cmam = cmam_indefinite(s, IndefiniteOpts::paper(s));
            assert_eq!(
                hl.get(Endpoint::Source, Feature::Base),
                cmam.get(Endpoint::Source, Feature::Base)
            );
            assert_eq!(
                hl.get(Endpoint::Destination, Feature::Base),
                cmam.get(Endpoint::Destination, Feature::Base)
            );
            assert_eq!(hl.overhead_total(), 0);
        }
        assert_eq!(hl_indefinite(shape(16)).total(), 149);
        assert_eq!(hl_indefinite(shape(1024)).total(), 8717);
    }

    #[test]
    fn hl_finite_is_base_cost_with_trivial_buffer_mgmt() {
        for words in [16, 1024] {
            let s = shape(words);
            let hl = hl_finite(s);
            let cmam = cmam_finite(s);
            // Source side identical; destination slightly cheaper (§4.1).
            assert_eq!(
                hl.get(Endpoint::Source, Feature::Base),
                cmam.get(Endpoint::Source, Feature::Base)
            );
            assert!(
                hl.endpoint_total(Endpoint::Destination)
                    < cmam.get(Endpoint::Destination, Feature::Base).total() + 1
            );
            assert_eq!(hl.feature_total(Feature::InOrder), 0);
            assert_eq!(hl.feature_total(Feature::FaultTol), 0);
            assert_eq!(hl.feature_total(Feature::BufferMgmt), 8);
        }
    }

    #[test]
    fn hl_reduces_indefinite_cost_by_seventy_percent() {
        // §4.1: "the higher-level network features reduce the software
        // costs in the messaging layer by ~70%."
        for words in [16, 1024] {
            let s = shape(words);
            let cmam = cmam_indefinite(s, IndefiniteOpts::paper(s)).total() as f64;
            let hl = hl_indefinite(s).total() as f64;
            let reduction = 1.0 - hl / cmam;
            assert!((0.65..0.75).contains(&reduction), "reduction {reduction}");
        }
    }

    #[test]
    fn finite_overhead_stays_9_to_13_percent_across_packet_sizes() {
        // Figure 8 right, finite-sequence curve for a 1024-word message.
        for n in [4u64, 8, 16, 32, 64, 128] {
            let s = MsgShape::for_message(1024, n).unwrap();
            let frac = cmam_finite(s).overhead_fraction();
            assert!((0.08..0.14).contains(&frac), "n={n} frac={frac}");
        }
    }

    #[test]
    fn indefinite_overhead_remains_significant_across_packet_sizes() {
        // Figure 8 right, indefinite-sequence curve: overhead remains
        // significant over the whole 4–128-word packet range.
        let mut prev = f64::INFINITY;
        for n in [4u64, 8, 16, 32, 64, 128] {
            let s = MsgShape::for_message(1024, n).unwrap();
            let frac = cmam_indefinite(s, IndefiniteOpts::paper(s)).overhead_fraction();
            assert!(frac > 0.5, "n={n} frac={frac}");
            assert!(frac <= prev, "overhead fraction should fall monotonically");
            prev = frac;
        }
    }

    #[test]
    fn protocol_cost_projections_are_consistent() {
        let s = shape(64);
        let c = cmam_finite(s);
        let by_feature: u64 = Feature::ALL.iter().map(|f| c.feature_total(*f)).sum();
        let by_endpoint: u64 = Endpoint::ALL.iter().map(|e| c.endpoint_total(*e)).sum();
        assert_eq!(by_feature, c.total());
        assert_eq!(by_endpoint, c.total());
        assert_eq!(c.overhead_total() + c.feature_total(Feature::Base), c.total());
    }
}
