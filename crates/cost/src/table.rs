//! Plain-text rendering of the paper's tables and bar charts.
//!
//! The bench harness uses these helpers so that `cargo run -p timego-bench
//! --bin table2` prints blocks in the same layout as the paper.

use crate::analytic::ProtocolCost;
use crate::axes::{Class, Endpoint, Feature, Fine};

fn hline(widths: &[usize]) -> String {
    let total: usize = widths.iter().sum::<usize>() + 3 * (widths.len() - 1);
    "-".repeat(total)
}

fn row_left_first(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .enumerate()
        .map(|(i, (c, w))| {
            if i == 0 {
                format!("{c:<w$}", w = *w)
            } else {
                format!("{c:>w$}", w = *w)
            }
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Render a Table 1-style fine-category breakdown for both endpoints.
///
/// Categories appearing at neither endpoint are omitted; a category
/// present at only one endpoint shows `-` at the other, as in the paper.
pub fn render_fine_table(title: &str, source: &[(Fine, u64)], dest: &[(Fine, u64)]) -> String {
    let mut categories: Vec<Fine> = Vec::new();
    for f in Fine::ALL {
        if source.iter().any(|(s, _)| *s == f) || dest.iter().any(|(d, _)| *d == f) {
            categories.push(f);
        }
    }
    let lookup = |rows: &[(Fine, u64)], f: Fine| rows.iter().find(|(g, _)| *g == f).map(|(_, n)| *n);

    let widths = [17usize, 8, 12];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&row_left_first(
        &[
            "Description".to_string(),
            "Source".to_string(),
            "Destination".to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out.push_str(&hline(&widths));
    out.push('\n');
    let fmt_cell = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |n| n.to_string());
    let mut src_total = 0;
    let mut dst_total = 0;
    for f in categories {
        let s = lookup(source, f);
        let d = lookup(dest, f);
        src_total += s.unwrap_or(0);
        dst_total += d.unwrap_or(0);
        out.push_str(&row_left_first(
            &[f.label().to_string(), fmt_cell(s), fmt_cell(d)],
            &widths,
        ));
        out.push('\n');
    }
    out.push_str(&hline(&widths));
    out.push('\n');
    out.push_str(&row_left_first(
        &["Total".to_string(), src_total.to_string(), dst_total.to_string()],
        &widths,
    ));
    out.push('\n');
    out
}

/// Render a Table 2-style block: features × (source, destination, total)
/// in unit-cost instructions.
pub fn render_feature_table(title: &str, cost: &ProtocolCost) -> String {
    let widths = [14usize, 8, 12, 8];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&row_left_first(
        &[
            "Feature".to_string(),
            "Source".to_string(),
            "Destination".to_string(),
            "Total".to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out.push_str(&hline(&widths));
    out.push('\n');
    let fmt = |n: u64| if n == 0 { "-".to_string() } else { n.to_string() };
    for f in Feature::ALL {
        let s = cost.get(Endpoint::Source, f).total();
        let d = cost.get(Endpoint::Destination, f).total();
        out.push_str(&row_left_first(
            &[f.label().to_string(), fmt(s), fmt(d), fmt(s + d)],
            &widths,
        ));
        out.push('\n');
    }
    out.push_str(&hline(&widths));
    out.push('\n');
    out.push_str(&row_left_first(
        &[
            "Total".to_string(),
            cost.endpoint_total(Endpoint::Source).to_string(),
            cost.endpoint_total(Endpoint::Destination).to_string(),
            cost.total().to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out
}

/// Render a Table 3-style block: features × endpoints × (reg, mem, dev).
pub fn render_class_table(title: &str, cost: &ProtocolCost) -> String {
    let widths = [14usize, 7, 7, 7, 7, 7, 7];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&row_left_first(
        &[
            "".to_string(),
            "Source".to_string(),
            "".to_string(),
            "".to_string(),
            "Dest".to_string(),
            "".to_string(),
            "".to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    let mut header = vec!["Feature".to_string()];
    for _ in 0..2 {
        for c in Class::ALL {
            header.push(c.label().to_string());
        }
    }
    out.push_str(&row_left_first(&header, &widths));
    out.push('\n');
    out.push_str(&hline(&widths));
    out.push('\n');
    let fmt = |n: u64| if n == 0 { "-".to_string() } else { n.to_string() };
    for f in Feature::ALL {
        let s = cost.get(Endpoint::Source, f);
        let d = cost.get(Endpoint::Destination, f);
        out.push_str(&row_left_first(
            &[
                f.label().to_string(),
                fmt(s.reg),
                fmt(s.mem),
                fmt(s.dev),
                fmt(d.reg),
                fmt(d.mem),
                fmt(d.dev),
            ],
            &widths,
        ));
        out.push('\n');
    }
    out.push_str(&hline(&widths));
    out.push('\n');
    let s = cost.endpoint_classes(Endpoint::Source);
    let d = cost.endpoint_classes(Endpoint::Destination);
    out.push_str(&row_left_first(
        &[
            "Total".to_string(),
            s.reg.to_string(),
            s.mem.to_string(),
            s.dev.to_string(),
            d.reg.to_string(),
            d.mem.to_string(),
            d.dev.to_string(),
        ],
        &widths,
    ));
    out.push('\n');
    out
}

/// Render a Figure 6-style comparison: labelled horizontal bars scaled to
/// the largest value.
pub fn render_bars(title: &str, entries: &[(String, u64)], width: usize) -> String {
    let max = entries.iter().map(|(_, v)| *v).max().unwrap_or(1).max(1);
    let label_w = entries.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, value) in entries {
        let bar_len = ((*value as f64 / max as f64) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {value}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Render a two-column numeric series (e.g. Figure 8 right: packet size
/// versus overhead fraction) with an inline spark-bar.
pub fn render_series(title: &str, x_label: &str, y_label: &str, points: &[(u64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{x_label:>10} | {y_label}\n"));
    out.push_str(&"-".repeat(48));
    out.push('\n');
    for (x, y) in points {
        let bar = "#".repeat((y * 30.0).round().max(0.0) as usize);
        out.push_str(&format!("{x:>10} | {:>6.1}% {bar}\n", y * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{self, MsgShape};

    #[test]
    fn fine_table_includes_totals_and_dashes() {
        let t = render_fine_table(
            "Table 1",
            &analytic::single_packet_fine(Endpoint::Source),
            &analytic::single_packet_fine(Endpoint::Destination),
        );
        assert!(t.contains("Table 1"));
        assert!(t.contains("Write to NI"));
        assert!(t.contains("20"));
        assert!(t.contains("27"));
        assert!(t.contains('-')); // read-from-NI has no source entry
    }

    #[test]
    fn feature_table_matches_protocol_totals() {
        let c = analytic::cmam_finite(MsgShape::paper(1024).unwrap());
        let t = render_feature_table("Finite sequence", &c);
        assert!(t.contains("11737"));
        assert!(t.contains("6221"));
        assert!(t.contains("5516"));
        assert!(t.contains("Buffer Mgmt."));
    }

    #[test]
    fn class_table_contains_reg_mem_dev() {
        let c = analytic::cmam_finite(MsgShape::paper(16).unwrap());
        let t = render_class_table("Finite 16", &c);
        assert!(t.contains("reg"));
        assert!(t.contains("dev"));
        assert!(t.contains("128")); // source reg total
    }

    #[test]
    fn bars_scale_to_max() {
        let t = render_bars(
            "demo",
            &[("a".to_string(), 10), ("b".to_string(), 5)],
            20,
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        let hashes = |s: &str| s.matches('#').count();
        assert_eq!(hashes(lines[1]), 20);
        assert_eq!(hashes(lines[2]), 10);
    }

    #[test]
    fn series_renders_percentages() {
        let t = render_series("fig8", "n", "overhead", &[(4, 0.7), (128, 0.34)]);
        assert!(t.contains("70.0%"));
        assert!(t.contains("34.0%"));
    }
}
