//! End-to-end latency estimation from instruction counts.
//!
//! §5 of the paper: *"For cases where software overhead dominates,
//! instruction counts are indicative of communication latency."* This
//! module makes that statement checkable: combine a protocol's measured
//! instruction counts (weighted by a [`CycleModel`]) with a simple
//! network model (per-hop latency, per-packet injection gap) and
//! estimate one-way message latency, with and without software/network
//! pipelining.

use crate::analytic::ProtocolCost;
use crate::axes::Endpoint;
use crate::cycles::CycleModel;

/// A LogP-flavored end-to-end latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cycle weights for the software instruction counts.
    pub cycles: CycleModel,
    /// Network hops between the endpoints.
    pub hops: u64,
    /// Cycles per hop (routing time — the paper's point is that this is
    /// small next to the software).
    pub hop_latency: u64,
    /// Minimum cycles between consecutive packet injections the network
    /// can sustain (the LogP gap).
    pub gap: u64,
}

impl LatencyModel {
    /// A CM-5-flavored default: 5 hops through the fat tree at 4 cycles
    /// per hop, unit-ish gap, Appendix A cycle weights.
    pub fn cm5ish() -> Self {
        LatencyModel {
            cycles: CycleModel::CM5,
            hops: 5,
            hop_latency: 4,
            gap: 4,
        }
    }

    /// Pure network time for one packet (`hops × hop_latency`).
    pub fn wire_time(&self) -> u64 {
        self.hops * self.hop_latency
    }

    /// Unpipelined one-way estimate: all source software, then the
    /// wire, then all destination software.
    pub fn one_way_unpipelined(&self, cost: &ProtocolCost) -> u64 {
        let src = self.cycles.cycles(cost.endpoint_classes(Endpoint::Source));
        let dst = self.cycles.cycles(cost.endpoint_classes(Endpoint::Destination));
        src + self.wire_time() + dst
    }

    /// Pipelined one-way estimate over `packets` packets: the pipeline
    /// fills once (first packet sees its software plus the wire), then
    /// advances at the bottleneck stage rate.
    ///
    /// # Panics
    ///
    /// Panics if `packets` is zero.
    pub fn one_way_pipelined(&self, cost: &ProtocolCost, packets: u64) -> u64 {
        assert!(packets > 0, "a message has at least one packet");
        let src = self.cycles.cycles(cost.endpoint_classes(Endpoint::Source));
        let dst = self.cycles.cycles(cost.endpoint_classes(Endpoint::Destination));
        let src_pp = src.div_ceil(packets);
        let dst_pp = dst.div_ceil(packets);
        let bottleneck = src_pp.max(dst_pp).max(self.gap);
        src_pp + self.wire_time() + dst_pp + bottleneck * (packets - 1)
    }

    /// Fraction of the unpipelined latency that is software, in
    /// `[0, 1]`. The paper's claim is that this is near 1 on real
    /// machines, which is why instruction counts stand in for latency.
    pub fn software_fraction(&self, cost: &ProtocolCost) -> f64 {
        let total = self.one_way_unpipelined(cost);
        if total == 0 {
            return 0.0;
        }
        1.0 - self.wire_time() as f64 / total as f64
    }

    /// The hop count at which wire time would equal the software time —
    /// how far a network would have to be before routing dominated.
    pub fn breakeven_hops(&self, cost: &ProtocolCost) -> u64 {
        if self.hop_latency == 0 {
            return u64::MAX;
        }
        let src = self.cycles.cycles(cost.endpoint_classes(Endpoint::Source));
        let dst = self.cycles.cycles(cost.endpoint_classes(Endpoint::Destination));
        (src + dst).div_ceil(self.hop_latency)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::cm5ish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{self, MsgShape};

    #[test]
    fn software_dominates_on_cm5ish_parameters() {
        // The paper's premise: even for the cheapest delivery, software
        // dwarfs routing time.
        let model = LatencyModel::cm5ish();
        let single = analytic::single_packet();
        assert!(model.software_fraction(&single) > 0.7);
        let xfer = analytic::cmam_finite(MsgShape::paper(1024).unwrap());
        assert!(model.software_fraction(&xfer) > 0.99);
    }

    #[test]
    fn pipelining_helps_multi_packet_messages() {
        let model = LatencyModel::cm5ish();
        let xfer = analytic::cmam_finite(MsgShape::paper(1024).unwrap());
        let un = model.one_way_unpipelined(&xfer);
        let pi = model.one_way_pipelined(&xfer, 256);
        assert!(pi < un, "{pi} !< {un}");
        // …but can't beat the bottleneck-stage bound.
        assert!(pi as f64 > 0.4 * un as f64);
    }

    #[test]
    fn breakeven_hops_is_enormous() {
        // How many hops before routing time catches the software cost
        // of a single-packet delivery? Far more than any real machine.
        let model = LatencyModel::cm5ish();
        let single = analytic::single_packet();
        assert!(model.breakeven_hops(&single) > 20);
    }

    #[test]
    fn wire_time_and_degenerate_cases() {
        let model = LatencyModel { hops: 3, hop_latency: 7, ..LatencyModel::cm5ish() };
        assert_eq!(model.wire_time(), 21);
        let single = analytic::single_packet();
        assert_eq!(
            model.one_way_pipelined(&single, 1),
            model.one_way_unpipelined(&single)
        );
        let zero_hop = LatencyModel { hop_latency: 0, ..model };
        assert_eq!(zero_hop.breakeven_hops(&single), u64::MAX);
    }
}
