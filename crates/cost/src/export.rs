//! CSV export of cost tables and series, for plotting outside the
//! terminal (the bench binaries accept `--csv`).

use std::fmt::Write as _;

use crate::analytic::ProtocolCost;
use crate::axes::{Class, Endpoint, Feature, Fine};

/// A Table 2/3 block as CSV: one row per feature with per-endpoint
/// reg/mem/dev columns and totals, plus a `Total` row.
pub fn protocol_cost_csv(cost: &ProtocolCost) -> String {
    let mut out = String::from(
        "feature,src_reg,src_mem,src_dev,src_total,dst_reg,dst_mem,dst_dev,dst_total,total\n",
    );
    for f in Feature::ALL {
        let s = cost.get(Endpoint::Source, f);
        let d = cost.get(Endpoint::Destination, f);
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            f.label(),
            s.reg,
            s.mem,
            s.dev,
            s.total(),
            d.reg,
            d.mem,
            d.dev,
            d.total(),
            s.total() + d.total()
        )
        .expect("writing to String cannot fail");
    }
    let s = cost.endpoint_classes(Endpoint::Source);
    let d = cost.endpoint_classes(Endpoint::Destination);
    writeln!(
        out,
        "Total,{},{},{},{},{},{},{},{},{}",
        s.reg,
        s.mem,
        s.dev,
        s.total(),
        d.reg,
        d.mem,
        d.dev,
        d.total(),
        cost.total()
    )
    .expect("writing to String cannot fail");
    out
}

/// A numeric series as two-column CSV.
pub fn series_csv(x_label: &str, y_label: &str, points: &[(u64, f64)]) -> String {
    let mut out = format!("{x_label},{y_label}\n");
    for (x, y) in points {
        writeln!(out, "{x},{y}").expect("writing to String cannot fail");
    }
    out
}

/// A Table 1-style fine-category breakdown as CSV; absent categories
/// export as 0.
pub fn fine_csv(source: &[(Fine, u64)], dest: &[(Fine, u64)]) -> String {
    let lookup =
        |rows: &[(Fine, u64)], f: Fine| rows.iter().find(|(g, _)| *g == f).map_or(0, |(_, n)| *n);
    let mut out = String::from("category,source,destination\n");
    for f in Fine::ALL {
        let s = lookup(source, f);
        let d = lookup(dest, f);
        if s > 0 || d > 0 {
            writeln!(out, "{},{s},{d}", f.label()).expect("writing to String cannot fail");
        }
    }
    out
}

/// Per-class totals of a cost block as CSV (one row per class).
pub fn class_totals_csv(cost: &ProtocolCost) -> String {
    let mut out = String::from("class,source,destination\n");
    let s = cost.endpoint_classes(Endpoint::Source);
    let d = cost.endpoint_classes(Endpoint::Destination);
    for c in Class::ALL {
        writeln!(out, "{},{},{}", c.label(), s.class(c), d.class(c))
            .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{self, MsgShape};

    #[test]
    fn protocol_cost_csv_round_numbers() {
        let c = analytic::cmam_finite(MsgShape::paper(1024).unwrap());
        let csv = protocol_cost_csv(&c);
        assert!(csv.starts_with("feature,src_reg"));
        assert!(csv.contains("Base Cost,3842,513,1280,5635"));
        assert!(csv.contains("Total,4412,514,1295,6221,3948,528,1040,5516,11737"));
        assert_eq!(csv.lines().count(), 6);
    }

    #[test]
    fn series_csv_format() {
        let csv = series_csv("n", "overhead", &[(4, 0.709), (8, 0.7)]);
        assert_eq!(csv, "n,overhead\n4,0.709\n8,0.7\n");
    }

    #[test]
    fn fine_csv_skips_empty_rows() {
        let csv = fine_csv(
            &analytic::single_packet_fine(Endpoint::Source),
            &analytic::single_packet_fine(Endpoint::Destination),
        );
        assert!(csv.contains("Call/Return,3,10"));
        assert!(csv.contains("Write to NI,2,0"));
        assert!(!csv.contains("Handler"));
    }

    #[test]
    fn class_totals_csv_has_three_rows() {
        let c = analytic::single_packet();
        let csv = class_totals_csv(&c);
        assert!(csv.contains("reg,15,22"));
        assert!(csv.contains("dev,5,5"));
        assert_eq!(csv.lines().count(), 4);
    }
}
