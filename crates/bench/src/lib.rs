//! # timego-bench — table and figure regeneration harness
//!
//! One function per paper artifact, each returning the full plain-text
//! report; the `src/bin/*` binaries print them, the integration tests
//! assert their contents, and `EXPERIMENTS.md` records their output.
//!
//! Every number in these reports is *measured* by running the real
//! protocol implementations over the simulated substrates — the
//! analytic closed forms of [`timego_cost::analytic`] are printed
//! alongside purely as cross-validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reports;
pub mod results;
