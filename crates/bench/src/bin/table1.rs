//! Regenerate Table 1 of the paper (single-packet delivery costs).

fn main() {
    print!("{}", timego_bench::reports::table1());
}
