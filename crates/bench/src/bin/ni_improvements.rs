//! §5 ablation: improved NIs / DMA lower the base cost and inflate the
//! relative protocol overhead.

fn main() {
    print!("{}", timego_bench::reports::ni_improvements());
}
