//! §5 experiment: the tension between routing performance (adaptive
//! multipath) and the software cost of the reordering it causes.

fn main() {
    print!("{}", timego_bench::reports::tension());
}
