//! Congestion/saturation report: delivered throughput, backpressure,
//! queue depth and latency percentiles per (pattern × substrate × load
//! point). Emits the deterministic per-load-point results into
//! `BENCH_results.json` under the `congestion/` prefix.
//!
//! Pass `--quick` to run the reduced CI interval grid; `--csv` to print
//! the CSV instead of the table.

use timego_bench::{reports, results::BenchResults};
use timego_workloads::sweeps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let intervals: &[u64] = if quick {
        &sweeps::CONGESTION_QUICK_INTERVALS
    } else {
        &sweeps::CONGESTION_INTERVALS
    };

    if csv {
        print!("{}", reports::congestion_csv());
        return;
    }

    let rows = reports::congestion_rows(intervals);
    print!("{}", reports::congestion_report(&rows));

    let mut res = BenchResults::new("congestion/");
    for r in &rows {
        let key = format!("{}/{}/i{}", r.substrate, r.pattern, r.interval);
        res.record_count(&format!("{key}/delivered_milli_wpc"), r.delivered_milli());
        res.record_count(&format!("{key}/backpressure"), r.backpressure);
        res.record_count(&format!("{key}/peak_rx_depth"), r.peak_rx_depth as u64);
        res.record_cycles(&format!("{key}/packet_p99"), r.pkt_p99);
        res.record_cycles(&format!("{key}/completion_p50"), r.comp_p50);
        res.record_cycles(&format!("{key}/completion_p99"), r.comp_p99);
    }
    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
