//! Engine concurrency report: throughput and per-feature cost vs the
//! number of transfers interleaved through one engine run. Also emits
//! the deterministic cycle counts into `BENCH_results.json`.

use timego_bench::{reports, results::BenchResults};

fn main() {
    let rows = reports::concurrency_rows();
    print!("{}", reports::concurrency());

    let mut res = BenchResults::new("concurrency/");
    for r in &rows {
        res.record_cycles(&format!("k{}/serial_cycles", r.k), r.serial_cycles);
        res.record_cycles(&format!("k{}/engine_cycles", r.k), r.engine_cycles);
        res.record_cycles(&format!("k{}/instr_total", r.k), r.instr_engine);
    }
    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
