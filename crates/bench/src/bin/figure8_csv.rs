//! Figure 8 (right) as CSV, for plotting.

fn main() {
    print!("{}", timego_bench::reports::figure8_csv());
}
