//! Segment-reuse ablation: amortize the preallocation handshake across
//! a batch of transfers.

fn main() {
    print!("{}", timego_bench::reports::segment_reuse());
}
