//! Regenerate Figure 6 of the paper (CMAM vs high-level-network
//! messaging costs).

fn main() {
    print!("{}", timego_bench::reports::figure6());
}
