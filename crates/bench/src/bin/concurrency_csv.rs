//! Engine concurrency study as CSV, for plotting.

fn main() {
    print!("{}", timego_bench::reports::concurrency_csv());
}
