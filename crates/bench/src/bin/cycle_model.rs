//! Appendix-A weighted cycle models applied to the measured costs.

fn main() {
    print!("{}", timego_bench::reports::cycle_model());
}
