//! Regenerate Figure 8 of the paper (generalized cost formulas and
//! overhead vs packet size).

fn main() {
    print!("{}", timego_bench::reports::figure8());
}
