//! Collectives scaling report: engine-native run-after DAGs vs
//! phase-serial rounds for binomial broadcast and recursive-doubling
//! all-reduce at 16–256 nodes. Emits the deterministic per-cell results
//! into `BENCH_results.json` under the `collectives/` prefix.
//!
//! Pass `--quick` to run the reduced CI node grid; `--csv` to print the
//! CSV instead of the table.

use timego_bench::{reports, results::BenchResults};
use timego_workloads::sweeps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let node_counts: &[usize] =
        if quick { &sweeps::COLLECTIVE_NODES_QUICK } else { &sweeps::COLLECTIVE_NODES };

    if csv {
        print!("{}", reports::collectives_csv());
        return;
    }

    let rows = reports::collectives_rows(node_counts);
    print!("{}", reports::collectives_report(&rows));

    let mut res = BenchResults::new("collectives/");
    for r in &rows {
        let key = format!("{}/n{}", r.collective, r.nodes);
        res.record_cycles(&format!("{key}/phased_cycles"), r.phased_cycles);
        res.record_cycles(&format!("{key}/engine_cycles"), r.engine_cycles);
        res.record_cycles(&format!("{key}/instr_engine"), r.instr_engine);
        res.record_cycles(&format!("{key}/instr_phased"), r.instr_phased);
        res.record_count(&format!("{key}/speedup_milli"), (r.speedup() * 1000.0) as u64);
    }
    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
