//! Demonstrate the network features (§2.2) whose software cost the
//! paper measures: reordering, detect-only faults, CR rejection and
//! hardware retransmission, finite-buffer stall.

fn main() {
    print!("{}", timego_bench::reports::substrate_demo());
}
