//! Polling-versus-interrupt receive-discipline ablation (footnote 2).

fn main() {
    print!("{}", timego_bench::reports::interrupts());
}
