//! Crash-recovery report: exactly-once delivery for every protocol
//! family (reliable transfer, stream, RPC, broadcast collective)
//! across node crash-restart windows of increasing length, with the
//! whole recovery price billed to the fault-tolerance feature. Emits
//! the deterministic per-cell results into `BENCH_results.json` under
//! the `recovery/<family>/` prefixes.
//!
//! Pass `--quick` to run the reduced CI grid.

use timego_bench::{reports, results::BenchResults};
use timego_workloads::sweeps;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (windows, seeds): (&[u64], u64) = if quick {
        (&sweeps::RECOVERY_CRASH_WINDOWS_QUICK, sweeps::RECOVERY_SEEDS_QUICK)
    } else {
        (&sweeps::RECOVERY_CRASH_WINDOWS, sweeps::RECOVERY_SEEDS)
    };

    let rows = reports::recovery_rows(windows, seeds);
    print!("{}", reports::recovery_report(&rows));

    let mut res = BenchResults::new("recovery/");
    for r in &rows {
        let key = format!("{}/window{}", r.family, r.window);
        res.record_count(&format!("{key}/delivered"), r.completed);
        res.record_count(&format!("{key}/re_executions"), r.re_executions);
        res.record_cycles(&format!("{key}/avg_cycles"), r.avg_cycles);
        res.record_cycles(&format!("{key}/fault_tol_instr"), r.fault_tol_instr);
        res.record_cycles(&format!("{key}/other_instr"), r.other_instr);
    }
    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
