//! Regenerate Table 2 of the paper (multi-packet delivery costs by
//! feature, 16 and 1024 words).

fn main() {
    print!("{}", timego_bench::reports::table2());
}
