//! Print every table/figure report in order (used to fill
//! EXPERIMENTS.md).

use timego_bench::reports;

fn main() {
    for report in [
        reports::table1(),
        reports::table2(),
        reports::table3(),
        reports::figure6(),
        reports::figure8(),
        reports::group_acks(),
        reports::cycle_model(),
        reports::interrupts(),
        reports::ni_improvements(),
        reports::segment_reuse(),
        reports::latency(),
        reports::tension(),
        reports::concurrency(),
        reports::congestion(),
        // Reduced node grid: this binary also runs under debug builds
        // in CI, where the 256-node cell is needlessly slow.
        reports::collectives_report(&reports::collectives_rows(
            &timego_workloads::sweeps::COLLECTIVE_NODES_QUICK,
        )),
        reports::recovery_report(&reports::recovery_rows(
            &timego_workloads::sweeps::RECOVERY_CRASH_WINDOWS_QUICK,
            timego_workloads::sweeps::RECOVERY_SEEDS_QUICK,
        )),
        reports::substrate_demo(),
    ] {
        println!("{report}");
    }
}
