//! Group-acknowledgement ablation (§3.2's closing remark).

fn main() {
    print!("{}", timego_bench::reports::group_acks());
}
