//! Scheduler scaling report: the readiness-driven event scheduler vs
//! the reference round-robin stepper, swept across node counts on
//! permutation and hotspot traffic.
//!
//! For every `(pattern, nodes)` cell the same plain-transfer plan is
//! driven to completion once per [`SchedMode`] on identically-seeded
//! machines, recording:
//!
//! * op `step()` invocations per mode and their ratio — the refactor's
//!   acceptance metric (sleeping ops are skipped, so the ratio grows
//!   with scale);
//! * wall time and delivered packets per second per mode;
//! * the event scheduler's self-profiled phase shares (ready-queue
//!   sweep, op steps, wheel/wake absorption, substrate stepping);
//! * wake/jump counters (timer wakes, packet wakes, idle clock-jumps).
//!
//! Everything lands in `BENCH_results.json` under `sched/`. Flags:
//!
//! * `--quick`: cap the sweep at 1024 nodes (CI-friendly);
//! * `--perf-smoke`: run only the 1024-node permutation cell in event
//!   mode and fail (exit 1) if its deterministic step count regresses
//!   more than 2x against the committed baseline.

use std::time::Instant;

use timego_am::{Engine, Machine, SchedMode, SchedPhase};
use timego_bench::results::BenchResults;
use timego_ni::share;
use timego_workloads::concurrent::{PlannedOp, TrafficKind};
use timego_workloads::{patterns::Pattern, payloads, scenarios};

const SEED: u64 = 42;
const WORDS: usize = 8;

/// Committed perf-smoke baseline: deterministic event-mode step count
/// for the 1024-node permutation cell. Regenerate by running
/// `sched --perf-smoke` and copying the printed value after an
/// *intentional* scheduler change.
const BASELINE_1024_PERM_STEPS: u64 = 23_242;

struct RunStats {
    steps: u64,
    timer_wakes: u64,
    packet_wakes: u64,
    idle_jumps: u64,
    jumped_cycles: u64,
    elapsed_cycles: u64,
    delivered: u64,
    wall_ns: u128,
    /// (phase name, total ns) for the event scheduler's profiled phases.
    phases: Vec<(&'static str, u64)>,
}

fn plan_for(pattern: Pattern, nodes: usize) -> Vec<PlannedOp> {
    pattern
        .pairs(nodes)
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| PlannedOp {
            kind: TrafficKind::Xfer,
            src,
            dst,
            data: payloads::mixed(WORDS, SEED.wrapping_add(i as u64)),
        })
        .collect()
}

/// Run `plan` to completion under `mode`. Self-profiling costs two
/// clock reads per op step, which distorts wall time on hosts where
/// `Instant::now` is a real syscall — so wall/throughput numbers come
/// from an unprofiled run and phase shares from a separate profiled
/// one (step counts are deterministic and identical across both).
fn drive(mode: SchedMode, plan: &[PlannedOp], nodes: usize, profile: bool) -> RunStats {
    let mut m = Machine::new(
        share(scenarios::cm5_deterministic(nodes, SEED)),
        nodes,
        timego_am::CmamConfig::default(),
    );
    let mut eng = Engine::with_mode(mode);
    if profile {
        eng.enable_profiling(1 << 16);
    }
    let ids: Vec<_> = plan
        .iter()
        .map(|op| eng.submit_xfer(&m, op.src, op.dst, &op.data).expect("valid plan"))
        .collect();

    let start_cycles = m.network().borrow().now().cycles();
    let wall = Instant::now();
    eng.run(&mut m);
    let wall_ns = wall.elapsed().as_nanos();
    let elapsed_cycles = m.network().borrow().now().cycles() - start_cycles;

    for id in ids {
        eng.take_outcome(id)
            .expect("engine ran to completion")
            .expect("clean substrate: every transfer completes");
    }

    let c = *eng.counters();
    let phases = match eng.profiler_mut() {
        Some(p) => {
            p.flush();
            SchedPhase::ALL
                .iter()
                .zip(p.totals())
                .map(|(ph, t)| (ph.name(), t.total_ns))
                .collect()
        }
        None => Vec::new(),
    };
    let delivered = m.network().borrow().stats().delivered;
    RunStats {
        steps: c.steps,
        timer_wakes: c.timer_wakes,
        packet_wakes: c.packet_wakes,
        idle_jumps: c.idle_jumps,
        jumped_cycles: c.jumped_cycles,
        elapsed_cycles,
        delivered,
        wall_ns,
        phases,
    }
}

fn pkts_per_sec(s: &RunStats) -> u64 {
    (s.delivered as u128 * 1_000_000_000)
        .checked_div(s.wall_ns)
        .unwrap_or(0) as u64
}

fn perf_smoke() -> i32 {
    let plan = plan_for(Pattern::RandomPermutation(SEED), 1024);
    let evt = drive(SchedMode::EventDriven, &plan, 1024, false);
    println!(
        "perf-smoke: 1024-node permutation event steps = {} (baseline {})",
        evt.steps, BASELINE_1024_PERM_STEPS
    );
    if evt.steps > 2 * BASELINE_1024_PERM_STEPS {
        eprintln!(
            "perf-smoke FAILED: step count regressed more than 2x ({} > 2*{})",
            evt.steps, BASELINE_1024_PERM_STEPS
        );
        return 1;
    }
    println!("perf-smoke OK");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--perf-smoke") {
        std::process::exit(perf_smoke());
    }
    let quick = args.iter().any(|a| a == "--quick");
    let max_nodes = if quick { 1024 } else { 4096 };

    let mut res = BenchResults::new("sched/");
    println!(
        "{:<22} {:>10} {:>12} {:>7} {:>10} {:>10}",
        "cell", "evt steps", "ref steps", "ratio", "evt pkt/s", "ref pkt/s"
    );
    for &nodes in &[256usize, 1024, 4096] {
        if nodes > max_nodes {
            continue;
        }
        for pattern in [Pattern::RandomPermutation(SEED), Pattern::Hotspot] {
            let plan = plan_for(pattern, nodes);
            let evt = drive(SchedMode::EventDriven, &plan, nodes, false);
            let rr = drive(SchedMode::ReferenceRoundRobin, &plan, nodes, false);
            let prof = drive(SchedMode::EventDriven, &plan, nodes, true);
            assert_eq!(evt.steps, prof.steps, "profiling must not change scheduling");
            assert_eq!(
                evt.elapsed_cycles, rr.elapsed_cycles,
                "modes must agree on simulated time ({} nodes, {})",
                nodes,
                pattern.name()
            );
            let cell = format!("{}/n{nodes}", pattern.name());
            let ratio_milli = (rr.steps * 1000).checked_div(evt.steps).unwrap_or(0);
            println!(
                "{:<22} {:>10} {:>12} {:>6}.{:01}x {:>10} {:>10}",
                cell,
                evt.steps,
                rr.steps,
                ratio_milli / 1000,
                (ratio_milli % 1000) / 100,
                pkts_per_sec(&evt),
                pkts_per_sec(&rr),
            );
            res.record_count(&format!("{cell}/event_steps"), evt.steps);
            res.record_count(&format!("{cell}/ref_steps"), rr.steps);
            res.record_count(&format!("{cell}/step_ratio_milli"), ratio_milli);
            res.record_cycles(&format!("{cell}/elapsed_cycles"), evt.elapsed_cycles);
            res.record_wall(&format!("{cell}/event_wall"), evt.wall_ns);
            res.record_wall(&format!("{cell}/ref_wall"), rr.wall_ns);
            res.record_count(&format!("{cell}/event_packets_per_sec"), pkts_per_sec(&evt));
            res.record_count(&format!("{cell}/ref_packets_per_sec"), pkts_per_sec(&rr));
            res.record_count(&format!("{cell}/timer_wakes"), evt.timer_wakes);
            res.record_count(&format!("{cell}/packet_wakes"), evt.packet_wakes);
            res.record_count(&format!("{cell}/idle_jumps"), evt.idle_jumps);
            res.record_count(&format!("{cell}/jumped_cycles"), evt.jumped_cycles);
            let profiled: u64 = prof.phases.iter().map(|&(_, ns)| ns).sum();
            for (name, ns) in &prof.phases {
                let share = (ns * 1000).checked_div(profiled).unwrap_or(0);
                res.record_count(&format!("{cell}/phase/{name}_share_milli"), share);
            }
        }
    }

    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
