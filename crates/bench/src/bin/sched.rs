//! Scheduler scaling report: the readiness-driven event scheduler vs
//! the reference round-robin stepper, swept across node counts on
//! permutation and hotspot traffic.
//!
//! For every `(pattern, nodes)` cell the same plain-transfer plan is
//! driven to completion once per [`SchedMode`] on identically-seeded
//! machines, recording:
//!
//! * op `step()` invocations per mode and their ratio — the refactor's
//!   acceptance metric (sleeping ops are skipped, so the ratio grows
//!   with scale);
//! * wall time and delivered packets per second per mode;
//! * the event scheduler's self-profiled phase shares (ready-queue
//!   sweep, op steps, wheel/wake absorption, substrate stepping);
//! * wake/jump counters (timer wakes, packet wakes, idle clock-jumps).
//!
//! A second, *parallel* report drives the same permutation plan over
//! the sharded substrate (`ShardedNetwork`, 4 shards) at several thread
//! counts, recording packets/sec, the substrate-step phase share, and
//! the speedup against the flat (unsharded) substrate under
//! `sched/parallel/`. Each thread count is asserted to produce the
//! identical step count, simulated-cycle count, and delivery total —
//! the bench doubles as a determinism check.
//!
//! Everything lands in `BENCH_results.json` under `sched/`. Flags:
//!
//! * `--quick`: cap the sweep at 1024 nodes (CI-friendly);
//! * `--threads N`: sweep the parallel report over thread counts
//!   `{1, N}` instead of the default `{1, 2, 4}`;
//! * `--perf-smoke`: run only the 1024-node permutation cell in event
//!   mode and fail (exit 1) if its deterministic step count regresses
//!   more than 2x against the committed baseline.

use std::time::Instant;

use timego_am::{Engine, Machine, SchedMode, SchedPhase};
use timego_bench::results::BenchResults;
use timego_ni::{share, SharedNetwork};
use timego_workloads::concurrent::{PlannedOp, TrafficKind};
use timego_workloads::{patterns::Pattern, payloads, scenarios};

const SEED: u64 = 42;
const WORDS: usize = 8;

/// Committed perf-smoke baseline: deterministic event-mode step count
/// for the 1024-node permutation cell. Regenerate by running
/// `sched --perf-smoke` and copying the printed value after an
/// *intentional* scheduler change.
const BASELINE_1024_PERM_STEPS: u64 = 23_242;

struct RunStats {
    steps: u64,
    timer_wakes: u64,
    packet_wakes: u64,
    idle_jumps: u64,
    jumped_cycles: u64,
    elapsed_cycles: u64,
    delivered: u64,
    wall_ns: u128,
    /// (phase name, total ns) for the event scheduler's profiled phases.
    phases: Vec<(&'static str, u64)>,
}

fn plan_for(pattern: Pattern, nodes: usize) -> Vec<PlannedOp> {
    pattern
        .pairs(nodes)
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst))| PlannedOp {
            kind: TrafficKind::Xfer,
            src,
            dst,
            data: payloads::mixed(WORDS, SEED.wrapping_add(i as u64)),
        })
        .collect()
}

/// Run `plan` to completion under `mode`. Self-profiling costs two
/// clock reads per op step, which distorts wall time on hosts where
/// `Instant::now` is a real syscall — so wall/throughput numbers come
/// from an unprofiled run and phase shares from a separate profiled
/// one (step counts are deterministic and identical across both).
fn drive(mode: SchedMode, plan: &[PlannedOp], nodes: usize, profile: bool) -> RunStats {
    drive_net(share(scenarios::cm5_deterministic(nodes, SEED)), mode, plan, nodes, profile)
}

fn drive_net(
    net: SharedNetwork,
    mode: SchedMode,
    plan: &[PlannedOp],
    nodes: usize,
    profile: bool,
) -> RunStats {
    let mut m = Machine::new(net, nodes, timego_am::CmamConfig::default());
    let mut eng = Engine::with_mode(mode);
    if profile {
        eng.enable_profiling(1 << 16);
    }
    let ids: Vec<_> = plan
        .iter()
        .map(|op| eng.submit_xfer(&m, op.src, op.dst, &op.data).expect("valid plan"))
        .collect();

    let start_cycles = m.network().borrow().now().cycles();
    let wall = Instant::now();
    eng.run(&mut m);
    let wall_ns = wall.elapsed().as_nanos();
    let elapsed_cycles = m.network().borrow().now().cycles() - start_cycles;

    for id in ids {
        eng.take_outcome(id)
            .expect("engine ran to completion")
            .expect("clean substrate: every transfer completes");
    }

    let c = *eng.counters();
    let phases = match eng.profiler_mut() {
        Some(p) => {
            p.flush();
            SchedPhase::ALL
                .iter()
                .zip(p.totals())
                .map(|(ph, t)| (ph.name(), t.total_ns))
                .collect()
        }
        None => Vec::new(),
    };
    let delivered = m.network().borrow().stats().delivered;
    RunStats {
        steps: c.steps,
        timer_wakes: c.timer_wakes,
        packet_wakes: c.packet_wakes,
        idle_jumps: c.idle_jumps,
        jumped_cycles: c.jumped_cycles,
        elapsed_cycles,
        delivered,
        wall_ns,
        phases,
    }
}

fn pkts_per_sec(s: &RunStats) -> u64 {
    (s.delivered as u128 * 1_000_000_000)
        .checked_div(s.wall_ns)
        .unwrap_or(0) as u64
}

fn perf_smoke() -> i32 {
    let plan = plan_for(Pattern::RandomPermutation(SEED), 1024);
    let evt = drive(SchedMode::EventDriven, &plan, 1024, false);
    println!(
        "perf-smoke: 1024-node permutation event steps = {} (baseline {})",
        evt.steps, BASELINE_1024_PERM_STEPS
    );
    if evt.steps > 2 * BASELINE_1024_PERM_STEPS {
        eprintln!(
            "perf-smoke FAILED: step count regressed more than 2x ({} > 2*{})",
            evt.steps, BASELINE_1024_PERM_STEPS
        );
        return 1;
    }
    println!("perf-smoke OK");
    0
}

/// Find the share recorded for `name` in a profiled run's phase list.
fn phase_share_milli(phases: &[(&'static str, u64)], name: &str) -> u64 {
    let total: u64 = phases.iter().map(|&(_, ns)| ns).sum();
    phases
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, ns)| (ns * 1000).checked_div(total).unwrap_or(0))
        .unwrap_or(0)
}

const PARALLEL_SHARDS: usize = 4;

/// The shard-scaling report: the permutation plan on the flat substrate
/// vs the 4-shard sharded substrate at each thread count. Thread counts
/// must not change results, so the report asserts step counts, elapsed
/// cycles, and delivery totals identical across the sweep — every
/// benchmark run is also a determinism soak.
fn parallel_report(res: &mut BenchResults, quick: bool, threads: &[usize]) {
    let node_counts: &[usize] = if quick { &[1024] } else { &[4096, 8192, 16384] };
    println!(
        "\n{:<26} {:>10} {:>10} {:>8} {:>10}",
        "parallel cell", "evt steps", "pkt/s", "vs flat", "substrate"
    );
    for &nodes in node_counts {
        let plan = plan_for(Pattern::RandomPermutation(SEED), nodes);
        let cell = |tail: &str| format!("parallel/perm/n{nodes}/{tail}");

        let flat = drive(SchedMode::EventDriven, &plan, nodes, false);
        let flat_prof = drive(SchedMode::EventDriven, &plan, nodes, true);
        assert_eq!(flat.steps, flat_prof.steps, "profiling must not change scheduling");
        let flat_sub = phase_share_milli(&flat_prof.phases, "substrate_step");
        println!(
            "{:<26} {:>10} {:>10} {:>7}x {:>8}.{:01}%",
            format!("perm/n{nodes}/flat"),
            flat.steps,
            pkts_per_sec(&flat),
            "1.0",
            flat_sub / 10,
            flat_sub % 10,
        );
        res.record_count(&cell("flat/event_steps"), flat.steps);
        res.record_wall(&cell("flat/event_wall"), flat.wall_ns);
        res.record_count(&cell("flat/event_packets_per_sec"), pkts_per_sec(&flat));
        res.record_count(&cell("flat/substrate_step_share_milli"), flat_sub);
        res.record_cycles(&cell("flat/elapsed_cycles"), flat.elapsed_cycles);

        let mut pinned: Option<(u64, u64, u64)> = None;
        for &t in threads {
            let sharded = |profile| {
                drive_net(
                    share(scenarios::cm5_sharded(nodes, PARALLEL_SHARDS, t, SEED)),
                    SchedMode::EventDriven,
                    &plan,
                    nodes,
                    profile,
                )
            };
            let run = sharded(false);
            let prof = sharded(true);
            assert_eq!(run.steps, prof.steps, "profiling must not change scheduling");
            let signature = (run.steps, run.elapsed_cycles, run.delivered);
            match pinned {
                None => pinned = Some(signature),
                Some(expect) => assert_eq!(
                    signature, expect,
                    "thread count changed results at {nodes} nodes, {t} threads"
                ),
            }
            let sub = phase_share_milli(&prof.phases, "substrate_step");
            let speedup_milli =
                (flat.wall_ns * 1000).checked_div(run.wall_ns).unwrap_or(0) as u64;
            println!(
                "{:<26} {:>10} {:>10} {:>6}.{:01}x {:>8}.{:01}%",
                format!("perm/n{nodes}/s{PARALLEL_SHARDS}t{t}"),
                run.steps,
                pkts_per_sec(&run),
                speedup_milli / 1000,
                (speedup_milli % 1000) / 100,
                sub / 10,
                sub % 10,
            );
            res.record_count(&cell(&format!("t{t}/event_steps")), run.steps);
            res.record_wall(&cell(&format!("t{t}/event_wall")), run.wall_ns);
            res.record_count(&cell(&format!("t{t}/event_packets_per_sec")), pkts_per_sec(&run));
            res.record_count(&cell(&format!("t{t}/substrate_step_share_milli")), sub);
            res.record_count(&cell(&format!("t{t}/speedup_vs_flat_milli")), speedup_milli);
            res.record_cycles(&cell(&format!("t{t}/elapsed_cycles")), run.elapsed_cycles);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--perf-smoke") {
        std::process::exit(perf_smoke());
    }
    let quick = args.iter().any(|a| a == "--quick");
    let threads_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"));
    let thread_sweep: Vec<usize> = match threads_flag {
        Some(1) | None => vec![1, 2, 4],
        Some(n) => vec![1, n],
    };
    let max_nodes = if quick { 1024 } else { 4096 };

    let mut res = BenchResults::new("sched/");
    println!(
        "{:<22} {:>10} {:>12} {:>7} {:>10} {:>10}",
        "cell", "evt steps", "ref steps", "ratio", "evt pkt/s", "ref pkt/s"
    );
    for &nodes in &[256usize, 1024, 4096] {
        if nodes > max_nodes {
            continue;
        }
        for pattern in [Pattern::RandomPermutation(SEED), Pattern::Hotspot] {
            let plan = plan_for(pattern, nodes);
            let evt = drive(SchedMode::EventDriven, &plan, nodes, false);
            let rr = drive(SchedMode::ReferenceRoundRobin, &plan, nodes, false);
            let prof = drive(SchedMode::EventDriven, &plan, nodes, true);
            assert_eq!(evt.steps, prof.steps, "profiling must not change scheduling");
            assert_eq!(
                evt.elapsed_cycles, rr.elapsed_cycles,
                "modes must agree on simulated time ({} nodes, {})",
                nodes,
                pattern.name()
            );
            let cell = format!("{}/n{nodes}", pattern.name());
            let ratio_milli = (rr.steps * 1000).checked_div(evt.steps).unwrap_or(0);
            println!(
                "{:<22} {:>10} {:>12} {:>6}.{:01}x {:>10} {:>10}",
                cell,
                evt.steps,
                rr.steps,
                ratio_milli / 1000,
                (ratio_milli % 1000) / 100,
                pkts_per_sec(&evt),
                pkts_per_sec(&rr),
            );
            res.record_count(&format!("{cell}/event_steps"), evt.steps);
            res.record_count(&format!("{cell}/ref_steps"), rr.steps);
            res.record_count(&format!("{cell}/step_ratio_milli"), ratio_milli);
            res.record_cycles(&format!("{cell}/elapsed_cycles"), evt.elapsed_cycles);
            res.record_wall(&format!("{cell}/event_wall"), evt.wall_ns);
            res.record_wall(&format!("{cell}/ref_wall"), rr.wall_ns);
            res.record_count(&format!("{cell}/event_packets_per_sec"), pkts_per_sec(&evt));
            res.record_count(&format!("{cell}/ref_packets_per_sec"), pkts_per_sec(&rr));
            res.record_count(&format!("{cell}/timer_wakes"), evt.timer_wakes);
            res.record_count(&format!("{cell}/packet_wakes"), evt.packet_wakes);
            res.record_count(&format!("{cell}/idle_jumps"), evt.idle_jumps);
            res.record_count(&format!("{cell}/jumped_cycles"), evt.jumped_cycles);
            let profiled: u64 = prof.phases.iter().map(|&(_, ns)| ns).sum();
            for (name, ns) in &prof.phases {
                let share = (ns * 1000).checked_div(profiled).unwrap_or(0);
                res.record_count(&format!("{cell}/phase/{name}_share_milli"), share);
            }
        }
    }

    parallel_report(&mut res, quick, &thread_sweep);

    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
