//! §5 "communication cost versus latency": instruction counts as a
//! latency predictor under a LogP-flavored model.

fn main() {
    print!("{}", timego_bench::reports::latency());
}
