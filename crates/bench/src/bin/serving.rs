//! Serving report: the RPC service plane swept across balancer
//! policies, with per-class tail latency and per-class "where does the
//! time go" bills, plus a goodput-under-overload curve.
//!
//! Two reports, both on the PR 8 sharded substrate:
//!
//! * **Policy sweep** — two open-loop QoS populations (a
//!   deadline-supervised `interactive` class and a recovery-armed
//!   `batch` class) drive a gateway tier + server pool at 4096 nodes
//!   (512 under `--quick`) once per balancer policy. Each cell records
//!   per-class p50/p99/p999 completion times and the Table-1-style
//!   per-feature instruction breakdown split by class. The round-robin
//!   cell re-runs at several substrate worker-thread counts and asserts
//!   the full [`ServiceOutcome::signature`] identical — the bench
//!   doubles as a determinism soak.
//! * **Overload sweep** — a deliberately small pool swept from light
//!   load to several times past its admission knee. Past the knee the
//!   gateway sheds (billed to `FaultTol`) and goodput holds within a
//!   few percent of its peak instead of collapsing — the serving
//!   analogue of the congestion report's saturation knee, pinned by
//!   `tests/serving_invariants.rs`.
//!
//! Everything lands in `BENCH_results.json` under `serving/`. Flags:
//!
//! * `--quick`: small node counts and populations (CI-friendly);
//! * `--threads N`: determinism sweep over `{1, N}` instead of
//!   `{1, 2, 4}`.

use std::time::Instant;

use timego_bench::results::BenchResults;
use timego_cost::Feature;
use timego_netsim::NodeId;
use timego_workloads::service::{
    run_service, serving_machine, BalancerPolicy, ClassOutcome, Migration, QosClass, ServiceOutcome,
    ServiceSpec,
};

const SEED: u64 = 42;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn range(lo: usize, count: usize) -> Vec<NodeId> {
    (lo..lo + count).map(n).collect()
}

struct Sized {
    nodes: usize,
    shards: usize,
    gateways: usize,
    servers: usize,
    interactive: usize,
    batch: usize,
}

fn policy_sizing(quick: bool) -> Sized {
    if quick {
        Sized { nodes: 512, shards: 2, gateways: 4, servers: 16, interactive: 220, batch: 140 }
    } else {
        Sized { nodes: 4096, shards: 4, gateways: 16, servers: 64, interactive: 1300, batch: 900 }
    }
}

fn policy_spec(s: &Sized, policy: BalancerPolicy) -> ServiceSpec {
    ServiceSpec {
        gateways: range(0, s.gateways),
        servers: range(s.gateways, s.servers),
        policy,
        admission_bound: 4 * s.servers,
        classes: vec![
            QosClass::interactive(3, s.interactive, 1 << 20),
            QosClass::batch(4, s.batch),
        ],
        migration: None,
        seed: SEED,
    }
}

fn drive(spec: &ServiceSpec, nodes: usize, shards: usize, threads: usize) -> (ServiceOutcome, u128) {
    let mut m = serving_machine(nodes, shards, threads, SEED);
    let wall = Instant::now();
    let out = run_service(&mut m, spec);
    (out, wall.elapsed().as_nanos())
}

fn record_class(res: &mut BenchResults, cell: &str, c: &ClassOutcome) {
    let k = |tail: &str| format!("{cell}/{}/{tail}", c.name);
    res.record_count(&k("offered"), c.offered as u64);
    res.record_count(&k("admitted"), c.admitted as u64);
    res.record_count(&k("shed"), c.shed as u64);
    res.record_count(&k("completed"), c.completed as u64);
    res.record_count(&k("failed"), c.failed as u64);
    res.record_count(&k("re_executions"), c.re_executions);
    res.record_cycles(&k("p50"), c.completion.quantile(0.50));
    res.record_cycles(&k("p99"), c.completion.quantile(0.99));
    res.record_cycles(&k("p999"), c.completion.quantile(0.999));
    res.record_cycles(&k("max"), c.completion.max());
    res.record_count(&k("mean_milli"), (c.completion.mean() * 1000.0) as u64);
    for f in Feature::ALL {
        res.record_count(
            &k(&format!("bill/{}", feature_slug(f))),
            c.bill.feature_total(f),
        );
    }
    res.record_count(&k("bill/total"), c.bill.total());
    res.record_count(
        &k("bill/overhead_milli"),
        (c.bill.overhead_fraction() * 1000.0) as u64,
    );
}

fn feature_slug(f: Feature) -> &'static str {
    match f {
        Feature::Base => "base",
        Feature::BufferMgmt => "buffer_mgmt",
        Feature::InOrder => "in_order",
        Feature::FaultTol => "fault_tol",
    }
}

fn print_class(policy: &str, c: &ClassOutcome) {
    println!(
        "{:<18} {:<12} {:>6} {:>6} {:>5} {:>8} {:>8} {:>8}  {:>10} {:>6.1}%",
        policy,
        c.name,
        c.completed,
        c.failed,
        c.shed,
        c.completion.quantile(0.50),
        c.completion.quantile(0.99),
        c.completion.quantile(0.999),
        c.bill.total(),
        c.bill.overhead_fraction() * 100.0,
    );
}

fn policy_sweep(res: &mut BenchResults, quick: bool, threads: &[usize]) {
    let s = policy_sizing(quick);
    let policies = [
        BalancerPolicy::RoundRobin,
        BalancerPolicy::LeastLoaded,
        BalancerPolicy::ConsistentHash { vnodes: 64 },
        BalancerPolicy::Random,
    ];
    println!(
        "policy sweep: {} nodes, {} shards, {} gateways, {} servers",
        s.nodes, s.shards, s.gateways, s.servers
    );
    println!(
        "{:<18} {:<12} {:>6} {:>6} {:>5} {:>8} {:>8} {:>8}  {:>10} {:>7}",
        "policy", "class", "done", "fail", "shed", "p50", "p99", "p999", "bill", "ovh"
    );
    for policy in policies {
        let spec = policy_spec(&s, policy);
        let (out, wall_ns) = drive(&spec, s.nodes, s.shards, 1);
        let cell = format!("policy/{}/n{}", policy.name(), s.nodes);
        assert_eq!(out.in_flight_at_end, 0, "serving run must drain");
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            print_class(policy.name(), c);
            record_class(res, &cell, c);
        }
        res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
        res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
        res.record_count(
            &format!("{cell}/goodput_per_kcycle_milli"),
            (out.goodput_per_kcycle() * 1000.0) as u64,
        );
        res.record_wall(&format!("{cell}/wall"), wall_ns);

        // The determinism soak rides the round-robin cell: the same
        // spec at every worker-thread count must produce the identical
        // outcome signature, bills and histograms included.
        if policy == BalancerPolicy::RoundRobin {
            let pinned = out.signature();
            res.record_count(&format!("{cell}/signature_lo32"), pinned & 0xffff_ffff);
            for &t in threads {
                let (run, t_wall) = drive(&spec, s.nodes, s.shards, t);
                assert_eq!(
                    run.signature(),
                    pinned,
                    "worker-thread count {t} changed the serving outcome"
                );
                println!("  t{t}: signature ok ({:.2}s)", t_wall as f64 / 1e9);
                res.record_wall(&format!("{cell}/t{t}/wall"), t_wall);
            }
        }
    }

    // Shard migration under consistent hashing: retire a quarter of
    // the pool mid-run, recruit spares, and show the run still drains
    // clean — the remap cost is visible as completion-time spread, not
    // as failures.
    let mut spec = policy_spec(&s, BalancerPolicy::ConsistentHash { vnodes: 64 });
    let spares = range(s.gateways + s.servers, s.servers / 4);
    spec.migration =
        Some(Migration { at: 0.5, retire: s.servers / 4, recruit: spares });
    let (out, wall_ns) = drive(&spec, s.nodes, s.shards, 1);
    let cell = format!("migration/consistent_hash/n{}", s.nodes);
    assert_eq!(out.in_flight_at_end, 0);
    for c in &out.classes {
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.admitted, c.completed + c.failed);
        print_class("ch+migration", c);
        record_class(res, &cell, c);
    }
    res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
    res.record_wall(&format!("{cell}/wall"), wall_ns);
}

/// The overload scenario: a small pool whose admission window is the
/// bottleneck, swept across arrival intervals. Returns the interval,
/// outcome pairs so the knee test can reuse the exact bench
/// configuration.
pub fn overload_points(quick: bool) -> Vec<(u64, ServiceOutcome)> {
    let (nodes, shards) = if quick { (128, 2) } else { (256, 2) };
    let (interactive, batch) = if quick { (260, 130) } else { (900, 450) };
    let intervals: &[u64] = if quick { &[32, 8, 2, 1] } else { &[64, 32, 16, 8, 4, 2, 1] };
    intervals
        .iter()
        .map(|&interval| {
            let spec = ServiceSpec {
                gateways: vec![n(0)],
                servers: range(1, 3),
                policy: BalancerPolicy::LeastLoaded,
                admission_bound: 32,
                classes: vec![
                    QosClass::interactive(interval, interactive, 1 << 17),
                    QosClass::batch(interval * 2, batch),
                ],
                migration: None,
                seed: SEED,
            };
            let mut m = serving_machine(nodes, shards, 1, SEED);
            (interval, run_service(&mut m, &spec))
        })
        .collect()
}

fn overload_sweep(res: &mut BenchResults, quick: bool) {
    println!(
        "\n{:<10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "interval", "goodput/kc", "shed%", "fail", "int p99", "bat p99", "peak_if"
    );
    let mut peak_goodput: f64 = 0.0;
    for (interval, out) in overload_points(quick) {
        let cell = format!("overload/i{interval}");
        let failed: usize = out.classes.iter().map(|c| c.failed).sum();
        peak_goodput = peak_goodput.max(out.goodput_per_kcycle());
        println!(
            "{:<10} {:>10.2} {:>7.1}% {:>8} {:>10} {:>10} {:>8}",
            interval,
            out.goodput_per_kcycle(),
            out.shed_fraction() * 100.0,
            failed,
            out.classes[0].completion.quantile(0.99),
            out.classes[1].completion.quantile(0.99),
            out.peak_in_flight,
        );
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            record_class(res, &cell, c);
        }
        res.record_count(
            &format!("{cell}/goodput_per_kcycle_milli"),
            (out.goodput_per_kcycle() * 1000.0) as u64,
        );
        res.record_count(
            &format!("{cell}/shed_milli"),
            (out.shed_fraction() * 1000.0) as u64,
        );
        res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
        res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
        res.record_count(&format!("{cell}/backpressure"), out.backpressure);
    }
    res.record_count("overload/peak_goodput_per_kcycle_milli", (peak_goodput * 1000.0) as u64);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"));
    let thread_sweep: Vec<usize> = match threads_flag {
        Some(1) | None => vec![2, 4],
        Some(t) => vec![t],
    };

    let mut res = BenchResults::new("serving/");
    policy_sweep(&mut res, quick, &thread_sweep);
    overload_sweep(&mut res, quick);

    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(entries) => println!("\nwrote {entries} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
