//! Serving report: the RPC service plane swept across balancer
//! policies, with per-class tail latency and per-class "where does the
//! time go" bills, plus a goodput-under-overload curve.
//!
//! Two reports, both on the PR 8 sharded substrate:
//!
//! * **Policy sweep** — two open-loop QoS populations (a
//!   deadline-supervised `interactive` class and a recovery-armed
//!   `batch` class) drive a gateway tier + server pool at 4096 nodes
//!   (512 under `--quick`) once per balancer policy. Each cell records
//!   per-class p50/p99/p999 completion times and the Table-1-style
//!   per-feature instruction breakdown split by class. The round-robin
//!   cell re-runs at several substrate worker-thread counts and asserts
//!   the full [`ServiceOutcome::signature`] identical — the bench
//!   doubles as a determinism soak.
//! * **Overload sweep** — a deliberately small pool swept from light
//!   load to several times past its admission knee. Past the knee the
//!   gateway sheds (billed to `FaultTol`) and goodput holds within a
//!   few percent of its peak instead of collapsing — the serving
//!   analogue of the congestion report's saturation knee, pinned by
//!   `tests/serving_invariants.rs`.
//! * **Failover sweep** (`--chaos`) — a mid-run crash-restart on one
//!   server, crossed with the failure domain's knobs: detector off/on,
//!   hedging off/on, a near-dry retry budget, and a brownout cell that
//!   crashes most of the pool to trip the breaker. The acceptance
//!   contract is asserted inline: detector+hedging goodput stays
//!   within 10% of the clean run while the detector-off baseline
//!   measurably degrades, hedged p999 beats unhedged, every cell
//!   (except the budget one, whose denials settle requests without a
//!   handler run) is exactly-once, and the full-domain cell's
//!   signature is thread-invariant.
//! * **Admission sweep** (`--chaos`) — per-gateway vs tier-global
//!   admission windows at the same total bound: un-shared counters
//!   shed more because a hot gateway can't borrow a cold one's room.
//!
//! Everything lands in `BENCH_results.json` under `serving/`. Flags:
//!
//! * `--quick`: small node counts and populations (CI-friendly);
//! * `--threads N`: determinism sweep over `{1, N}` instead of
//!   `{1, 2, 4}`;
//! * `--chaos`: also run the failover and admission-window sweeps.

use std::time::Instant;

use timego_am::{RecoveryPolicy, RetryPolicy};
use timego_bench::results::BenchResults;
use timego_cost::Feature;
use timego_netsim::{CrashWindow, FaultConfig, NodeId};
use timego_workloads::service::{
    run_service, serving_machine, serving_machine_chaos, AdmissionWindow, BalancerPolicy,
    BreakerSpec, ClassOutcome, DetectorSpec, HedgeSpec, Migration, QosClass, RetryBudget,
    ServiceOutcome, ServiceSpec,
};

const SEED: u64 = 42;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn range(lo: usize, count: usize) -> Vec<NodeId> {
    (lo..lo + count).map(n).collect()
}

struct Sized {
    nodes: usize,
    shards: usize,
    gateways: usize,
    servers: usize,
    interactive: usize,
    batch: usize,
}

fn policy_sizing(quick: bool) -> Sized {
    if quick {
        Sized { nodes: 512, shards: 2, gateways: 4, servers: 16, interactive: 220, batch: 140 }
    } else {
        Sized { nodes: 4096, shards: 4, gateways: 16, servers: 64, interactive: 1300, batch: 900 }
    }
}

fn policy_spec(s: &Sized, policy: BalancerPolicy) -> ServiceSpec {
    ServiceSpec {
        gateways: range(0, s.gateways),
        servers: range(s.gateways, s.servers),
        policy,
        window: AdmissionWindow::TierGlobal(4 * s.servers),
        classes: vec![
            QosClass::interactive(3, s.interactive, 1 << 20),
            QosClass::batch(4, s.batch),
        ],
        seed: SEED,
        ..ServiceSpec::default()
    }
}

fn drive(spec: &ServiceSpec, nodes: usize, shards: usize, threads: usize) -> (ServiceOutcome, u128) {
    let mut m = serving_machine(nodes, shards, threads, SEED);
    let wall = Instant::now();
    let out = run_service(&mut m, spec);
    (out, wall.elapsed().as_nanos())
}

fn record_class(res: &mut BenchResults, cell: &str, c: &ClassOutcome) {
    let k = |tail: &str| format!("{cell}/{}/{tail}", c.name);
    res.record_count(&k("offered"), c.offered as u64);
    res.record_count(&k("admitted"), c.admitted as u64);
    res.record_count(&k("shed"), c.shed as u64);
    res.record_count(&k("completed"), c.completed as u64);
    res.record_count(&k("failed"), c.failed as u64);
    res.record_count(&k("re_executions"), c.re_executions);
    res.record_count(&k("breaker_shed"), c.breaker_shed as u64);
    res.record_count(&k("budget_denied"), c.budget_denied);
    res.record_count(&k("hedges"), c.hedges as u64);
    res.record_count(&k("hedge_wins"), c.hedge_wins as u64);
    res.record_cycles(&k("p50"), c.completion.quantile(0.50));
    res.record_cycles(&k("p99"), c.completion.quantile(0.99));
    res.record_cycles(&k("p999"), c.completion.quantile(0.999));
    res.record_cycles(&k("max"), c.completion.max());
    res.record_count(&k("mean_milli"), (c.completion.mean() * 1000.0) as u64);
    for f in Feature::ALL {
        res.record_count(
            &k(&format!("bill/{}", feature_slug(f))),
            c.bill.feature_total(f),
        );
    }
    res.record_count(&k("bill/total"), c.bill.total());
    res.record_count(
        &k("bill/overhead_milli"),
        (c.bill.overhead_fraction() * 1000.0) as u64,
    );
}

fn feature_slug(f: Feature) -> &'static str {
    match f {
        Feature::Base => "base",
        Feature::BufferMgmt => "buffer_mgmt",
        Feature::InOrder => "in_order",
        Feature::FaultTol => "fault_tol",
    }
}

fn print_class(policy: &str, c: &ClassOutcome) {
    println!(
        "{:<18} {:<12} {:>6} {:>6} {:>5} {:>8} {:>8} {:>8}  {:>10} {:>6.1}%",
        policy,
        c.name,
        c.completed,
        c.failed,
        c.shed,
        c.completion.quantile(0.50),
        c.completion.quantile(0.99),
        c.completion.quantile(0.999),
        c.bill.total(),
        c.bill.overhead_fraction() * 100.0,
    );
}

fn policy_sweep(res: &mut BenchResults, quick: bool, threads: &[usize]) {
    let s = policy_sizing(quick);
    let policies = [
        BalancerPolicy::RoundRobin,
        BalancerPolicy::LeastLoaded,
        BalancerPolicy::ConsistentHash { vnodes: 64 },
        BalancerPolicy::Random,
    ];
    println!(
        "policy sweep: {} nodes, {} shards, {} gateways, {} servers",
        s.nodes, s.shards, s.gateways, s.servers
    );
    println!(
        "{:<18} {:<12} {:>6} {:>6} {:>5} {:>8} {:>8} {:>8}  {:>10} {:>7}",
        "policy", "class", "done", "fail", "shed", "p50", "p99", "p999", "bill", "ovh"
    );
    for policy in policies {
        let spec = policy_spec(&s, policy);
        let (out, wall_ns) = drive(&spec, s.nodes, s.shards, 1);
        let cell = format!("policy/{}/n{}", policy.name(), s.nodes);
        assert_eq!(out.in_flight_at_end, 0, "serving run must drain");
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            print_class(policy.name(), c);
            record_class(res, &cell, c);
        }
        res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
        res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
        res.record_count(
            &format!("{cell}/goodput_per_kcycle_milli"),
            (out.goodput_per_kcycle() * 1000.0) as u64,
        );
        res.record_wall(&format!("{cell}/wall"), wall_ns);

        // The determinism soak rides the round-robin cell: the same
        // spec at every worker-thread count must produce the identical
        // outcome signature, bills and histograms included.
        if policy == BalancerPolicy::RoundRobin {
            let pinned = out.signature();
            res.record_count(&format!("{cell}/signature_lo32"), pinned & 0xffff_ffff);
            for &t in threads {
                let (run, t_wall) = drive(&spec, s.nodes, s.shards, t);
                assert_eq!(
                    run.signature(),
                    pinned,
                    "worker-thread count {t} changed the serving outcome"
                );
                println!("  t{t}: signature ok ({:.2}s)", t_wall as f64 / 1e9);
                res.record_wall(&format!("{cell}/t{t}/wall"), t_wall);
            }
        }
    }

    // Shard migration under consistent hashing: retire a quarter of
    // the pool mid-run, recruit spares, and show the run still drains
    // clean — the remap cost is visible as completion-time spread, not
    // as failures.
    let mut spec = policy_spec(&s, BalancerPolicy::ConsistentHash { vnodes: 64 });
    let spares = range(s.gateways + s.servers, s.servers / 4);
    spec.migration =
        Some(Migration { at: 0.5, retire: s.servers / 4, recruit: spares });
    let (out, wall_ns) = drive(&spec, s.nodes, s.shards, 1);
    let cell = format!("migration/consistent_hash/n{}", s.nodes);
    assert_eq!(out.in_flight_at_end, 0);
    for c in &out.classes {
        assert_eq!(c.offered, c.admitted + c.shed);
        assert_eq!(c.admitted, c.completed + c.failed);
        print_class("ch+migration", c);
        record_class(res, &cell, c);
    }
    res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
    res.record_wall(&format!("{cell}/wall"), wall_ns);
}

/// The overload scenario: a small pool whose admission window is the
/// bottleneck, swept across arrival intervals. Returns the interval,
/// outcome pairs so the knee test can reuse the exact bench
/// configuration.
pub fn overload_points(quick: bool) -> Vec<(u64, ServiceOutcome)> {
    let (nodes, shards) = if quick { (128, 2) } else { (256, 2) };
    let (interactive, batch) = if quick { (260, 130) } else { (900, 450) };
    let intervals: &[u64] = if quick { &[32, 8, 2, 1] } else { &[64, 32, 16, 8, 4, 2, 1] };
    intervals
        .iter()
        .map(|&interval| {
            let spec = ServiceSpec {
                gateways: vec![n(0)],
                servers: range(1, 3),
                policy: BalancerPolicy::LeastLoaded,
                window: AdmissionWindow::TierGlobal(32),
                classes: vec![
                    QosClass::interactive(interval, interactive, 1 << 17),
                    QosClass::batch(interval * 2, batch),
                ],
                seed: SEED,
                ..ServiceSpec::default()
            };
            let mut m = serving_machine(nodes, shards, 1, SEED);
            (interval, run_service(&mut m, &spec))
        })
        .collect()
}

fn overload_sweep(res: &mut BenchResults, quick: bool) {
    println!(
        "\n{:<10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>8}",
        "interval", "goodput/kc", "shed%", "fail", "int p99", "bat p99", "peak_if"
    );
    let mut peak_goodput: f64 = 0.0;
    for (interval, out) in overload_points(quick) {
        let cell = format!("overload/i{interval}");
        let failed: usize = out.classes.iter().map(|c| c.failed).sum();
        peak_goodput = peak_goodput.max(out.goodput_per_kcycle());
        println!(
            "{:<10} {:>10.2} {:>7.1}% {:>8} {:>10} {:>10} {:>8}",
            interval,
            out.goodput_per_kcycle(),
            out.shed_fraction() * 100.0,
            failed,
            out.classes[0].completion.quantile(0.99),
            out.classes[1].completion.quantile(0.99),
            out.peak_in_flight,
        );
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            record_class(res, &cell, c);
        }
        res.record_count(
            &format!("{cell}/goodput_per_kcycle_milli"),
            (out.goodput_per_kcycle() * 1000.0) as u64,
        );
        res.record_count(
            &format!("{cell}/shed_milli"),
            (out.shed_fraction() * 1000.0) as u64,
        );
        res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
        res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
        res.record_count(&format!("{cell}/backpressure"), out.backpressure);
    }
    res.record_count("overload/peak_goodput_per_kcycle_milli", (peak_goodput * 1000.0) as u64);
}

// ---------------------------------------------------------------------
// Failover sweep (`--chaos`): crash schedules × detector × hedging.
// ---------------------------------------------------------------------

struct FailoverSized {
    nodes: usize,
    shards: usize,
    gateways: usize,
    servers: usize,
    interval: u64,
    requests: usize,
}

fn failover_sizing(quick: bool) -> FailoverSized {
    if quick {
        FailoverSized { nodes: 256, shards: 2, gateways: 4, servers: 8, interval: 24, requests: 500 }
    } else {
        FailoverSized { nodes: 512, shards: 2, gateways: 4, servers: 8, interval: 12, requests: 1500 }
    }
}

/// The failover population: interactive-shaped (small work, hedged,
/// sheddable) but recovery-armed and deadline-free, so every admitted
/// request eventually settles and exactly-once stays assertable under
/// crash windows.
fn failover_class(s: &FailoverSized) -> QosClass {
    QosClass {
        name: "interactive",
        class: 0,
        interval: s.interval,
        requests: s.requests,
        work: 4,
        deadline: None,
        recovery: Some(RecoveryPolicy::default()),
        retry: RetryPolicy::default(),
        hedge: true,
        sheddable: true,
        retry_budget: None,
    }
}

fn failover_detector() -> DetectorSpec {
    DetectorSpec { period: 600, timeout: 500, threshold: 2 }
}

fn failover_hedge() -> HedgeSpec {
    HedgeSpec { quantile: 0.95, min_samples: 32, bootstrap: 2048 }
}

fn failover_spec(s: &FailoverSized, detector: bool, hedge: bool) -> ServiceSpec {
    ServiceSpec {
        gateways: range(0, s.gateways),
        servers: range(s.gateways, s.servers),
        policy: BalancerPolicy::ConsistentHash { vnodes: 64 },
        window: AdmissionWindow::TierGlobal(4 * s.servers),
        classes: vec![failover_class(s)],
        detector: detector.then(failover_detector),
        hedge: hedge.then(failover_hedge),
        seed: SEED,
        ..ServiceSpec::default()
    }
}

/// One mid-run crash-restart on the first server: dark for the middle
/// half of the arrival span, restarted (state erased) at the end. The
/// start is offset past the probe round at span/4 so the crash lands
/// mid-heartbeat — real crashes don't wait for the detector's grid —
/// maximizing the exposure window routing must survive.
fn failover_fault(s: &FailoverSized) -> FaultConfig {
    let span = s.interval * s.requests as u64;
    FaultConfig {
        crashes: vec![CrashWindow {
            node: n(s.gateways),
            start: span / 4 + 32,
            end: span * 3 / 4,
        }],
        ..FaultConfig::default()
    }
}

fn drive_failover(
    spec: &ServiceSpec,
    s: &FailoverSized,
    fault: Option<&FaultConfig>,
    threads: usize,
) -> (ServiceOutcome, u128) {
    let mut m = match fault {
        Some(f) => serving_machine_chaos(s.nodes, s.shards, threads, f.clone(), SEED),
        None => serving_machine(s.nodes, s.shards, threads, SEED),
    };
    let wall = Instant::now();
    let out = run_service(&mut m, spec);
    (out, wall.elapsed().as_nanos())
}

fn record_failover(res: &mut BenchResults, cell: &str, out: &ServiceOutcome, wall_ns: u128) {
    for c in &out.classes {
        assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
        assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
        record_class(res, cell, c);
    }
    assert_eq!(out.in_flight_at_end, 0, "failover run must drain ({cell})");
    res.record_cycles(&format!("{cell}/elapsed_cycles"), out.elapsed_cycles);
    res.record_count(
        &format!("{cell}/goodput_per_kcycle_milli"),
        (out.goodput_per_kcycle() * 1000.0) as u64,
    );
    res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
    res.record_count(&format!("{cell}/total_runs"), out.handler_runs.values().sum());
    res.record_count(&format!("{cell}/dup_suppressed"), out.dup_suppressed);
    res.record_count(&format!("{cell}/detector/probes"), out.probes);
    res.record_count(&format!("{cell}/detector/failures"), out.probe_failures);
    res.record_count(&format!("{cell}/detector/ejections"), out.ejections);
    res.record_count(&format!("{cell}/detector/reinstatements"), out.reinstatements);
    res.record_count(&format!("{cell}/detector/bill_total"), out.detector_bill.total());
    res.record_count(
        &format!("{cell}/detector/bill_fault_tol"),
        out.detector_bill.feature_total(Feature::FaultTol),
    );
    res.record_wall(&format!("{cell}/wall"), wall_ns);
}

fn assert_exactly_once(cell: &str, out: &ServiceOutcome) {
    let runs: u64 = out.handler_runs.values().sum();
    let admitted: usize = out.classes.iter().map(|c| c.admitted).sum();
    assert_eq!(
        runs, admitted as u64,
        "{cell}: handler runs must equal admitted requests \
         ({} dup-suppressed, {} re-executions)",
        out.dup_suppressed,
        out.classes.iter().map(|c| c.re_executions).sum::<u64>()
    );
}

fn print_failover(cell: &str, out: &ServiceOutcome) {
    let c = &out.classes[0];
    println!(
        "{:<26} {:>6} {:>6} {:>5} {:>6} {:>6} {:>8} {:>8} {:>7.2} {:>5} {:>4}/{:<4}",
        cell,
        c.completed,
        c.failed,
        c.shed,
        c.re_executions,
        c.hedge_wins,
        c.completion.quantile(0.99),
        c.completion.quantile(0.999),
        out.goodput_per_kcycle(),
        out.probes,
        out.ejections,
        out.reinstatements,
    );
}

fn failover_sweep(res: &mut BenchResults, quick: bool, threads: &[usize]) {
    let s = failover_sizing(quick);
    let fault = failover_fault(&s);
    println!(
        "\nfailover sweep: {} nodes, {} servers, crash [{}, {}) on server {}",
        s.nodes,
        s.servers,
        fault.crashes[0].start,
        fault.crashes[0].end,
        fault.crashes[0].node.index()
    );
    println!(
        "{:<26} {:>6} {:>6} {:>5} {:>6} {:>6} {:>8} {:>8} {:>7} {:>5} {:>9}",
        "cell", "done", "fail", "shed", "reexec", "hwins", "p99", "p999", "gput/kc", "probe", "eject/rei"
    );

    // Clean reference: failure domain armed, nothing fails.
    let (clean, clean_wall) = drive_failover(&failover_spec(&s, true, true), &s, None, 1);
    print_failover("clean", &clean);
    record_failover(res, "failover/clean", &clean, clean_wall);
    assert_exactly_once("failover/clean", &clean);
    assert_eq!(clean.ejections, 0, "clean run must not eject");

    // Detector-off baseline: the balancer keeps routing at the corpse
    // and stuck requests pile into the admission window.
    let (base, base_wall) =
        drive_failover(&failover_spec(&s, false, false), &s, Some(&fault), 1);
    print_failover("crash_baseline", &base);
    record_failover(res, "failover/crash_baseline", &base, base_wall);
    assert_exactly_once("failover/crash_baseline", &base);

    // Detector only: routing reacts within ~2 probe periods, but
    // requests already stuck on the corpse wait out its restart.
    let (det, det_wall) = drive_failover(&failover_spec(&s, true, false), &s, Some(&fault), 1);
    print_failover("crash_detector", &det);
    record_failover(res, "failover/crash_detector", &det, det_wall);
    assert_exactly_once("failover/crash_detector", &det);
    assert!(det.ejections >= 1, "the detector must eject the crashed server");
    assert!(det.reinstatements >= 1, "the restarted server must be reinstated");

    // Detector + hedging: stuck requests get a second leg on a healthy
    // server — the tentpole's acceptance cell.
    let (hedged, hedged_wall) =
        drive_failover(&failover_spec(&s, true, true), &s, Some(&fault), 1);
    print_failover("crash_detector_hedged", &hedged);
    record_failover(res, "failover/crash_detector_hedged", &hedged, hedged_wall);
    assert_exactly_once("failover/crash_detector_hedged", &hedged);
    assert!(hedged.ejections >= 1, "hedged cell must still eject");
    assert!(
        hedged.classes[0].hedge_wins > 0,
        "hedge legs must win some races under a crash"
    );

    // Acceptance: goodput with the failure domain stays within 10% of
    // clean while the detector-off baseline measurably degrades; hedged
    // p999 beats unhedged.
    let (g_clean, g_base, g_hedged) =
        (clean.goodput_per_kcycle(), base.goodput_per_kcycle(), hedged.goodput_per_kcycle());
    assert!(
        g_hedged >= 0.9 * g_clean,
        "detector+hedging goodput {g_hedged:.2}/kc fell more than 10% below clean {g_clean:.2}/kc"
    );
    assert!(
        g_base < 0.9 * g_clean,
        "the detector-off baseline must measurably degrade \
         (got {g_base:.2}/kc vs clean {g_clean:.2}/kc)"
    );
    let (p999_hedged, p999_det) = (
        hedged.classes[0].completion.quantile(0.999),
        det.classes[0].completion.quantile(0.999),
    );
    assert!(
        p999_hedged < p999_det,
        "hedged p999 {p999_hedged} must beat unhedged {p999_det} under the crash"
    );
    res.record_count(
        "failover/goodput_retention_milli",
        (g_hedged / g_clean * 1000.0) as u64,
    );

    // Thread-invariance soak on the full failure domain: crash windows,
    // ejections, hedge races, and reinstatements — same signature at
    // every worker-thread count.
    let pinned = hedged.signature();
    res.record_count("failover/crash_detector_hedged/signature_lo32", pinned & 0xffff_ffff);
    for &t in threads {
        let (run, t_wall) =
            drive_failover(&failover_spec(&s, true, true), &s, Some(&fault), t);
        assert_eq!(
            run.signature(),
            pinned,
            "worker-thread count {t} changed the failover outcome"
        );
        println!("  t{t}: signature ok ({:.2}s)", t_wall as f64 / 1e9);
        res.record_wall(&format!("failover/crash_detector_hedged/t{t}/wall"), t_wall);
    }

    // Retry-budget cell: a near-dry bucket caps the crash's recovery
    // amplification. Hedging stays off — hedge legs rescue stuck
    // requests before recovery fires, so budget pressure only exists
    // on the unhedged path. Budget denials settle requests with their
    // error, so this cell is excluded from the exactly-once assertion
    // (a denied request's handler may never have run).
    let mut spec = failover_spec(&s, true, false);
    spec.classes[0].retry_budget =
        Some(RetryBudget { capacity: 2, refill_milli_per_kcycle: 0 });
    let (budget, budget_wall) = drive_failover(&spec, &s, Some(&fault), 1);
    print_failover("budget_capped", &budget);
    record_failover(res, "failover/budget_capped", &budget, budget_wall);
    assert!(
        budget.classes[0].budget_denied > 0,
        "the capped budget must deny some re-executions"
    );
    assert!(
        budget.classes[0].re_executions < base.classes[0].re_executions,
        "the budget must cap recovery amplification ({} vs {})",
        budget.classes[0].re_executions,
        base.classes[0].re_executions
    );

    // Brownout cell: crash most of the pool; the breaker sheds the
    // sheddable class outright instead of queueing at the corpses.
    let span = s.interval * s.requests as u64;
    let brown_fault = FaultConfig {
        crashes: (0..s.servers * 3 / 4)
            .map(|i| CrashWindow {
                node: n(s.gateways + i),
                start: span / 4,
                end: span * 3 / 4,
            })
            .collect(),
        ..FaultConfig::default()
    };
    let mut spec = failover_spec(&s, true, true);
    spec.breaker = Some(BreakerSpec { min_healthy_milli: 500 });
    let (brown, brown_wall) = drive_failover(&spec, &s, Some(&brown_fault), 1);
    print_failover("brownout_breaker", &brown);
    record_failover(res, "failover/brownout_breaker", &brown, brown_wall);
    assert_exactly_once("failover/brownout_breaker", &brown);
    assert!(
        brown.classes[0].breaker_shed > 0,
        "losing 3/4 of the pool must trip the breaker"
    );
}

// ---------------------------------------------------------------------
// Admission-window comparison: per-gateway vs tier-global shedding at
// the same total bound.
// ---------------------------------------------------------------------

fn admission_sweep(res: &mut BenchResults, quick: bool) {
    let (nodes, shards) = (256, 2);
    let (gateways, servers, bound) = (4usize, 8usize, 32usize);
    let (interactive, batch) = if quick { (400, 200) } else { (1200, 600) };
    println!("\nadmission windows: {gateways} gateways, total bound {bound}");
    println!(
        "{:<14} {:>6} {:>6} {:>8} {:>8} {:>8}",
        "window", "shed", "done", "gput/kc", "peak", "peak/gw"
    );
    let mut sheds = Vec::new();
    for window in [
        AdmissionWindow::TierGlobal(bound),
        AdmissionWindow::PerGateway(bound / gateways),
    ] {
        let spec = ServiceSpec {
            gateways: range(0, gateways),
            servers: range(gateways, servers),
            policy: BalancerPolicy::LeastLoaded,
            window,
            classes: vec![
                QosClass::interactive(2, interactive, 1 << 17),
                QosClass::batch(4, batch),
            ],
            seed: SEED,
            ..ServiceSpec::default()
        };
        let mut m = serving_machine(nodes, shards, 1, SEED);
        let wall = Instant::now();
        let out = run_service(&mut m, &spec);
        let wall_ns = wall.elapsed().as_nanos();
        let cell = format!("admission/{}", window.name());
        let shed: usize = out.classes.iter().map(|c| c.shed).sum();
        let done: usize = out.classes.iter().map(|c| c.completed).sum();
        let peak_gw = out.peak_per_gateway.values().copied().max().unwrap_or(0);
        println!(
            "{:<14} {:>6} {:>6} {:>8.2} {:>8} {:>8}",
            window.name(),
            shed,
            done,
            out.goodput_per_kcycle(),
            out.peak_in_flight,
            peak_gw
        );
        for c in &out.classes {
            assert_eq!(c.offered, c.admitted + c.shed, "conservation ({})", c.name);
            assert_eq!(c.admitted, c.completed + c.failed, "conservation ({})", c.name);
            record_class(res, &cell, c);
        }
        match window {
            AdmissionWindow::TierGlobal(b) => assert!(out.peak_in_flight <= b),
            AdmissionWindow::PerGateway(b) => assert!(peak_gw <= b),
        }
        res.record_count(&format!("{cell}/shed"), shed as u64);
        res.record_count(
            &format!("{cell}/goodput_per_kcycle_milli"),
            (out.goodput_per_kcycle() * 1000.0) as u64,
        );
        res.record_count(&format!("{cell}/peak_in_flight"), out.peak_in_flight as u64);
        res.record_count(&format!("{cell}/peak_per_gateway"), peak_gw as u64);
        res.record_wall(&format!("{cell}/wall"), wall_ns);
        sheds.push(shed);
    }
    // Un-shared counters can only shed more at the same total bound:
    // a hot gateway sheds while a cold one still has room.
    assert!(
        sheds[1] >= sheds[0],
        "per-gateway windows shed less ({}) than tier-global ({}) at the same bound",
        sheds[1],
        sheds[0]
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes a positive integer"));
    let thread_sweep: Vec<usize> = match threads_flag {
        Some(1) | None => vec![2, 4],
        Some(t) => vec![t],
    };

    let chaos = args.iter().any(|a| a == "--chaos");

    let mut res = BenchResults::new("serving/");
    policy_sweep(&mut res, quick, &thread_sweep);
    overload_sweep(&mut res, quick);
    if chaos {
        failover_sweep(&mut res, quick, &thread_sweep);
        admission_sweep(&mut res, quick);
    }

    let path = BenchResults::default_path();
    match res.write_merged(&path) {
        Ok(entries) => println!("\nwrote {entries} entries to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
