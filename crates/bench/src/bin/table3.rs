//! Regenerate Table 3 / Appendix A of the paper (reg/mem/dev
//! subcategory breakdowns).

fn main() {
    print!("{}", timego_bench::reports::table3());
}
