//! Table 2 as CSV, for plotting.

fn main() {
    print!("{}", timego_bench::reports::table2_csv());
}
