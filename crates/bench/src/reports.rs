//! Report builders — one per table/figure of the paper.

use std::fmt::Write as _;

use timego_am::{
    measure_hl_stream, measure_hl_xfer, measure_single_packet, measure_stream, measure_xfer,
    CmamConfig, Machine, StreamConfig,
};
use timego_cost::analytic::{self, IndefiniteOpts, MsgShape, ProtocolCost};
use timego_cost::cycles::CycleModel;
use timego_cost::{table, Endpoint, Feature};
use timego_netsim::{CrashWindow, FaultConfig, Network, NodeId, Packet};
use timego_ni::share;
use timego_am::{RecoveryPolicy, RetryPolicy};
use timego_workloads::apps::collectives;
use timego_workloads::{concurrent, patterns::Pattern, payloads, scenarios, sweeps};

fn check(label: &str, measured: u64, paper: u64, out: &mut String) {
    let mark = if measured == paper { "OK " } else { "DIFF" };
    writeln!(out, "  [{mark}] {label}: measured {measured}, paper {paper}").unwrap();
}

/// **Table 1** — single-packet delivery instruction counts by fine
/// category, measured from one `am4` send + poll.
pub fn table1() -> String {
    let measured = measure_single_packet();
    let mut out = String::new();
    out.push_str("== Table 1: instruction counts for single-packet delivery ==\n\n");
    out.push_str(&table::render_fine_table(
        "Single-packet delivery (measured fine categories are identical to the paper's)",
        &analytic::single_packet_fine(Endpoint::Source),
        &analytic::single_packet_fine(Endpoint::Destination),
    ));
    out.push('\n');
    check("source total", measured.endpoint_total(Endpoint::Source), 20, &mut out);
    check(
        "destination total",
        measured.endpoint_total(Endpoint::Destination),
        27,
        &mut out,
    );
    check("end-to-end total", measured.total(), 47, &mut out);
    out.push_str(
        "\n34 of the 47 instructions access the NI — \"essentially the minimum\n\
         required to interface with the CM-5 hardware\" (§3.2).\n",
    );
    out
}

struct Table2Block {
    title: &'static str,
    cost: ProtocolCost,
    paper_totals: Option<[u64; 3]>, // src, dst, total
}

fn table2_blocks() -> Vec<Table2Block> {
    let (fin16, _) = measure_xfer(16, 4);
    let (ind16, _) = measure_stream(16, 4, 1);
    let (fin1024, _) = measure_xfer(1024, 4);
    let (ind1024, _) = measure_stream(1024, 4, 1);
    vec![
        Table2Block {
            title: "Message size = 16 words | Finite sequence, multi-packet delivery",
            cost: fin16,
            // Reconstructed from Table 3 (the paper's own Table 2 block
            // for this case is not recoverable from the source text; see
            // EXPERIMENTS.md).
            paper_totals: Some([173, 224, 397]),
        },
        Table2Block {
            title: "Message size = 16 words | Indefinite sequence, multi-packet delivery",
            cost: ind16,
            paper_totals: Some([216, 265, 481]),
        },
        Table2Block {
            title: "Message size = 1024 words | Finite sequence, multi-packet delivery",
            cost: fin1024,
            paper_totals: Some([6221, 5516, 11737]),
        },
        Table2Block {
            title: "Message size = 1024 words | Indefinite sequence, multi-packet delivery",
            cost: ind1024,
            paper_totals: Some([13824, 16141, 29965]),
        },
    ]
}

/// **Table 2** — multi-packet delivery costs by feature for 16- and
/// 1024-word messages (packet size 4), measured from real protocol
/// executions (finite sequence over an in-order instant substrate;
/// indefinite sequence with exactly half the packets delivered out of
/// order, per the paper's assumption).
pub fn table2() -> String {
    let mut out = String::new();
    out.push_str("== Table 2: multi-packet delivery costs (packet = 4 words) ==\n\n");
    for block in table2_blocks() {
        out.push_str(&table::render_feature_table(block.title, &block.cost));
        if let Some([s, d, t]) = block.paper_totals {
            check("source", block.cost.endpoint_total(Endpoint::Source), s, &mut out);
            check(
                "destination",
                block.cost.endpoint_total(Endpoint::Destination),
                d,
                &mut out,
            );
            check("total", block.cost.total(), t, &mut out);
        }
        out.push('\n');
    }
    // The prose claims of §3.2.
    let (fin16, _) = measure_xfer(16, 4);
    let bm_frac = fin16.feature_total(Feature::BufferMgmt) as f64 / fin16.total() as f64;
    writeln!(
        out,
        "Buffer management fraction of the 16-word finite transfer: {:.0}% (paper: ~50%, or 37% against the reconstructed total)",
        bm_frac * 100.0
    )
    .unwrap();
    let (ind1024, _) = measure_stream(1024, 4, 1);
    let ovh = (ind1024.feature_total(Feature::InOrder) + ind1024.feature_total(Feature::FaultTol))
        as f64
        / ind1024.total() as f64;
    writeln!(
        out,
        "In-order + fault-tolerance fraction of the indefinite protocol: {:.0}% (paper: ~70%, independent of volume)",
        ovh * 100.0
    )
    .unwrap();
    out
}

/// **Table 3** (Appendix A) — the same four blocks broken into
/// reg/mem/dev subcategories.
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("== Table 3 (Appendix A): reg/mem/dev instruction subcategories ==\n\n");
    for block in table2_blocks() {
        out.push_str(&table::render_class_table(block.title, &block.cost));
        out.push('\n');
    }
    // Spot-check the printed totals of the paper's 16-word finite block.
    let (fin16, _) = measure_xfer(16, 4);
    let s = fin16.endpoint_classes(Endpoint::Source);
    let d = fin16.endpoint_classes(Endpoint::Destination);
    check("finite-16 source reg", s.reg, 128, &mut out);
    check("finite-16 source mem", s.mem, 10, &mut out);
    check("finite-16 source dev", s.dev, 35, &mut out);
    check("finite-16 dest reg", d.reg, 168, &mut out);
    check("finite-16 dest mem", d.mem, 24, &mut out);
    check("finite-16 dest dev", d.dev, 32, &mut out);
    let (ind1024, _) = measure_stream(1024, 4, 1);
    let s = ind1024.endpoint_classes(Endpoint::Source);
    let d = ind1024.endpoint_classes(Endpoint::Destination);
    check("indef-1024 source reg", s.reg, 9728, &mut out);
    check("indef-1024 source mem", s.mem, 1536, &mut out);
    check("indef-1024 source dev", s.dev, 2560, &mut out);
    check("indef-1024 dest reg", d.reg, 10636, &mut out);
    check("indef-1024 dest mem", d.mem, 3200, &mut out);
    check("indef-1024 dest dev", d.dev, 2305, &mut out);
    out
}

/// **Figure 6** — CMAM versus high-level-network messaging costs for
/// both protocols at 16 and 1024 words, as measured bar data.
pub fn figure6() -> String {
    let mut out = String::new();
    out.push_str("== Figure 6: comparison of messaging layer costs ==\n\n");

    let mut bars = Vec::new();
    let mut reductions = Vec::new();
    for words in sweeps::TABLE_MESSAGE_SIZES {
        let (cmam, _) = measure_xfer(words as usize, 4);
        let (hl, _) = measure_hl_xfer(words as usize, 4);
        bars.push((format!("finite {words}w CMAM src+dst"), cmam.total()));
        bars.push((format!("finite {words}w HL   src+dst"), hl.total()));
        reductions.push((
            format!("finite sequence, {words} words"),
            1.0 - hl.total() as f64 / cmam.total() as f64,
        ));
    }
    out.push_str(&table::render_bars(
        "Finite sequence, multi-packet delivery (left chart)",
        &bars,
        40,
    ));
    out.push('\n');

    let mut bars = Vec::new();
    for words in sweeps::TABLE_MESSAGE_SIZES {
        let (cmam, _) = measure_stream(words as usize, 4, 1);
        let hl = measure_hl_stream(words as usize, 4);
        bars.push((format!("indef  {words}w CMAM src+dst"), cmam.total()));
        bars.push((format!("indef  {words}w HL   src+dst"), hl.total()));
        reductions.push((
            format!("indefinite sequence, {words} words"),
            1.0 - hl.total() as f64 / cmam.total() as f64,
        ));
    }
    out.push_str(&table::render_bars(
        "Indefinite sequence, multi-packet delivery (right chart)",
        &bars,
        40,
    ));
    out.push('\n');

    out.push_str("Cost reductions from high-level network features:\n");
    for (label, r) in &reductions {
        writeln!(out, "  {label}: {:.0}%", r * 100.0).unwrap();
    }
    out.push_str(
        "\nPaper: finite-sequence improvement 10–50% by message size;\n\
         indefinite-sequence reduction ~70%. The HL costs equal the CMAM\n\
         base costs exactly (the NI is the same hardware).\n",
    );
    out
}

/// **Figure 8 left** — the generalized cost formulas, cross-validated:
/// for every packet size the closed form must equal the simulated
/// protocol execution cell by cell.
pub fn figure8_left() -> String {
    let mut out = String::new();
    out.push_str("== Figure 8 (left): generalized CMAM cost breakdown ==\n");
    out.push_str("n = payload words per packet, p = packets per message\n\n");
    out.push_str("Finite sequence (source | destination):\n");
    out.push_str("  Base           p(18+n)+3            | p(14+n)+18\n");
    out.push_str("  Buffer mgmt.   47                   | 101\n");
    out.push_str("  In-order del.  2p                   | 3p+1\n");
    out.push_str("  Fault-toler.   27                   | 20\n\n");
    out.push_str("Indefinite sequence (source | destination), half the packets out of order, per-packet acks:\n");
    out.push_str("  Base           p(18+n/2)            | p(12+n/2)+13\n");
    out.push_str("  Buffer mgmt.   -                    | -\n");
    out.push_str("  In-order del.  5p                   | (6 + (29 + 2n+15))·p/2   [= 29p at n=4]\n");
    out.push_str("  Fault-toler.   p(4+n/2) + 23p       | 20p\n\n");
    out.push_str("Cross-validation (simulated protocol execution == closed form):\n");
    for n in sweeps::FIGURE8_PACKET_SIZES {
        let shape = MsgShape::for_message(sweeps::FIGURE8_MESSAGE_WORDS, n).unwrap();
        let (fin, _) = measure_xfer(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize);
        let fin_ok = fin == analytic::cmam_finite(shape);
        let (ind, _) = measure_stream(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize, 1);
        let ind_ok = ind == analytic::cmam_indefinite(shape, IndefiniteOpts::paper(shape));
        writeln!(
            out,
            "  n={n:>3} p={:>3}: finite {} ({} instr), indefinite {} ({} instr)",
            shape.packets(),
            if fin_ok { "MATCH" } else { "MISMATCH" },
            fin.total(),
            if ind_ok { "MATCH" } else { "MISMATCH" },
            ind.total()
        )
        .unwrap();
    }
    out
}

/// **Figure 8 right** — messaging-layer overhead fraction versus packet
/// size for a 1024-word message, measured.
pub fn figure8_right() -> String {
    let mut out = String::new();
    out.push_str("== Figure 8 (right): messaging overhead vs packet size, 1024-word message ==\n\n");
    let mut finite = Vec::new();
    let mut indef = Vec::new();
    for n in sweeps::FIGURE8_PACKET_SIZES {
        let (fin, _) = measure_xfer(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize);
        finite.push((n, fin.overhead_fraction()));
        let (ind, _) = measure_stream(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize, 1);
        indef.push((n, ind.overhead_fraction()));
    }
    out.push_str(&table::render_series(
        "Finite sequence (paper: 9–11% across the range)",
        "pkt words",
        "overhead",
        &finite,
    ));
    out.push('\n');
    out.push_str(&table::render_series(
        "Indefinite sequence (paper: remains significant across the range)",
        "pkt words",
        "overhead",
        &indef,
    ));
    out
}

/// **Figure 8** — both halves.
pub fn figure8() -> String {
    let mut out = figure8_left();
    out.push('\n');
    out.push_str(&figure8_right());
    out
}

/// **Group-acknowledgement ablation** (§3.2 closing remark): overhead
/// fraction of the indefinite-sequence protocol as the acknowledgement
/// period grows.
pub fn group_acks() -> String {
    let mut out = String::new();
    out.push_str("== Group acknowledgements: overhead vs ack period (1024 words, n = 4) ==\n\n");
    let mut series = Vec::new();
    for g in sweeps::GROUP_ACK_PERIODS {
        let (cost, outcome) = measure_stream(1024, 4, g);
        series.push((g, cost.overhead_fraction()));
        writeln!(
            out,
            "  ack every {g:>2} packets: total {:>6} instr, overhead {:>4.1}%, acks {}",
            cost.total(),
            cost.overhead_fraction() * 100.0,
            outcome.acks
        )
        .unwrap();
    }
    out.push('\n');
    out.push_str(&table::render_series(
        "Overhead fraction vs ack period",
        "ack period",
        "overhead",
        &series,
    ));
    out.push_str(
        "\nPaper: \"the overhead remains significant (~40-50%) even if group\n\
         acknowledgements are employed\" — the asymptote here stays above 50%\n\
         because sequencing and out-of-order buffering are untouched by acks;\n\
         see EXPERIMENTS.md for discussion.\n",
    );
    out
}

/// **Table 2 as CSV** (for plotting): the four measured blocks.
pub fn table2_csv() -> String {
    let mut out = String::new();
    for block in table2_blocks() {
        out.push_str("# ");
        out.push_str(block.title);
        out.push('\n');
        out.push_str(&timego_cost::export::protocol_cost_csv(&block.cost));
        out.push('\n');
    }
    out
}

/// **Figure 8 (right) as CSV**: overhead fraction vs packet size for
/// both protocols.
pub fn figure8_csv() -> String {
    let mut finite = Vec::new();
    let mut indef = Vec::new();
    for n in sweeps::FIGURE8_PACKET_SIZES {
        let (fin, _) = measure_xfer(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize);
        finite.push((n, fin.overhead_fraction()));
        let (ind, _) = measure_stream(sweeps::FIGURE8_MESSAGE_WORDS as usize, n as usize, 1);
        indef.push((n, ind.overhead_fraction()));
    }
    let mut out = String::from("# finite sequence\n");
    out.push_str(&timego_cost::export::series_csv("packet_words", "overhead_fraction", &finite));
    out.push_str("# indefinite sequence\n");
    out.push_str(&timego_cost::export::series_csv("packet_words", "overhead_fraction", &indef));
    out
}

/// **§5 "communication cost versus latency"**: instruction counts as a
/// latency predictor. Estimates one-way latency from the measured
/// counts under a LogP-flavored model and shows the software share.
pub fn latency() -> String {
    use timego_cost::latency::LatencyModel;

    let mut out = String::new();
    out.push_str("== §5: communication cost versus latency ==\n\n");
    let model = LatencyModel::cm5ish();
    writeln!(
        out,
        "model: {} hops × {} cycles/hop (wire {} cycles), gap {}, weights reg=1 mem=1 dev=5\n",
        model.hops,
        model.hop_latency,
        model.wire_time(),
        model.gap
    )
    .unwrap();
    writeln!(
        out,
        "{:<26} | {:>11} | {:>11} | {:>9} | breakeven hops",
        "workload", "unpipelined", "pipelined", "software%"
    )
    .unwrap();
    let single = timego_cost::analytic::single_packet();
    for (name, cost, packets) in [
        ("single packet", single, 1u64),
        ("finite 1024w (CMAM)", measure_xfer(1024, 4).0, 256),
        ("indefinite 1024w (CMAM)", measure_stream(1024, 4, 1).0, 256),
        ("finite 1024w (HL)", measure_hl_xfer(1024, 4).0, 256),
        ("indefinite 1024w (HL)", measure_hl_stream(1024, 4), 256),
    ] {
        writeln!(
            out,
            "{name:<26} | {:>11} | {:>11} | {:>8.1}% | {}",
            model.one_way_unpipelined(&cost),
            model.one_way_pipelined(&cost, packets),
            model.software_fraction(&cost) * 100.0,
            model.breakeven_hops(&cost)
        )
        .unwrap();
    }
    out.push_str(
        "\n\"For cases where software overhead dominates, instruction counts are\nindicative of communication latency.\" — the software share above 90%\nacross the board is why the paper can measure in instructions.\n",
    );
    out
}

/// **Appendix A weighted cycle models**: the same measured costs under
/// unit, CM-5 (dev = 5) and on-chip-NI weightings.
pub fn cycle_model() -> String {
    let mut out = String::new();
    out.push_str("== Appendix A: weighted cycle models ==\n\n");
    let models = [
        ("unit (paper body)", CycleModel::UNIT),
        ("CM-5 (reg=1 mem=1 dev=5)", CycleModel::CM5),
        ("on-chip NI (reg=1 mem=2 dev=1)", CycleModel::ONCHIP_NI),
    ];
    for (what, cost) in [
        ("finite 1024w", measure_xfer(1024, 4).0),
        ("indefinite 1024w", measure_stream(1024, 4, 1).0),
    ] {
        writeln!(out, "{what}:").unwrap();
        for (name, model) in models {
            let mut total = 0;
            let mut overhead = 0;
            for e in Endpoint::ALL {
                for f in Feature::ALL {
                    let c = model.cycles(cost.get(e, f));
                    total += c;
                    if f.is_overhead() {
                        overhead += c;
                    }
                }
            }
            writeln!(
                out,
                "  {name:<28} total {total:>7} cycles, overhead {:>4.1}%",
                100.0 * overhead as f64 / total as f64
            )
            .unwrap();
        }
        out.push('\n');
    }
    out.push_str(
        "Lowering the device-access cost (on-chip NI) *raises* the relative\n\
         weight of protocol overhead — the paper's §5 point that NI\n\
         improvements make the messaging-layer problem worse, not better.\n",
    );
    out
}

/// **Substrate behavior demonstration** (§2.2's network features, made
/// observable): reordering under adaptive routing, CRC drops, CR
/// rejection/retransmission, and backpressure stall.
pub fn substrate_demo() -> String {
    let mut out = String::new();
    out.push_str("== Network-feature demonstrations (the 'why' behind the software) ==\n\n");

    // 1. Adaptive multipath routing reorders; deterministic does not.
    for (name, adaptive) in [("deterministic", false), ("adaptive", true)] {
        let mut net: Box<dyn Network> = if adaptive {
            Box::new(scenarios::cm5_adaptive(64, 11))
        } else {
            Box::new(scenarios::cm5_deterministic(64, 11))
        };
        let pairs = Pattern::RandomPermutation(5).pairs(64);
        let mut sent = 0u32;
        for round in 0..40u32 {
            for (s, d) in &pairs {
                if net
                    .try_inject(Packet::new(*s, *d, 1, round, vec![round; 4]))
                    .is_ok()
                {
                    sent += 1;
                }
            }
            net.advance(2);
        }
        net.drain_extracting(1_000_000);
        let st = net.stats();
        writeln!(
            out,
            "  {name:<13} routing: {sent} injected, {} delivered, {:.1}% out of order",
            st.delivered,
            st.order.ooo_fraction() * 100.0
        )
        .unwrap();
    }
    out.push('\n');

    // 1b. Timesharing: a network-state swap reorders even
    //     deterministically-routed traffic (§2.2's third hazard).
    {
        let mut net = timego_netsim::SwitchedNetwork::new(
            timego_netsim::FatTree::new(4, 3, 1),
            timego_netsim::SwitchedConfig {
                strategy: timego_netsim::RouteStrategy::Deterministic,
                link_queue_capacity: 32,
                rx_queue_capacity: 4096,
                seed: 13,
                ..timego_netsim::SwitchedConfig::default()
            },
        );
        let mut sent = 0u32;
        while sent < 100 {
            if net
                .try_inject(Packet::new(NodeId::new(0), NodeId::new(63), 1, sent, vec![sent; 4]))
                .is_ok()
            {
                sent += 1;
            } else {
                net.advance(1);
            }
        }
        net.advance(3);
        let ctx = net.swap_out();
        let held = ctx.len();
        net.advance(50); // another application's time slice
        net.swap_in(ctx);
        net.drain_extracting(1_000_000);
        writeln!(
            out,
            "  timesharing swap mid-flight: {held} packets saved+restored, {} delivered, {:.1}% out of order (deterministic routing!)",
            net.stats().delivered,
            net.stats().order.ooo_fraction() * 100.0
        )
        .unwrap();
    }
    out.push('\n');

    // 2. Detect-only fault handling: CRC drops are visible, data is gone.
    {
        let mut net = scenarios::cm5_lossy(16, 0.05, 23);
        for (i, (s, d)) in Pattern::AllToAll.pairs(16).iter().enumerate() {
            let _ = net.try_inject(Packet::new(*s, *d, 1, i as u32, vec![0; 4]));
        }
        net.drain_extracting(1_000_000);
        let st = net.stats();
        writeln!(
            out,
            "  detect-only network at 5% corruption: {} delivered, {} detected+dropped (software must recover)",
            st.delivered, st.dropped_corrupt
        )
        .unwrap();
    }

    // 3. CR: corruption is repaired by hardware; full receivers cause
    //    header rejects, not deadlock.
    {
        let mut net = scenarios::cr_lossy(4, 0.1, 7);
        let mut sent = 0u32;
        let mut got = 0u32;
        let mut tick = 0u64;
        while sent < 200 {
            if net
                .try_inject(Packet::new(NodeId::new(0), NodeId::new(1), 1, sent, vec![sent; 4]))
                .is_ok()
            {
                sent += 1;
            }
            net.advance(1);
            tick += 1;
            // Receiver extracts slowly: header rejects occur, nothing is
            // lost, and the rest of the machine stays live.
            if tick.is_multiple_of(3) && net.try_receive(NodeId::new(1)).is_some() {
                got += 1;
            }
        }
        for _ in 0..100_000u32 {
            if net.try_receive(NodeId::new(1)).is_some() {
                got += 1;
            }
            net.advance(1);
            if net.in_flight() == 0 && net.rx_pending(NodeId::new(1)) == 0 {
                break;
            }
        }
        let st = net.stats();
        writeln!(
            out,
            "  CR network at 10% corruption: 200 sent, {got} received, {} hardware retransmissions, {} header rejects, 0 lost",
            st.hw_retransmits, st.rejects
        )
        .unwrap();
    }

    // 4. Finite buffering: a non-extracting receiver stalls a raw
    //    network (deadlock/overflow hazard), while CMAM's preallocating
    //    xfer protocol and the CR substrate both stay live.
    {
        let mut net = scenarios::tight_mesh(2, 1, 3);
        let mut refused = 0;
        for i in 0..64u32 {
            if net
                .try_inject(Packet::new(NodeId::new(0), NodeId::new(1), 1, i, vec![0; 4]))
                .is_err()
            {
                refused += 1;
            }
            net.advance(4);
        }
        net.advance(1_000);
        writeln!(
            out,
            "  raw network, receiver never polls: {refused}/64 injections refused, network stalled for {} cycles with {} packets wedged",
            net.stalled_for(),
            net.in_flight()
        )
        .unwrap();
    }

    // 4b. Footnote 6: a fetch pattern with multi-packet replies wedges
    //     one finite-buffer network; the CM-5's two networks make the
    //     round-trip protocol safe.
    {
        use timego_netsim::{DualNetwork, Mesh2D, SwitchedConfig, SwitchedNetwork};
        use timego_workloads::rpc;
        let tight = || {
            SwitchedNetwork::new(
                Mesh2D::new(2, 1),
                SwitchedConfig {
                    link_queue_capacity: 4,
                    rx_queue_capacity: 4,
                    ..SwitchedConfig::default()
                },
            )
        };
        let mut single = tight();
        let one = rpc::run_fetch(&mut single, 64, 2);
        let mut dual = DualNetwork::new(tight(), tight(), rpc::REPLY_TAG);
        let two = rpc::run_fetch(&mut dual, 64, 2);
        writeln!(
            out,
            "  fetch (2-packet replies), one network:  {} of 128 served, {}",
            one.completed,
            if one.finished { "completed" } else { "WEDGED (fetch deadlock)" }
        )
        .unwrap();
        writeln!(
            out,
            "  fetch (2-packet replies), two networks: {} of 128 served, {} (footnote 6)",
            two.completed,
            if two.finished { "completed" } else { "WEDGED" }
        )
        .unwrap();
    }

    // 4c. Flit-level wormhole routing: real torus deadlock, two cures.
    {
        let workload = |net: &mut dyn Network| {
            // Same-cycle injection on distinct first channels, so the
            // cyclic allocation genuinely forms.
            for s in 0..4usize {
                let d = (s + 2) % 4;
                net.try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]))
                    .expect("first channels are free at time zero");
            }
            net.drain_extracting(20_000)
        };
        let mut plain = scenarios::wormhole_torus(4, 1, 3);
        let plain_done = workload(&mut plain);
        let mut dateline = scenarios::wormhole_torus_dateline(4, 1, 3);
        let dateline_done = workload(&mut dateline);
        let mut cr = scenarios::wormhole_torus_cr(4, 1, 0.0, 3);
        let cr_done = workload(&mut cr);
        writeln!(
            out,
            "  wormhole torus ring, 1 VC:        {} (cyclic channel dependency)",
            if plain_done { "drained" } else { "DEADLOCKED" }
        )
        .unwrap();
        writeln!(
            out,
            "  wormhole torus, dateline VCs:     {} (Dally-style avoidance)",
            if dateline_done { "drained" } else { "DEADLOCKED" }
        )
        .unwrap();
        writeln!(
            out,
            "  wormhole torus, CR kill-&-retry:  {} after {} path kills (deadlock freedom independent of acceptance)",
            if cr_done { "drained" } else { "DEADLOCKED" },
            cr.kills()
        )
        .unwrap();
    }

    // 5. The paper's bottom line, measured end to end: the CMAM stream
    //    completes over a lossy raw network only by paying for
    //    sequencing + buffering + acks + retransmission; over CR the
    //    same user service is almost free.
    {
        let data = payloads::mixed(256, 9);
        let mut m = Machine::new(
            share(scenarios::cm5_lossy(4, 0.02, 31)),
            4,
            CmamConfig::default(),
        );
        let id = m.open_stream(NodeId::new(0), NodeId::new(1), StreamConfig::default());
        m.reset_costs();
        let res = m.stream_send(id, &data);
        match res {
            Ok(outcome) => {
                let ok = m.stream_received(id) == data.as_slice();
                let total = m.cpu(NodeId::new(0)).snapshot().total()
                    + m.cpu(NodeId::new(1)).snapshot().total();
                writeln!(
                    out,
                    "  CMAM stream over 2%-lossy raw net: delivered intact = {ok}, {} retransmits, {} dups, {total} instructions",
                    outcome.retransmits, outcome.duplicates
                )
                .unwrap();
            }
            Err(e) => writeln!(out, "  CMAM stream over lossy raw net FAILED: {e}").unwrap(),
        }

        let mut m = Machine::new(share(scenarios::cr_lossy(4, 0.02, 31)), 4, CmamConfig::default());
        m.reset_costs();
        let got = m
            .hl_stream_send(NodeId::new(0), NodeId::new(1), &data)
            .expect("CR stream completes");
        let total =
            m.cpu(NodeId::new(0)).snapshot().total() + m.cpu(NodeId::new(1)).snapshot().total();
        writeln!(
            out,
            "  HL stream over 2%-lossy CR net:  delivered intact = {}, {total} instructions",
            got == data
        )
        .unwrap();
    }

    out
}

/// **Interrupt-versus-polling receive discipline** (footnote 2 of the
/// paper: "the cost for interrupts is very high for the SPARC
/// processor"). Measures both disciplines and tabulates the crossover.
pub fn interrupts() -> String {
    use timego_am::{polling_vs_interrupt, InterruptModel, PollOutcome, Tags};

    let mut out = String::new();
    out.push_str("== Receive discipline: polling vs interrupts (footnote 2) ==\n\n");

    // Measure both disciplines delivering one message.
    let model = InterruptModel::default();
    let mut m = Machine::new(
        share(scenarios::table_in_order(2)),
        2,
        CmamConfig::default(),
    );
    m.am4_send(NodeId::new(0), NodeId::new(1), Tags::USER_BASE, [1, 2, 3, 4])
        .expect("instant substrate accepts");
    m.cpu(NodeId::new(1)).reset();
    assert!(matches!(m.poll(NodeId::new(1)), PollOutcome::Unclaimed(_)));
    let polled = m.cpu(NodeId::new(1)).snapshot().total();

    m.am4_send(NodeId::new(0), NodeId::new(1), Tags::USER_BASE, [1, 2, 3, 4])
        .expect("instant substrate accepts");
    m.cpu(NodeId::new(1)).reset();
    assert!(matches!(
        m.deliver_by_interrupt(NodeId::new(1), model),
        PollOutcome::Unclaimed(_)
    ));
    let interrupted = m.cpu(NodeId::new(1)).snapshot().total();

    writeln!(out, "measured per-message receive cost:").unwrap();
    writeln!(out, "  polled     {polled} instructions (Table 1)").unwrap();
    writeln!(
        out,
        "  interrupt  {interrupted} instructions (trap entry {} + receive 16 + exit {})",
        model.entry, model.exit
    )
    .unwrap();
    writeln!(
        out,
        "\nidle polls/msg | polling total | interrupt total | winner"
    )
    .unwrap();
    for row in polling_vs_interrupt(model, &[0, 2, 5, 8, 10, 15, 25, 50]) {
        writeln!(
            out,
            "{:>14} | {:>13} | {:>15} | {}",
            row.idle_polls,
            row.polling,
            row.interrupt,
            if row.polling <= row.interrupt { "polling" } else { "interrupt" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nBreak-even at ~{:.1} idle polls per message: CMAM's choice to poll\nis right for communication-intensive codes, which is exactly the\npaper's rationale for dismissing the interrupt interface.",
        model.breakeven_idle_polls()
    )
    .unwrap();
    out
}

/// **Improved NIs and DMA** (§5): lowering the base cost raises the
/// *relative* weight of the protocol overheads.
pub fn ni_improvements() -> String {
    use timego_am::measure_xfer_dma;

    let mut out = String::new();
    out.push_str("== §5: improved network interfaces and DMA hardware ==\n\n");
    for words in [64usize, 1024, 4096] {
        let (pio, _) = measure_xfer(words, 4);
        let (dma, _) = measure_xfer_dma(words, 4);
        writeln!(
            out,
            "finite transfer, {words:>4} words: PIO {:>6} instr ({:>4.1}% overhead)  |  DMA {:>6} instr ({:>4.1}% overhead)",
            pio.total(),
            pio.overhead_fraction() * 100.0,
            dma.total(),
            dma.overhead_fraction() * 100.0
        )
        .unwrap();
    }
    out.push('\n');
    // The same effect via cycle weighting: an on-chip NI makes dev
    // accesses cheap, deflating the (dev-heavy) base cost.
    let (c, _) = measure_xfer(1024, 4);
    for (name, model) in [
        ("CM-5 weights (dev=5)", CycleModel::CM5),
        ("unit weights", CycleModel::UNIT),
        ("on-chip NI (dev=1, mem=2)", CycleModel::ONCHIP_NI),
    ] {
        let mut total = 0u64;
        let mut overhead = 0u64;
        for e in Endpoint::ALL {
            for f in Feature::ALL {
                let cy = model.cycles(c.get(e, f));
                total += cy;
                if f.is_overhead() {
                    overhead += cy;
                }
            }
        }
        writeln!(
            out,
            "  {name:<26} overhead share {:>4.1}%",
            100.0 * overhead as f64 / total as f64
        )
        .unwrap();
    }
    out.push_str(
        "\nEvery improvement to the data path makes the untouched protocol\noverhead loom larger — \"paradoxically, such improvements will only\nworsen the situation\" (§7).\n",
    );
    out
}

/// **Segment reuse ablation**: amortizing the preallocation handshake
/// across a batch of transfers to the same destination — attacking the
/// buffer-management half of a small transfer's cost without any
/// hardware change.
pub fn segment_reuse() -> String {
    use timego_netsim::{DeliveryScript, ScriptedNetwork};

    let mut out = String::new();
    out.push_str("== Segment reuse: amortizing buffer management (16-word messages) ==\n\n");
    writeln!(
        out,
        "{:>6} | {:>14} | {:>13} | {:>10} | buffer mgmt share",
        "batch", "separate instr", "batched instr", "saved"
    )
    .unwrap();
    let msg: Vec<u32> = (0..16).collect();
    for k in [1usize, 2, 4, 8, 16, 64] {
        let mut separate = Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        );
        separate.reset_costs();
        for _ in 0..k {
            separate
                .xfer(NodeId::new(0), NodeId::new(1), &msg)
                .expect("instant substrate");
        }
        let sep = separate.cpu(NodeId::new(0)).snapshot().total()
            + separate.cpu(NodeId::new(1)).snapshot().total();

        let mut batched = Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        );
        batched.reset_costs();
        let messages: Vec<&[u32]> = (0..k).map(|_| msg.as_slice()).collect();
        batched
            .xfer_batch(NodeId::new(0), NodeId::new(1), &messages)
            .expect("instant substrate");
        let src = batched.cpu(NodeId::new(0)).snapshot();
        let dst = batched.cpu(NodeId::new(1)).snapshot();
        let bat = src.total() + dst.total();
        let bm = src.feature_total(Feature::BufferMgmt) + dst.feature_total(Feature::BufferMgmt);
        writeln!(
            out,
            "{k:>6} | {sep:>14} | {bat:>13} | {:>9.1}% | {:>4.1}%",
            100.0 * (sep - bat) as f64 / sep as f64,
            100.0 * bm as f64 / bat as f64
        )
        .unwrap();
    }
    out.push_str(
        "\nOne handshake serves the whole batch: buffer management collapses\nfrom ~37% of each small transfer to a constant 148 instructions —\nsoftware can amortize, but only the high-level network eliminates.\n",
    );
    out
}

/// **The routing-performance / software-overhead tension** (§5,
/// "Implications for network design"): adaptive multipath routing
/// reduces in-network latency under load but destroys delivery order,
/// and the software cost of restoring order can exceed the routing
/// benefit.
pub fn tension() -> String {
    let mut out = String::new();
    out.push_str("== §5: routing performance vs software overhead ==\n\n");
    out.push_str("64-node fat tree, random-permutation traffic, increasing load.\n");
    out.push_str("Adaptive routing buys network latency but reorders packets; software\n");
    out.push_str("sequencing+reordering costs (per packet: 5 at the source, 6 or 52 at\n");
    out.push_str("the receiver) are charged at CM-5 unit weights.\n\n");
    writeln!(
        out,
        "{:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>7} | {:>9} | {:>9} | net effect",
        "burst", "det lat", "dlvd", "ada lat", "dlvd", "ooo%", "lat saved", "sw added"
    )
    .unwrap();

    for burst in [1u32, 2, 4, 8, 16] {
        let run = |adaptive: bool| {
            let mut net: Box<dyn Network> = if adaptive {
                Box::new(scenarios::cm5_adaptive(64, 7))
            } else {
                Box::new(scenarios::cm5_deterministic(64, 7))
            };
            let pairs = Pattern::RandomPermutation(11).pairs(64);
            for round in 0..(8 * burst) {
                for (s, d) in &pairs {
                    let _ = net.try_inject(Packet::new(*s, *d, 1, round, vec![round; 4]));
                }
                net.advance((16 / burst).max(1) as u64);
            }
            net.drain_extracting(1_000_000);
            (
                net.stats().latency.mean(),
                net.stats().order.ooo_fraction(),
                net.stats().delivered,
            )
        };
        let (det_lat, _, det_dlvd) = run(false);
        let (ada_lat, ooo, ada_dlvd) = run(true);
        let lat_saved = det_lat - ada_lat;
        // Software cost the reordering forces on the messaging layer,
        // per packet: sequence generation (5) + in-sequence check (6) on
        // every packet, plus the 46-instruction out-of-order surcharge
        // on the reordered fraction.
        let sw_added = 5.0 + 6.0 + 46.0 * ooo;
        let net_effect = lat_saved - sw_added;
        writeln!(
            out,
            "{:>6} | {:>9.1} {:>6} | {:>9.1} {:>6} | {:>6.1}% | {:>9.1} | {:>9.1} | {}",
            burst,
            det_lat,
            det_dlvd,
            ada_lat,
            ada_dlvd,
            ooo * 100.0,
            lat_saved,
            sw_added,
            if net_effect >= 0.0 { "adaptive wins" } else { "software cost outweighs" }
        )
        .unwrap();
    }
    out.push_str(
        "\nUnder heavy load the adaptive network accepts and delivers more\npackets (its throughput benefit), which inflates its in-network\nlatency — compare the delivered columns. The like-for-like row is the\nlight-load one: adaptive routing saves some network cycles per packet,\nbut the sequencing/reordering software it forces costs more than it\nsaves. \"Because software overhead is generally much larger than\nhardware routing time, in many cases, the overheads of such features\nwill outweigh their benefits.\" (§5)\n",
    );
    out
}

/// One row of the engine-concurrency scaling study.
#[derive(Debug, Clone)]
pub struct ConcurrencyRow {
    /// Concurrent transfers interleaved through one engine run.
    pub k: usize,
    /// Total payload words moved.
    pub words: u64,
    /// Network cycles for the same transfers run back to back through
    /// the blocking API.
    pub serial_cycles: u64,
    /// Network cycles for one engine run interleaving all `k`.
    pub engine_cycles: u64,
    /// Instructions charged across all nodes by the engine run.
    pub instr_engine: u64,
    /// Instructions charged across all nodes by the serial runs.
    pub instr_serial: u64,
    /// Per-feature instruction totals of the engine run, summed over
    /// all nodes, in [`Feature::ALL`] order.
    pub per_feature: [u64; 4],
}

impl ConcurrencyRow {
    /// Serial cycles over engine cycles: the overlap win.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.engine_cycles as f64
    }

    /// Aggregate throughput of the engine run, payload words per
    /// network cycle.
    #[must_use]
    pub fn words_per_cycle(&self) -> f64 {
        self.words as f64 / self.engine_cycles as f64
    }
}

fn total_instr(m: &Machine, nodes: usize) -> u64 {
    (0..nodes).map(|i| m.cpu(NodeId::new(i)).snapshot().total()).sum()
}

/// Measure the engine-concurrency scaling study: `k` reliable 256-word
/// transfers on disjoint node pairs of a 32-node adaptive fat tree,
/// once back to back through the blocking API and once interleaved
/// through a single engine run, for every `k` in
/// [`sweeps::CONCURRENCY_KS`].
#[must_use]
pub fn concurrency_rows() -> Vec<ConcurrencyRow> {
    const NODES: usize = 32;
    const WORDS: usize = 256;
    let policy = RetryPolicy::default();
    sweeps::CONCURRENCY_KS
        .iter()
        .map(|&k| {
            let pairs: Vec<_> =
                (0..k).map(|i| (NodeId::new(2 * i), NodeId::new(2 * i + 1))).collect();
            let ops = concurrent::plan(&pairs, concurrent::TrafficKind::Reliable, WORDS, 21);

            let mut m = concurrent::switched_machine(NODES, 21);
            let t0 = m.network().borrow().now();
            for op in &ops {
                m.xfer_reliable(op.src, op.dst, &op.data, &policy).expect("clean substrate");
            }
            let serial_cycles = m.network().borrow().now() - t0;
            let instr_serial = total_instr(&m, NODES);

            let mut m = concurrent::switched_machine(NODES, 21);
            let out = concurrent::run_concurrent(&mut m, &ops, &policy);
            assert_eq!(out.completed, k, "failures: {:?}", out.failures);
            let instr_engine = total_instr(&m, NODES);
            let mut per_feature = [0u64; 4];
            for (slot, f) in per_feature.iter_mut().zip(Feature::ALL) {
                *slot =
                    (0..NODES).map(|i| m.cpu(NodeId::new(i)).snapshot().feature_total(f)).sum();
            }
            ConcurrencyRow {
                k,
                words: out.words_moved,
                serial_cycles,
                engine_cycles: out.elapsed_cycles,
                instr_engine,
                instr_serial,
                per_feature,
            }
        })
        .collect()
}

/// **Engine concurrency report** — aggregate throughput and per-feature
/// cost versus the number of transfers interleaved through one engine
/// run. The per-operation software cost is unchanged by concurrency
/// (the cost-identity property tests pin this); only wall cycles
/// shrink, because independent state machines overlap their network
/// round trips.
pub fn concurrency() -> String {
    let rows = concurrency_rows();
    let mut out = String::new();
    out.push_str("== Engine concurrency: throughput vs concurrent transfers ==\n\n");
    out.push_str("32 nodes, adaptive fat tree, 256-word reliable transfers on disjoint\n");
    out.push_str("pairs. 'serial' runs the blocking API back to back; 'engine' drives\n");
    out.push_str("all k per-operation state machines through one scheduler run.\n\n");
    writeln!(
        out,
        "{:>3} | {:>6} | {:>10} | {:>10} | {:>7} | {:>9} | {:>12}",
        "k", "words", "serial cyc", "engine cyc", "speedup", "words/cyc", "instr"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>3} | {:>6} | {:>10} | {:>10} | {:>6.2}x | {:>9.3} | {:>12}",
            r.k,
            r.words,
            r.serial_cycles,
            r.engine_cycles,
            r.speedup(),
            r.words_per_cycle(),
            r.instr_engine
        )
        .unwrap();
    }
    out.push('\n');
    writeln!(
        out,
        "{:>3} | {:>8} | {:>10} | {:>8} | {:>8} | instr == serial?",
        "k", "Base", "BufferMgmt", "InOrder", "FaultTol"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:>3} | {:>8} | {:>10} | {:>8} | {:>8} | {}",
            r.k,
            r.per_feature[0],
            r.per_feature[1],
            r.per_feature[2],
            r.per_feature[3],
            if r.instr_engine == r.instr_serial { "identical" } else { "DIFF" }
        )
        .unwrap();
    }
    out.push_str(
        "\nConcurrency is free at the instruction level: every feature total is\n\
         exactly k times the single-transfer bill, and identical to the serial\n\
         runs — the engine interleaves waiting, not work. The speedup column\n\
         is the paper's latency story inverted: once software cost per\n\
         operation is fixed, overlapping round trips is the only lever left.\n",
    );
    out
}

/// One load point of the congestion/saturation study: a (pattern ×
/// substrate × injection interval) cell of the sweep.
#[derive(Debug, Clone)]
pub struct CongestionRow {
    /// Substrate label (`"cm5"` for the switched adaptive fat tree,
    /// `"cr"` for the in-order/reliable/flow-controlled network).
    pub substrate: &'static str,
    /// Traffic pattern name (from [`Pattern::name`]).
    pub pattern: String,
    /// Cycles between submissions (the open-loop injection interval).
    pub interval: u64,
    /// Offered load, payload words per cycle (`words / interval`).
    pub offered: f64,
    /// Delivered throughput, payload words per elapsed cycle.
    pub delivered: f64,
    /// Operations that completed, of those offered.
    pub completed: usize,
    /// Operations offered at this load point.
    pub offered_ops: usize,
    /// Injection attempts the substrate refused with backpressure.
    pub backpressure: u64,
    /// Highest receive-queue depth any node reached.
    pub peak_rx_depth: usize,
    /// Packet injection→delivery latency percentiles (histogram bucket
    /// upper bounds), in cycles.
    pub pkt_p50: u64,
    /// Packet latency p95, cycles.
    pub pkt_p95: u64,
    /// Packet latency p99, cycles.
    pub pkt_p99: u64,
    /// Operation submission→completion percentiles from the
    /// cycle-stamped engine trace (queueing included), in cycles.
    pub comp_p50: u64,
    /// Completion time p95, cycles.
    pub comp_p95: u64,
    /// Completion time p99, cycles.
    pub comp_p99: u64,
}

impl CongestionRow {
    /// Delivered throughput in milli-words per cycle, rounded — the
    /// integer form emitted into `BENCH_results.json`.
    #[must_use]
    pub fn delivered_milli(&self) -> u64 {
        (self.delivered * 1000.0).round() as u64
    }
}

/// The patterns the congestion study sweeps.
fn congestion_patterns() -> [Pattern; 3] {
    [Pattern::Hotspot, Pattern::AllToAll, Pattern::RandomPermutation(9)]
}

/// Measure the congestion/saturation sweep over the given injection
/// intervals: every (pattern × substrate) combination is driven
/// open-loop at each interval on a fresh machine, per the grid in
/// [`sweeps::CONGESTION_INTERVALS`] (or
/// [`sweeps::CONGESTION_QUICK_INTERVALS`] for smoke runs).
#[must_use]
pub fn congestion_rows(intervals: &[u64]) -> Vec<CongestionRow> {
    use timego_workloads::load::{cr_machine, run_offered_load, LoadSpec};

    let mut rows = Vec::new();
    for substrate in ["cm5", "cr"] {
        for pattern in congestion_patterns() {
            for &interval in intervals {
                let nodes = sweeps::CONGESTION_NODES;
                let mut m = match substrate {
                    "cm5" => concurrent::switched_machine(nodes, 42),
                    _ => cr_machine(nodes, 42),
                };
                let spec = LoadSpec {
                    pattern,
                    nodes,
                    words: sweeps::CONGESTION_WORDS,
                    interval,
                    ops: sweeps::CONGESTION_OPS,
                    seed: 7,
                };
                let out = run_offered_load(&mut m, &spec);
                rows.push(CongestionRow {
                    substrate,
                    pattern: pattern.name().to_string(),
                    interval,
                    offered: spec.offered_words_per_cycle(),
                    delivered: out.delivered_words_per_cycle(),
                    completed: out.completed,
                    offered_ops: out.offered,
                    backpressure: out.backpressure,
                    peak_rx_depth: out.peak_rx_depth,
                    pkt_p50: out.packet_latency.quantile(0.50),
                    pkt_p95: out.packet_latency.quantile(0.95),
                    pkt_p99: out.packet_latency.quantile(0.99),
                    comp_p50: out.completion.quantile(0.50),
                    comp_p95: out.completion.quantile(0.95),
                    comp_p99: out.completion.quantile(0.99),
                });
            }
        }
    }
    rows
}

/// Render the congestion report from measured rows (use
/// [`congestion_rows`] to produce them).
#[must_use]
pub fn congestion_report(rows: &[CongestionRow]) -> String {
    let mut out = String::new();
    out.push_str("== Congestion & saturation: offered load vs delivered throughput and tail latency ==\n\n");
    writeln!(
        out,
        "{} nodes, {}-word transfers, {} ops per load point, open-loop\ninjection (one submission every `interval` cycles regardless of\ncompletions). Percentiles are log-histogram bucket upper bounds;\ncompletion times are measured from cycle-stamped engine events and\ninclude conflict-key queueing (see DESIGN.md §8).",
        sweeps::CONGESTION_NODES,
        sweeps::CONGESTION_WORDS,
        sweeps::CONGESTION_OPS
    )
    .unwrap();
    let mut group = String::new();
    for r in rows {
        let this = format!("{} / {}", r.substrate, r.pattern);
        if this != group {
            writeln!(out, "\n-- {this} --").unwrap();
            writeln!(
                out,
                "{:>8} | {:>7} | {:>9} | {:>5} | {:>4} | {:>7} | {:>17} | {:>17}",
                "interval",
                "offered",
                "delivered",
                "done",
                "bp",
                "peak-rx",
                "pkt p50/p95/p99",
                "comp p50/p95/p99"
            )
            .unwrap();
            group = this;
        }
        writeln!(
            out,
            "{:>8} | {:>7.3} | {:>9.4} | {:>2}/{:<2} | {:>4} | {:>7} | {:>5}/{:>5}/{:>5} | {:>5}/{:>5}/{:>5}",
            r.interval,
            r.offered,
            r.delivered,
            r.completed,
            r.offered_ops,
            r.backpressure,
            r.peak_rx_depth,
            r.pkt_p50,
            r.pkt_p95,
            r.pkt_p99,
            r.comp_p50,
            r.comp_p95,
            r.comp_p99
        )
        .unwrap();
    }
    out.push_str(
        "\nThe knee: on the CM-5-like substrate, hotspot throughput flattens\n\
         near 1.5 words/cycle while completion p99 keeps climbing — queueing,\n\
         not instruction count, dominates past saturation. The CR-like\n\
         substrate's hardware flow control carries the same offered loads at\n\
         several times the delivered throughput with flat tails: its\n\
         high-level services shift congestion out of software.\n",
    );
    out
}

/// **Congestion & saturation report** over the full interval grid.
#[must_use]
pub fn congestion() -> String {
    congestion_report(&congestion_rows(&sweeps::CONGESTION_INTERVALS))
}

/// **Congestion sweep as CSV** (for plotting), one row per load point.
#[must_use]
pub fn congestion_csv() -> String {
    let mut out = String::from(
        "substrate,pattern,interval,offered_wpc,delivered_wpc,completed,offered_ops,backpressure,peak_rx_depth,pkt_p50,pkt_p95,pkt_p99,comp_p50,comp_p95,comp_p99\n",
    );
    for r in congestion_rows(&sweeps::CONGESTION_INTERVALS) {
        writeln!(
            out,
            "{},{},{},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{}",
            r.substrate,
            r.pattern,
            r.interval,
            r.offered,
            r.delivered,
            r.completed,
            r.offered_ops,
            r.backpressure,
            r.peak_rx_depth,
            r.pkt_p50,
            r.pkt_p95,
            r.pkt_p99,
            r.comp_p50,
            r.comp_p95,
            r.comp_p99
        )
        .unwrap();
    }
    out
}

/// **Engine concurrency as CSV** (for plotting).
pub fn concurrency_csv() -> String {
    let mut out = String::from(
        "k,words_total,serial_cycles,engine_cycles,speedup,words_per_cycle,instr_total,base,buffer_mgmt,in_order,fault_tol\n",
    );
    for r in concurrency_rows() {
        writeln!(
            out,
            "{},{},{},{},{:.4},{:.4},{},{},{},{},{}",
            r.k,
            r.words,
            r.serial_cycles,
            r.engine_cycles,
            r.speedup(),
            r.words_per_cycle(),
            r.instr_engine,
            r.per_feature[0],
            r.per_feature[1],
            r.per_feature[2],
            r.per_feature[3]
        )
        .unwrap();
    }
    out
}

/// One cell of the collectives scaling study: a (collective × node
/// count) pair run both phase-serially and as an engine dependency DAG.
#[derive(Debug, Clone)]
pub struct CollectivesRow {
    /// Which collective: `"broadcast"` or `"allreduce"`.
    pub collective: &'static str,
    /// Participating nodes (power of two).
    pub nodes: usize,
    /// Network cycles when rounds are separated by full barriers (one
    /// engine run per tree round).
    pub phased_cycles: u64,
    /// Network cycles for the single engine run over the run-after DAG.
    pub engine_cycles: u64,
    /// Instructions charged across all nodes by the engine-native run.
    pub instr_engine: u64,
    /// Instructions charged across all nodes by the phase-serial run.
    pub instr_phased: u64,
}

impl CollectivesRow {
    /// Phased cycles over engine cycles: what run-after overlap buys.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.phased_cycles as f64 / self.engine_cycles as f64
    }
}

/// Measure the collectives scaling study on a deterministic fat tree:
/// binomial broadcast and recursive-doubling all-reduce at each node
/// count, once phase-serial (barrier between tree rounds) and once as
/// one engine run over the dependency DAG.
#[must_use]
pub fn collectives_rows(node_counts: &[usize]) -> Vec<CollectivesRow> {
    use timego_workloads::apps::collectives as coll;
    let mut out = Vec::new();
    for &nodes in node_counts {
        let machine =
            || Machine::new(share(scenarios::cm5_deterministic(nodes, 2)), nodes, CmamConfig::default());
        let inputs: Vec<u32> = (0..nodes as u32).map(|i| i * 3 + 1).collect();

        let mut m = machine();
        let t0 = m.network().borrow().now();
        let phased = coll::broadcast_phased(&mut m, NodeId::new(0), [7; 4]).expect("clean substrate");
        let bcast_phased_cycles = m.network().borrow().now() - t0;
        let bcast_instr_phased = total_instr(&m, nodes);
        let mut m = machine();
        let t0 = m.network().borrow().now();
        let dag = coll::broadcast(&mut m, NodeId::new(0), [7; 4]).expect("clean substrate");
        assert_eq!(phased, dag, "broadcast results agree at {nodes} nodes");
        out.push(CollectivesRow {
            collective: "broadcast",
            nodes,
            phased_cycles: bcast_phased_cycles,
            engine_cycles: m.network().borrow().now() - t0,
            instr_engine: total_instr(&m, nodes),
            instr_phased: bcast_instr_phased,
        });

        let mut m = machine();
        let t0 = m.network().borrow().now();
        let phased = coll::allreduce_phased(&mut m, &inputs).expect("clean substrate");
        let ar_phased_cycles = m.network().borrow().now() - t0;
        let ar_instr_phased = total_instr(&m, nodes);
        let mut m = machine();
        let t0 = m.network().borrow().now();
        let dag = coll::allreduce_sum(&mut m, &inputs).expect("clean substrate");
        assert_eq!(phased, dag, "allreduce results agree at {nodes} nodes");
        out.push(CollectivesRow {
            collective: "allreduce",
            nodes,
            phased_cycles: ar_phased_cycles,
            engine_cycles: m.network().borrow().now() - t0,
            instr_engine: total_instr(&m, nodes),
            instr_phased: ar_instr_phased,
        });
    }
    out
}

/// Render the collectives scaling study from measured rows.
#[must_use]
pub fn collectives_report(rows: &[CollectivesRow]) -> String {
    let mut out = String::new();
    out.push_str("== Collectives: engine-native dependency DAGs vs phase-serial rounds ==\n\n");
    out.push_str("Deterministic fat tree. 'phased' separates tree rounds with a full\n");
    out.push_str("barrier (one engine run per round); 'engine' submits the whole\n");
    out.push_str("collective as one run-after DAG, so independent subtrees overlap.\n");
    out.push_str("Same edges, same Table 1 shapes: on a contention-free substrate the\n");
    out.push_str("bills are identical (test-pinned); here the DAG's higher\n");
    out.push_str("instantaneous load can buy a few extra backpressure retries, shown\n");
    out.push_str("as 'instr Δ' (engine minus phased, each retry one 20-instr resend).\n\n");
    writeln!(
        out,
        "{:>9} | {:>5} | {:>10} | {:>10} | {:>7} | {:>12} | {:>7}",
        "collective", "nodes", "phased cyc", "engine cyc", "speedup", "instr engine", "instr Δ"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:>9} | {:>5} | {:>10} | {:>10} | {:>6.2}x | {:>12} | {:>+7}",
            r.collective,
            r.nodes,
            r.phased_cycles,
            r.engine_cycles,
            r.speedup(),
            r.instr_engine,
            r.instr_engine as i64 - r.instr_phased as i64,
        )
        .unwrap();
    }
    out.push_str(
        "\nThe win grows with the tree depth: more rounds means more barrier\n\
         stalls for the phased form to pay and more independent subtrees for\n\
         the DAG to overlap. This is the control-network story inverted: the\n\
         CM-5 bought collective speed with dedicated hardware; run-after\n\
         dependencies buy it back in software scheduling, essentially free\n\
         at the instruction level.\n",
    );
    out
}

/// **Collectives scaling report** over the full node grid.
#[must_use]
pub fn collectives() -> String {
    collectives_report(&collectives_rows(&sweeps::COLLECTIVE_NODES))
}

/// **Collectives sweep as CSV** (for plotting), one row per cell.
#[must_use]
pub fn collectives_csv() -> String {
    let mut out = String::from(
        "collective,nodes,phased_cycles,engine_cycles,speedup,instr_engine,instr_phased\n",
    );
    for r in collectives_rows(&sweeps::COLLECTIVE_NODES) {
        writeln!(
            out,
            "{},{},{},{},{:.4},{},{}",
            r.collective,
            r.nodes,
            r.phased_cycles,
            r.engine_cycles,
            r.speedup(),
            r.instr_engine,
            r.instr_phased
        )
        .unwrap();
    }
    out
}

/// One (protocol family, crash window) point of the crash-recovery
/// study.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Protocol family measured: `"xfer"`, `"stream"`, `"rpc"`, or
    /// `"collective"`.
    pub family: &'static str,
    /// Crash window length in cycles (`0` = no crash, the baseline).
    pub window: u64,
    /// Seeds run at this point.
    pub seeds: u64,
    /// Transfers that converged to byte-exact delivery (must be all).
    pub completed: u64,
    /// Whole-session re-executions summed over all seeds.
    pub re_executions: u64,
    /// Mean network cycles to converged delivery, across seeds.
    pub avg_cycles: u64,
    /// Fault-tolerance instructions at the measured nodes (both
    /// endpoints; every node for the collective), summed over seeds —
    /// the full price of recovery.
    pub fault_tol_instr: u64,
    /// All other feature instructions (base + buffer management +
    /// in-order) at the measured nodes, summed over seeds. Each
    /// re-execution is a fresh session paying the ordinary protocol
    /// bill, so this scales with `1 + re_executions` per seed — never
    /// with the fault itself.
    pub other_instr: u64,
}

/// Measure one (family, window) cell of the crash-recovery study on a
/// 16-node adaptive fat tree: per seed, one operation of the family is
/// driven through [`Machine`]'s engine-native recovering entry point
/// while the crash node loses its protocol state from cycle 50 for
/// `window` cycles and restarts. Every cell must converge to
/// exactly-once, byte-exact delivery.
///
/// Families and their crash targets:
/// * `"xfer"` — 256-word reliable transfer 2 → 9; receiver crashes.
/// * `"stream"` — 256-word stream send 3 → 9; receiver crashes.
/// * `"rpc"` — 8 calls 4 → 9; the *callee* crashes (exactly-once is
///   pinned by a handler-run counter: the reply cache answers engine
///   re-executions, a restarted incarnation legitimately runs afresh).
/// * `"collective"` — binomial-tree broadcast from node 0; an interior
///   node (5) crashes mid-fan-out and its subtree recovers in-DAG.
#[must_use]
pub fn recovery_family_row(family: &'static str, window: u64, seeds: u64) -> RecoveryRow {
    let nodes = sweeps::RECOVERY_NODES;
    let policy = RetryPolicy::default();
    let recovery = RecoveryPolicy::default();
    let mut row = RecoveryRow {
        family,
        window,
        seeds,
        completed: 0,
        re_executions: 0,
        avg_cycles: 0,
        fault_tol_instr: 0,
        other_instr: 0,
    };
    let mut cycles_total = 0u64;
    for seed in 0..seeds {
        // The broadcast fans out in a few dozen cycles, so its crash
        // window opens at cycle 10 to land mid-fan-out; the point-to-
        // point families run long enough for cycle 50 to do the same.
        let (crash_node, start) = if family == "collective" {
            (NodeId::new(5), 10)
        } else {
            (NodeId::new(9), 50)
        };
        let fault = if window == 0 {
            FaultConfig::default()
        } else {
            FaultConfig {
                crashes: vec![CrashWindow { node: crash_node, start, end: start + window }],
                ..FaultConfig::default()
            }
        };
        let mut m = Machine::new(
            share(scenarios::cm5_chaos(nodes, fault, seed)),
            nodes,
            CmamConfig::default(),
        );
        let data = payloads::mixed(sweeps::RECOVERY_WORDS, seed);
        let t0 = m.network().borrow().now();
        let (delivered, re_execs, billed): (bool, u64, Vec<NodeId>) = match family {
            "xfer" => {
                let (src, dst) = (NodeId::new(2), NodeId::new(9));
                m.reset_costs();
                let (out, re) = m
                    .xfer_reliable_recovering(src, dst, &data, &policy)
                    .expect("xfer crash recovery must converge");
                let ok = m.read_buffer(dst, out.xfer.dst_buffer, data.len()) == data;
                (ok, u64::from(re), vec![src, dst])
            }
            "stream" => {
                let (src, dst) = (NodeId::new(3), NodeId::new(9));
                let id = m.open_stream(src, dst, StreamConfig::default());
                m.reset_costs();
                let (_, re) = m
                    .stream_send_recovering(id, &data, &recovery)
                    .expect("stream crash recovery must converge");
                let ok = m.stream_received(id) == data;
                (ok, u64::from(re), vec![src, dst])
            }
            "rpc" => {
                let (src, dst) = (NodeId::new(4), NodeId::new(9));
                m.register_rpc_handler(dst, 40, |_, msg| [msg.words[0].wrapping_mul(3), 0, 0, 0]);
                m.reset_costs();
                let mut ok = true;
                let mut re_total = 0u64;
                for v in 0..8u32 {
                    let (reply, re) = m
                        .rpc_call_recovering(src, dst, 40, [v, 0, 0, 0], &policy, &recovery)
                        .expect("rpc crash recovery must converge");
                    ok &= reply[0] == v.wrapping_mul(3);
                    re_total += u64::from(re);
                }
                (ok, re_total, vec![src, dst])
            }
            "collective" => {
                m.reset_costs();
                let (seen, re) = collectives::broadcast_recovering(
                    &mut m,
                    NodeId::new(0),
                    [7, 7, 7, 7],
                    &recovery,
                )
                .expect("collective crash recovery must converge");
                let ok = seen.iter().all(|v| *v == [7, 7, 7, 7]);
                (ok, u64::from(re), (0..nodes).map(NodeId::new).collect())
            }
            other => panic!("unknown recovery family {other}"),
        };
        cycles_total += m.network().borrow().now() - t0;
        if delivered {
            row.completed += 1;
        }
        row.re_executions += re_execs;
        for node in billed {
            let snap = m.cpu(node).snapshot();
            for f in Feature::ALL {
                if f == Feature::FaultTol {
                    row.fault_tol_instr += snap.feature_total(f);
                } else {
                    row.other_instr += snap.feature_total(f);
                }
            }
        }
    }
    row.avg_cycles = cycles_total / seeds.max(1);
    row
}

/// The full crash-recovery grid: every protocol family crossed with
/// every crash-window length. See [`recovery_family_row`].
#[must_use]
pub fn recovery_rows(windows: &[u64], seeds: u64) -> Vec<RecoveryRow> {
    sweeps::RECOVERY_FAMILIES
        .iter()
        .flat_map(|&family| {
            windows.iter().map(move |&window| recovery_family_row(family, window, seeds))
        })
        .collect()
}

/// **Crash-recovery report** — exactly-once convergence cost versus
/// crash-window length, for every protocol family. The
/// non-fault-tolerance bill is flat across the sweep (recovery never
/// leaks into the paper-protocol features); what grows with the outage
/// is fault-tolerance work and wall-clock cycles spent re-executing
/// and backing off.
#[must_use]
pub fn recovery_report(rows: &[RecoveryRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "== Crash recovery: exactly-once delivery vs crash-window length, per family ==\n\n",
    );
    out.push_str("16 nodes, adaptive fat tree; the crash node loses its protocol state\n");
    out.push_str("mid-operation (cycle 50; cycle 10 for the fast collective fan-out)\n");
    out.push_str("and restarts after the window. Sessions die via restart detection or\n");
    out.push_str("timeout; the engine parks the felled operation for its backoff window\n");
    out.push_str("and re-executes it under a fresh epoch until delivery (same OpId, no\n");
    out.push_str("caller-side loop). xfer/stream: 256 words into the crashing receiver;\n");
    out.push_str("rpc: 8 calls to the crashing callee, exactly-once via the reply\n");
    out.push_str("cache; collective: broadcast with an interior tree node crashing\n");
    out.push_str("mid-fan-out, its subtree recovering in-DAG.\n\n");
    writeln!(
        out,
        "{:>10} | {:>7} | {:>5} | {:>9} | {:>8} | {:>9} | {:>14} | {:>11}",
        "family", "window", "seeds", "delivered", "re-execs", "avg cyc", "faulttol instr",
        "other instr"
    )
    .unwrap();
    let mut last_family = "";
    for r in rows {
        if !last_family.is_empty() && r.family != last_family {
            out.push('\n');
        }
        last_family = r.family;
        writeln!(
            out,
            "{:>10} | {:>7} | {:>5} | {:>9} | {:>8} | {:>9} | {:>14} | {:>11}",
            r.family,
            r.window,
            r.seeds,
            r.completed,
            r.re_executions,
            r.avg_cycles,
            r.fault_tol_instr,
            r.other_instr
        )
        .unwrap();
    }
    out.push_str(
        "\nEvery cell delivers exactly once, byte-exact. The crash-specific\n\
         software price — restart detection, session re-establishment,\n\
         stale-epoch discards, retried handshakes, receiver-side GC of the\n\
         dead incarnation's sessions — lands in the fault-tolerance\n\
         feature. The other feature bills scale only with the number of\n\
         whole-session executions (each re-execution is a fresh session\n\
         paying the ordinary paper-protocol bill), never with the fault:\n\
         the paper's separability of feature costs, extended to node\n\
         failure across every protocol family.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_rows_converge_and_bill_fault_tolerance_per_family() {
        let rows =
            recovery_rows(&sweeps::RECOVERY_CRASH_WINDOWS_QUICK, sweeps::RECOVERY_SEEDS_QUICK);
        assert_eq!(
            rows.len(),
            sweeps::RECOVERY_FAMILIES.len() * sweeps::RECOVERY_CRASH_WINDOWS_QUICK.len()
        );
        for family in sweeps::RECOVERY_FAMILIES {
            let fam: Vec<&RecoveryRow> = rows.iter().filter(|r| r.family == family).collect();
            let baseline = fam.iter().find(|r| r.window == 0).expect("a clean baseline");
            assert_eq!(
                baseline.completed, baseline.seeds,
                "{family}: clean baseline must deliver"
            );
            assert_eq!(baseline.re_executions, 0, "{family}: no crash, no re-execution");
            let crashed = fam.iter().find(|r| r.window > 0).expect("a crash point");
            assert_eq!(
                crashed.completed, crashed.seeds,
                "{family}: recovery must converge everywhere"
            );
            assert!(crashed.re_executions > 0, "{family}: the crash must force re-execution");
            assert!(
                crashed.fault_tol_instr > baseline.fault_tol_instr,
                "{family}: recovery work must bill fault tolerance"
            );
        }
        let report = recovery_report(&rows);
        assert!(report.contains("re-execs"), "{report}");
        for family in sweeps::RECOVERY_FAMILIES {
            assert!(report.contains(family), "{family} missing from report");
        }
    }

    #[test]
    fn table1_report_is_all_ok() {
        let t = table1();
        assert!(t.contains("[OK ] source total"));
        assert!(!t.contains("DIFF"));
    }

    #[test]
    fn table2_report_matches_paper() {
        let t = table2();
        assert!(t.contains("11737"));
        assert!(t.contains("29965"));
        assert!(t.contains("481"));
        assert!(!t.contains("DIFF"));
    }

    #[test]
    fn table3_report_matches_paper() {
        let t = table3();
        assert!(!t.contains("DIFF"));
    }

    #[test]
    fn figure8_validation_all_match() {
        let f = figure8();
        assert!(f.contains("MATCH"));
        assert!(!f.contains("MISMATCH"));
    }

    #[test]
    fn figure6_reports_seventy_percent_reduction() {
        let f = figure6();
        assert!(f.contains("indefinite sequence, 1024 words: 7"), "{f}");
    }

    #[test]
    fn substrate_demo_shows_the_features() {
        let d = substrate_demo();
        assert!(d.contains("out of order"));
        assert!(d.contains("detected+dropped"));
        assert!(d.contains("hardware retransmissions"));
        assert!(d.contains("delivered intact = true"), "{d}");
        assert!(!d.contains("FAILED"), "{d}");
        assert!(d.contains("WEDGED (fetch deadlock)"), "{d}");
        assert!(d.contains("two networks: 128 of 128 served, completed"), "{d}");
        assert!(d.contains("1 VC:        DEADLOCKED"), "{d}");
        assert!(d.contains("dateline VCs:     drained"), "{d}");
        assert!(d.contains("CR kill-&-retry:  drained"), "{d}");
    }

    #[test]
    fn group_ack_overhead_declines_with_period() {
        let (g1, _) = measure_stream(1024, 4, 1);
        let (g16, _) = measure_stream(1024, 4, 16);
        assert!(g16.overhead_fraction() < g1.overhead_fraction());
        assert!(g16.overhead_fraction() > 0.4, "remains significant");
    }

    #[test]
    fn cycle_model_report_runs() {
        let c = cycle_model();
        assert!(c.contains("CM-5"));
        assert!(c.contains("overhead"));
    }

    #[test]
    fn interrupts_report_shows_crossover() {
        let r = interrupts();
        assert!(r.contains("polled     27 instructions"));
        assert!(r.contains("| polling"));
        assert!(r.contains("| interrupt"));
    }

    #[test]
    fn ni_improvements_report_shows_the_paradox() {
        let r = ni_improvements();
        assert!(r.contains("DMA"));
        // Overhead percentages rise left (PIO) to right (DMA); assert
        // the famous quote made it in, and that the DMA totals shrank.
        assert!(r.contains("worsen the situation"));
    }

    #[test]
    fn tension_report_concludes_software_dominates() {
        let r = tension();
        assert!(r.contains("software cost outweighs"), "{r}");
    }

    #[test]
    fn latency_report_shows_software_dominance() {
        let r = latency();
        assert!(r.contains("software"));
        assert!(r.contains("single packet"));
        assert!(!r.contains("NaN"));
    }

    #[test]
    fn csv_exports_parse_back() {
        let t = table2_csv();
        assert!(t.contains("feature,src_reg"));
        assert!(t.contains("11737"));
        let f = figure8_csv();
        assert!(f.contains("packet_words,overhead_fraction"));
        assert_eq!(f.matches('\n').count(), 2 + 2 + 2 * 6); // headers + comments + 12 rows
    }

    #[test]
    fn concurrency_overlaps_without_changing_instruction_totals() {
        let rows = concurrency_rows();
        assert_eq!(rows.len(), sweeps::CONCURRENCY_KS.len());
        for r in &rows {
            assert_eq!(
                r.instr_engine, r.instr_serial,
                "k={}: concurrency must not change the software bill",
                r.k
            );
            assert_eq!(r.words, 256 * r.k as u64);
        }
        let k16 = rows.last().unwrap();
        assert!(
            k16.speedup() > 1.5,
            "16 overlapped transfers must beat serial wall cycles, got {:.2}x",
            k16.speedup()
        );
        let report = concurrency();
        assert!(report.contains("identical"), "{report}");
        assert!(!report.contains("DIFF"), "{report}");
    }

    #[test]
    fn concurrency_csv_has_one_row_per_k() {
        let csv = concurrency_csv();
        assert!(csv.starts_with("k,words_total"));
        assert_eq!(csv.matches('\n').count(), 1 + sweeps::CONCURRENCY_KS.len());
    }

    #[test]
    fn hotspot_on_cm5_saturates_with_diverging_tail() {
        // The acceptance criterion of the congestion study: two swept
        // load points where delivered throughput rises by less than 5%
        // while completion p99 at least doubles — the signature of
        // saturation (queueing grows without throughput return).
        let rows: Vec<_> = congestion_rows(&sweeps::CONGESTION_INTERVALS)
            .into_iter()
            .filter(|r| r.substrate == "cm5" && r.pattern == Pattern::Hotspot.name())
            .collect();
        assert_eq!(rows.len(), sweeps::CONGESTION_INTERVALS.len());
        let knee = rows.iter().enumerate().any(|(i, lo)| {
            rows[i + 1..].iter().any(|hi| {
                hi.delivered >= lo.delivered
                    && hi.delivered < lo.delivered * 1.05
                    && hi.comp_p99 >= 2 * lo.comp_p99
            })
        });
        assert!(
            knee,
            "no saturation knee: expected two load points with <5% throughput \
             gain and ≥2x completion p99, got {rows:#?}"
        );
    }

    #[test]
    fn congestion_report_contrasts_substrates() {
        let rows = congestion_rows(&sweeps::CONGESTION_QUICK_INTERVALS);
        // Every (substrate × pattern × interval) cell is present...
        assert_eq!(rows.len(), 2 * 3 * sweeps::CONGESTION_QUICK_INTERVALS.len());
        // ...nothing times out at these loads...
        for r in &rows {
            assert_eq!(r.completed, r.offered_ops, "{}/{} i{}", r.substrate, r.pattern, r.interval);
        }
        // ...and at the highest common load the CR-like substrate out-delivers
        // the CM-5-like one on the hotspot pattern (hardware flow control
        // vs software recovery under congestion).
        let at = |sub: &str| {
            rows.iter()
                .find(|r| {
                    r.substrate == sub
                        && r.pattern == Pattern::Hotspot.name()
                        && r.interval == *sweeps::CONGESTION_QUICK_INTERVALS.last().unwrap()
                })
                .unwrap()
                .delivered
        };
        assert!(at("cr") > at("cm5"), "cr={} cm5={}", at("cr"), at("cm5"));
        let report = congestion_report(&rows);
        assert!(report.contains("cm5 / hotspot"), "{report}");
        assert!(report.contains("cr / all-to-all"), "{report}");
    }

    #[test]
    fn congestion_csv_has_one_row_per_cell() {
        let csv = congestion_csv();
        assert!(csv.starts_with("substrate,pattern,interval"));
        assert_eq!(
            csv.matches('\n').count(),
            1 + 2 * 3 * sweeps::CONGESTION_INTERVALS.len()
        );
    }

    #[test]
    fn collectives_dag_beats_phased_at_64_nodes_with_identical_bill() {
        // The acceptance criterion of the collectives study: at 64
        // nodes the engine-native all-reduce DAG finishes in fewer
        // wall-cycles than the phase-serial form, with the instruction
        // bill unchanged.
        let rows = collectives_rows(&sweeps::COLLECTIVE_NODES_QUICK);
        assert_eq!(rows.len(), 2 * sweeps::COLLECTIVE_NODES_QUICK.len());
        for r in &rows {
            // Strict per-feature identity with the phased form is pinned
            // on a contention-free substrate in the collectives tests;
            // on the fat tree the DAG's burstier injection may pay a few
            // backpressure retries — bound it to a few percent.
            let (lo, hi) = (r.instr_engine.min(r.instr_phased), r.instr_engine.max(r.instr_phased));
            assert!(
                (hi - lo) * 100 <= lo * 5,
                "{} at {} nodes: engine bill {} vs phased {} drifts beyond retries",
                r.collective,
                r.nodes,
                r.instr_engine,
                r.instr_phased
            );
        }
        let ar64 = rows
            .iter()
            .find(|r| r.collective == "allreduce" && r.nodes == 64)
            .expect("64-node all-reduce cell");
        assert!(
            ar64.engine_cycles < ar64.phased_cycles,
            "engine-native all-reduce must beat phase-serial at 64 nodes: \
             engine {} vs phased {}",
            ar64.engine_cycles,
            ar64.phased_cycles
        );
        let report = collectives_report(&rows);
        assert!(report.contains("allreduce"), "{report}");
        assert!(report.contains("instr Δ"), "{report}");
    }

    #[test]
    fn segment_reuse_report_shows_amortization() {
        let r = segment_reuse();
        // With one message batching saves nothing.
        assert!(r.contains("     1 |"), "{r}");
        assert!(r.contains("0.0%"), "{r}");
        // With 16, over a third of each transfer's handshake is gone.
        assert!(r.contains("    16 |"), "{r}");
    }
}
