//! Machine-readable benchmark results: `BENCH_results.json`.
//!
//! Both emitters — the wall-clock bench harness (`benches/paper_benches`)
//! and the concurrency report binary — funnel through this module, so
//! the file accumulates entries from either without clobbering the
//! other's. The format is deliberately line-oriented, one entry per
//! line, which lets the merge logic stay a prefix filter instead of a
//! JSON parser (the repo is dependency-free by policy; see `DESIGN.md
//! §9`).
//!
//! ```json
//! {
//!   "table1/single_packet_delivery": {"median_ns": 1234},
//!   "concurrency/k8/engine_cycles": {"cycles": 5678}
//! }
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One named result: a wall-clock median or a derived cycle count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// Median wall time per iteration, in nanoseconds.
    MedianNs(u128),
    /// A deterministic simulated-cycle (or instruction) count.
    Cycles(u64),
    /// A dimensionless count or scaled ratio (events, queue depths,
    /// milli-units).
    Count(u64),
}

/// An accumulating set of named results belonging to one producer.
#[derive(Debug, Clone)]
pub struct BenchResults {
    /// Name prefix identifying the producer (e.g. `"bench/"`); merging
    /// replaces exactly the existing entries under this prefix.
    prefix: String,
    entries: Vec<(String, Metric)>,
}

impl BenchResults {
    /// A new, empty result set for `prefix` (must end with `/`).
    ///
    /// # Panics
    ///
    /// Panics if the prefix does not end with `/` — merging relies on
    /// prefix boundaries falling on separators.
    #[must_use]
    pub fn new(prefix: &str) -> Self {
        assert!(prefix.ends_with('/'), "producer prefix must end with '/'");
        BenchResults { prefix: prefix.to_string(), entries: Vec::new() }
    }

    /// Record a wall-clock median, in nanoseconds.
    pub fn record_wall(&mut self, name: &str, median_ns: u128) {
        self.push(name, Metric::MedianNs(median_ns));
    }

    /// Record a deterministic cycle/instruction count.
    pub fn record_cycles(&mut self, name: &str, cycles: u64) {
        self.push(name, Metric::Cycles(cycles));
    }

    /// Record a dimensionless count (events, queue depths, scaled
    /// ratios).
    pub fn record_count(&mut self, name: &str, count: u64) {
        self.push(name, Metric::Count(count));
    }

    fn push(&mut self, name: &str, metric: Metric) {
        self.entries.push((format!("{}{name}", self.prefix), metric));
    }

    /// The entry lines this set contributes (no surrounding braces, no
    /// trailing commas).
    fn lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|(name, metric)| {
                let mut line = String::new();
                match metric {
                    Metric::MedianNs(v) => {
                        write!(line, "  {}: {{\"median_ns\": {v}}}", json_string(name)).unwrap();
                    }
                    Metric::Cycles(v) => {
                        write!(line, "  {}: {{\"cycles\": {v}}}", json_string(name)).unwrap();
                    }
                    Metric::Count(v) => {
                        write!(line, "  {}: {{\"count\": {v}}}", json_string(name)).unwrap();
                    }
                }
                line
            })
            .collect()
    }

    /// Merge this set into the JSON file at `path`: entries from other
    /// producers are kept, previous entries under this producer's
    /// prefix are replaced. Returns the total entry count written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from reading or writing the file.
    pub fn write_merged(&self, path: &Path) -> io::Result<usize> {
        let mut kept: Vec<String> = Vec::new();
        if let Ok(existing) = fs::read_to_string(path) {
            let mine = format!("  \"{}", self.prefix);
            kept.extend(
                existing
                    .lines()
                    .filter(|l| l.starts_with("  \"") && !l.starts_with(&mine))
                    .map(|l| l.trim_end_matches(',').to_string()),
            );
        }
        kept.extend(self.lines());
        let mut out = String::from("{\n");
        for (i, line) in kept.iter().enumerate() {
            out.push_str(line);
            if i + 1 < kept.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        fs::write(path, out)?;
        Ok(kept.len())
    }

    /// The canonical output location: `BENCH_results.json` at the
    /// repository root (resolved relative to this crate's manifest).
    #[must_use]
    pub fn default_path() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_results.json")
    }
}

/// Minimal JSON string quoting: the names we emit are ASCII, but quote
/// and backslash are escaped for safety.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_other_producers() {
        let dir = std::env::temp_dir().join(format!("timego-results-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");

        let mut wall = BenchResults::new("bench/");
        wall.record_wall("table1", 42);
        assert_eq!(wall.write_merged(&path).unwrap(), 1);

        let mut cyc = BenchResults::new("concurrency/");
        cyc.record_cycles("k4/engine_cycles", 999);
        assert_eq!(cyc.write_merged(&path).unwrap(), 2);

        // Re-emitting the wall set replaces its old entry, keeps the other.
        let mut wall2 = BenchResults::new("bench/");
        wall2.record_wall("table1", 43);
        wall2.record_wall("table2", 44);
        assert_eq!(wall2.write_merged(&path).unwrap(), 3);

        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bench/table1\": {\"median_ns\": 43}"), "{text}");
        assert!(text.contains("\"concurrency/k4/engine_cycles\": {\"cycles\": 999}"), "{text}");
        assert!(!text.contains("\"median_ns\": 42"), "{text}");
        assert!(text.starts_with("{\n") && text.ends_with("}\n"), "{text}");
        // Every entry line but the last carries a trailing comma.
        assert_eq!(text.matches(',').count(), 2, "{text}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn count_metric_round_trips() {
        let dir = std::env::temp_dir().join(format!("timego-count-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let mut res = BenchResults::new("congestion/");
        res.record_count("cm5/hotspot/i8/backpressure", 17);
        res.record_cycles("cm5/hotspot/i8/completion_p99", 156);
        assert_eq!(res.write_merged(&path).unwrap(), 2);
        let text = fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"congestion/cm5/hotspot/i8/backpressure\": {\"count\": 17}"),
            "{text}"
        );
        assert!(
            text.contains("\"congestion/cm5/hotspot/i8/completion_p99\": {\"cycles\": 156}"),
            "{text}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
