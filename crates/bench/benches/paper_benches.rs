//! Criterion benches — one group per paper artifact, measuring the
//! wall-clock cost of regenerating each table/figure's workload on the
//! simulator (the instruction-count *results* are deterministic and
//! asserted by the test suite; these benches track the simulator's own
//! performance and print the measured paper metrics as they go).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use timego_am::{
    measure_hl_stream, measure_hl_xfer, measure_single_packet, measure_stream, measure_xfer,
    CmamConfig, Machine, StreamConfig,
};
use timego_netsim::{Network, NodeId, Packet};
use timego_ni::share;
use timego_workloads::{payloads, scenarios, sweeps};

/// Table 1: one single-packet delivery.
fn bench_single_packet(c: &mut Criterion) {
    c.bench_function("table1/single_packet_delivery", |b| {
        b.iter(|| black_box(measure_single_packet()))
    });
}

/// Table 2/3: the four measured blocks.
fn bench_multi_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    for words in sweeps::TABLE_MESSAGE_SIZES {
        g.bench_with_input(BenchmarkId::new("finite_sequence", words), &words, |b, &w| {
            b.iter(|| black_box(measure_xfer(w as usize, 4)))
        });
        g.bench_with_input(
            BenchmarkId::new("indefinite_sequence", words),
            &words,
            |b, &w| b.iter(|| black_box(measure_stream(w as usize, 4, 1))),
        );
    }
    g.finish();
}

/// Figure 6: the high-level-network counterparts.
fn bench_cmam_vs_hl(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure6");
    for words in sweeps::TABLE_MESSAGE_SIZES {
        g.bench_with_input(BenchmarkId::new("hl_finite", words), &words, |b, &w| {
            b.iter(|| black_box(measure_hl_xfer(w as usize, 4)))
        });
        g.bench_with_input(BenchmarkId::new("hl_indefinite", words), &words, |b, &w| {
            b.iter(|| black_box(measure_hl_stream(w as usize, 4)))
        });
    }
    g.finish();
}

/// Figure 8: the packet-size sweep.
fn bench_packet_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure8");
    g.sample_size(10);
    for n in sweeps::FIGURE8_PACKET_SIZES {
        g.bench_with_input(BenchmarkId::new("finite_1024w", n), &n, |b, &n| {
            b.iter(|| black_box(measure_xfer(1024, n as usize)))
        });
        g.bench_with_input(BenchmarkId::new("indefinite_1024w", n), &n, |b, &n| {
            b.iter(|| black_box(measure_stream(1024, n as usize, 1)))
        });
    }
    g.finish();
}

/// §3.2 ablation: group acknowledgements.
fn bench_group_acks(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_acks");
    g.sample_size(10);
    for period in sweeps::GROUP_ACK_PERIODS {
        g.bench_with_input(BenchmarkId::from_parameter(period), &period, |b, &p| {
            b.iter(|| black_box(measure_stream(1024, 4, p)))
        });
    }
    g.finish();
}

/// Ablation: ordering strategies — offset-carrying packets (finite)
/// versus sequence numbers + receiver buffering (indefinite), the
/// design choice §3.2 calls out.
fn bench_ordering_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering_strategies");
    g.sample_size(10);
    g.bench_function("offsets_finite_1024w", |b| {
        b.iter(|| black_box(measure_xfer(1024, 4)))
    });
    g.bench_function("seqnums_indefinite_1024w", |b| {
        b.iter(|| black_box(measure_stream(1024, 4, 1)))
    });
    g.finish();
}

/// Simulator throughput: raw packet delivery on the switched fat tree
/// and the CR substrate (wall-clock performance of the substrates
/// themselves).
fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_throughput");
    g.sample_size(10);
    g.bench_function("fat_tree_adaptive_500pkts", |b| {
        b.iter(|| {
            let mut net = scenarios::cm5_adaptive(64, 7);
            let mut sent = 0u32;
            while sent < 500 {
                let s = (sent as usize * 5) % 64;
                let d = (s + 17) % 64;
                if net
                    .try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, sent, vec![0; 4]))
                    .is_ok()
                {
                    sent += 1;
                }
                net.advance(1);
            }
            net.drain(1_000_000);
            black_box(net.stats().delivered)
        })
    });
    g.bench_function("cr_500pkts", |b| {
        b.iter(|| {
            let mut net = scenarios::cr(64, 7);
            let mut sent = 0u32;
            while sent < 500 {
                let s = (sent as usize * 5) % 64;
                let d = (s + 17) % 64;
                if net
                    .try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, sent, vec![0; 4]))
                    .is_ok()
                {
                    sent += 1;
                }
                net.advance(1);
                let _ = net.try_receive(NodeId::new(d));
            }
            net.drain(1_000_000);
            black_box(net.stats().delivered)
        })
    });
    g.finish();
}

/// End-to-end: a reliable stream over a lossy network (fault-tolerance
/// machinery really exercised) versus the same payload over lossy CR.
fn bench_fault_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_recovery");
    g.sample_size(10);
    let data = payloads::mixed(512, 13);
    g.bench_function("cmam_stream_2pct_loss", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                share(scenarios::cm5_lossy(4, 0.02, 31)),
                4,
                CmamConfig::default(),
            );
            let id = m.open_stream(
                NodeId::new(0),
                NodeId::new(1),
                StreamConfig { rto_iterations: 128, ..StreamConfig::default() },
            );
            m.stream_send(id, &data).expect("recovers");
            black_box(m.stream_received(id).len())
        })
    });
    g.bench_function("hl_stream_2pct_loss", |b| {
        b.iter(|| {
            let mut m = Machine::new(share(scenarios::cr_lossy(2, 0.02, 31)), 2, CmamConfig::default());
            let got = m
                .hl_stream_send(NodeId::new(0), NodeId::new(1), &data)
                .expect("hardware recovers");
            black_box(got.len())
        })
    });
    g.finish();
}

/// Application kernels over the public API (the workloads the paper's
/// introduction motivates).
fn bench_apps(c: &mut Criterion) {
    use timego_workloads::apps::{collectives, halo, sort};
    let mut g = c.benchmark_group("apps");
    g.sample_size(10);
    g.bench_function("halo_exchange_4n_256w_3iters", |b| {
        let data: Vec<u32> = payloads::mixed(256, 3).iter().map(|w| w % 1000).collect();
        b.iter(|| {
            let mut m = Machine::new(
                share(scenarios::table_in_order(4)),
                4,
                CmamConfig::default(),
            );
            black_box(halo::run(&mut m, &data, 3, 2).expect("completes"))
        })
    });
    g.bench_function("odd_even_sort_4n_256w", |b| {
        let data = payloads::random(256, 11);
        b.iter(|| {
            let mut m = Machine::new(
                share(scenarios::table_in_order(4)),
                4,
                CmamConfig::default(),
            );
            black_box(sort::run(&mut m, &data).expect("completes"))
        })
    });
    g.bench_function("allreduce_8n", |b| {
        let inputs: Vec<u32> = (1..=8).collect();
        b.iter(|| {
            let mut m = Machine::new(
                share(scenarios::table_in_order(8)),
                8,
                CmamConfig::default(),
            );
            black_box(collectives::allreduce_sum(&mut m, &inputs).expect("completes"))
        })
    });
    g.finish();
}

/// Wormhole substrate: deadlock resolution cost under CR.
fn bench_wormhole(c: &mut Criterion) {
    use timego_netsim::{NodeId, Packet};
    let mut g = c.benchmark_group("wormhole");
    g.sample_size(10);
    g.bench_function("cr_resolves_torus_cycle", |b| {
        b.iter(|| {
            let mut net = scenarios::wormhole_torus_cr(4, 1, 0.0, 3);
            for s in 0..4usize {
                let d = (s + 2) % 4;
                net.try_inject(Packet::new(NodeId::new(s), NodeId::new(d), 1, 0, vec![7; 8]))
                    .expect("first channels free");
            }
            assert!(net.drain_extracting(50_000));
            black_box(net.kills())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_packet,
    bench_multi_packet,
    bench_cmam_vs_hl,
    bench_packet_size_sweep,
    bench_group_acks,
    bench_ordering_strategies,
    bench_substrates,
    bench_fault_recovery,
    bench_apps,
    bench_wormhole,
);
criterion_main!(benches);
