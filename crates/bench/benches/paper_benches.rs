//! Wall-clock benches — one group per paper artifact, measuring the
//! cost of regenerating each table/figure's workload on the simulator
//! (the instruction-count *results* are deterministic and asserted by
//! the test suite; these benches track the simulator's own
//! performance).
//!
//! Dependency-free harness: each benchmark runs a warmup pass, then a
//! fixed number of timed iterations, and reports min/median/mean per
//! iteration. Run with `cargo bench -p timego-bench`. The medians are
//! also written to `BENCH_results.json` at the repository root
//! (merged with the concurrency report's cycle counts).

use std::hint::black_box;
use std::time::Instant;

use timego_am::{
    measure_hl_stream, measure_hl_xfer, measure_single_packet, measure_stream, measure_xfer,
    CmamConfig, Machine, RetryPolicy, StreamConfig,
};
use timego_bench::results::BenchResults;
use timego_netsim::{FaultConfig, Network, NodeId, Packet};
use timego_ni::share;
use timego_workloads::{payloads, scenarios, sweeps};

/// Harness state: prints one aligned line per benchmark and collects
/// each median for the JSON emission at exit.
struct Harness {
    results: BenchResults,
}

impl Harness {
    fn new() -> Self {
        Harness { results: BenchResults::new("bench/") }
    }

    /// Time `f` over `iters` iterations (after one warmup), print one
    /// aligned result line, and record the median.
    fn bench<R>(&mut self, name: &str, iters: u32, mut f: impl FnMut() -> R) {
        black_box(f()); // warmup
        let mut samples = Vec::with_capacity(iters as usize);
        let start = Instant::now();
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed().as_nanos());
        }
        let mean = start.elapsed().as_nanos() / u128::from(iters);
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        println!(
            "{name:<44} {iters:>5} iters   min {:>10}   median {:>10}   mean {:>10}",
            ns(min),
            ns(median),
            ns(mean)
        );
        self.results.record_wall(name, median);
    }

    fn finish(&self) {
        let path = BenchResults::default_path();
        match self.results.write_merged(&path) {
            Ok(n) => println!("\nwrote {n} entries to {}", path.display()),
            Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
        }
    }
}

fn ns(v: u128) -> String {
    if v >= 1_000_000 {
        format!("{:.2} ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.2} µs", v as f64 / 1e3)
    } else {
        format!("{v} ns")
    }
}

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn main() {
    let mut h = Harness::new();
    println!("== table1: single-packet delivery ==");
    h.bench("table1/single_packet_delivery", 200, measure_single_packet);

    println!("== table2/3: finite and indefinite sequences ==");
    for words in sweeps::TABLE_MESSAGE_SIZES {
        h.bench(&format!("table2/finite_sequence/{words}w"), 50, || {
            measure_xfer(words as usize, 4)
        });
        h.bench(&format!("table3/indefinite_sequence/{words}w"), 50, || {
            measure_stream(words as usize, 4, 1)
        });
    }

    println!("== figure6: high-level-network counterparts ==");
    for words in sweeps::TABLE_MESSAGE_SIZES {
        h.bench(&format!("figure6/hl_finite/{words}w"), 50, || {
            measure_hl_xfer(words as usize, 4)
        });
        h.bench(&format!("figure6/hl_indefinite/{words}w"), 50, || {
            measure_hl_stream(words as usize, 4)
        });
    }

    println!("== figure8: packet-size sweep (1024 words) ==");
    for pkt in sweeps::FIGURE8_PACKET_SIZES {
        h.bench(&format!("figure8/finite_1024w/pkt{pkt}"), 10, || {
            measure_xfer(1024, pkt as usize)
        });
        h.bench(&format!("figure8/indefinite_1024w/pkt{pkt}"), 10, || {
            measure_stream(1024, pkt as usize, 1)
        });
    }

    println!("== §3.2 ablation: group acknowledgements ==");
    for period in sweeps::GROUP_ACK_PERIODS {
        h.bench(&format!("group_acks/period{period}"), 10, || measure_stream(1024, 4, period));
    }

    println!("== ablation: ordering strategies (1024 words) ==");
    h.bench("ordering/offsets_finite", 10, || measure_xfer(1024, 4));
    h.bench("ordering/seqnums_indefinite", 10, || measure_stream(1024, 4, 1));

    println!("== substrate throughput (500 packets) ==");
    h.bench("substrate/fat_tree_adaptive", 10, || {
        let mut net = scenarios::cm5_adaptive(64, 7);
        let mut sent = 0u32;
        while sent < 500 {
            let s = (sent as usize * 5) % 64;
            let d = (s + 17) % 64;
            if net.try_inject(Packet::new(n(s), n(d), 1, sent, vec![0; 4])).is_ok() {
                sent += 1;
            }
            net.advance(1);
        }
        net.drain(1_000_000);
        net.stats().delivered
    });
    h.bench("substrate/cr", 10, || {
        let mut net = scenarios::cr(64, 7);
        let mut sent = 0u32;
        while sent < 500 {
            let s = (sent as usize * 5) % 64;
            let d = (s + 17) % 64;
            if net.try_inject(Packet::new(n(s), n(d), 1, sent, vec![0; 4])).is_ok() {
                sent += 1;
            }
            net.advance(1);
            let _ = net.try_receive(n(d));
        }
        net.drain(1_000_000);
        net.stats().delivered
    });

    println!("== fault recovery (512 words, 2% loss) ==");
    let data = payloads::mixed(512, 13);
    h.bench("recovery/cmam_stream", 10, || {
        let mut m =
            Machine::new(share(scenarios::cm5_lossy(4, 0.02, 31)), 4, CmamConfig::default());
        let id = m.open_stream(
            n(0),
            n(1),
            StreamConfig { rto_iterations: 128, ..StreamConfig::default() },
        );
        m.stream_send(id, &data).expect("recovers");
        m.stream_received(id).len()
    });
    h.bench("recovery/hl_stream", 10, || {
        let mut m = Machine::new(share(scenarios::cr_lossy(2, 0.02, 31)), 2, CmamConfig::default());
        m.hl_stream_send(n(0), n(1), &data).expect("hardware recovers").len()
    });
    h.bench("recovery/xfer_reliable_5pct_drop", 10, || {
        let fault = FaultConfig { drop_prob: 0.05, ..FaultConfig::default() };
        let mut m =
            Machine::new(share(scenarios::cm5_chaos(4, fault, 31)), 4, CmamConfig::default());
        let out = m.xfer_reliable(n(0), n(1), &data, &RetryPolicy::default()).expect("recovers");
        out.data_retransmits
    });
    h.bench("recovery/rpc_retrying_5pct_drop", 10, || {
        let fault = FaultConfig { drop_prob: 0.05, ..FaultConfig::default() };
        let mut m =
            Machine::new(share(scenarios::cm5_chaos(4, fault, 31)), 4, CmamConfig::default());
        m.register_rpc_handler(n(1), 40, |_, msg| [msg.words[0] + 1, 0, 0, 0]);
        let mut acc = 0u32;
        for v in 0..16u32 {
            acc += m
                .rpc_call_retrying(n(0), n(1), 40, [v, 0, 0, 0], &RetryPolicy::default())
                .expect("recovers")[0];
        }
        acc
    });

    println!("== application kernels ==");
    {
        use timego_workloads::apps::{collectives, halo, sort};
        let halo_data: Vec<u32> = payloads::mixed(256, 3).iter().map(|w| w % 1000).collect();
        h.bench("apps/halo_exchange_4n_256w_3iters", 10, || {
            let mut m =
                Machine::new(share(scenarios::table_in_order(4)), 4, CmamConfig::default());
            halo::run(&mut m, &halo_data, 3, 2).expect("completes")
        });
        let sort_data = payloads::random(256, 11);
        h.bench("apps/odd_even_sort_4n_256w", 10, || {
            let mut m =
                Machine::new(share(scenarios::table_in_order(4)), 4, CmamConfig::default());
            sort::run(&mut m, &sort_data).expect("completes")
        });
        let inputs: Vec<u32> = (1..=8).collect();
        h.bench("apps/allreduce_8n", 10, || {
            let mut m =
                Machine::new(share(scenarios::table_in_order(8)), 8, CmamConfig::default());
            collectives::allreduce_sum(&mut m, &inputs).expect("completes")
        });
    }

    println!("== wormhole: deadlock resolution under CR ==");
    h.bench("wormhole/cr_resolves_torus_cycle", 10, || {
        let mut net = scenarios::wormhole_torus_cr(4, 1, 0.0, 3);
        for s in 0..4usize {
            let d = (s + 2) % 4;
            net.try_inject(Packet::new(n(s), n(d), 1, 0, vec![7; 8]))
                .expect("first channels free");
        }
        assert!(net.drain_extracting(50_000));
        net.kills()
    });

    h.finish();
}
