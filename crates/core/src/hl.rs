//! Protocols for high-level networks (§4 of the paper).
//!
//! When the routing substrate itself provides in-order delivery,
//! end-to-end flow control and packet-level fault tolerance
//! (Compressionless Routing-style — [`Guarantees::HIGH_LEVEL`]), the
//! messaging layer shrinks to bare data movement:
//!
//! * the finite-sequence transfer ([`Machine::hl_xfer`], Figure 5) needs
//!   no allocation handshake (a stuck receiver can reject headers
//!   without deadlocking the network), no offsets (order is preserved),
//!   and no end-to-end acknowledgement (delivery is reliable) — only a
//!   trivial buffer-table insertion remains;
//! * the indefinite-sequence stream ([`Machine::hl_stream_send`],
//!   Figure 7) is "implemented essentially for free on top of multiple
//!   single-packet transmissions".

use timego_cost::{Feature, Fine};
use timego_netsim::{Guarantees, NodeId};

use crate::costs::{ctl_send, hl_xfer, stream_dst, xfer_send};
use crate::error::ProtocolError;
use crate::machine::{Machine, Tags};
use crate::xfer::XferOutcome;

impl Machine {
    fn require_high_level(&self) -> Result<(), ProtocolError> {
        let have = self.net.borrow().guarantees();
        if have == Guarantees::HIGH_LEVEL {
            Ok(())
        } else {
            Err(ProtocolError::MissingGuarantees { have })
        }
    }

    /// Finite-sequence transfer over a high-level network: inject the
    /// packets (first header word carries the transfer size), let the
    /// receiver allocate on header receipt and store packets as they
    /// arrive — in order, reliably, with hardware flow control.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MissingGuarantees`] if the substrate is not a
    /// high-level network; [`ProtocolError::BadTransfer`] for empty
    /// data; [`ProtocolError::Timeout`] if the substrate wedges.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `src == dst`.
    pub fn hl_xfer(&mut self, src: NodeId, dst: NodeId, data: &[u32]) -> Result<XferOutcome, ProtocolError> {
        assert_ne!(src, dst, "transfer endpoints must differ");
        self.require_high_level()?;
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty transfer".into()));
        }
        let n = self.cfg.packet_words;
        let packets = (data.len() as u64).div_ceil(n as u64);
        let max_wait = self.cfg.max_wait_cycles;
        let src_buf = self.write_buffer(src, data);

        // Source: identical base cost to the CMAM implementation — the
        // NI is the same hardware (§4.1).
        {
            let node = self.node_mut(src);
            node.cpu.reg(Fine::CallReturn, xfer_send::PROLOGUE_REG);
            node.cpu.mem_load(xfer_send::PROLOGUE_MEM);
        }

        // Destination entry: one receive poll + the slimmer handler
        // prologue of the specialized receive path.
        {
            let node = self.node_mut(dst);
            node.cpu.reg(Fine::CallReturn, hl_xfer::ENTRY_REG);
            node.cpu.mem_load(hl_xfer::ENTRY_STATE_MEM);
            let _ = node.ni.poll_status();
        }

        let mut rx_buffer = None;
        let mut received = 0u64;
        let mut send_retries = 0u64;
        let mut sent = 0u64;
        let mut waited = 0u64;
        while received < packets {
            // Inject while the substrate accepts (hardware flow control
            // may backpressure; the held path simply stalls the source).
            while sent < packets {
                let node = self.node_mut(src);
                node.cpu.ctrl(xfer_send::LOOP_CTRL);
                node.cpu.reg(Fine::RegOp, xfer_send::PTR_ADVANCE);
                node.cpu.reg(Fine::NiSetup, xfer_send::SETUP_REG);
                // Header word: total size on the first packet (the
                // receiver allocates from it), packet index afterwards.
                let header = if sent == 0 { data.len() as u32 } else { sent as u32 };
                node.ni.stage_envelope(dst, Tags::HL_DATA, header);
                for d in 0..(n / 2) {
                    let (w0, w1) = node
                        .mem
                        .load2(src_buf.offset((sent as usize) * n + 2 * d));
                    node.ni.push_payload2(w0, w1);
                }
                node.cpu.reg(Fine::CheckStatus, xfer_send::STATUS_REG);
                if node.ni.commit_send() {
                    node.ni.load_send_status();
                    sent += 1;
                } else {
                    send_retries += 1;
                    break;
                }
            }

            // Drain arrivals.
            let mut drained = false;
            loop {
                let node = self.node_mut(dst);
                let Some((_, tag)) = node.ni.latch_rx() else {
                    break;
                };
                if tag != Tags::HL_DATA {
                    return Err(ProtocolError::UnexpectedPacket { tag });
                }
                node.cpu.reg(Fine::Handler, stream_dst::PER_PACKET_REG + 2);
                let header = node.ni.read_header();
                if received == 0 {
                    // Header packet: allocate and enter the buffer in
                    // the transfer table (all that remains of buffer
                    // management — §4.1).
                    let words = header as usize;
                    let buffer = node.mem.alloc(words.div_ceil(n) * n);
                    node.cpu.clone().with_feature(Feature::BufferMgmt, |cpu| {
                        cpu.reg(Fine::RegOp, hl_xfer::BUFMGMT_REG);
                        cpu.mem_store(hl_xfer::BUFMGMT_MEM);
                    });
                    rx_buffer = Some(buffer);
                }
                let buffer = rx_buffer.expect("first packet allocated the buffer");
                for d in 0..(n / 2) {
                    let (w0, w1) = node.ni.read_payload2();
                    node.mem.store2(buffer.offset((received as usize) * n + 2 * d), w0, w1);
                }
                received += 1;
                drained = true;
                if received == packets {
                    break;
                }
            }

            if !drained && sent < packets {
                // blocked on injection and nothing arrived: let time pass
                self.advance(1);
                waited += 1;
            } else if !drained {
                self.advance(1);
                waited += 1;
            }
            if waited > max_wait {
                return Err(ProtocolError::timeout("hl transfer completion", waited));
            }
        }

        Ok(XferOutcome {
            dst_buffer: rx_buffer.expect("at least one packet received"),
            packets,
            segment_id: 0,
            send_retries,
        })
    }

    /// Indefinite-sequence stream over a high-level network: bare
    /// single-packet transmissions — no sequence numbers, no receiver
    /// reordering, no source buffering, no acknowledgements. Returns the
    /// delivered words (the hardware guarantees they are `data`, in
    /// order).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MissingGuarantees`] if the substrate is not a
    /// high-level network; [`ProtocolError::BadTransfer`] for empty
    /// data; [`ProtocolError::Timeout`] if the substrate wedges.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range or `src == dst`.
    pub fn hl_stream_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        data: &[u32],
    ) -> Result<Vec<u32>, ProtocolError> {
        assert_ne!(src, dst, "stream endpoints must differ");
        self.require_high_level()?;
        if data.is_empty() {
            return Err(ProtocolError::BadTransfer("empty stream send".into()));
        }
        let n = self.cfg.packet_words;
        let packets = (data.len() as u64).div_ceil(n as u64);
        let max_wait = self.cfg.max_wait_cycles;

        // Receiver entry: one poll + handler prologue (the "+13").
        {
            let node = self.node_mut(dst);
            node.cpu.call(stream_dst::ENTRY_CALL);
            node.cpu.ctrl(stream_dst::ENTRY_CTRL);
            let _ = node.ni.poll_status();
        }

        let mut delivered = Vec::with_capacity(data.len());
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut waited = 0u64;
        while received < packets {
            while sent < packets {
                let node = self.node_mut(src);
                node.cpu.call(ctl_send::CALL);
                node.cpu.reg(Fine::NiSetup, ctl_send::SETUP_REG);
                node.cpu.mem_load(ctl_send::STATE_MEM);
                node.ni.stage_envelope(dst, Tags::HL_STREAM, sent as u32);
                let base = (sent as usize) * n;
                for d in 0..(n / 2) {
                    let w0 = data.get(base + 2 * d).copied().unwrap_or(0);
                    let w1 = data.get(base + 2 * d + 1).copied().unwrap_or(0);
                    node.ni.push_payload2(w0, w1);
                }
                node.cpu.reg(Fine::CheckStatus, ctl_send::STATUS_REG);
                node.cpu.ctrl(ctl_send::CTRL);
                if node.ni.commit_send() {
                    node.ni.load_send_status();
                    sent += 1;
                } else {
                    break;
                }
            }

            let mut drained = false;
            loop {
                let node = self.node_mut(dst);
                let Some((_, tag)) = node.ni.latch_rx() else {
                    break;
                };
                if tag != Tags::HL_STREAM {
                    return Err(ProtocolError::UnexpectedPacket { tag });
                }
                node.cpu.reg(Fine::Handler, stream_dst::PER_PACKET_REG);
                let _seq = node.ni.read_header();
                for _ in 0..(n / 2) {
                    let (w0, w1) = node.ni.read_payload2();
                    delivered.push(w0);
                    delivered.push(w1);
                }
                received += 1;
                drained = true;
                if received == packets {
                    break;
                }
            }

            if !drained {
                self.advance(1);
                waited += 1;
                if waited > max_wait {
                    return Err(ProtocolError::timeout("hl stream completion", waited));
                }
            }
        }

        delivered.truncate(data.len());
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CmamConfig;
    use timego_cost::analytic::{hl_finite, hl_indefinite, MsgShape};
    use timego_cost::{Endpoint, Feature};
    use timego_netsim::{CrConfig, CrNetwork, DeliveryScript, ScriptedNetwork};
    use timego_ni::share;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn instant_hl_machine() -> Machine {
        Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::InOrder)),
            2,
            CmamConfig::default(),
        )
    }

    #[test]
    fn hl_xfer_refused_on_raw_substrate() {
        let mut m = Machine::new(
            share(ScriptedNetwork::new(2, DeliveryScript::AlternateSwap)),
            2,
            CmamConfig::default(),
        );
        let err = m.hl_xfer(n(0), n(1), &[1, 2, 3, 4]).unwrap_err();
        assert!(matches!(err, ProtocolError::MissingGuarantees { .. }));
    }

    #[test]
    fn hl_xfer_transfers_data() {
        let mut m = instant_hl_machine();
        let data: Vec<u32> = (0..100).map(|i| i ^ 0xAA).collect();
        let out = m.hl_xfer(n(0), n(1), &data).unwrap();
        assert_eq!(out.packets, 25);
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, data.len()), data);
    }

    #[test]
    fn hl_xfer_matches_analytic_model() {
        for words in [16usize, 1024] {
            let mut m = instant_hl_machine();
            let data: Vec<u32> = (0..words as u32).collect();
            m.reset_costs();
            m.hl_xfer(n(0), n(1), &data).unwrap();
            let model = hl_finite(MsgShape::paper(words as u64).unwrap());
            let src = m.cpu(n(0)).snapshot();
            let dst = m.cpu(n(1)).snapshot();
            for f in Feature::ALL {
                assert_eq!(src.feature(f), model.get(Endpoint::Source, f), "src {f} @ {words}");
                assert_eq!(
                    dst.feature(f),
                    model.get(Endpoint::Destination, f),
                    "dst {f} @ {words}"
                );
            }
        }
    }

    #[test]
    fn hl_stream_matches_analytic_model_and_figure6() {
        for (words, expect_total) in [(16usize, 149u64), (1024, 8717)] {
            let mut m = instant_hl_machine();
            let data: Vec<u32> = (0..words as u32).collect();
            m.reset_costs();
            let got = m.hl_stream_send(n(0), n(1), &data).unwrap();
            assert_eq!(got, data);
            let model = hl_indefinite(MsgShape::paper(words as u64).unwrap());
            let src = m.cpu(n(0)).snapshot();
            let dst = m.cpu(n(1)).snapshot();
            assert_eq!(src.total(), model.endpoint_total(Endpoint::Source));
            assert_eq!(dst.total(), model.endpoint_total(Endpoint::Destination));
            assert_eq!(src.total() + dst.total(), expect_total, "Figure 6 HL bar");
            assert_eq!(src.overhead_total() + dst.overhead_total(), 0);
        }
    }

    #[test]
    fn hl_protocols_run_on_cr_network() {
        // On the actual CR substrate (latency, bounded pair window,
        // hardware retransmission of corrupted packets) the protocols
        // still deliver correctly; costs grow only by injection retries.
        let net = CrNetwork::new(CrConfig {
            corruption_prob: 0.1,
            seed: 3,
            ..CrConfig::new(2)
        });
        let mut m = Machine::new(share(net), 2, CmamConfig::default());
        let data: Vec<u32> = (0..256).map(|i| i * 13).collect();
        let out = m.hl_xfer(n(0), n(1), &data).unwrap();
        assert_eq!(m.read_buffer(n(1), out.dst_buffer, data.len()), data);

        let got = m.hl_stream_send(n(0), n(1), &data).unwrap();
        assert_eq!(got, data);
    }
}
