//! Protocol error type.

use std::error::Error;
use std::fmt;

use timego_netsim::{Guarantees, NodeId};

use crate::engine::OpId;

/// Errors raised by protocol executions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A protocol phase waited longer than the configured bound for a
    /// packet. On a detect-only network this is how software observes a
    /// lost packet with no retransmission machinery (the paper's "detect
    /// errors and crash").
    Timeout {
        /// What the endpoint was waiting for.
        waiting_for: &'static str,
        /// Cycles waited.
        cycles: u64,
        /// The node that was waiting, when known.
        node: Option<NodeId>,
        /// Recovery attempts made before giving up (`0` when no retry
        /// policy was in effect).
        attempts: u32,
    },
    /// A high-level protocol was started on a substrate that lacks the
    /// required hardware guarantees.
    MissingGuarantees {
        /// What the substrate actually provides.
        have: Guarantees,
    },
    /// Transfer arguments were invalid (empty data, odd packet size, …).
    BadTransfer(String),
    /// An unexpected packet arrived during a protocol phase.
    UnexpectedPacket {
        /// The hardware tag of the offending packet.
        tag: u8,
    },
    /// A run-after predecessor of this operation failed, so the
    /// operation was never released for admission. The failure
    /// propagates transitively: each dependent carries the [`OpId`] of
    /// its *direct* failed predecessor, so a chain of these errors spells
    /// out the propagation path (the root cause is the predecessor's own
    /// outcome, still retrievable from the engine).
    DependencyFailed {
        /// The direct predecessor whose failure felled this operation.
        failed: OpId,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Timeout { waiting_for, cycles, node, attempts } => {
                write!(f, "timed out after {cycles} cycles waiting for {waiting_for}")?;
                if let Some(n) = node {
                    write!(f, " at node {}", n.index())?;
                }
                if *attempts > 0 {
                    write!(f, " ({attempts} recovery attempts)")?;
                }
                Ok(())
            }
            ProtocolError::MissingGuarantees { have } => write!(
                f,
                "substrate lacks required high-level guarantees (has in_order={}, reliable={}, flow_controlled={})",
                have.in_order, have.reliable, have.flow_controlled
            ),
            ProtocolError::BadTransfer(msg) => write!(f, "invalid transfer: {msg}"),
            ProtocolError::UnexpectedPacket { tag } => {
                write!(f, "unexpected packet with tag {tag} during protocol phase")
            }
            ProtocolError::DependencyFailed { failed } => {
                write!(f, "run-after predecessor op {} failed", failed.raw())
            }
        }
    }
}

impl ProtocolError {
    /// A [`ProtocolError::Timeout`] with no retry context.
    #[must_use]
    pub fn timeout(waiting_for: &'static str, cycles: u64) -> Self {
        ProtocolError::Timeout { waiting_for, cycles, node: None, attempts: 0 }
    }

    /// Would retrying the operation plausibly succeed? Timeouts are
    /// transient (a packet was lost or delayed); everything else is a
    /// configuration or usage error that retrying cannot fix. A
    /// dependency failure is not retryable either: resubmitting the
    /// dependent alone cannot resurrect its failed predecessor.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ProtocolError::Timeout { .. })
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = ProtocolError::timeout("ack", 99);
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("ack"));
        assert!(!e.to_string().contains("node"), "no context, no clutter");
        let e = ProtocolError::MissingGuarantees { have: Guarantees::RAW };
        assert!(e.to_string().contains("in_order=false"));
        assert!(ProtocolError::BadTransfer("x".into()).to_string().contains("x"));
        assert!(ProtocolError::UnexpectedPacket { tag: 9 }.to_string().contains('9'));
    }

    #[test]
    fn timeout_display_includes_retry_context() {
        let e = ProtocolError::Timeout {
            waiting_for: "xfer acknowledgement",
            cycles: 512,
            node: Some(NodeId::new(3)),
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("512"), "{s}");
        assert!(s.contains("xfer acknowledgement"), "{s}");
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("4 recovery attempts"), "{s}");
    }

    #[test]
    fn only_timeouts_are_retryable() {
        assert!(ProtocolError::timeout("x", 1).is_retryable());
        assert!(!ProtocolError::MissingGuarantees { have: Guarantees::RAW }.is_retryable());
        assert!(!ProtocolError::BadTransfer("x".into()).is_retryable());
        assert!(!ProtocolError::UnexpectedPacket { tag: 1 }.is_retryable());
    }

    #[test]
    fn dependency_failure_names_the_predecessor_and_never_retries() {
        let mut eng = crate::engine::Engine::new();
        let m = crate::machine::Machine::new(
            timego_ni::share(timego_netsim::ScriptedNetwork::new(
                2,
                timego_netsim::DeliveryScript::InOrder,
            )),
            2,
            crate::machine::CmamConfig::default(),
        );
        let id = eng.submit_xfer(&m, NodeId::new(0), NodeId::new(1), &[1]).unwrap();
        let e = ProtocolError::DependencyFailed { failed: id };
        let s = e.to_string();
        assert!(s.contains("predecessor"), "{s}");
        assert!(s.contains(&id.raw().to_string()), "{s}");
        assert!(!e.is_retryable());
    }
}
