//! Protocol error type.

use std::error::Error;
use std::fmt;

use timego_netsim::{Guarantees, NodeId};

use crate::engine::OpId;

/// Errors raised by protocol executions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A protocol phase waited longer than the configured bound for a
    /// packet. On a detect-only network this is how software observes a
    /// lost packet with no retransmission machinery (the paper's "detect
    /// errors and crash").
    Timeout {
        /// What the endpoint was waiting for.
        waiting_for: &'static str,
        /// Cycles waited.
        cycles: u64,
        /// The node that was waiting, when known.
        node: Option<NodeId>,
        /// Recovery attempts made before giving up (`0` when no retry
        /// policy was in effect).
        attempts: u32,
    },
    /// A high-level protocol was started on a substrate that lacks the
    /// required hardware guarantees.
    MissingGuarantees {
        /// What the substrate actually provides.
        have: Guarantees,
    },
    /// Transfer arguments were invalid (empty data, odd packet size, …).
    BadTransfer(String),
    /// An unexpected packet arrived during a protocol phase.
    UnexpectedPacket {
        /// The hardware tag of the offending packet.
        tag: u8,
    },
    /// A run-after predecessor of this operation failed, so the
    /// operation was never released for admission. The failure
    /// propagates transitively: each dependent carries the [`OpId`] of
    /// its *direct* failed predecessor plus the *root* error the chain
    /// started from, so retryability can follow the root cause without
    /// walking the engine's outcome table.
    DependencyFailed {
        /// The direct predecessor whose failure felled this operation.
        failed: OpId,
        /// The root-cause error the failure chain started from (chains
        /// of `DependencyFailed` are flattened to the original error).
        root: Box<ProtocolError>,
    },
    /// An operation overran its per-op deadline or was starved of
    /// progress long enough for the engine watchdog to fire. Retryable:
    /// the usual cause is lost traffic or a crashed-and-restarting
    /// peer, and a fresh submission starts a fresh session.
    DeadlineExceeded {
        /// What kind of supervision bound fired ("deadline" for an
        /// explicit per-op deadline, "watchdog" for the no-progress
        /// detector).
        what: &'static str,
        /// Cycles elapsed when the bound fired (since submission for
        /// deadlines, since last progress for the watchdog).
        cycles: u64,
    },
    /// The operation was cancelled via [`crate::engine::Engine::cancel`]
    /// or drained by `quiesce`. Deliberate, so never retryable.
    Cancelled,
    /// A peer node crashed and restarted mid-session, erasing its
    /// endpoint protocol state; the surviving side detected the restart
    /// (epoch mismatch or restart-counter advance) and failed fast.
    /// Retryable: re-executing opens a fresh epoch-stamped session.
    SessionReset {
        /// The node that restarted.
        node: NodeId,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Timeout { waiting_for, cycles, node, attempts } => {
                write!(f, "timed out after {cycles} cycles waiting for {waiting_for}")?;
                if let Some(n) = node {
                    write!(f, " at node {}", n.index())?;
                }
                if *attempts > 0 {
                    write!(f, " ({attempts} recovery attempts)")?;
                }
                Ok(())
            }
            ProtocolError::MissingGuarantees { have } => write!(
                f,
                "substrate lacks required high-level guarantees (has in_order={}, reliable={}, flow_controlled={})",
                have.in_order, have.reliable, have.flow_controlled
            ),
            ProtocolError::BadTransfer(msg) => write!(f, "invalid transfer: {msg}"),
            ProtocolError::UnexpectedPacket { tag } => {
                write!(f, "unexpected packet with tag {tag} during protocol phase")
            }
            ProtocolError::DependencyFailed { failed, root } => {
                write!(f, "run-after predecessor op {} failed: {root}", failed.raw())
            }
            ProtocolError::DeadlineExceeded { what, cycles } => {
                write!(f, "operation {what} exceeded after {cycles} cycles")
            }
            ProtocolError::Cancelled => write!(f, "operation cancelled"),
            ProtocolError::SessionReset { node } => {
                write!(f, "peer node {} crashed and restarted mid-session", node.index())
            }
        }
    }
}

impl ProtocolError {
    /// A [`ProtocolError::Timeout`] with no retry context.
    #[must_use]
    pub fn timeout(waiting_for: &'static str, cycles: u64) -> Self {
        ProtocolError::Timeout { waiting_for, cycles, node: None, attempts: 0 }
    }

    /// Build a [`ProtocolError::DependencyFailed`] naming the direct
    /// predecessor `failed`, flattening chained dependency failures so
    /// `root` is always the original non-dependency error.
    #[must_use]
    pub fn dependency_failed(failed: OpId, predecessor_err: &ProtocolError) -> Self {
        let root = match predecessor_err {
            ProtocolError::DependencyFailed { root, .. } => root.clone(),
            other => Box::new(other.clone()),
        };
        ProtocolError::DependencyFailed { failed, root }
    }

    /// Would retrying the operation plausibly succeed? Timeouts,
    /// deadline/watchdog expiries and session resets are transient (a
    /// packet was lost or delayed, or a peer restarted and a fresh
    /// session will succeed). A dependency failure follows its root
    /// cause: resubmitting the whole chain is sensible exactly when the
    /// root failure was itself transient. Cancellation is deliberate
    /// and everything else is a configuration or usage error that
    /// retrying cannot fix.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ProtocolError::Timeout { .. }
            | ProtocolError::DeadlineExceeded { .. }
            | ProtocolError::SessionReset { .. } => true,
            ProtocolError::DependencyFailed { root, .. } => root.is_retryable(),
            _ => false,
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = ProtocolError::timeout("ack", 99);
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("ack"));
        assert!(!e.to_string().contains("node"), "no context, no clutter");
        let e = ProtocolError::MissingGuarantees { have: Guarantees::RAW };
        assert!(e.to_string().contains("in_order=false"));
        assert!(ProtocolError::BadTransfer("x".into()).to_string().contains("x"));
        assert!(ProtocolError::UnexpectedPacket { tag: 9 }.to_string().contains('9'));
    }

    #[test]
    fn timeout_display_includes_retry_context() {
        let e = ProtocolError::Timeout {
            waiting_for: "xfer acknowledgement",
            cycles: 512,
            node: Some(NodeId::new(3)),
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("512"), "{s}");
        assert!(s.contains("xfer acknowledgement"), "{s}");
        assert!(s.contains("node 3"), "{s}");
        assert!(s.contains("4 recovery attempts"), "{s}");
    }

    /// Table-driven audit of `is_retryable()` over **every** variant:
    /// the transient classes (timeouts, both supervision bounds, session
    /// resets, and dependency failures flattened onto those roots) all
    /// answer `true`; deliberate cancellation, usage errors, and
    /// dependency failures rooted in them all answer `false`. Adding a
    /// variant without classifying it here fails the completeness check.
    #[test]
    fn retryability_table_covers_every_variant() {
        let dep = |root: ProtocolError| ProtocolError::DependencyFailed {
            failed: OpId::from_raw(7),
            root: Box::new(root),
        };
        let table: Vec<(ProtocolError, bool)> = vec![
            // Transient: lost/delayed traffic or a restarted peer.
            (ProtocolError::timeout("ack", 1), true),
            (
                ProtocolError::Timeout {
                    waiting_for: "reply",
                    cycles: 9,
                    node: Some(NodeId::new(1)),
                    attempts: 3,
                },
                true,
            ),
            (ProtocolError::DeadlineExceeded { what: "deadline", cycles: 7 }, true),
            (ProtocolError::DeadlineExceeded { what: "watchdog", cycles: 7 }, true),
            (ProtocolError::SessionReset { node: NodeId::new(2) }, true),
            // Dependency failures follow their flattened root cause.
            (dep(ProtocolError::timeout("ack", 1)), true),
            (dep(ProtocolError::DeadlineExceeded { what: "watchdog", cycles: 3 }), true),
            (dep(ProtocolError::SessionReset { node: NodeId::new(0) }), true),
            (dep(ProtocolError::BadTransfer("x".into())), false),
            (dep(ProtocolError::Cancelled), false),
            // Deliberate or usage errors: retrying cannot fix them.
            (ProtocolError::Cancelled, false),
            (ProtocolError::MissingGuarantees { have: Guarantees::RAW }, false),
            (ProtocolError::BadTransfer("x".into()), false),
            (ProtocolError::UnexpectedPacket { tag: 1 }, false),
        ];
        for (err, want) in &table {
            assert_eq!(err.is_retryable(), *want, "{err:?}");
        }
        // Completeness: every variant of the enum appears in the table
        // (discriminant names extracted from the Debug rendering).
        let discriminant = |e: &ProtocolError| {
            let s = format!("{e:?}");
            s.split(|c: char| !c.is_alphanumeric()).next().unwrap().to_string()
        };
        let covered: std::collections::BTreeSet<String> =
            table.iter().map(|(e, _)| discriminant(e)).collect();
        for name in [
            "Timeout",
            "MissingGuarantees",
            "BadTransfer",
            "UnexpectedPacket",
            "DependencyFailed",
            "DeadlineExceeded",
            "Cancelled",
            "SessionReset",
        ] {
            assert!(covered.contains(name), "variant {name} missing from the table");
        }
    }

    #[test]
    fn supervision_errors_display_their_details() {
        let e = ProtocolError::DeadlineExceeded { what: "watchdog", cycles: 321 };
        let s = e.to_string();
        assert!(s.contains("watchdog"), "{s}");
        assert!(s.contains("321"), "{s}");
        assert!(ProtocolError::Cancelled.to_string().contains("cancelled"));
        let s = ProtocolError::SessionReset { node: NodeId::new(5) }.to_string();
        assert!(s.contains("node 5"), "{s}");
        assert!(s.contains("restarted"), "{s}");
    }

    #[test]
    fn dependency_failure_names_the_predecessor_and_follows_its_root() {
        let mut eng = crate::engine::Engine::new();
        let m = crate::machine::Machine::new(
            timego_ni::share(timego_netsim::ScriptedNetwork::new(
                2,
                timego_netsim::DeliveryScript::InOrder,
            )),
            2,
            crate::machine::CmamConfig::default(),
        );
        let id = eng.submit_xfer(&m, NodeId::new(0), NodeId::new(1), &[1]).unwrap();
        let root = ProtocolError::timeout("ack", 9);
        let e = ProtocolError::dependency_failed(id, &root);
        let s = e.to_string();
        assert!(s.contains("predecessor"), "{s}");
        assert!(s.contains(&id.raw().to_string()), "{s}");
        assert!(s.contains("ack"), "root cause spelled out: {s}");
        assert!(e.is_retryable(), "retryability follows the retryable root");

        let e2 = ProtocolError::dependency_failed(id, &ProtocolError::BadTransfer("x".into()));
        assert!(!e2.is_retryable(), "non-retryable root stays non-retryable");

        // Chains flatten: a dependency failure built atop another keeps
        // the original root, not the intermediate wrapper.
        let chained = ProtocolError::dependency_failed(id, &e);
        match chained {
            ProtocolError::DependencyFailed { root, .. } => {
                assert_eq!(*root, ProtocolError::timeout("ack", 9));
            }
            other => panic!("expected DependencyFailed, got {other:?}"),
        }
    }
}
