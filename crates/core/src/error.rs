//! Protocol error type.

use std::error::Error;
use std::fmt;

use timego_netsim::Guarantees;

/// Errors raised by protocol executions.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A protocol phase waited longer than the configured bound for a
    /// packet. On a detect-only network this is how software observes a
    /// lost packet with no retransmission machinery (the paper's "detect
    /// errors and crash").
    Timeout {
        /// What the endpoint was waiting for.
        waiting_for: &'static str,
        /// Cycles waited.
        cycles: u64,
    },
    /// A high-level protocol was started on a substrate that lacks the
    /// required hardware guarantees.
    MissingGuarantees {
        /// What the substrate actually provides.
        have: Guarantees,
    },
    /// Transfer arguments were invalid (empty data, odd packet size, …).
    BadTransfer(String),
    /// An unexpected packet arrived during a protocol phase.
    UnexpectedPacket {
        /// The hardware tag of the offending packet.
        tag: u8,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Timeout { waiting_for, cycles } => {
                write!(f, "timed out after {cycles} cycles waiting for {waiting_for}")
            }
            ProtocolError::MissingGuarantees { have } => write!(
                f,
                "substrate lacks required high-level guarantees (has in_order={}, reliable={}, flow_controlled={})",
                have.in_order, have.reliable, have.flow_controlled
            ),
            ProtocolError::BadTransfer(msg) => write!(f, "invalid transfer: {msg}"),
            ProtocolError::UnexpectedPacket { tag } => {
                write!(f, "unexpected packet with tag {tag} during protocol phase")
            }
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = ProtocolError::Timeout { waiting_for: "ack", cycles: 99 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("ack"));
        let e = ProtocolError::MissingGuarantees { have: Guarantees::RAW };
        assert!(e.to_string().contains("in_order=false"));
        assert!(ProtocolError::BadTransfer("x".into()).to_string().contains("x"));
        assert!(ProtocolError::UnexpectedPacket { tag: 9 }.to_string().contains('9'));
    }
}
